//! Corpus generation.
//!
//! Each document is generated as:
//!
//! * a **topic** sampled from a Zipf-tilted distribution (some topics are
//!   more common on the web than others);
//! * an optional **city** (probability [`CorpusSpec::localized_prob`]); a
//!   localized document mentions its city in the title with probability
//!   ~0.7 and several times in the body, and occasionally mentions the
//!   city's state or country (ancestor rollup — this is what makes ontology
//!   rollup in the location profile meaningful);
//! * a **body** that mixes topic core terms, generic filler, a sprinkle of
//!   terms from a *confuser* topic (so topics are not trivially separable),
//!   and the location mentions.
//!
//! URLs are synthesized as `http://<word>-<topic>.test/<slug>` with a
//! bounded pool of domains per topic so that domain statistics look web-like.

use crate::doc::{Corpus, DocId, Document};
use crate::vocab::{TopicId, Topics, FILLER};
use pws_geo::{LocId, LocationOntology};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Corpus shape parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusSpec {
    /// Number of documents to generate.
    pub num_docs: usize,
    /// Topics to draw from.
    pub num_topics: usize,
    /// Probability a document is tied to a specific city.
    pub localized_prob: f64,
    /// Body length range in tokens (min, max).
    pub body_len: (usize, usize),
    /// Probability that each body token slot is a topic core term (the rest
    /// is filler / confuser / location).
    pub topical_density: f64,
    /// Zipf skew of the topic distribution (0 = uniform).
    pub topic_skew: f64,
}

impl CorpusSpec {
    /// Default experimental corpus: 8k docs over all 12 topics (T1).
    pub fn default_corpus() -> Self {
        CorpusSpec {
            num_docs: 8_000,
            num_topics: 12,
            localized_prob: 0.55,
            body_len: (60, 160),
            topical_density: 0.45,
            topic_skew: 0.7,
        }
    }

    /// Large corpus tier: one million documents for the segmented
    /// on-disk index benchmarks (`retrieval_bench --scale large`).
    /// Bodies are shorter than the default tier so the stored-document
    /// sections stay disk-friendly at this scale; everything else keeps
    /// the default shape.
    pub fn large() -> Self {
        CorpusSpec {
            num_docs: 1_000_000,
            num_topics: 12,
            localized_prob: 0.55,
            body_len: (40, 100),
            topical_density: 0.45,
            topic_skew: 0.7,
        }
    }

    /// Small corpus for tests/doc examples.
    pub fn small() -> Self {
        CorpusSpec {
            num_docs: 300,
            num_topics: 4,
            localized_prob: 0.5,
            body_len: (40, 80),
            topical_density: 0.5,
            topic_skew: 0.5,
        }
    }
}

/// Seeded corpus generator.
#[derive(Debug)]
pub struct CorpusGen {
    seed: u64,
}

impl CorpusGen {
    /// Create a generator; the same seed + spec + world always produces the
    /// same corpus.
    pub fn new(seed: u64) -> Self {
        CorpusGen { seed }
    }

    /// Generate a corpus over `world`'s cities.
    pub fn generate(&self, spec: &CorpusSpec, world: &LocationOntology) -> Corpus {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let topics = Topics::first(spec.num_topics);
        let cities: Vec<LocId> = world.cities().collect();
        assert!(!cities.is_empty(), "world has no cities");

        // Zipf-tilted topic weights: w_k = 1/(k+1)^skew.
        let weights: Vec<f64> =
            (0..topics.len()).map(|k| 1.0 / ((k + 1) as f64).powf(spec.topic_skew)).collect();
        let total_w: f64 = weights.iter().sum();

        // Domain pool: a handful of synthetic domains per topic.
        let domains: Vec<Vec<String>> = topics
            .ids()
            .map(|t| {
                (0..6)
                    .map(|i| format!("{}-{}{}.test", topics.name(t), word(&mut rng), i))
                    .collect()
            })
            .collect();

        let mut docs = Vec::with_capacity(spec.num_docs);
        for i in 0..spec.num_docs {
            let topic = sample_topic(&mut rng, &weights, total_w);
            let city = if rng.gen_bool(spec.localized_prob) {
                Some(cities[rng.gen_range(0..cities.len())])
            } else {
                None
            };
            let doc = self.generate_doc(
                &mut rng,
                DocId(i as u32),
                topic,
                city,
                spec,
                &topics,
                world,
                &domains[topic.index()],
            );
            docs.push(doc);
        }
        Corpus { docs, seed: self.seed }
    }

    /// A random-access view of the corpus this generator would produce:
    /// any document can be generated independently by index, so corpus
    /// shards can be built in parallel (or streamed without ever holding
    /// the whole corpus in memory).
    ///
    /// Note the two entry points are distinct deterministic corpora:
    /// [`CorpusGen::generate`] threads one RNG through all documents,
    /// while [`DocGen`] seeds a fresh RNG per document — same shape,
    /// different bytes. Experiments pin whichever they were run with.
    pub fn doc_gen<'w>(&self, spec: CorpusSpec, world: &'w LocationOntology) -> DocGen<'w> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let topics = Topics::first(spec.num_topics);
        let cities: Vec<LocId> = world.cities().collect();
        assert!(!cities.is_empty(), "world has no cities");
        let weights: Vec<f64> =
            (0..topics.len()).map(|k| 1.0 / ((k + 1) as f64).powf(spec.topic_skew)).collect();
        let total_w: f64 = weights.iter().sum();
        let domains: Vec<Vec<String>> = topics
            .ids()
            .map(|t| {
                (0..6)
                    .map(|i| format!("{}-{}{}.test", topics.name(t), word(&mut rng), i))
                    .collect()
            })
            .collect();
        DocGen {
            gen: CorpusGen { seed: self.seed },
            spec,
            world,
            topics,
            cities,
            weights,
            total_w,
            domains,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn generate_doc(
        &self,
        rng: &mut StdRng,
        id: DocId,
        topic: TopicId,
        city: Option<LocId>,
        spec: &CorpusSpec,
        topics: &Topics,
        world: &LocationOntology,
        domain_pool: &[String],
    ) -> Document {
        let terms = topics.terms(topic);
        // Subtopic angle: topical term slots draw from the subtopic's own
        // chunk with high probability, so subtopic identity is recoverable
        // from snippet vocabulary (what content profiles learn).
        let subtopic = rng.gen_range(0..Topics::SUBTOPICS);
        let sub_terms = topics.subtopic_terms(topic, subtopic);
        // A confuser topic bleeds a little vocabulary into this document.
        let confuser = TopicId(rng.gen_range(0..topics.len()) as u16);
        let confuser_terms = topics.terms(confuser);

        // Title: 3–6 topical/filler words, plus city name ~70% of the time
        // when localized.
        let mut title_words: Vec<String> = Vec::new();
        for _ in 0..rng.gen_range(3..=6) {
            if rng.gen_bool(0.75) {
                let pool = if rng.gen_bool(0.7) { sub_terms } else { terms };
                title_words.push(pool.choose(rng).expect("topic terms nonempty").clone());
            } else {
                title_words.push((*FILLER.choose(rng).expect("filler nonempty")).to_string());
            }
        }
        if let Some(c) = city {
            if rng.gen_bool(0.7) {
                title_words.push(world.name(c).to_string());
            }
        }
        let title = title_words.join(" ");

        // Body.
        let len = rng.gen_range(spec.body_len.0..=spec.body_len.1);
        let mut body_words: Vec<String> = Vec::with_capacity(len + 8);
        for _ in 0..len {
            let r: f64 = rng.gen();
            if r < spec.topical_density {
                let pool = if rng.gen_bool(0.7) { sub_terms } else { terms };
                body_words.push(pool.choose(rng).expect("nonempty").clone());
            } else if r < spec.topical_density + 0.08 {
                body_words.push(confuser_terms.choose(rng).expect("nonempty").clone());
            } else if r < spec.topical_density + 0.08 + 0.10 {
                // Connective stopwords make snippets read like prose and
                // exercise the analyzer's stopword path.
                body_words.push(
                    ["the", "of", "in", "and", "for", "with", "to"]
                        .choose(rng)
                        .expect("nonempty")
                        .to_string(),
                );
            } else {
                body_words.push((*FILLER.choose(rng).expect("nonempty")).to_string());
            }
        }
        if let Some(c) = city {
            // Mention the city several times, at random positions.
            let mentions = rng.gen_range(2..=4);
            for _ in 0..mentions {
                let pos = rng.gen_range(0..=body_words.len());
                body_words.insert(pos, world.name(c).to_string());
            }
            // Occasionally mention an ancestor (state or country).
            if rng.gen_bool(0.4) {
                let ancestors = world.ancestors(c);
                // ancestors = [city, state, country, region, world]
                if ancestors.len() >= 3 {
                    let anc = ancestors[rng.gen_range(1..3usize)];
                    let pos = rng.gen_range(0..=body_words.len());
                    body_words.insert(pos, world.name(anc).to_string());
                }
            }
        }
        let body = body_words.join(" ");

        let domain = domain_pool[rng.gen_range(0..domain_pool.len())].clone();
        let slug = format!("{}-{}", word(rng), id.0);
        let url = format!("http://{domain}/{slug}");

        Document { id, url, domain, title, body, topic, subtopic, city }
    }
}

/// Random-access corpus view: document `i` is a pure function of
/// `(seed, spec, world, i)`, generated from its own per-document RNG.
/// Two calls to [`DocGen::doc`] with the same index — from any thread,
/// in any order — produce identical documents, which is what makes
/// parallel segment building thread-count-invariant.
#[derive(Debug)]
pub struct DocGen<'w> {
    gen: CorpusGen,
    spec: CorpusSpec,
    world: &'w LocationOntology,
    topics: Topics,
    cities: Vec<LocId>,
    weights: Vec<f64>,
    total_w: f64,
    domains: Vec<Vec<String>>,
}

impl DocGen<'_> {
    /// Number of documents in the corpus (`spec.num_docs`).
    pub fn len(&self) -> usize {
        self.spec.num_docs
    }

    /// Is the corpus empty?
    pub fn is_empty(&self) -> bool {
        self.spec.num_docs == 0
    }

    /// The corpus shape.
    pub fn spec(&self) -> &CorpusSpec {
        &self.spec
    }

    /// Generate document `i` (0-based; `i < len()`).
    pub fn doc(&self, i: usize) -> Document {
        assert!(i < self.spec.num_docs, "doc index {i} out of range");
        let mut rng = StdRng::seed_from_u64(splitmix64(self.gen.seed ^ (i as u64)));
        let topic = sample_topic(&mut rng, &self.weights, self.total_w);
        let city = if rng.gen_bool(self.spec.localized_prob) {
            Some(self.cities[rng.gen_range(0..self.cities.len())])
        } else {
            None
        };
        self.gen.generate_doc(
            &mut rng,
            DocId(i as u32),
            topic,
            city,
            &self.spec,
            &self.topics,
            self.world,
            &self.domains[topic.index()],
        )
    }
}

/// SplitMix64 finalizer: decorrelates consecutive per-document seeds so
/// neighbouring documents don't share RNG streams.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Sample a topic index from the weight table.
fn sample_topic(rng: &mut StdRng, weights: &[f64], total: f64) -> TopicId {
    let mut x = rng.gen::<f64>() * total;
    for (k, w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return TopicId(k as u16);
        }
    }
    TopicId((weights.len() - 1) as u16)
}

/// A short random lowercase word for slugs/domains.
fn word(rng: &mut StdRng) -> String {
    const L: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    (0..rng.gen_range(4..8)).map(|_| L[rng.gen_range(0..L.len())] as char).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pws_geo::{WorldGen, WorldSpec};

    fn small_world() -> LocationOntology {
        WorldGen::new(1).generate(&WorldSpec::small())
    }

    #[test]
    fn deterministic_generation() {
        let w = small_world();
        let a = CorpusGen::new(5).generate(&CorpusSpec::small(), &w);
        let b = CorpusGen::new(5).generate(&CorpusSpec::small(), &w);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.docs.iter().zip(&b.docs) {
            assert_eq!(x.url, y.url);
            assert_eq!(x.body, y.body);
            assert_eq!(x.city, y.city);
        }
    }

    #[test]
    fn different_seed_differs() {
        let w = small_world();
        let a = CorpusGen::new(5).generate(&CorpusSpec::small(), &w);
        let b = CorpusGen::new(6).generate(&CorpusSpec::small(), &w);
        assert!(a.docs.iter().zip(&b.docs).any(|(x, y)| x.body != y.body));
    }

    #[test]
    fn ids_are_dense() {
        let w = small_world();
        let c = CorpusGen::new(5).generate(&CorpusSpec::small(), &w);
        for (i, d) in c.docs.iter().enumerate() {
            assert_eq!(d.id, DocId(i as u32));
        }
    }

    #[test]
    fn localized_fraction_near_spec() {
        let w = small_world();
        let spec = CorpusSpec { num_docs: 2000, ..CorpusSpec::small() };
        let c = CorpusGen::new(5).generate(&spec, &w);
        let f = c.localized_fraction();
        assert!((f - spec.localized_prob).abs() < 0.06, "fraction {f}");
    }

    #[test]
    fn localized_docs_mention_their_city() {
        let w = small_world();
        let c = CorpusGen::new(5).generate(&CorpusSpec::small(), &w);
        for d in c.docs.iter().filter(|d| d.city.is_some()) {
            let city_name = w.name(d.city.unwrap());
            assert!(
                d.full_text().contains(city_name),
                "doc {} does not mention {}",
                d.id.0,
                city_name
            );
        }
    }

    #[test]
    fn bodies_within_length_bounds() {
        let w = small_world();
        let spec = CorpusSpec::small();
        let c = CorpusGen::new(5).generate(&spec, &w);
        for d in &c.docs {
            let n = d.body.split_whitespace().count();
            // +4 mentions +1 ancestor max beyond the sampled body length.
            assert!(n >= spec.body_len.0 && n <= spec.body_len.1 + 5, "len {n}");
        }
    }

    #[test]
    fn urls_unique_and_well_formed() {
        let w = small_world();
        let c = CorpusGen::new(5).generate(&CorpusSpec::small(), &w);
        let mut urls = std::collections::HashSet::new();
        for d in &c.docs {
            assert!(d.url.starts_with("http://"));
            assert!(d.url.contains(&d.domain));
            assert!(urls.insert(d.url.clone()), "dup url {}", d.url);
        }
    }

    #[test]
    fn doc_gen_is_order_and_repeat_invariant() {
        let w = small_world();
        let g = CorpusGen::new(5).doc_gen(CorpusSpec::small(), &w);
        assert_eq!(g.len(), CorpusSpec::small().num_docs);
        // Out-of-order and repeated access produce identical documents.
        let d7 = g.doc(7);
        let d3 = g.doc(3);
        assert_eq!(g.doc(7), d7);
        assert_eq!(g.doc(3), d3);
        assert_eq!(d7.id, DocId(7));
        // A second generator with the same seed agrees doc-for-doc.
        let g2 = CorpusGen::new(5).doc_gen(CorpusSpec::small(), &w);
        for i in [0, 1, 42, 299] {
            assert_eq!(g.doc(i), g2.doc(i));
        }
        // A different seed differs.
        let g3 = CorpusGen::new(6).doc_gen(CorpusSpec::small(), &w);
        assert!((0..20).any(|i| g.doc(i).body != g3.doc(i).body));
    }

    #[test]
    fn doc_gen_docs_are_well_formed() {
        let w = small_world();
        let spec = CorpusSpec::small();
        let g = CorpusGen::new(5).doc_gen(spec.clone(), &w);
        let mut urls = std::collections::HashSet::new();
        for i in 0..g.len() {
            let d = g.doc(i);
            assert_eq!(d.id, DocId(i as u32));
            assert!(d.url.starts_with("http://"));
            assert!(urls.insert(d.url.clone()), "dup url {}", d.url);
            let n = d.body.split_whitespace().count();
            // Up to 4 city mentions + 1 ancestor mention, each of which
            // may be a two-word name.
            assert!(n >= spec.body_len.0 && n <= spec.body_len.1 + 10, "len {n}");
            if let Some(c) = d.city {
                assert!(d.full_text().contains(w.name(c)));
            }
        }
    }

    #[test]
    fn large_spec_is_million_docs() {
        let spec = CorpusSpec::large();
        assert!(spec.num_docs >= 1_000_000);
    }

    #[test]
    fn topic_skew_produces_nonuniform_distribution() {
        let w = small_world();
        let spec = CorpusSpec { num_docs: 3000, topic_skew: 1.2, ..CorpusSpec::small() };
        let c = CorpusGen::new(5).generate(&spec, &w);
        let first = c.by_topic(TopicId(0)).count();
        let last = c.by_topic(TopicId((spec.num_topics - 1) as u16)).count();
        assert!(first > last, "expected skew: {first} vs {last}");
    }
}
