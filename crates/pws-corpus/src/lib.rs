//! # pws-corpus — synthetic web corpus & query workload
//!
//! The paper evaluated on a live commercial search backend over the real
//! web; offline we substitute a *generated* corpus whose two relevant
//! properties are controllable:
//!
//! 1. **Topical structure** — documents are drawn from a fixed set of topics
//!    with distinct core vocabularies ([`vocab`]), so content concepts exist
//!    and are minable from snippets with a support threshold;
//! 2. **Geographic salting** — a controllable fraction of documents is tied
//!    to a city of the [`pws_geo`] ontology and mentions that city (and
//!    sometimes its ancestors) in title/body, so location concepts exist and
//!    correlate with document identity.
//!
//! Queries ([`query::QueryGen`]) are sampled from topic vocabularies, with a
//! controllable fraction of *location-sensitive* queries ("restaurant" typed
//! by a user who means "restaurant near me") — exactly the query class the
//! paper's location preferences target.
//!
//! Everything is deterministic given the seed.
//!
//! ```
//! use pws_corpus::{CorpusGen, CorpusSpec};
//! use pws_geo::{WorldGen, WorldSpec};
//!
//! let world = WorldGen::new(1).generate(&WorldSpec::small());
//! let corpus = CorpusGen::new(7).generate(&CorpusSpec::small(), &world);
//! assert!(!corpus.docs.is_empty());
//! assert!(corpus.docs.iter().any(|d| d.city.is_some()));
//! ```

pub mod doc;
pub mod gen;
pub mod query;
pub mod session;
pub mod vocab;

pub use doc::{Corpus, DocId, Document};
pub use gen::{CorpusGen, CorpusSpec};
pub use query::{Query, QueryGen, QueryId, QuerySpec};
pub use session::{generate_session, Refinement, SessionSpec, SessionStep};
pub use vocab::{TopicId, Topics};
