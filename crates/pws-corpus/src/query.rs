//! Query workload generation.
//!
//! Three query classes, mirroring the paper's analysis of which queries
//! benefit from which personalization dimension:
//!
//! * **Content queries** — topical terms only ("seafood buffet"). Different
//!   users mean different *topics of interest*; content personalization
//!   helps, location personalization is mostly irrelevant.
//! * **Location-sensitive queries** — topical terms with an implicit place
//!   intent ("restaurant", "hotel booking"): the user wants results about
//!   *their* preferred city even though no city appears in the query text.
//!   This is the class the paper's location preferences exist for.
//! * **Explicit-location queries** — the city name is typed into the query
//!   ("seafood port alden"). The baseline engine already handles these
//!   reasonably; personalization gains are smaller.

use crate::vocab::{TopicId, Topics};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Dense query identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QueryId(pub u32);

impl QueryId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Query class, part of the generated ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryClass {
    /// Pure topical query; location plays no role in its intent.
    Content,
    /// Topical query with implicit location intent (resolved per-user).
    LocationSensitive,
    /// The query text itself names a city (filled in per-issue by the
    /// simulator, since the city depends on the issuing user).
    ExplicitLocation,
}

/// One workload query template.
///
/// The template deliberately does *not* fix a city: for location-sensitive
/// and explicit-location classes the relevant city is the issuing user's
/// preferred city, so the same template means different things to different
/// users — the precondition for personalization to help at all.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Query {
    /// Dense id, equal to position in the workload.
    pub id: QueryId,
    /// The topical terms of the query (without any city name).
    pub text: String,
    /// Ground-truth topic the terms were drawn from.
    pub topic: TopicId,
    /// Ground-truth class.
    pub class: QueryClass,
}

/// Workload shape parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Number of query templates.
    pub num_queries: usize,
    /// Number of topics in play (must match the corpus spec).
    pub num_topics: usize,
    /// Terms per query (min, max).
    pub terms_per_query: (usize, usize),
    /// Fraction of queries that are location-sensitive.
    pub location_sensitive_frac: f64,
    /// Fraction of queries that carry an explicit city name.
    pub explicit_location_frac: f64,
}

impl QuerySpec {
    /// Default experimental workload: 120 templates (T1).
    pub fn default_workload() -> Self {
        QuerySpec {
            num_queries: 120,
            num_topics: 12,
            terms_per_query: (1, 3),
            location_sensitive_frac: 0.4,
            explicit_location_frac: 0.15,
        }
    }

    /// Small workload for tests.
    pub fn small() -> Self {
        QuerySpec {
            num_queries: 20,
            num_topics: 4,
            terms_per_query: (1, 2),
            location_sensitive_frac: 0.4,
            explicit_location_frac: 0.2,
        }
    }
}

/// Seeded workload generator.
#[derive(Debug)]
pub struct QueryGen {
    seed: u64,
}

impl QueryGen {
    /// Create a generator; same seed + spec yields the same workload.
    pub fn new(seed: u64) -> Self {
        QueryGen { seed }
    }

    /// Generate the workload.
    pub fn generate(&self, spec: &QuerySpec) -> Vec<Query> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let topics = Topics::first(spec.num_topics);
        let mut out = Vec::with_capacity(spec.num_queries);
        for i in 0..spec.num_queries {
            let topic = TopicId(rng.gen_range(0..topics.len()) as u16);
            let n = rng.gen_range(spec.terms_per_query.0..=spec.terms_per_query.1).max(1);
            let mut terms: Vec<String> = Vec::with_capacity(n);
            // Sample without replacement so "seafood seafood" never happens.
            let mut pool: Vec<&String> = topics.terms(topic).iter().collect();
            pool.shuffle(&mut rng);
            for t in pool.into_iter().take(n) {
                terms.push(t.clone());
            }
            let r: f64 = rng.gen();
            let class = if r < spec.explicit_location_frac {
                QueryClass::ExplicitLocation
            } else if r < spec.explicit_location_frac + spec.location_sensitive_frac {
                QueryClass::LocationSensitive
            } else {
                QueryClass::Content
            };
            out.push(Query { id: QueryId(i as u32), text: terms.join(" "), topic, class });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = QueryGen::new(3).generate(&QuerySpec::small());
        let b = QueryGen::new(3).generate(&QuerySpec::small());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.text, y.text);
            assert_eq!(x.class, y.class);
        }
    }

    #[test]
    fn ids_dense_and_counts_match() {
        let qs = QueryGen::new(3).generate(&QuerySpec::small());
        assert_eq!(qs.len(), QuerySpec::small().num_queries);
        for (i, q) in qs.iter().enumerate() {
            assert_eq!(q.id, QueryId(i as u32));
        }
    }

    #[test]
    fn no_duplicate_terms_within_query() {
        let qs = QueryGen::new(9).generate(&QuerySpec::default_workload());
        for q in &qs {
            let mut terms: Vec<&str> = q.text.split(' ').collect();
            let n = terms.len();
            terms.sort();
            terms.dedup();
            assert_eq!(terms.len(), n, "dup terms in {:?}", q.text);
        }
    }

    #[test]
    fn class_mix_roughly_matches_spec() {
        let spec = QuerySpec { num_queries: 2000, ..QuerySpec::default_workload() };
        let qs = QueryGen::new(1).generate(&spec);
        let loc = qs.iter().filter(|q| q.class == QueryClass::LocationSensitive).count() as f64
            / qs.len() as f64;
        let exp = qs.iter().filter(|q| q.class == QueryClass::ExplicitLocation).count() as f64
            / qs.len() as f64;
        assert!((loc - spec.location_sensitive_frac).abs() < 0.05, "loc {loc}");
        assert!((exp - spec.explicit_location_frac).abs() < 0.04, "exp {exp}");
    }

    #[test]
    fn terms_come_from_declared_topic() {
        let spec = QuerySpec::small();
        let topics = Topics::first(spec.num_topics);
        let qs = QueryGen::new(4).generate(&spec);
        for q in &qs {
            for term in q.text.split(' ') {
                assert!(
                    topics.terms(q.topic).iter().any(|t| t == term),
                    "term {term} not in topic {}",
                    topics.name(q.topic)
                );
            }
        }
    }
}
