//! Topic vocabularies.
//!
//! Twelve themed topics with real-English core vocabularies. Real words (as
//! opposed to generated syllable soup) matter here: the analyzer's stemming
//! and stopword handling then behave as they would on real snippets, and the
//! extracted content concepts are interpretable in examples and tables.

use serde::{Deserialize, Serialize};

/// Dense topic identifier, `0..Topics::len()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TopicId(pub u16);

impl TopicId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One topic theme: a label plus its core vocabulary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topic {
    /// Human-readable label ("dining").
    pub name: String,
    /// Core content terms characteristic of the topic.
    pub terms: Vec<String>,
}

/// The fixed topic inventory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topics {
    topics: Vec<Topic>,
}

/// `(label, core terms)` for each built-in theme.
const THEMES: &[(&str, &[&str])] = &[
    (
        "dining",
        &["restaurant", "seafood", "buffet", "lobster", "steak", "sushi", "menu", "dinner",
          "brunch", "cuisine", "chef", "bistro", "pizza", "noodle", "dessert", "vegetarian",
          "grill", "tapas", "reservation", "michelin", "bakery", "ramen", "taco", "curry"],
    ),
    (
        "hotels",
        &["hotel", "resort", "suite", "booking", "hostel", "amenities", "checkin", "lobby",
          "motel", "spa", "concierge", "oceanview", "accommodation", "nightly", "vacancy",
          "penthouse", "bedding", "housekeeping", "minibar", "lodging", "inn", "villa"],
    ),
    (
        "phones",
        &["smartphone", "android", "battery", "screen", "camera", "megapixel", "charger",
          "unlocked", "warranty", "firmware", "bluetooth", "processor", "storage", "sim",
          "touchscreen", "handset", "earbuds", "wireless", "gadget", "specs", "tradein"],
    ),
    (
        "sports",
        &["football", "league", "playoff", "championship", "stadium", "coach", "quarterback",
          "basketball", "tournament", "score", "athlete", "training", "marathon", "soccer",
          "hockey", "baseball", "referee", "roster", "season", "ticket", "arena", "olympics"],
    ),
    (
        "health",
        &["clinic", "doctor", "symptom", "treatment", "vaccine", "pharmacy", "nutrition",
          "therapy", "dentist", "wellness", "diagnosis", "cardiology", "prescription",
          "surgery", "pediatric", "allergy", "fitness", "yoga", "immunity", "hospital"],
    ),
    (
        "realestate",
        &["apartment", "mortgage", "rental", "condo", "listing", "realtor", "downpayment",
          "tenant", "lease", "bedroom", "townhouse", "foreclosure", "appraisal", "escrow",
          "landlord", "duplex", "zoning", "renovation", "bungalow", "property", "acre"],
    ),
    (
        "education",
        &["university", "tuition", "scholarship", "campus", "professor", "semester",
          "admission", "curriculum", "diploma", "lecture", "graduate", "faculty", "exam",
          "kindergarten", "enrollment", "textbook", "dormitory", "thesis", "academy"],
    ),
    (
        "music",
        &["concert", "album", "guitar", "orchestra", "festival", "vinyl", "playlist",
          "acoustic", "drummer", "symphony", "lyrics", "jazz", "piano", "soundtrack",
          "chorus", "violin", "opera", "karaoke", "remix", "studio", "band", "melody"],
    ),
    (
        "cars",
        &["sedan", "dealership", "hybrid", "mileage", "horsepower", "transmission",
          "convertible", "diesel", "coupe", "towing", "sunroof", "odometer", "turbo",
          "brakes", "chassis", "airbag", "electric", "charging", "warranty", "suv"],
    ),
    (
        "finance",
        &["investment", "portfolio", "dividend", "savings", "banking", "credit", "loan",
          "interest", "retirement", "equity", "brokerage", "insurance", "budget", "audit",
          "taxes", "refund", "pension", "stocks", "bonds", "hedge", "deposit", "mortgage"],
    ),
    (
        "weather",
        &["forecast", "rainfall", "humidity", "temperature", "blizzard", "hurricane",
          "sunshine", "thunderstorm", "drought", "snowfall", "windchill", "barometer",
          "climate", "frost", "heatwave", "monsoon", "overcast", "precipitation", "radar"],
    ),
    (
        "shopping",
        &["discount", "coupon", "outlet", "boutique", "clearance", "checkout", "retailer",
          "bargain", "wholesale", "refund", "catalog", "storefront", "membership",
          "giftcard", "shipping", "marketplace", "thrift", "apparel", "jewelry", "mall"],
    ),
];

/// Generic filler vocabulary mixed into every document regardless of topic.
pub const FILLER: &[&str] = &[
    "best", "guide", "review", "local", "top", "near", "popular", "cheap", "quality",
    "service", "open", "hours", "price", "free", "official", "online", "new", "find",
    "directory", "list", "information", "visit", "area", "great", "people", "place",
    "today", "home", "world", "read", "full", "daily", "weekly", "news",
];

impl Default for Topics {
    fn default() -> Self {
        Self::builtin()
    }
}

impl Topics {
    /// The full 12-topic built-in inventory.
    pub fn builtin() -> Self {
        Topics {
            topics: THEMES
                .iter()
                .map(|(name, terms)| Topic {
                    name: (*name).to_string(),
                    terms: terms.iter().map(|t| (*t).to_string()).collect(),
                })
                .collect(),
        }
    }

    /// The first `k` built-in topics (for small tests).
    pub fn first(k: usize) -> Self {
        let mut t = Self::builtin();
        t.topics.truncate(k.max(1));
        t
    }

    /// Number of topics.
    pub fn len(&self) -> usize {
        self.topics.len()
    }

    /// Always false — at least one topic exists.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterate topic ids.
    pub fn ids(&self) -> impl Iterator<Item = TopicId> {
        (0..self.topics.len() as u16).map(TopicId)
    }

    /// Borrow one topic.
    pub fn topic(&self, id: TopicId) -> &Topic {
        &self.topics[id.index()]
    }

    /// Label of a topic.
    pub fn name(&self, id: TopicId) -> &str {
        &self.topics[id.index()].name
    }

    /// Core terms of a topic.
    pub fn terms(&self, id: TopicId) -> &[String] {
        &self.topics[id.index()].terms
    }

    /// Number of subtopics every topic is partitioned into.
    ///
    /// Subtopics model *within-topic* user taste (sushi vs. steak inside
    /// "dining") — the signal content personalization learns. Each
    /// subtopic owns a contiguous chunk of the topic's term list.
    pub const SUBTOPICS: u8 = 3;

    /// The terms owned by subtopic `s` of `id` (`s < SUBTOPICS`).
    ///
    /// Chunks are contiguous, near-equal slices of the topic's term list;
    /// every term belongs to exactly one subtopic.
    pub fn subtopic_terms(&self, id: TopicId, s: u8) -> &[String] {
        assert!(s < Self::SUBTOPICS, "subtopic {s} out of range");
        let terms = self.terms(id);
        let n = terms.len();
        let k = Self::SUBTOPICS as usize;
        let per = n.div_ceil(k);
        let start = (s as usize * per).min(n);
        let end = ((s as usize + 1) * per).min(n);
        &terms[start..end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_has_twelve_topics() {
        assert_eq!(Topics::builtin().len(), 12);
    }

    #[test]
    fn every_topic_has_enough_terms() {
        let t = Topics::builtin();
        for id in t.ids() {
            assert!(t.terms(id).len() >= 15, "topic {} too small", t.name(id));
        }
    }

    #[test]
    fn topic_names_unique() {
        let t = Topics::builtin();
        let mut names: Vec<&str> = t.ids().map(|i| t.name(i)).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), t.len());
    }

    #[test]
    fn terms_are_lowercase_single_words() {
        let t = Topics::builtin();
        for id in t.ids() {
            for term in t.terms(id) {
                assert!(!term.contains(' '), "{term} is multiword");
                assert_eq!(term, &term.to_lowercase());
            }
        }
    }

    #[test]
    fn first_truncates_but_never_empties() {
        assert_eq!(Topics::first(3).len(), 3);
        assert_eq!(Topics::first(0).len(), 1);
        assert_eq!(Topics::first(100).len(), 12);
    }

    #[test]
    fn subtopics_partition_topic_terms() {
        let t = Topics::builtin();
        for id in t.ids() {
            let mut all: Vec<&String> = Vec::new();
            for s in 0..Topics::SUBTOPICS {
                all.extend(t.subtopic_terms(id, s));
            }
            assert_eq!(all.len(), t.terms(id).len(), "topic {}", t.name(id));
            for (a, b) in all.iter().zip(t.terms(id)) {
                assert_eq!(*a, b);
            }
        }
    }

    #[test]
    fn every_subtopic_nonempty() {
        let t = Topics::builtin();
        for id in t.ids() {
            for s in 0..Topics::SUBTOPICS {
                assert!(!t.subtopic_terms(id, s).is_empty());
            }
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_subtopic_panics() {
        let t = Topics::builtin();
        let _ = t.subtopic_terms(TopicId(0), Topics::SUBTOPICS);
    }

    #[test]
    fn filler_terms_are_not_stopwords() {
        for w in FILLER {
            assert!(!pws_text::is_stopword(w), "{w} is a stopword");
        }
    }
}
