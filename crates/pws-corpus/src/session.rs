//! Query sessions: refinement chains.
//!
//! Users rarely issue one isolated query — they *refine*: specialize
//! ("restaurant" → "seafood restaurant"), generalize back, or switch to a
//! peer term. This module generates session plans — short chains of
//! related query texts derived from a workload template — which the click
//! simulator can replay to exercise short-term (within-session) behaviour.
//!
//! Refinement operators over the template's topic vocabulary:
//!
//! * **Specialize** — append a topic term not yet in the query;
//! * **Generalize** — drop the last appended term;
//! * **Peer shift** — replace the last term with a sibling topic term.

use crate::query::Query;
use crate::vocab::Topics;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How one step of a session relates to the previous one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Refinement {
    /// The session's opening query (the template text).
    Initial,
    /// A term was appended.
    Specialize,
    /// The last appended term was removed.
    Generalize,
    /// The trailing term was swapped for a peer.
    PeerShift,
}

/// One step of a session plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionStep {
    /// The query text to issue.
    pub text: String,
    /// How this step was derived.
    pub refinement: Refinement,
}

/// Session-generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionSpec {
    /// Steps per session (min, max), ≥ 1.
    pub steps: (usize, usize),
    /// Probability that a non-initial step specializes (vs generalize /
    /// peer-shift splitting the rest).
    pub specialize_prob: f64,
}

impl Default for SessionSpec {
    fn default() -> Self {
        SessionSpec { steps: (2, 5), specialize_prob: 0.6 }
    }
}

/// Generate a refinement session from a workload template.
///
/// Deterministic in `(query, seed)`.
pub fn generate_session(
    query: &Query,
    topics: &Topics,
    spec: &SessionSpec,
    seed: u64,
) -> Vec<SessionStep> {
    let mut rng = StdRng::seed_from_u64(seed ^ (u64::from(query.id.0) << 20));
    let n = rng.gen_range(spec.steps.0.max(1)..=spec.steps.1.max(spec.steps.0.max(1)));

    let base_terms: Vec<String> = query.text.split(' ').map(|s| s.to_string()).collect();
    let mut appended: Vec<String> = Vec::new();
    let mut steps = vec![SessionStep { text: query.text.clone(), refinement: Refinement::Initial }];

    let vocab = topics.terms(query.topic);
    while steps.len() < n {
        let current_terms = || -> Vec<String> {
            base_terms.iter().cloned().chain(appended.iter().cloned()).collect()
        };
        let r: f64 = rng.gen();
        let refinement = if r < spec.specialize_prob {
            // Specialize: append a fresh topic term.
            let pool: Vec<&String> =
                vocab.iter().filter(|t| !current_terms().contains(t)).collect();
            match pool.choose(&mut rng) {
                Some(t) => {
                    appended.push((*t).clone());
                    Refinement::Specialize
                }
                None => break, // vocabulary exhausted
            }
        } else if r < spec.specialize_prob + (1.0 - spec.specialize_prob) / 2.0 {
            // Generalize: drop the last appended term (if any).
            if appended.pop().is_some() {
                Refinement::Generalize
            } else {
                continue; // nothing to drop; resample the operator
            }
        } else {
            // Peer shift: replace the trailing appended term (or append if
            // none) with a different topic term.
            let pool: Vec<&String> =
                vocab.iter().filter(|t| !current_terms().contains(t)).collect();
            match pool.choose(&mut rng) {
                Some(t) => {
                    appended.pop();
                    appended.push((*t).clone());
                    Refinement::PeerShift
                }
                None => break,
            }
        };
        let text = base_terms
            .iter()
            .cloned()
            .chain(appended.iter().cloned())
            .collect::<Vec<_>>()
            .join(" ");
        // Never emit the same text twice in a row.
        if steps.last().map(|s| s.text.as_str()) == Some(text.as_str()) {
            continue;
        }
        steps.push(SessionStep { text, refinement });
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{QueryClass, QueryId};
    use crate::vocab::TopicId;

    fn query() -> Query {
        Query {
            id: QueryId(3),
            text: "restaurant".into(),
            topic: TopicId(0),
            class: QueryClass::Content,
        }
    }

    fn topics() -> Topics {
        Topics::builtin()
    }

    #[test]
    fn first_step_is_the_template() {
        let s = generate_session(&query(), &topics(), &SessionSpec::default(), 1);
        assert_eq!(s[0].text, "restaurant");
        assert_eq!(s[0].refinement, Refinement::Initial);
    }

    #[test]
    fn deterministic() {
        let a = generate_session(&query(), &topics(), &SessionSpec::default(), 7);
        let b = generate_session(&query(), &topics(), &SessionSpec::default(), 7);
        assert_eq!(a, b);
        let c = generate_session(&query(), &topics(), &SessionSpec::default(), 8);
        // Different seeds usually differ (not guaranteed, but for these
        // params the chains diverge).
        assert!(a != c || a.len() == 1);
    }

    #[test]
    fn lengths_within_spec() {
        let spec = SessionSpec { steps: (3, 6), specialize_prob: 0.7 };
        for seed in 0..30 {
            let s = generate_session(&query(), &topics(), &spec, seed);
            assert!(!s.is_empty() && s.len() <= 6, "len {}", s.len());
        }
    }

    #[test]
    fn specialize_grows_generalize_shrinks() {
        let spec = SessionSpec { steps: (6, 6), specialize_prob: 0.6 };
        for seed in 0..20 {
            let s = generate_session(&query(), &topics(), &spec, seed);
            for w in s.windows(2) {
                let n0 = w[0].text.split(' ').count();
                let n1 = w[1].text.split(' ').count();
                match w[1].refinement {
                    Refinement::Specialize => assert_eq!(n1, n0 + 1, "{w:?}"),
                    Refinement::Generalize => assert_eq!(n1 + 1, n0, "{w:?}"),
                    Refinement::PeerShift => assert!(n1 == n0 || n1 == n0 + 1, "{w:?}"),
                    Refinement::Initial => unreachable!("initial mid-session"),
                }
            }
        }
    }

    #[test]
    fn no_consecutive_duplicates_and_terms_from_topic() {
        let spec = SessionSpec { steps: (5, 8), specialize_prob: 0.5 };
        let t = topics();
        for seed in 0..20 {
            let s = generate_session(&query(), &t, &spec, seed);
            for w in s.windows(2) {
                assert_ne!(w[0].text, w[1].text);
            }
            for step in &s {
                for term in step.text.split(' ') {
                    assert!(
                        t.terms(TopicId(0)).iter().any(|x| x == term),
                        "{term} not in topic"
                    );
                }
            }
        }
    }

    #[test]
    fn all_queries_start_with_base_terms() {
        let spec = SessionSpec::default();
        for seed in 0..10 {
            let s = generate_session(&query(), &topics(), &spec, seed);
            for step in &s {
                assert!(step.text.starts_with("restaurant"), "{}", step.text);
            }
        }
    }
}
