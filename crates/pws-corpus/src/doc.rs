//! Document and corpus types.

use crate::vocab::TopicId;
use pws_geo::LocId;
use serde::{Deserialize, Serialize};

/// Dense document identifier, `0..corpus.len()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DocId(pub u32);

impl DocId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One synthetic web document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Document {
    /// Dense id, equal to the document's position in [`Corpus::docs`].
    pub id: DocId,
    /// Synthetic URL, unique per document.
    pub url: String,
    /// Registrable domain of `url` (several docs share a domain).
    pub domain: String,
    /// Title: a few topical terms, plus the city name when localized.
    pub title: String,
    /// Body text (~60–160 tokens).
    pub body: String,
    /// Ground-truth topic this document was generated from.
    pub topic: TopicId,
    /// Ground-truth subtopic within `topic` (`< Topics::SUBTOPICS`) —
    /// the within-topic angle content personalization discriminates on.
    pub subtopic: u8,
    /// Ground-truth city when the document is location-specific.
    pub city: Option<LocId>,
}

impl Document {
    /// Title and body concatenated — what gets indexed.
    pub fn full_text(&self) -> String {
        format!("{} {}", self.title, self.body)
    }
}

/// A generated corpus plus the provenance needed by the evaluation harness.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Corpus {
    /// All documents; `docs[i].id == DocId(i)`.
    pub docs: Vec<Document>,
    /// Seed used for generation (recorded for reproducibility).
    pub seed: u64,
}

impl Corpus {
    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when the corpus has no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Borrow a document by id.
    pub fn doc(&self, id: DocId) -> &Document {
        &self.docs[id.index()]
    }

    /// Documents of a given topic.
    pub fn by_topic(&self, topic: TopicId) -> impl Iterator<Item = &Document> {
        self.docs.iter().filter(move |d| d.topic == topic)
    }

    /// Documents localized to a given city.
    pub fn by_city(&self, city: LocId) -> impl Iterator<Item = &Document> {
        self.docs.iter().filter(move |d| d.city == Some(city))
    }

    /// Fraction of documents that are location-specific.
    pub fn localized_fraction(&self) -> f64 {
        if self.docs.is_empty() {
            return 0.0;
        }
        self.docs.iter().filter(|d| d.city.is_some()).count() as f64 / self.docs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(id: u32, topic: u16, city: Option<u32>) -> Document {
        Document {
            id: DocId(id),
            url: format!("http://example-{id}.test/page"),
            domain: format!("example-{id}.test"),
            title: "title words".into(),
            body: "body words here".into(),
            topic: TopicId(topic),
            subtopic: 0,
            city: city.map(LocId),
        }
    }

    #[test]
    fn full_text_concatenates() {
        let d = doc(0, 0, None);
        assert_eq!(d.full_text(), "title words body words here");
    }

    #[test]
    fn corpus_accessors() {
        let c = Corpus { docs: vec![doc(0, 0, None), doc(1, 1, Some(9)), doc(2, 1, None)], seed: 0 };
        assert_eq!(c.len(), 3);
        assert_eq!(c.doc(DocId(1)).topic, TopicId(1));
        assert_eq!(c.by_topic(TopicId(1)).count(), 2);
        assert_eq!(c.by_city(LocId(9)).count(), 1);
        assert!((c.localized_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_corpus_fraction_is_zero() {
        let c = Corpus { docs: vec![], seed: 0 };
        assert!(c.is_empty());
        assert_eq!(c.localized_fraction(), 0.0);
    }
}
