//! Property tests for the text substrate: invariants that must hold for
//! *any* input, not just the unit-test fixtures.

use proptest::prelude::*;
use pws_text::{bigrams, is_stopword, ngrams, porter_stem, tokenize, Analyzer, Interner};

proptest! {
    /// The tokenizer never produces empty tokens, never produces tokens
    /// containing separators, and always lowercases.
    #[test]
    fn tokenizer_output_is_clean(input in ".{0,200}") {
        for tok in tokenize(&input) {
            prop_assert!(!tok.is_empty());
            prop_assert!(!tok.contains(char::is_whitespace));
            prop_assert_eq!(tok.clone(), tok.to_lowercase());
        }
    }

    /// Tokenization is idempotent under re-joining: tokenizing the joined
    /// tokens yields the same tokens (tokens contain no separators).
    #[test]
    fn tokenize_rejoin_fixpoint(input in "[a-zA-Z0-9 .,;!?']{0,120}") {
        let once = tokenize(&input);
        let twice = tokenize(&once.join(" "));
        prop_assert_eq!(once, twice);
    }

    /// The stemmer never panics, never returns an empty string for
    /// non-empty lowercase ASCII words, and never *grows* a pure ASCII
    /// word by more than the 'e' restorations allow.
    #[test]
    fn stemmer_is_total_and_bounded(word in "[a-z]{1,30}") {
        let stem = porter_stem(&word);
        prop_assert!(!stem.is_empty());
        prop_assert!(stem.len() <= word.len() + 1);
    }

    /// The analyzer's output passes its own filters.
    #[test]
    fn analyzer_respects_its_filters(input in ".{0,200}") {
        let a = Analyzer::default();
        for tok in a.analyze(&input) {
            prop_assert!(tok.len() >= a.min_token_len);
            prop_assert!(tok.len() <= a.max_token_len + 1, "stem may add 'e'");
            // Stopwords are defined on surface forms; stemmed output may
            // coincide with a stopword ("doing" → "do"), so we only check
            // that *unstemmmed* verbatim analysis drops them.
        }
        let v = Analyzer { remove_stopwords: true, stem: false, min_token_len: 1, max_token_len: 60 };
        for tok in v.analyze(&input) {
            prop_assert!(!is_stopword(&tok), "{tok} is a stopword");
        }
    }

    /// n-gram counts: |ngrams(t, n)| = max(0, len - n + 1) for n ≥ 1.
    #[test]
    fn ngram_counts(tokens in proptest::collection::vec("[a-z]{1,8}", 0..20), n in 1usize..5) {
        let grams = ngrams(&tokens, n);
        let expected = if tokens.len() >= n { tokens.len() - n + 1 } else { 0 };
        prop_assert_eq!(grams.len(), expected);
        for g in &grams {
            prop_assert_eq!(g.split(' ').count(), n);
        }
    }

    /// Every bigram's parts are adjacent tokens of the input.
    #[test]
    fn bigram_parts_are_adjacent(tokens in proptest::collection::vec("[a-z]{1,8}", 2..15)) {
        for (i, bg) in bigrams(&tokens).iter().enumerate() {
            let mut parts = bg.split(' ');
            prop_assert_eq!(parts.next().unwrap(), tokens[i].as_str());
            prop_assert_eq!(parts.next().unwrap(), tokens[i + 1].as_str());
        }
    }

    /// Interner: intern/resolve is a bijection over the session.
    #[test]
    fn interner_bijection(words in proptest::collection::vec("[a-z]{1,10}", 0..50)) {
        let mut it = Interner::new();
        let syms: Vec<_> = words.iter().map(|w| it.intern(w)).collect();
        for (w, s) in words.iter().zip(&syms) {
            prop_assert_eq!(it.resolve(*s), w.as_str());
            prop_assert_eq!(it.get(w), Some(*s));
        }
        // Distinct strings get distinct symbols.
        let distinct: std::collections::HashSet<&String> = words.iter().collect();
        let distinct_syms: std::collections::HashSet<_> = syms.iter().collect();
        prop_assert_eq!(distinct.len(), distinct_syms.len());
    }
}
