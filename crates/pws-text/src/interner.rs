//! A compact string interner.
//!
//! Vocabulary sizes in the synthetic corpus run to the tens of thousands;
//! interning terms once and passing `u32` symbols through the index and the
//! concept pipeline avoids repeated hashing of strings on the hot path.

use std::collections::HashMap;

/// Interned string id. `Sym(u32)` — small enough to pack into postings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

impl Sym {
    /// The raw index of this symbol in the interner's arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Bidirectional string ↔ symbol mapping.
///
/// Symbols are dense (0..len) and stable for the interner's lifetime.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: HashMap<String, Sym>,
    arena: Vec<String>,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an interner with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Interner { map: HashMap::with_capacity(cap), arena: Vec::with_capacity(cap) }
    }

    /// Intern `s`, returning its (possibly pre-existing) symbol.
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Sym(u32::try_from(self.arena.len()).expect("interner overflow: >4B symbols"));
        self.arena.push(s.to_string());
        self.map.insert(s.to_string(), sym);
        sym
    }

    /// Look up an existing symbol without interning.
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.map.get(s).copied()
    }

    /// Resolve a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this interner.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.arena[sym.index()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// Iterate `(Sym, &str)` pairs in symbol order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.arena.iter().enumerate().map(|(i, s)| (Sym(i as u32), s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut it = Interner::new();
        let a = it.intern("seafood");
        let b = it.intern("seafood");
        assert_eq!(a, b);
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn symbols_are_dense_and_ordered() {
        let mut it = Interner::new();
        let a = it.intern("a");
        let b = it.intern("b");
        let c = it.intern("c");
        assert_eq!((a.0, b.0, c.0), (0, 1, 2));
    }

    #[test]
    fn resolve_round_trips() {
        let mut it = Interner::new();
        let words = ["x", "yy", "zzz", "x"];
        let syms: Vec<Sym> = words.iter().map(|w| it.intern(w)).collect();
        for (w, s) in words.iter().zip(&syms) {
            assert_eq!(it.resolve(*s), *w);
        }
        assert_eq!(it.len(), 3);
    }

    #[test]
    fn get_does_not_intern() {
        let mut it = Interner::new();
        assert!(it.get("missing").is_none());
        it.intern("present");
        assert!(it.get("present").is_some());
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn iter_yields_in_symbol_order() {
        let mut it = Interner::new();
        it.intern("first");
        it.intern("second");
        let all: Vec<(Sym, &str)> = it.iter().collect();
        assert_eq!(all, vec![(Sym(0), "first"), (Sym(1), "second")]);
    }

    #[test]
    #[should_panic]
    fn resolve_unknown_panics() {
        let it = Interner::new();
        let _ = it.resolve(Sym(0));
    }
}
