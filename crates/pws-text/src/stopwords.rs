//! English stopword list.
//!
//! Derived from the classic SMART/Snowball lists, trimmed to terms that
//! actually occur in web queries and snippets. Lookup is a binary search
//! over a sorted static table — no allocation, no lazy statics.

/// Sorted list of stopwords. **Must stay sorted**: `is_stopword` binary
/// searches it (verified by a unit test).
static STOPWORDS: &[&str] = &[
    "a", "about", "above", "after", "again", "against", "all", "am", "an", "and", "any", "are",
    "aren't", "as", "at", "be", "because", "been", "before", "being", "below", "between", "both",
    "but", "by", "can", "cannot", "could", "couldn't", "did", "didn't", "do", "does", "doesn't",
    "doing", "don't", "down", "during", "each", "few", "for", "from", "further", "had", "hadn't",
    "has", "hasn't", "have", "haven't", "having", "he", "he'd", "he'll", "he's", "her", "here",
    "here's", "hers", "herself", "him", "himself", "his", "how", "how's", "i", "i'd", "i'll",
    "i'm", "i've", "if", "in", "into", "is", "isn't", "it", "it's", "its", "itself", "let's",
    "me", "more", "most", "mustn't", "my", "myself", "no", "nor", "not", "of", "off", "on",
    "once", "only", "or", "other", "ought", "our", "ours", "ourselves", "out", "over", "own",
    "same", "shan't", "she", "she'd", "she'll", "she's", "should", "shouldn't", "so", "some",
    "such", "than", "that", "that's", "the", "their", "theirs", "them", "themselves", "then",
    "there", "there's", "these", "they", "they'd", "they'll", "they're", "they've", "this",
    "those", "through", "to", "too", "under", "until", "up", "very", "was", "wasn't", "we",
    "we'd", "we'll", "we're", "we've", "were", "weren't", "what", "what's", "when", "when's",
    "where", "where's", "which", "while", "who", "who's", "whom", "why", "why's", "with",
    "won't", "would", "wouldn't", "you", "you'd", "you'll", "you're", "you've", "your", "yours",
    "yourself", "yourselves",
];

/// Is `word` (already lowercased) an English stopword?
///
/// ```
/// use pws_text::is_stopword;
/// assert!(is_stopword("the"));
/// assert!(is_stopword("don't"));
/// assert!(!is_stopword("seafood"));
/// ```
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

/// Number of stopwords in the built-in list (exposed for diagnostics).
pub fn stopword_count() -> usize {
    STOPWORDS.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_sorted_and_deduped() {
        for w in STOPWORDS.windows(2) {
            assert!(w[0] < w[1], "{} !< {}", w[0], w[1]);
        }
    }

    #[test]
    fn known_members() {
        for w in ["a", "the", "of", "in", "with", "yourselves"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn known_non_members() {
        for w in ["restaurant", "pittsburgh", "hotel", "z", ""] {
            assert!(!is_stopword(w), "{w} should not be a stopword");
        }
    }

    #[test]
    fn case_sensitive_by_contract() {
        // The contract is lowercase input; uppercase is not matched.
        assert!(!is_stopword("The"));
    }
}
