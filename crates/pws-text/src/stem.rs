//! Porter stemming algorithm (M.F. Porter, 1980), implemented from the
//! published description.
//!
//! The stemmer conflates morphological variants ("relevance" / "relevant",
//! "restaurants" / "restaurant") so that content-concept support counting in
//! `pws-concepts` is not fragmented across surface forms.
//!
//! Only ASCII lowercase words are stemmed; anything containing non-ASCII
//! bytes is returned unchanged (the tokenizer already lowercases).

/// Stem a single lowercase word.
///
/// ```
/// use pws_text::porter_stem;
/// assert_eq!(porter_stem("caresses"), "caress");
/// assert_eq!(porter_stem("ponies"), "poni");
/// assert_eq!(porter_stem("relational"), "relat");
/// assert_eq!(porter_stem("restaurants"), "restaur");
/// ```
pub fn porter_stem(word: &str) -> String {
    if !word.is_ascii() || word.len() <= 2 {
        return word.to_string();
    }
    let mut b: Vec<u8> = word.bytes().collect();
    // Words with digits (model numbers like "n73") are left untouched:
    // stemming them would destroy identity without linguistic benefit.
    if b.iter().any(|c| c.is_ascii_digit()) {
        return word.to_string();
    }
    step1a(&mut b);
    step1b(&mut b);
    step1c(&mut b);
    step2(&mut b);
    step3(&mut b);
    step4(&mut b);
    step5a(&mut b);
    step5b(&mut b);
    String::from_utf8(b).expect("stemmer operates on ASCII")
}

/// Is `b[i]` a consonant, per Porter's definition ('y' is a consonant when
/// it heads the word or follows a vowel-position consonant)?
fn is_cons(b: &[u8], i: usize) -> bool {
    match b[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => {
            if i == 0 {
                true
            } else {
                !is_cons(b, i - 1)
            }
        }
        _ => true,
    }
}

/// Porter's measure m of the prefix b[..len]: the number of VC sequences.
fn measure(b: &[u8], len: usize) -> usize {
    let mut m = 0;
    let mut i = 0;
    // Skip initial consonants.
    while i < len && is_cons(b, i) {
        i += 1;
    }
    loop {
        // Skip vowels.
        while i < len && !is_cons(b, i) {
            i += 1;
        }
        if i >= len {
            return m;
        }
        // Skip consonants — that completes one VC.
        while i < len && is_cons(b, i) {
            i += 1;
        }
        m += 1;
        if i >= len {
            return m;
        }
    }
}

fn has_vowel(b: &[u8], len: usize) -> bool {
    (0..len).any(|i| !is_cons(b, i))
}

/// Does the prefix of length `len` end with a double consonant?
fn ends_double_cons(b: &[u8], len: usize) -> bool {
    len >= 2 && b[len - 1] == b[len - 2] && is_cons(b, len - 1)
}

/// cvc test at prefix length `len`, where the final c is not w, x, or y.
fn ends_cvc(b: &[u8], len: usize) -> bool {
    if len < 3 {
        return false;
    }
    let (i, j, k) = (len - 3, len - 2, len - 1);
    is_cons(b, i)
        && !is_cons(b, j)
        && is_cons(b, k)
        && !matches!(b[k], b'w' | b'x' | b'y')
}

fn ends_with(b: &[u8], suf: &[u8]) -> bool {
    b.len() >= suf.len() && &b[b.len() - suf.len()..] == suf
}

/// If the word ends with `suf` and the stem measure condition `cond(m)`
/// holds, replace the suffix with `rep` and return true.
fn replace_if(b: &mut Vec<u8>, suf: &[u8], rep: &[u8], cond: impl Fn(usize) -> bool) -> bool {
    if ends_with(b, suf) {
        let stem_len = b.len() - suf.len();
        if cond(measure(b, stem_len)) {
            b.truncate(stem_len);
            b.extend_from_slice(rep);
            return true;
        }
    }
    false
}

fn step1a(b: &mut Vec<u8>) {
    if ends_with(b, b"sses") || ends_with(b, b"ies") {
        b.truncate(b.len() - 2);
    } else if ends_with(b, b"ss") {
        // leave
    } else if ends_with(b, b"s") && b.len() > 1 {
        b.truncate(b.len() - 1);
    }
}

fn step1b(b: &mut Vec<u8>) {
    if ends_with(b, b"eed") {
        let stem_len = b.len() - 3;
        if measure(b, stem_len) > 0 {
            b.truncate(b.len() - 1); // eed -> ee
        }
        return;
    }
    let mut removed = false;
    if ends_with(b, b"ed") {
        let stem_len = b.len() - 2;
        if has_vowel(b, stem_len) {
            b.truncate(stem_len);
            removed = true;
        }
    } else if ends_with(b, b"ing") {
        let stem_len = b.len() - 3;
        if has_vowel(b, stem_len) {
            b.truncate(stem_len);
            removed = true;
        }
    }
    if removed {
        if ends_with(b, b"at") || ends_with(b, b"bl") || ends_with(b, b"iz") {
            b.push(b'e');
        } else if ends_double_cons(b, b.len()) && !matches!(b[b.len() - 1], b'l' | b's' | b'z') {
            b.truncate(b.len() - 1);
        } else if measure(b, b.len()) == 1 && ends_cvc(b, b.len()) {
            b.push(b'e');
        }
    }
}

fn step1c(b: &mut [u8]) {
    if ends_with(b, b"y") && has_vowel(b, b.len() - 1) {
        let n = b.len();
        b[n - 1] = b'i';
    }
}

fn step2(b: &mut Vec<u8>) {
    const RULES: &[(&[u8], &[u8])] = &[
        (b"ational", b"ate"),
        (b"tional", b"tion"),
        (b"enci", b"ence"),
        (b"anci", b"ance"),
        (b"izer", b"ize"),
        (b"abli", b"able"),
        (b"alli", b"al"),
        (b"entli", b"ent"),
        (b"eli", b"e"),
        (b"ousli", b"ous"),
        (b"ization", b"ize"),
        (b"ation", b"ate"),
        (b"ator", b"ate"),
        (b"alism", b"al"),
        (b"iveness", b"ive"),
        (b"fulness", b"ful"),
        (b"ousness", b"ous"),
        (b"aliti", b"al"),
        (b"iviti", b"ive"),
        (b"biliti", b"ble"),
    ];
    for (suf, rep) in RULES {
        if ends_with(b, suf) {
            replace_if(b, suf, rep, |m| m > 0);
            return;
        }
    }
}

fn step3(b: &mut Vec<u8>) {
    const RULES: &[(&[u8], &[u8])] = &[
        (b"icate", b"ic"),
        (b"ative", b""),
        (b"alize", b"al"),
        (b"iciti", b"ic"),
        (b"ical", b"ic"),
        (b"ful", b""),
        (b"ness", b""),
    ];
    for (suf, rep) in RULES {
        if ends_with(b, suf) {
            replace_if(b, suf, rep, |m| m > 0);
            return;
        }
    }
}

fn step4(b: &mut Vec<u8>) {
    const RULES: &[&[u8]] = &[
        b"al", b"ance", b"ence", b"er", b"ic", b"able", b"ible", b"ant", b"ement", b"ment",
        b"ent", b"ou", b"ism", b"ate", b"iti", b"ous", b"ive", b"ize",
    ];
    // "ion" needs the extra condition that the stem ends in s or t.
    if ends_with(b, b"ion") {
        let stem_len = b.len() - 3;
        if stem_len > 0
            && matches!(b[stem_len - 1], b's' | b't')
            && measure(b, stem_len) > 1
        {
            b.truncate(stem_len);
            return;
        }
    }
    for suf in RULES {
        if ends_with(b, suf) {
            replace_if(b, suf, b"", |m| m > 1);
            return;
        }
    }
}

fn step5a(b: &mut Vec<u8>) {
    if ends_with(b, b"e") {
        let stem_len = b.len() - 1;
        let m = measure(b, stem_len);
        if m > 1 || (m == 1 && !ends_cvc(b, stem_len)) {
            b.truncate(stem_len);
        }
    }
}

fn step5b(b: &mut Vec<u8>) {
    if b.len() >= 2
        && b[b.len() - 1] == b'l'
        && ends_double_cons(b, b.len())
        && measure(b, b.len()) > 1
    {
        b.truncate(b.len() - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic test vectors from Porter's paper and the reference
    /// implementation's voc/output lists.
    #[test]
    fn reference_vectors() {
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, want) in cases {
            assert_eq!(porter_stem(input), want, "stem({input})");
        }
    }

    #[test]
    fn short_words_untouched() {
        assert_eq!(porter_stem("a"), "a");
        assert_eq!(porter_stem("is"), "is");
        assert_eq!(porter_stem("be"), "be");
    }

    #[test]
    fn non_ascii_untouched() {
        assert_eq!(porter_stem("café"), "café");
        assert_eq!(porter_stem("köln"), "köln");
    }

    #[test]
    fn digit_words_untouched() {
        assert_eq!(porter_stem("n73"), "n73");
        assert_eq!(porter_stem("2009s"), "2009s");
    }

    #[test]
    fn idempotent_on_common_words() {
        // Stemming an already-stemmed form should usually be stable; check a
        // sample (full idempotence is not guaranteed by Porter, but holds for
        // these).
        for w in ["restaur", "seafood", "pittsburgh", "hotel", "motor", "fish"] {
            assert_eq!(porter_stem(&porter_stem(w)), porter_stem(w));
        }
    }
}
