//! Unicode-aware tokenization.
//!
//! Tokens are maximal runs of alphanumeric characters (plus intra-word
//! apostrophes, so `don't` stays one token), lowercased. Everything else is
//! a separator. This matches what web search engines do for snippet text
//! well enough for concept mining, and — more importantly — it is the *same*
//! rule everywhere in the workspace, so query terms, index terms, and
//! snippet terms always align.

/// Split `text` into normalized (lowercased) tokens.
///
/// ```
/// use pws_text::tokenize;
/// assert_eq!(tokenize("Hello, World!"), vec!["hello", "world"]);
/// assert_eq!(tokenize("don't stop"), vec!["don't", "stop"]);
/// assert_eq!(tokenize("state-of-the-art"), vec!["state", "of", "the", "art"]);
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        if c.is_alphanumeric() {
            for lc in c.to_lowercase() {
                cur.push(lc);
            }
        } else if c == '\'' && !cur.is_empty() && chars.peek().is_some_and(|n| n.is_alphanumeric())
        {
            // Intra-word apostrophe: keep it so "don't" survives as one token.
            cur.push('\'');
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Tokenize but additionally report, for each token, whether it is a
/// stopword. Used by the snippet highlighter and the concept extractor,
/// which need stopwords *in place* to form multi-word candidate phrases
/// ("statue of liberty") without merging across them incorrectly.
pub fn tokenize_keep_stops(text: &str) -> Vec<(String, bool)> {
    tokenize(text)
        .into_iter()
        .map(|t| {
            let stop = crate::stopwords::is_stopword(&t);
            (t, stop)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_splitting() {
        assert_eq!(tokenize("a b  c"), vec!["a", "b", "c"]);
    }

    #[test]
    fn lowercases_unicode() {
        assert_eq!(tokenize("Köln CAFÉ"), vec!["köln", "café"]);
    }

    #[test]
    fn digits_are_tokens() {
        assert_eq!(tokenize("nokia n73 2009"), vec!["nokia", "n73", "2009"]);
    }

    #[test]
    fn punctuation_is_separator() {
        assert_eq!(tokenize("x.y,z;(w)"), vec!["x", "y", "z", "w"]);
    }

    #[test]
    fn apostrophe_handling() {
        assert_eq!(tokenize("it's o'hare's"), vec!["it's", "o'hare's"]);
        // Trailing apostrophe is dropped (it has no following alphanumeric).
        assert_eq!(tokenize("dogs'"), vec!["dogs"]);
        // Leading apostrophe is dropped too.
        assert_eq!(tokenize("'quoted'"), vec!["quoted"]);
    }

    #[test]
    fn keep_stops_flags_stopwords() {
        let v = tokenize_keep_stops("statue of liberty");
        assert_eq!(v.len(), 3);
        assert!(!v[0].1);
        assert!(v[1].1); // "of"
        assert!(!v[2].1);
    }

    #[test]
    fn empty_and_whitespace() {
        assert!(tokenize("").is_empty());
        assert!(tokenize(" \t\r\n").is_empty());
        assert!(tokenize("!!!").is_empty());
    }
}
