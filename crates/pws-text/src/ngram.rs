//! N-gram and co-occurrence utilities.
//!
//! Content-concept extraction treats both unigrams and multi-word phrases as
//! concept candidates; these helpers enumerate them from token streams and
//! count windowed co-occurrence (used by the concept-relationship graph).

use std::collections::HashMap;

/// All contiguous `n`-grams of `tokens`, joined with a single space.
///
/// Returns an empty vector when `n == 0` or `tokens.len() < n`.
///
/// ```
/// use pws_text::ngrams;
/// let t = vec!["mount".into(), "washington".into(), "pittsburgh".into()];
/// assert_eq!(ngrams(&t, 2), vec!["mount washington", "washington pittsburgh"]);
/// ```
pub fn ngrams(tokens: &[String], n: usize) -> Vec<String> {
    if n == 0 || tokens.len() < n {
        return Vec::new();
    }
    tokens.windows(n).map(|w| w.join(" ")).collect()
}

/// Convenience for `ngrams(tokens, 2)`.
pub fn bigrams(tokens: &[String]) -> Vec<String> {
    ngrams(tokens, 2)
}

/// Count co-occurrences of token pairs within a sliding window of size
/// `window` (window = maximum distance between the two positions,
/// inclusive). Pairs are stored with the lexicographically smaller token
/// first so `(a, b)` and `(b, a)` accumulate together. Self-pairs from
/// repeated tokens at different positions *are* counted.
///
/// This feeds the pointwise-similarity computation in the concept graph.
pub fn window_cooccurrence(
    tokens: &[String],
    window: usize,
) -> HashMap<(String, String), u32> {
    let mut counts: HashMap<(String, String), u32> = HashMap::new();
    if window == 0 {
        return counts;
    }
    for i in 0..tokens.len() {
        let hi = (i + window).min(tokens.len().saturating_sub(1));
        for j in (i + 1)..=hi {
            let (a, b) = if tokens[i] <= tokens[j] {
                (tokens[i].clone(), tokens[j].clone())
            } else {
                (tokens[j].clone(), tokens[i].clone())
            };
            *counts.entry((a, b)).or_insert(0) += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn unigrams_are_identity() {
        let t = toks("a b c");
        assert_eq!(ngrams(&t, 1), vec!["a", "b", "c"]);
    }

    #[test]
    fn ngram_edge_cases() {
        let t = toks("a b");
        assert!(ngrams(&t, 0).is_empty());
        assert!(ngrams(&t, 3).is_empty());
        assert_eq!(ngrams(&t, 2), vec!["a b"]);
    }

    #[test]
    fn trigram_join() {
        let t = toks("w x y z");
        assert_eq!(ngrams(&t, 3), vec!["w x y", "x y z"]);
    }

    #[test]
    fn cooccurrence_symmetric_and_windowed() {
        let t = toks("a b c a");
        let c = window_cooccurrence(&t, 1);
        // Adjacent pairs only: (a,b), (b,c), (a,c)... wait window 1 means
        // distance exactly 1: (a,b), (b,c), (c,a)->(a,c).
        assert_eq!(c[&("a".into(), "b".into())], 1);
        assert_eq!(c[&("b".into(), "c".into())], 1);
        assert_eq!(c[&("a".into(), "c".into())], 1);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn cooccurrence_wide_window_counts_all_pairs() {
        let t = toks("a b c");
        let c = window_cooccurrence(&t, 10);
        assert_eq!(c.len(), 3);
        assert!(c.values().all(|&v| v == 1));
    }

    #[test]
    fn cooccurrence_zero_window_is_empty() {
        assert!(window_cooccurrence(&toks("a b"), 0).is_empty());
    }

    #[test]
    fn repeated_token_pairs_accumulate() {
        let t = toks("x y x");
        let c = window_cooccurrence(&t, 2);
        assert_eq!(c[&("x".into(), "y".into())], 2);
        assert_eq!(c[&("x".into(), "x".into())], 1);
    }
}
