//! # pws-text — text-processing substrate
//!
//! Low-level text utilities shared by every other crate in the `pws`
//! workspace: tokenization, normalization, stopword filtering, Porter
//! stemming, n-gram extraction, and a compact string interner.
//!
//! The personalization pipeline of the paper operates on *web snippets*
//! (short text fragments accompanying each search result). All snippet and
//! document analysis funnels through [`Analyzer`], which applies a fixed,
//! deterministic pipeline so that the index, the concept extractor, and the
//! query parser all agree on token identity:
//!
//! ```text
//! raw text → unicode-lowercase → split on non-alphanumeric →
//!   drop pure punctuation → (optional) drop stopwords → (optional) Porter stem
//! ```
//!
//! ## Quick example
//!
//! ```
//! use pws_text::Analyzer;
//!
//! let a = Analyzer::default();
//! let toks = a.analyze("Seafood restaurants in Mount Washington!");
//! assert!(toks.iter().any(|t| t == "seafood"));
//! // stopword "in" removed, tokens lowercased and stemmed
//! assert!(!toks.iter().any(|t| t == "in"));
//! ```

pub mod interner;
pub mod ngram;
pub mod stem;
pub mod stopwords;
pub mod tokenize;

pub use interner::{Interner, Sym};
pub use ngram::{bigrams, ngrams, window_cooccurrence};
pub use stem::porter_stem;
pub use stopwords::is_stopword;
pub use tokenize::{tokenize, tokenize_keep_stops};

/// Configurable analysis pipeline: tokenize → stopword filter → stem.
///
/// Cloning is cheap; the analyzer holds only configuration flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Analyzer {
    /// Remove stopwords (see [`stopwords`]) after tokenization.
    pub remove_stopwords: bool,
    /// Apply the Porter stemmer to each surviving token.
    pub stem: bool,
    /// Drop tokens shorter than this many bytes after normalization.
    pub min_token_len: usize,
    /// Drop tokens longer than this many bytes (guards against garbage).
    pub max_token_len: usize,
}

impl Default for Analyzer {
    fn default() -> Self {
        Analyzer { remove_stopwords: true, stem: true, min_token_len: 2, max_token_len: 40 }
    }
}

impl Analyzer {
    /// An analyzer that performs no stopword removal and no stemming —
    /// useful for location-name matching, where surface forms matter.
    pub fn verbatim() -> Self {
        Analyzer { remove_stopwords: false, stem: false, min_token_len: 1, max_token_len: 60 }
    }

    /// Run the full pipeline over `text`, returning owned tokens.
    pub fn analyze(&self, text: &str) -> Vec<String> {
        tokenize(text)
            .into_iter()
            .filter(|t| t.len() >= self.min_token_len && t.len() <= self.max_token_len)
            .filter(|t| !self.remove_stopwords || !is_stopword(t))
            .map(|t| if self.stem { porter_stem(&t) } else { t })
            .collect()
    }

    /// Analyze and intern in one pass, returning symbol ids.
    pub fn analyze_interned(&self, text: &str, interner: &mut Interner) -> Vec<Sym> {
        self.analyze(text).into_iter().map(|t| interner.intern(&t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pipeline_lowercases_stems_and_drops_stopwords() {
        let a = Analyzer::default();
        let toks = a.analyze("The RUNNING dogs are runners");
        assert!(toks.contains(&"run".to_string()) || toks.contains(&"runner".to_string()));
        assert!(!toks.iter().any(|t| t == "the"));
        assert!(!toks.iter().any(|t| t == "are"));
    }

    #[test]
    fn verbatim_keeps_everything() {
        let a = Analyzer::verbatim();
        let toks = a.analyze("The Mount of Washington");
        assert_eq!(toks, vec!["the", "mount", "of", "washington"]);
    }

    #[test]
    fn min_len_filter_applies() {
        let a = Analyzer { min_token_len: 3, ..Analyzer::verbatim() };
        let toks = a.analyze("a an the cat");
        assert_eq!(toks, vec!["the", "cat"]);
    }

    #[test]
    fn empty_input_gives_empty_output() {
        assert!(Analyzer::default().analyze("").is_empty());
        assert!(Analyzer::default().analyze("   \t\n ").is_empty());
    }

    #[test]
    fn interned_analysis_matches_plain() {
        let a = Analyzer::default();
        let mut it = Interner::new();
        let syms = a.analyze_interned("seafood buffet pittsburgh", &mut it);
        let toks = a.analyze("seafood buffet pittsburgh");
        let back: Vec<&str> = syms.iter().map(|&s| it.resolve(s)).collect();
        assert_eq!(back, toks);
    }
}
