//! Per-result feature vectors for the personalized RankSVM.
//!
//! The paper's ranker is a linear function over preference features; ours
//! uses the schema below. The content-only / location-only method variants
//! of the evaluation (T3, F5, F7) are obtained by masking the respective
//! feature, so every variant shares one code path.

use crate::content_profile::ContentProfile;
use crate::history::UserHistory;
use crate::location_profile::LocationProfile;
use pws_concepts::QueryConceptOntology;
use pws_text::Analyzer;

/// Dimensionality of the feature vector.
pub const FEATURE_DIM: usize = 7;

/// Human-readable feature names, index-aligned.
pub const FEATURE_NAMES: [&str; FEATURE_DIM] = [
    "base_score_norm",
    "content_pref",
    "location_pref",
    "rank_prior",
    "title_match",
    "url_revisit",
    "domain_affinity",
];

/// The per-result raw inputs the extractor consumes (a flattened view of a
/// search hit; kept free of `pws-index` types so any result source works).
#[derive(Debug, Clone)]
pub struct ResultFeatureInput {
    /// Document id (unused by features, carried for the caller).
    pub doc: u32,
    /// 1-based rank in the baseline list.
    pub rank: usize,
    /// Baseline retrieval score, **already normalized to `[0, 1]`** by the
    /// caller (the engine divides by the candidate pool's max). The
    /// extractor passes it through untouched — normalizing here too would
    /// re-scale by the *page* max and silently diverge from the scale the
    /// ranker scored with whenever the pool's top document was reranked
    /// off the page (the train/serve skew bug).
    pub base_score: f64,
    /// Result URL.
    pub url: String,
    /// Result title.
    pub title: String,
}

/// Optional geographic context: proximity-smoothed location scoring
/// (coordinates plus the exponential kernel scale in km).
#[derive(Debug, Clone)]
pub struct GeoContext<'a> {
    /// Coordinates of every ontology node.
    pub coords: &'a pws_geo::WorldCoords,
    /// Kernel scale in km (larger = broader smoothing).
    pub scale_km: f64,
}

/// Feature extraction with ablation masks.
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    /// Include the content-preference feature (index 1).
    pub use_content: bool,
    /// Include the location-preference feature (index 2).
    pub use_location: bool,
    analyzer: Analyzer,
}

impl Default for FeatureExtractor {
    fn default() -> Self {
        FeatureExtractor { use_content: true, use_location: true, analyzer: Analyzer::default() }
    }
}

impl FeatureExtractor {
    /// Extractor with both personalization dimensions enabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Content-only variant (location feature zeroed).
    pub fn content_only() -> Self {
        FeatureExtractor { use_location: false, ..Self::default() }
    }

    /// Location-only variant (content feature zeroed).
    pub fn location_only() -> Self {
        FeatureExtractor { use_content: false, ..Self::default() }
    }

    /// Extractor with explicit dimension masks.
    pub fn with_masks(use_content: bool, use_location: bool) -> Self {
        FeatureExtractor { use_content, use_location, ..Self::default() }
    }

    /// Extract feature vectors for one result page.
    ///
    /// `inputs[i]` must correspond to the snippet behind
    /// `onto.content_by_snippet[i]` / `onto.locations_by_snippet[i]`.
    pub fn extract_page(
        &self,
        query_text: &str,
        inputs: &[ResultFeatureInput],
        onto: &QueryConceptOntology,
        content: &ContentProfile,
        location: &LocationProfile,
        history: &UserHistory,
    ) -> Vec<Vec<f64>> {
        self.extract_page_geo(query_text, inputs, onto, content, location, history, None)
    }

    /// As [`Self::extract_page`], with optional proximity-smoothed location
    /// scoring (the GPS extension): when `geo` is given, the location
    /// feature uses [`LocationProfile::score_locations_geo`].
    #[allow(clippy::too_many_arguments)]
    pub fn extract_page_geo(
        &self,
        query_text: &str,
        inputs: &[ResultFeatureInput],
        onto: &QueryConceptOntology,
        content: &ContentProfile,
        location: &LocationProfile,
        history: &UserHistory,
        geo: Option<&GeoContext<'_>>,
    ) -> Vec<Vec<f64>> {
        let q_terms = self.analyzer.analyze(query_text);

        inputs
            .iter()
            .enumerate()
            .map(|(i, input)| {
                let mut f = vec![0.0; FEATURE_DIM];
                f[0] = input.base_score;

                if self.use_content {
                    if let Some(concepts) = onto.content_by_snippet.get(i) {
                        f[1] = content.score_concepts(
                            concepts.iter().map(|&ci| onto.content[ci].term.as_str()),
                        );
                    }
                }
                if self.use_location {
                    if let Some(locs) = onto.locations_by_snippet.get(i) {
                        let loc_ids = locs.iter().map(|&li| onto.locations[li].loc);
                        f[2] = match geo {
                            Some(g) => {
                                location.score_locations_geo(loc_ids, g.coords, g.scale_km)
                            }
                            None => location.score_locations(loc_ids),
                        };
                    }
                }
                f[3] = 1.0 / input.rank as f64;
                f[4] = title_match(&self.analyzer, &q_terms, &input.title);
                f[5] = history.url_score(&input.url);
                f[6] = history.domain_score(&input.url);
                f
            })
            .collect()
    }
}

/// Fraction of query terms present in the (analyzed) title.
fn title_match(analyzer: &Analyzer, q_terms: &[String], title: &str) -> f64 {
    if q_terms.is_empty() {
        return 0.0;
    }
    let t_tokens = analyzer.analyze(title);
    let hits = q_terms.iter().filter(|q| t_tokens.contains(q)).count();
    hits as f64 / q_terms.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pws_concepts::{ConceptConfig, LocationConceptConfig};
    use pws_geo::{LocId, LocationMatcher, LocationOntology};

    fn world() -> LocationOntology {
        let mut o = LocationOntology::new();
        let r = o.add(LocId::WORLD, "westland", vec![]);
        let c = o.add(r, "ardonia", vec![]);
        let s = o.add(c, "vale", vec![]);
        o.add(s, "alden", vec![]);
        o
    }

    fn setup(snippets: &[&str]) -> (QueryConceptOntology, Vec<ResultFeatureInput>) {
        let w = world();
        let m = LocationMatcher::build(&w);
        let snips: Vec<String> = snippets.iter().map(|s| s.to_string()).collect();
        let onto = QueryConceptOntology::extract(
            "restaurant",
            &snips,
            &m,
            &w,
            &ConceptConfig { min_support: 0.0, min_snippet_freq: 1, bigrams: false, max_concepts: 50 },
            &LocationConceptConfig { min_support: 0.0, ..Default::default() },
        );
        let inputs = snippets
            .iter()
            .enumerate()
            .map(|(i, _)| ResultFeatureInput {
                doc: i as u32,
                rank: i + 1,
                base_score: (10.0 - i as f64) / 10.0,
                url: format!("http://d{i}.test/p"),
                title: if i == 0 { "restaurant guide".into() } else { "other page".into() },
            })
            .collect();
        (onto, inputs)
    }

    #[test]
    fn dimensions_and_names_agree() {
        assert_eq!(FEATURE_NAMES.len(), FEATURE_DIM);
    }

    #[test]
    fn base_score_passed_through_unrescaled() {
        // The caller normalizes by the candidate *pool* max; the extractor
        // must not re-normalize by the *page* max. A page whose top score
        // is 0.8 (pool winner reranked off the page) keeps 0.8.
        let (onto, mut inputs) = setup(&["seafood alden", "sushi bar"]);
        inputs[0].base_score = 0.8;
        inputs[1].base_score = 0.4;
        let fx = FeatureExtractor::new();
        let feats = fx.extract_page(
            "restaurant",
            &inputs,
            &onto,
            &ContentProfile::new(),
            &LocationProfile::new(),
            &UserHistory::new(),
        );
        assert_eq!(feats.len(), 2);
        assert!((feats[0][0] - 0.8).abs() < 1e-12);
        assert!((feats[1][0] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn rank_prior_and_title_match() {
        let (onto, inputs) = setup(&["seafood alden", "sushi bar"]);
        let fx = FeatureExtractor::new();
        let feats = fx.extract_page(
            "restaurant",
            &inputs,
            &onto,
            &ContentProfile::new(),
            &LocationProfile::new(),
            &UserHistory::new(),
        );
        assert!((feats[0][3] - 1.0).abs() < 1e-12);
        assert!((feats[1][3] - 0.5).abs() < 1e-12);
        assert!((feats[0][4] - 1.0).abs() < 1e-12, "title contains query term");
        assert_eq!(feats[1][4], 0.0);
    }

    #[test]
    fn cold_profiles_give_zero_preference_features() {
        let (onto, inputs) = setup(&["seafood alden", "sushi bar"]);
        let fx = FeatureExtractor::new();
        let feats = fx.extract_page(
            "restaurant",
            &inputs,
            &onto,
            &ContentProfile::new(),
            &LocationProfile::new(),
            &UserHistory::new(),
        );
        for f in &feats {
            assert_eq!(f[1], 0.0);
            assert_eq!(f[2], 0.0);
            assert_eq!(f[5], 0.0);
            assert_eq!(f[6], 0.0);
        }
    }

    #[test]
    fn ablation_masks_zero_their_features() {
        let (onto, inputs) = setup(&["seafood alden", "seafood lakeside"]);
        // Build a warm content profile by hand via observe.
        use pws_click::{Click, Impression, ShownResult, UserId};
        use pws_corpus::query::QueryId;
        let imp = Impression {
            user: UserId(0),
            query: QueryId(0),
            query_text: "restaurant".into(),
            results: inputs
                .iter()
                .enumerate()
                .map(|(i, inp)| ShownResult {
                    doc: inp.doc,
                    rank: i + 1,
                    url: inp.url.clone(),
                    title: inp.title.clone(),
                    snippet: if i == 0 { "seafood alden".into() } else { "seafood lakeside".into() },
                })
                .collect(),
            clicks: vec![Click { doc: 0, rank: 1, dwell: 500 }],
        };
        let mut content = ContentProfile::new();
        content.observe(&onto, &imp, &crate::content_profile::ContentProfileConfig::default());
        let mut location = LocationProfile::new();
        location.observe(
            &onto,
            &imp,
            &world(),
            &crate::location_profile::LocationProfileConfig::default(),
        );
        let history = UserHistory::new();

        let full = FeatureExtractor::new()
            .extract_page("restaurant", &inputs, &onto, &content, &location, &history);
        assert!(full[0][1] != 0.0, "content feature should be warm");
        assert!(full[0][2] != 0.0, "location feature should be warm");

        let c_only = FeatureExtractor::content_only()
            .extract_page("restaurant", &inputs, &onto, &content, &location, &history);
        assert_eq!(c_only[0][2], 0.0);
        assert_eq!(c_only[0][1], full[0][1]);

        let l_only = FeatureExtractor::location_only()
            .extract_page("restaurant", &inputs, &onto, &content, &location, &history);
        assert_eq!(l_only[0][1], 0.0);
        assert_eq!(l_only[0][2], full[0][2]);
    }

    #[test]
    fn empty_page_gives_empty_features() {
        let (onto, _) = setup(&[]);
        let fx = FeatureExtractor::new();
        let feats = fx.extract_page(
            "restaurant",
            &[],
            &onto,
            &ContentProfile::new(),
            &LocationProfile::new(),
            &UserHistory::new(),
        );
        assert!(feats.is_empty());
    }
}
