//! Per-user click history: URL and domain revisit counts.
//!
//! Revisit behaviour ("personal navigation") is a strong, cheap signal the
//! personalized ranker uses alongside the concept profiles.

use pws_click::Impression;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Clicked URL/domain counters for one user.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UserHistory {
    url_clicks: HashMap<String, u32>,
    domain_clicks: HashMap<String, u32>,
    total_clicks: u64,
}

impl UserHistory {
    /// Fresh, empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total clicks folded in.
    pub fn total_clicks(&self) -> u64 {
        self.total_clicks
    }

    /// Times this exact URL was clicked.
    pub fn url_clicks(&self, url: &str) -> u32 {
        self.url_clicks.get(url).copied().unwrap_or(0)
    }

    /// Times any URL of this domain was clicked.
    pub fn domain_clicks(&self, domain: &str) -> u32 {
        self.domain_clicks.get(domain).copied().unwrap_or(0)
    }

    /// All `(url, clicks)` entries in ascending URL order — the canonical
    /// view used by persistence (`pws-store`).
    pub fn url_click_entries(&self) -> Vec<(String, u32)> {
        let mut v: Vec<(String, u32)> =
            self.url_clicks.iter().map(|(u, c)| (u.clone(), *c)).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// All `(domain, clicks)` entries in ascending domain order.
    pub fn domain_click_entries(&self) -> Vec<(String, u32)> {
        let mut v: Vec<(String, u32)> =
            self.domain_clicks.iter().map(|(d, c)| (d.clone(), *c)).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Rebuild a history from its entry lists — the inverse of
    /// [`Self::url_click_entries`] / [`Self::domain_click_entries`].
    /// Duplicate keys sum.
    pub fn from_entries(
        url_entries: Vec<(String, u32)>,
        domain_entries: Vec<(String, u32)>,
        total_clicks: u64,
    ) -> Self {
        let mut url_clicks = HashMap::with_capacity(url_entries.len());
        for (u, c) in url_entries {
            *url_clicks.entry(u).or_insert(0) += c;
        }
        let mut domain_clicks = HashMap::with_capacity(domain_entries.len());
        for (d, c) in domain_entries {
            *domain_clicks.entry(d).or_insert(0) += c;
        }
        UserHistory { url_clicks, domain_clicks, total_clicks }
    }

    /// Extract the registrable domain from a URL
    /// (`http://host/path` → `host`). Returns the input when it does not
    /// look like a URL.
    pub fn domain_of(url: &str) -> &str {
        let rest = url
            .strip_prefix("http://")
            .or_else(|| url.strip_prefix("https://"))
            .unwrap_or(url);
        rest.split('/').next().unwrap_or(rest)
    }

    /// Fold an impression's clicks into the history.
    pub fn observe(&mut self, imp: &Impression) {
        for click in &imp.clicks {
            let Some(shown) = imp.results.iter().find(|r| r.doc == click.doc) else { continue };
            *self.url_clicks.entry(shown.url.clone()).or_insert(0) += 1;
            let domain = Self::domain_of(&shown.url).to_string();
            *self.domain_clicks.entry(domain).or_insert(0) += 1;
            self.total_clicks += 1;
        }
    }

    /// Normalized revisit score for a URL in [0, 1]: `clicks / (1 + clicks)`
    /// — saturating, so one prior click already counts strongly.
    pub fn url_score(&self, url: &str) -> f64 {
        let c = f64::from(self.url_clicks(url));
        c / (1.0 + c)
    }

    /// Normalized domain-affinity score in [0, 1].
    pub fn domain_score(&self, url: &str) -> f64 {
        let c = f64::from(self.domain_clicks(Self::domain_of(url)));
        c / (1.0 + c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pws_click::{Click, ShownResult, UserId};
    use pws_corpus::query::QueryId;

    fn imp(urls: &[&str], clicked: &[usize]) -> Impression {
        Impression {
            user: UserId(0),
            query: QueryId(0),
            query_text: "q".into(),
            results: urls
                .iter()
                .enumerate()
                .map(|(i, u)| ShownResult {
                    doc: i as u32,
                    rank: i + 1,
                    url: u.to_string(),
                    title: "t".into(),
                    snippet: "s".into(),
                })
                .collect(),
            clicks: clicked
                .iter()
                .map(|&i| Click { doc: i as u32, rank: i + 1, dwell: 100 })
                .collect(),
        }
    }

    #[test]
    fn domain_extraction() {
        assert_eq!(UserHistory::domain_of("http://a.test/x/y"), "a.test");
        assert_eq!(UserHistory::domain_of("https://b.test/"), "b.test");
        assert_eq!(UserHistory::domain_of("weird"), "weird");
    }

    #[test]
    fn counts_accumulate() {
        let mut h = UserHistory::new();
        h.observe(&imp(&["http://a.test/1", "http://a.test/2"], &[0]));
        h.observe(&imp(&["http://a.test/1", "http://b.test/1"], &[0, 1]));
        assert_eq!(h.url_clicks("http://a.test/1"), 2);
        assert_eq!(h.url_clicks("http://a.test/2"), 0);
        assert_eq!(h.domain_clicks("a.test"), 2);
        assert_eq!(h.domain_clicks("b.test"), 1);
        assert_eq!(h.total_clicks(), 3);
    }

    #[test]
    fn scores_saturate() {
        let mut h = UserHistory::new();
        assert_eq!(h.url_score("http://a.test/1"), 0.0);
        h.observe(&imp(&["http://a.test/1"], &[0]));
        assert!((h.url_score("http://a.test/1") - 0.5).abs() < 1e-12);
        h.observe(&imp(&["http://a.test/1"], &[0]));
        let s = h.url_score("http://a.test/1");
        assert!(s > 0.5 && s < 1.0);
    }

    #[test]
    fn unclicked_impressions_change_nothing() {
        let mut h = UserHistory::new();
        h.observe(&imp(&["http://a.test/1"], &[]));
        assert_eq!(h.total_clicks(), 0);
        assert_eq!(h.url_score("http://a.test/1"), 0.0);
    }
}
