//! The location-preference profile.
//!
//! Weights over the location ontology, mined from clicks exactly like the
//! content profile — with one extra mechanism: **ancestor propagation**.
//! Clicked mass on a city flows up to its state/country with decay, so the
//! profile answers coarser-grained questions ("does this user care about
//! anything in ardonia?") even when every click was city-level.

use pws_click::Impression;
use pws_concepts::QueryConceptOntology;
use pws_geo::{LocId, LocationOntology};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Profile update parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct LocationProfileConfig {
    /// Mass added per clicked location concept, scaled by (1 + dwell grade).
    pub click_weight: f64,
    /// Mass subtracted per skipped location concept.
    pub skip_penalty: f64,
    /// Per-level decay when propagating clicked mass to ancestors
    /// (0 disables propagation).
    pub ancestor_decay: f64,
    /// Multiplicative decay applied before each observation.
    pub decay: f64,
    /// Minimum dwell grade for a click to count as positive evidence
    /// (SAT-click filtering: 1 drops bounce clicks, 0 counts every click).
    pub min_dwell_grade: u32,
}

impl Default for LocationProfileConfig {
    fn default() -> Self {
        LocationProfileConfig {
            click_weight: 1.0,
            skip_penalty: 0.5,
            ancestor_decay: 0.4,
            decay: 0.995,
            min_dwell_grade: 1,
        }
    }
}

/// Weights over ontology nodes for one user.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LocationProfile {
    weights: HashMap<LocId, f64>,
    observations: u64,
}

impl LocationProfile {
    /// Fresh, empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of impressions observed.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Number of nodes with non-zero weight.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True when nothing has been learned yet.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Current weight of a node (0 when unseen).
    pub fn weight(&self, loc: LocId) -> f64 {
        self.weights.get(&loc).copied().unwrap_or(0.0)
    }

    /// All `(loc, weight)` entries in ascending id order — the canonical
    /// vector view used by persistence and quantization (`pws-store`).
    pub fn weight_entries(&self) -> Vec<(LocId, f64)> {
        let mut v: Vec<(LocId, f64)> = self.weights.iter().map(|(l, w)| (*l, *w)).collect();
        v.sort_by_key(|(l, _)| *l);
        v
    }

    /// Rebuild a profile from `(loc, weight)` entries and an observation
    /// count — the inverse of [`Self::weight_entries`]. Duplicate ids sum.
    pub fn from_entries(entries: Vec<(LocId, f64)>, observations: u64) -> Self {
        let mut weights = HashMap::with_capacity(entries.len());
        for (l, w) in entries {
            *weights.entry(l).or_insert(0.0) += w;
        }
        LocationProfile { weights, observations }
    }

    /// The `k` highest-weighted locations, descending, ties by id.
    pub fn top_locations(&self, k: usize) -> Vec<(LocId, f64)> {
        let mut v: Vec<(LocId, f64)> = self.weights.iter().map(|(l, w)| (*l, *w)).collect();
        v.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        v.truncate(k);
        v
    }

    /// The single most-preferred *city*, if any city has positive weight.
    /// This is the profile's best estimate of the user's implicit location
    /// intent — what the engine appends to location-sensitive queries.
    pub fn preferred_city(&self, world: &LocationOntology) -> Option<LocId> {
        self.weights
            .iter()
            .filter(|(l, w)| **w > 0.0 && world.level(**l) == pws_geo::Level::City)
            .max_by(|a, b| {
                a.1.partial_cmp(b.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| b.0.cmp(a.0))
            })
            .map(|(l, _)| *l)
    }

    /// Fold one impression into the profile.
    pub fn observe(
        &mut self,
        onto: &QueryConceptOntology,
        imp: &Impression,
        world: &LocationOntology,
        cfg: &LocationProfileConfig,
    ) {
        if cfg.decay < 1.0 {
            for w in self.weights.values_mut() {
                *w *= cfg.decay;
            }
        }

        for click in &imp.clicks {
            if click.dwell_grade() < cfg.min_dwell_grade {
                continue;
            }
            let idx = click.rank - 1;
            let Some(locs) = onto.locations_by_snippet.get(idx) else { continue };
            let strength = cfg.click_weight * (1.0 + f64::from(click.dwell_grade()));
            for &li in locs {
                // Discriminativeness scaling, as in the content profile: a
                // place named in every snippet carries no preference signal.
                let disc = (1.0 - onto.locations[li].support).clamp(0.0, 1.0);
                if disc == 0.0 {
                    continue;
                }
                let strength = strength * disc;
                let loc = onto.locations[li].loc;
                *self.weights.entry(loc).or_insert(0.0) += strength;
                if cfg.ancestor_decay > 0.0 {
                    let mut mass = strength * cfg.ancestor_decay;
                    for anc in world.ancestors(loc).into_iter().skip(1) {
                        if anc == LocId::WORLD {
                            break;
                        }
                        *self.weights.entry(anc).or_insert(0.0) += mass;
                        mass *= cfg.ancestor_decay;
                    }
                }
            }
        }

        for skipped in imp.skipped() {
            let idx = skipped.rank - 1;
            let Some(locs) = onto.locations_by_snippet.get(idx) else { continue };
            for &li in locs {
                let disc = (1.0 - onto.locations[li].support).clamp(0.0, 1.0);
                let loc = onto.locations[li].loc;
                *self.weights.entry(loc).or_insert(0.0) -= cfg.skip_penalty * disc;
            }
        }

        self.weights.retain(|_, w| w.abs() > 1e-9);
        self.observations += 1;
    }

    /// The profile's L1 mass, summed in sorted order so the value is
    /// identical for logically equal profiles regardless of the map's
    /// per-instance iteration order (replay determinism).
    fn l1(&self) -> f64 {
        crate::sorted_l1(self.weights.values().copied())
    }

    /// Preference score of a result given the locations mentioned in its
    /// snippet: the sum of their weights, normalized by the profile's L1
    /// mass. Empty profile → 0 (neutral).
    pub fn score_locations(&self, locs: impl Iterator<Item = LocId>) -> f64 {
        let l1 = self.l1();
        if l1 == 0.0 {
            return 0.0;
        }
        locs.map(|l| self.weight(l)).sum::<f64>() / l1
    }

    /// Geo-aware preference score: each profile entry endorses a snippet
    /// location in proportion to physical proximity,
    /// `Σ_e w(e) · exp(−dist(e, l)/scale_km)`, normalized by L1 mass.
    /// With `scale_km → 0` this degenerates to [`Self::score_locations`];
    /// with larger scales a preference for one city also mildly endorses
    /// its geographic neighbours (the GPS extension of the framework).
    pub fn score_locations_geo(
        &self,
        locs: impl Iterator<Item = LocId>,
        coords: &pws_geo::WorldCoords,
        scale_km: f64,
    ) -> f64 {
        let l1 = self.l1();
        if l1 == 0.0 {
            return 0.0;
        }
        // Iterate entries in id order: the kernel sum must not depend on
        // the map instance's iteration order (replay determinism).
        let mut entries: Vec<(LocId, f64)> = self.weights.iter().map(|(&l, &w)| (l, w)).collect();
        entries.sort_by_key(|(l, _)| *l);
        let mut total = 0.0;
        for l in locs {
            for &(e, w) in &entries {
                total += w * coords.proximity(e, l, scale_km);
            }
        }
        total / l1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pws_click::{Click, ShownResult, UserId};
    use pws_concepts::{ConceptConfig, LocationConceptConfig};
    use pws_corpus::query::QueryId;
    use pws_geo::LocationMatcher;

    fn world() -> (LocationOntology, LocId, LocId, LocId, LocId, LocId) {
        let mut o = LocationOntology::new();
        let r = o.add(LocId::WORLD, "westland", vec![]);
        let c = o.add(r, "ardonia", vec![]);
        let s = o.add(c, "vale", vec![]);
        let city1 = o.add(s, "alden", vec![]);
        let city2 = o.add(s, "lakemoor", vec![]);
        (o, r, c, s, city1, city2)
    }

    fn ontology(world: &LocationOntology, snippets: &[&str]) -> QueryConceptOntology {
        let m = LocationMatcher::build(world);
        let snips: Vec<String> = snippets.iter().map(|s| s.to_string()).collect();
        QueryConceptOntology::extract(
            "restaurant",
            &snips,
            &m,
            world,
            &ConceptConfig { min_support: 0.0, min_snippet_freq: 1, bigrams: false, max_concepts: 50 },
            &LocationConceptConfig { min_support: 0.0, ..Default::default() },
        )
    }

    fn impression(snippets: &[&str], clicks: Vec<(usize, u32)>) -> Impression {
        Impression {
            user: UserId(0),
            query: QueryId(0),
            query_text: "restaurant".into(),
            results: snippets
                .iter()
                .enumerate()
                .map(|(i, s)| ShownResult {
                    doc: i as u32,
                    rank: i + 1,
                    url: format!("u{i}"),
                    title: "t".into(),
                    snippet: s.to_string(),
                })
                .collect(),
            clicks: clicks
                .into_iter()
                .map(|(rank, dwell)| Click { doc: (rank - 1) as u32, rank, dwell })
                .collect(),
        }
    }

    fn cfg() -> LocationProfileConfig {
        LocationProfileConfig { ancestor_decay: 0.0, decay: 1.0, ..Default::default() }
    }

    #[test]
    fn clicked_city_gains_weight() {
        let (w, _, _, _, city1, city2) = world();
        let snippets = ["seafood in alden", "hotels in lakemoor"];
        let onto = ontology(&w, &snippets);
        let mut p = LocationProfile::new();
        p.observe(&onto, &impression(&snippets, vec![(1, 500)]), &w, &cfg());
        assert!(p.weight(city1) > 0.0);
        assert_eq!(p.weight(city2), 0.0);
    }

    #[test]
    fn ancestor_propagation() {
        let (w, r, c, s, city1, _) = world();
        let snippets = ["seafood in alden", "other text"];
        let onto = ontology(&w, &snippets);
        let mut p = LocationProfile::new();
        let conf = LocationProfileConfig { ancestor_decay: 0.5, decay: 1.0, ..Default::default() };
        p.observe(&onto, &impression(&snippets, vec![(1, 500)]), &w, &conf);
        // Note the extraction already rolled up ancestors into the snippet's
        // location list; the profile adds its own propagation on top. The
        // key invariant: weight decreases monotonically up the chain.
        assert!(p.weight(city1) > p.weight(s));
        assert!(p.weight(s) > p.weight(c));
        assert!(p.weight(c) >= p.weight(r));
        assert!(p.weight(r) > 0.0);
    }

    #[test]
    fn skipped_city_penalized() {
        let (w, _, _, _, city1, city2) = world();
        let snippets = ["lakemoor special", "alden seafood"];
        let onto = ontology(&w, &snippets);
        let mut p = LocationProfile::new();
        p.observe(&onto, &impression(&snippets, vec![(2, 500)]), &w, &cfg());
        assert!(p.weight(city2) < 0.0, "skipped lakemoor should be negative");
        assert!(p.weight(city1) > 0.0);
    }

    #[test]
    fn preferred_city_is_top_positive_city() {
        let (w, _, _, _, city1, city2) = world();
        let snippets = ["alden dinner", "alden lunch", "lakemoor brunch"];
        let onto = ontology(&w, &snippets);
        let mut p = LocationProfile::new();
        p.observe(&onto, &impression(&snippets, vec![(1, 500), (2, 500)]), &w, &cfg());
        assert_eq!(p.preferred_city(&w), Some(city1));
        assert_ne!(p.preferred_city(&w), Some(city2));
    }

    #[test]
    fn preferred_city_ignores_non_city_weight() {
        let (w, _, c, _, _, _) = world();
        let snippets = ["ardonia national news", "x"];
        let onto = ontology(&w, &snippets);
        let mut p = LocationProfile::new();
        p.observe(&onto, &impression(&snippets, vec![(1, 500)]), &w, &cfg());
        assert!(p.weight(c) > 0.0);
        // Only country-level weight exists (extraction rollup is bottom-up
        // only), so no preferred *city*.
        assert_eq!(p.preferred_city(&w), None);
    }

    #[test]
    fn empty_profile_neutral() {
        let (w, ..) = world();
        let p = LocationProfile::new();
        assert_eq!(p.preferred_city(&w), None);
        assert_eq!(p.score_locations([LocId(1)].into_iter()), 0.0);
    }

    #[test]
    fn score_locations_signed_and_normalized() {
        let (w, _, _, _, city1, city2) = world();
        let snippets = ["lakemoor special", "alden seafood"];
        let onto = ontology(&w, &snippets);
        let mut p = LocationProfile::new();
        p.observe(&onto, &impression(&snippets, vec![(2, 500)]), &w, &cfg());
        let pos = p.score_locations([city1].into_iter());
        let neg = p.score_locations([city2].into_iter());
        assert!(pos > 0.0 && pos <= 1.0);
        assert!((-1.0..0.0).contains(&neg));
    }

    #[test]
    fn geo_scoring_smooths_over_distance() {
        let (w, _, _, _, city1, city2) = world();
        let coords = pws_geo::WorldCoords::generate(&w, 1);
        let snippets = ["alden dinner", "x"];
        let onto = ontology(&w, &snippets);
        let mut p = LocationProfile::new();
        p.observe(&onto, &impression(&snippets, vec![(1, 500)]), &w, &cfg());
        // Exact scorer gives city2 zero; geo scorer gives it positive mass
        // proportional to proximity to the preferred city1.
        assert_eq!(p.score_locations([city2].into_iter()), 0.0);
        let geo = p.score_locations_geo([city2].into_iter(), &coords, 10_000.0);
        assert!(geo > 0.0, "broad kernel should endorse nearby city");
        // The preferred city itself always scores at least as high.
        let self_geo = p.score_locations_geo([city1].into_iter(), &coords, 10_000.0);
        assert!(self_geo >= geo);
        // A vanishing kernel degenerates towards the exact scorer.
        let tight = p.score_locations_geo([city2].into_iter(), &coords, 0.001);
        assert!(tight.abs() < 1e-6);
    }

    #[test]
    fn decay_forgets() {
        let (w, _, _, _, city1, _) = world();
        let snippets = ["alden dinner", "x"];
        let onto = ontology(&w, &snippets);
        let mut p = LocationProfile::new();
        let conf = LocationProfileConfig { decay: 0.5, ancestor_decay: 0.0, ..Default::default() };
        p.observe(&onto, &impression(&snippets, vec![(1, 500)]), &w, &conf);
        let w1 = p.weight(city1);
        let snippets2 = ["nothing here", "still nothing"];
        let onto2 = ontology(&w, &snippets2);
        p.observe(&onto2, &impression(&snippets2, vec![]), &w, &conf);
        assert!((p.weight(city1) - w1 * 0.5).abs() < 1e-9);
    }
}
