//! Spy Naive Bayes (SpyNB) preference mining.
//!
//! Joachims' skip-above pairs only treat documents ranked *above* a click
//! as negatives. The HKUST personalization line instead mines negatives
//! with **SpyNB**: clicked results are positives `P`, unclicked results are
//! *unlabeled* `U` (not necessarily disliked — maybe just unseen). A
//! fraction of `P` ("spies") is planted into `U`, a naive-Bayes classifier
//! is trained on `P \ spies` vs `U ∪ spies`, and the posterior threshold
//! that would recover the spies identifies the *reliable negatives* `N` —
//! unlabeled documents the classifier scores as less positive than almost
//! every spy. Preference pairs `p ≻ n, p ∈ P, n ∈ N` then train the
//! ranker.
//!
//! Documents are represented by their snippet term sets (the same analyzed
//! view the profiles use), so SpyNB needs no extra infrastructure.

use pws_click::Impression;
use pws_ranksvm::PreferencePair;
use pws_text::Analyzer;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::{BTreeSet, HashMap, HashSet};

/// SpyNB parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpyNbConfig {
    /// Fraction of positives planted as spies (the classic setting: 0.2).
    pub spy_fraction: f64,
    /// Quantile of spy posteriors used as the negative threshold: an
    /// unlabeled doc is a reliable negative when its positive-posterior is
    /// below this quantile of the spies' posteriors (0.1 = stricter than
    /// 90 % of spies).
    pub spy_quantile: f64,
    /// Laplace smoothing for the NB term estimates.
    pub smoothing: f64,
    /// RNG seed for spy selection.
    pub seed: u64,
}

impl Default for SpyNbConfig {
    fn default() -> Self {
        SpyNbConfig { spy_fraction: 0.2, spy_quantile: 0.15, smoothing: 1.0, seed: 31 }
    }
}

/// A bag-of-terms document for the NB classifier.
///
/// A `BTreeSet` so [`NaiveBayes::posterior`] accumulates the per-term
/// log-probabilities in sorted term order — with a `HashSet` the f64 sum
/// depends on per-process-random iteration order, which can flip a
/// doc across the reliable-negative threshold and make experiment
/// output differ between runs of the same binary.
type TermSet = BTreeSet<String>;

/// Binary naive-Bayes over term presence.
#[derive(Debug)]
struct NaiveBayes {
    /// log P(term | positive), with Laplace smoothing.
    pos_log: HashMap<String, f64>,
    /// log P(term | negative/unlabeled).
    neg_log: HashMap<String, f64>,
    /// Class log-priors.
    prior_pos: f64,
    prior_neg: f64,
    /// Fallback log-probability for unseen terms, per class.
    pos_unseen: f64,
    neg_unseen: f64,
}

impl NaiveBayes {
    fn train(pos: &[&TermSet], neg: &[&TermSet], smoothing: f64) -> Self {
        let vocab: HashSet<&String> =
            pos.iter().chain(neg).flat_map(|d| d.iter()).collect();
        let v = vocab.len().max(1) as f64;

        let count = |docs: &[&TermSet]| -> HashMap<String, f64> {
            let mut c: HashMap<String, f64> = HashMap::new();
            for d in docs {
                for t in d.iter() {
                    *c.entry(t.clone()).or_insert(0.0) += 1.0;
                }
            }
            c
        };
        let pc = count(pos);
        let nc = count(neg);
        let pn = pos.len().max(1) as f64;
        let nn = neg.len().max(1) as f64;

        let to_log = |c: HashMap<String, f64>, n: f64| -> HashMap<String, f64> {
            c.into_iter().map(|(t, k)| (t, ((k + smoothing) / (n + smoothing * v)).ln())).collect()
        };
        let total = (pos.len() + neg.len()).max(1) as f64;
        NaiveBayes {
            pos_log: to_log(pc, pn),
            neg_log: to_log(nc, nn),
            prior_pos: ((pos.len().max(1)) as f64 / total).ln(),
            prior_neg: ((neg.len().max(1)) as f64 / total).ln(),
            pos_unseen: (smoothing / (pn + smoothing * v)).ln(),
            neg_unseen: (smoothing / (nn + smoothing * v)).ln(),
        }
    }

    /// Posterior P(positive | doc) via the log-odds.
    fn posterior(&self, doc: &TermSet) -> f64 {
        let mut lp = self.prior_pos;
        let mut ln = self.prior_neg;
        for t in doc {
            lp += self.pos_log.get(t).copied().unwrap_or(self.pos_unseen);
            ln += self.neg_log.get(t).copied().unwrap_or(self.neg_unseen);
        }
        // Logistic of the log-odds, numerically safe.
        let odds = lp - ln;
        1.0 / (1.0 + (-odds).exp())
    }
}

/// Mine SpyNB preference pairs from one impression.
///
/// `features[i]` is the ranker feature vector of `imp.results[i]`; the
/// returned pairs are over those vectors, ready for the RankSVM.
pub fn mine_spynb_pairs(
    imp: &Impression,
    features: &[Vec<f64>],
    cfg: &SpyNbConfig,
) -> Vec<PreferencePair> {
    debug_assert_eq!(imp.results.len(), features.len());
    let analyzer = Analyzer::default();

    // Partition into positives (clicked) and unlabeled (shown, unclicked).
    let clicked: HashSet<u32> = imp.clicks.iter().map(|c| c.doc).collect();
    let mut pos_idx = Vec::new();
    let mut unl_idx = Vec::new();
    for (i, r) in imp.results.iter().enumerate() {
        if clicked.contains(&r.doc) {
            pos_idx.push(i);
        } else {
            unl_idx.push(i);
        }
    }
    // Degenerate impressions carry no preference information.
    if pos_idx.is_empty() || unl_idx.is_empty() {
        return Vec::new();
    }

    let docs: Vec<TermSet> = imp
        .results
        .iter()
        .map(|r| analyzer.analyze(&format!("{} {}", r.title, r.snippet)).into_iter().collect())
        .collect();

    // Plant spies.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ u64::from(imp.user.0) << 16 ^ u64::from(imp.query.0));
    let mut shuffled = pos_idx.clone();
    shuffled.shuffle(&mut rng);
    let n_spies = ((pos_idx.len() as f64 * cfg.spy_fraction).ceil() as usize)
        .clamp(1, pos_idx.len().saturating_sub(1).max(1));
    let spies: HashSet<usize> = shuffled.into_iter().take(n_spies).collect();
    let train_pos: Vec<&TermSet> =
        pos_idx.iter().filter(|i| !spies.contains(i)).map(|&i| &docs[i]).collect();
    let train_neg: Vec<&TermSet> = unl_idx
        .iter()
        .map(|&i| &docs[i])
        .chain(spies.iter().map(|&i| &docs[i]))
        .collect();
    // With a single positive, the spy set ate the whole training set; fall
    // back to using the spy itself as positive too (still informative).
    let train_pos: Vec<&TermSet> = if train_pos.is_empty() {
        spies.iter().map(|&i| &docs[i]).collect()
    } else {
        train_pos
    };

    let nb = NaiveBayes::train(&train_pos, &train_neg, cfg.smoothing);

    // Threshold at the spy-posterior quantile.
    let mut spy_posteriors: Vec<f64> = spies.iter().map(|&i| nb.posterior(&docs[i])).collect();
    spy_posteriors.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q_idx = ((spy_posteriors.len() as f64 - 1.0) * cfg.spy_quantile).round() as usize;
    let threshold = spy_posteriors[q_idx.min(spy_posteriors.len() - 1)];

    // Reliable negatives: unlabeled docs scored below the threshold.
    let negatives: Vec<usize> = unl_idx
        .iter()
        .copied()
        .filter(|&i| nb.posterior(&docs[i]) < threshold)
        .collect();

    let mut pairs = Vec::new();
    for &p in &pos_idx {
        for &n in &negatives {
            pairs.push(PreferencePair::new(features[p].clone(), features[n].clone()));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use pws_click::{Click, ShownResult, UserId};
    use pws_corpus::query::QueryId;

    fn imp(snippets: &[&str], clicked: &[usize]) -> (Impression, Vec<Vec<f64>>) {
        let results: Vec<ShownResult> = snippets
            .iter()
            .enumerate()
            .map(|(i, s)| ShownResult {
                doc: i as u32,
                rank: i + 1,
                url: format!("u{i}"),
                title: String::new(),
                snippet: s.to_string(),
            })
            .collect();
        let clicks = clicked
            .iter()
            .map(|&i| Click { doc: i as u32, rank: i + 1, dwell: 500 })
            .collect();
        let features: Vec<Vec<f64>> = (0..snippets.len()).map(|i| vec![i as f64]).collect();
        (
            Impression {
                user: UserId(0),
                query: QueryId(0),
                query_text: "q".into(),
                results,
                clicks,
            },
            features,
        )
    }

    #[test]
    fn no_clicks_no_pairs() {
        let (i, f) = imp(&["a b", "c d"], &[]);
        assert!(mine_spynb_pairs(&i, &f, &SpyNbConfig::default()).is_empty());
    }

    #[test]
    fn all_clicked_no_pairs() {
        let (i, f) = imp(&["a b", "c d"], &[0, 1]);
        assert!(mine_spynb_pairs(&i, &f, &SpyNbConfig::default()).is_empty());
    }

    #[test]
    fn dissimilar_unclicked_become_negatives() {
        // Positives all about seafood; one unlabeled doc about phones is
        // clearly negative, another near-duplicate seafood doc should be
        // spared (it resembles the spies).
        let (i, f) = imp(
            &[
                "seafood lobster dinner specials",
                "seafood lobster platter fresh",
                "seafood lobster rolls harbor",
                "android smartphone battery charger",
                "seafood lobster dinner fresh harbor",
            ],
            &[0, 1, 2],
        );
        let pairs = mine_spynb_pairs(&i, &f, &SpyNbConfig::default());
        // Pairs must only demote the phone doc (index 3), never the
        // seafood look-alike (index 4).
        assert!(!pairs.is_empty(), "expected pairs against the phone doc");
        for p in &pairs {
            assert_eq!(p.worse, vec![3.0], "unexpected negative: {:?}", p.worse);
            assert!(p.better[0] <= 2.0);
        }
    }

    #[test]
    fn pairs_are_pos_cross_negatives() {
        let (i, f) = imp(
            &[
                "seafood lobster dinner",
                "seafood lobster fresh",
                "seafood lobster rolls",
                "android smartphone battery",
                "diesel sedan horsepower",
            ],
            &[0, 1, 2],
        );
        let pairs = mine_spynb_pairs(&i, &f, &SpyNbConfig::default());
        // Every pair's better side is a clicked doc.
        for p in &pairs {
            assert!(p.better[0] <= 2.0);
            assert!(p.worse[0] >= 3.0);
        }
        // At most |P| × |N| pairs.
        assert!(pairs.len() <= 3 * 2);
    }

    #[test]
    fn deterministic_given_config() {
        let (i, f) = imp(
            &["seafood lobster", "seafood fresh", "android phone", "diesel sedan"],
            &[0, 1],
        );
        let a = mine_spynb_pairs(&i, &f, &SpyNbConfig::default());
        let b = mine_spynb_pairs(&i, &f, &SpyNbConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn single_click_still_works() {
        let (i, f) = imp(
            &["seafood lobster dinner", "android smartphone battery", "diesel sedan engine"],
            &[0],
        );
        // One positive: the spy fallback path must not panic and may or
        // may not produce pairs.
        let pairs = mine_spynb_pairs(&i, &f, &SpyNbConfig::default());
        for p in &pairs {
            assert_eq!(p.better, vec![0.0]);
        }
    }

    #[test]
    fn posterior_is_probability() {
        let pos_doc: TermSet = ["seafood", "lobster"].iter().map(|s| s.to_string()).collect();
        let neg_doc: TermSet = ["android", "battery"].iter().map(|s| s.to_string()).collect();
        let nb = NaiveBayes::train(&[&pos_doc], &[&neg_doc], 1.0);
        for d in [&pos_doc, &neg_doc] {
            let p = nb.posterior(d);
            assert!((0.0..=1.0).contains(&p), "posterior {p}");
        }
        assert!(nb.posterior(&pos_doc) > nb.posterior(&neg_doc));
    }
}
