//! # pws-profile — ontology-based user profiles from clickthrough
//!
//! The paper's central data structure: per-user preference profiles over
//! the two concept spaces, mined from clicks.
//!
//! * [`content_profile::ContentProfile`] — weights over content concepts.
//!   A click on a result adds (dwell-scaled) positive mass to the concepts
//!   visible in its snippet and spreads a fraction to related concepts via
//!   the concept graph; a *skip* (unclicked result above the deepest click,
//!   Joachims' skip-above) subtracts mass.
//! * [`location_profile::LocationProfile`] — weights over the location
//!   ontology. Clicked mass propagates up the ontology with decay, so a
//!   user who clicks "port alden" results also mildly prefers "north vale".
//! * [`history::UserHistory`] — clicked URL/domain counts, feeding the
//!   revisit features.
//! * [`features::FeatureExtractor`] — assembles the per-result feature
//!   vectors (baseline score, content score, location score, rank prior,
//!   title match, revisit signals) the RankSVM ranks with.
//! * [`pairs`] — preference-pair mining (click ≻ skip-above) that turns an
//!   impression into RankSVM training pairs.

pub mod content_profile;
pub mod features;
pub mod history;
pub mod location_profile;
pub mod pairs;
pub mod spynb;

pub use content_profile::{ContentProfile, ContentProfileConfig};
pub use features::{FeatureExtractor, GeoContext, ResultFeatureInput, FEATURE_DIM, FEATURE_NAMES};
pub use history::UserHistory;
pub use location_profile::{LocationProfile, LocationProfileConfig};
pub use pairs::{mine_pairs, PairMiningConfig};
pub use spynb::{mine_spynb_pairs, SpyNbConfig};
