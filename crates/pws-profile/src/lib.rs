//! # pws-profile — ontology-based user profiles from clickthrough
//!
//! The paper's central data structure: per-user preference profiles over
//! the two concept spaces, mined from clicks.
//!
//! * [`content_profile::ContentProfile`] — weights over content concepts.
//!   A click on a result adds (dwell-scaled) positive mass to the concepts
//!   visible in its snippet and spreads a fraction to related concepts via
//!   the concept graph; a *skip* (unclicked result above the deepest click,
//!   Joachims' skip-above) subtracts mass.
//! * [`location_profile::LocationProfile`] — weights over the location
//!   ontology. Clicked mass propagates up the ontology with decay, so a
//!   user who clicks "port alden" results also mildly prefers "north vale".
//! * [`history::UserHistory`] — clicked URL/domain counts, feeding the
//!   revisit features.
//! * [`features::FeatureExtractor`] — assembles the per-result feature
//!   vectors (baseline score, content score, location score, rank prior,
//!   title match, revisit signals) the RankSVM ranks with.
//! * [`pairs`] — preference-pair mining (click ≻ skip-above) that turns an
//!   impression into RankSVM training pairs.

pub mod content_profile;
pub mod features;
pub mod history;
pub mod location_profile;
pub mod pairs;
pub mod spynb;

pub use content_profile::{ContentProfile, ContentProfileConfig};
pub use features::{FeatureExtractor, GeoContext, ResultFeatureInput, FEATURE_DIM, FEATURE_NAMES};
pub use history::UserHistory;
pub use location_profile::{LocationProfile, LocationProfileConfig};
pub use pairs::{mine_pairs, PairMiningConfig};
pub use spynb::{mine_spynb_pairs, SpyNbConfig};

/// Sum of absolute values, accumulated in sorted order.
///
/// Floating-point addition is not associative, so summing a `HashMap`'s
/// values in iteration order makes the result depend on the particular
/// map *instance* (std maps seed their hasher per instance). Profile
/// scoring normalizes by L1 mass; computing that mass through this
/// helper keeps scores bit-identical for logically equal profiles —
/// the property the serial-vs-sharded replay equivalence tests pin.
pub(crate) fn sorted_l1(values: impl Iterator<Item = f64>) -> f64 {
    let mut v: Vec<f64> = values.map(f64::abs).collect();
    v.sort_by(f64::total_cmp);
    v.iter().sum()
}
