//! The content-preference profile.

use pws_click::Impression;
use pws_concepts::QueryConceptOntology;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Profile update parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentProfileConfig {
    /// Mass added per clicked concept, scaled by (1 + dwell grade).
    pub click_weight: f64,
    /// Mass subtracted per skipped concept.
    pub skip_penalty: f64,
    /// Fraction of clicked mass spread to graph neighbors (0 disables the
    /// expansion — the GCS ablation of F7).
    pub graph_damping: f64,
    /// Multiplicative decay applied to all weights before each observation
    /// (1.0 = no forgetting).
    pub decay: f64,
    /// Minimum dwell grade for a click to count as positive evidence
    /// (SAT-click filtering: 1 drops bounce clicks, 0 counts every click).
    pub min_dwell_grade: u32,
}

impl Default for ContentProfileConfig {
    fn default() -> Self {
        ContentProfileConfig {
            click_weight: 1.0,
            skip_penalty: 0.5,
            graph_damping: 0.1,
            decay: 0.995,
            min_dwell_grade: 1,
        }
    }
}

/// Weights over content-concept terms for one user.
///
/// Weights may be negative (persistently skipped concepts); scoring
/// normalizes by the profile's L1 mass so scores stay comparable as the
/// profile grows.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ContentProfile {
    weights: HashMap<String, f64>,
    /// Number of observations folded in (for diagnostics/cold-start logic).
    observations: u64,
}

impl ContentProfile {
    /// Fresh, empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of impressions observed.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Number of concepts with non-zero weight.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True when nothing has been learned yet.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Current weight of a concept term (0 when unseen).
    pub fn weight(&self, term: &str) -> f64 {
        self.weights.get(term).copied().unwrap_or(0.0)
    }

    /// All `(term, weight)` entries in ascending term order — the
    /// canonical vector view used by persistence and quantization
    /// (`pws-store`): sorted order makes encoded bytes independent of the
    /// map instance's iteration order.
    pub fn weight_entries(&self) -> Vec<(String, f64)> {
        let mut v: Vec<(String, f64)> =
            self.weights.iter().map(|(t, w)| (t.clone(), *w)).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Rebuild a profile from `(term, weight)` entries and an observation
    /// count — the inverse of [`Self::weight_entries`], used when a stored
    /// record is faulted back in. Duplicate terms sum.
    pub fn from_entries(entries: Vec<(String, f64)>, observations: u64) -> Self {
        let mut weights = HashMap::with_capacity(entries.len());
        for (t, w) in entries {
            *weights.entry(t).or_insert(0.0) += w;
        }
        ContentProfile { weights, observations }
    }

    /// The `k` highest-weighted concepts, descending, ties by term.
    pub fn top_concepts(&self, k: usize) -> Vec<(String, f64)> {
        let mut v: Vec<(String, f64)> =
            self.weights.iter().map(|(t, w)| (t.clone(), *w)).collect();
        v.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        v.truncate(k);
        v
    }

    /// Fold one impression into the profile.
    ///
    /// `onto` must be the concept ontology extracted from this impression's
    /// snippets (indices in `onto.content_by_snippet` align with
    /// `imp.results` order).
    pub fn observe(
        &mut self,
        onto: &QueryConceptOntology,
        imp: &Impression,
        cfg: &ContentProfileConfig,
    ) {
        // Forgetting.
        if cfg.decay < 1.0 {
            for w in self.weights.values_mut() {
                *w *= cfg.decay;
            }
        }

        // Positive signal: clicks, scaled by dwell satisfaction. Bounce
        // clicks (dwell grade below the SAT threshold) carry no positive
        // evidence — they are navigation noise, not preference.
        //
        // Each concept's update is further scaled by `1 − support`: a
        // concept present in (nearly) every snippet of the page — filler
        // like "best" or "guide" — is clicked whenever *anything* is
        // clicked and carries no preference information; without this
        // factor such concepts drown the discriminative ones.
        for click in &imp.clicks {
            if click.dwell_grade() < cfg.min_dwell_grade {
                continue;
            }
            let idx = click.rank - 1;
            let Some(concepts) = onto.content_by_snippet.get(idx) else { continue };
            let strength = cfg.click_weight * (1.0 + f64::from(click.dwell_grade()));
            for &ci in concepts {
                let disc = (1.0 - onto.content[ci].support).clamp(0.0, 1.0);
                if disc == 0.0 {
                    continue;
                }
                let term = &onto.content[ci].term;
                *self.weights.entry(term.clone()).or_insert(0.0) += strength * disc;
                // Concept-graph expansion.
                if cfg.graph_damping > 0.0 {
                    for (cj, mass) in onto.graph.spread(ci, strength * disc, cfg.graph_damping) {
                        let t = &onto.content[cj].term;
                        *self.weights.entry(t.clone()).or_insert(0.0) += mass;
                    }
                }
            }
        }

        // Negative signal: skip-above documents, same discriminativeness
        // scaling.
        for skipped in imp.skipped() {
            let idx = skipped.rank - 1;
            let Some(concepts) = onto.content_by_snippet.get(idx) else { continue };
            for &ci in concepts {
                let disc = (1.0 - onto.content[ci].support).clamp(0.0, 1.0);
                let term = &onto.content[ci].term;
                *self.weights.entry(term.clone()).or_insert(0.0) -= cfg.skip_penalty * disc;
            }
        }

        // Drop vanished weights to keep the profile compact.
        self.weights.retain(|_, w| w.abs() > 1e-9);
        self.observations += 1;
    }

    /// The profile's L1 mass, summed in sorted order so the value is
    /// identical for logically equal profiles regardless of the map's
    /// per-instance iteration order (replay determinism).
    fn l1(&self) -> f64 {
        crate::sorted_l1(self.weights.values().copied())
    }

    /// Preference score of a snippet given the concepts present in it:
    /// the sum of their weights, normalized by the profile's L1 mass.
    /// Returns 0 for an empty profile (cold start → neutral).
    pub fn score_concepts<'a>(&self, terms: impl Iterator<Item = &'a str>) -> f64 {
        let l1 = self.l1();
        if l1 == 0.0 {
            return 0.0;
        }
        terms.map(|t| self.weight(t)).sum::<f64>() / l1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pws_click::{Click, ShownResult};
    use pws_click::UserId;
    use pws_concepts::{ConceptConfig, LocationConceptConfig};
    use pws_corpus::query::QueryId;
    use pws_geo::{LocId, LocationMatcher, LocationOntology};

    fn world() -> LocationOntology {
        let mut o = LocationOntology::new();
        let r = o.add(LocId::WORLD, "westland", vec![]);
        let c = o.add(r, "ardonia", vec![]);
        let s = o.add(c, "vale", vec![]);
        o.add(s, "alden", vec![]);
        o
    }

    fn ontology(snippets: &[&str]) -> QueryConceptOntology {
        let w = world();
        let m = LocationMatcher::build(&w);
        let snips: Vec<String> = snippets.iter().map(|s| s.to_string()).collect();
        QueryConceptOntology::extract(
            "restaurant",
            &snips,
            &m,
            &w,
            &ConceptConfig { min_support: 0.0, min_snippet_freq: 1, bigrams: false, max_concepts: 50 },
            &LocationConceptConfig { min_support: 0.0, ..Default::default() },
        )
    }

    fn impression(snippets: &[&str], clicks: Vec<(usize, u32)>) -> Impression {
        Impression {
            user: UserId(0),
            query: QueryId(0),
            query_text: "restaurant".into(),
            results: snippets
                .iter()
                .enumerate()
                .map(|(i, s)| ShownResult {
                    doc: i as u32,
                    rank: i + 1,
                    url: format!("u{i}"),
                    title: "t".into(),
                    snippet: s.to_string(),
                })
                .collect(),
            clicks: clicks
                .into_iter()
                .map(|(rank, dwell)| Click { doc: (rank - 1) as u32, rank, dwell })
                .collect(),
        }
    }

    fn cfg() -> ContentProfileConfig {
        ContentProfileConfig { graph_damping: 0.0, decay: 1.0, ..Default::default() }
    }

    #[test]
    fn clicks_add_positive_weight() {
        let snippets = ["seafood lobster", "sushi bar"];
        let onto = ontology(&snippets);
        let imp = impression(&snippets, vec![(1, 500)]);
        let mut p = ContentProfile::new();
        p.observe(&onto, &imp, &cfg());
        assert!(p.weight("seafood") > 0.0);
        assert!(p.weight("lobster") > 0.0);
        assert_eq!(p.weight("sushi"), 0.0);
        assert_eq!(p.observations(), 1);
    }

    #[test]
    fn dwell_scales_click_strength() {
        let snippets = ["seafood platter", "filler text"];
        let onto = ontology(&snippets);
        let mut weak = ContentProfile::new();
        weak.observe(&onto, &impression(&snippets, vec![(1, 10)]), &cfg());
        let mut strong = ContentProfile::new();
        strong.observe(&onto, &impression(&snippets, vec![(1, 900)]), &cfg());
        assert!(strong.weight("seafood") > weak.weight("seafood"));
    }

    #[test]
    fn skipped_results_get_penalized() {
        let snippets = ["sushi bar", "seafood lobster"];
        let onto = ontology(&snippets);
        // Click rank 2, skip rank 1.
        let imp = impression(&snippets, vec![(2, 500)]);
        let mut p = ContentProfile::new();
        p.observe(&onto, &imp, &cfg());
        assert!(p.weight("sushi") < 0.0);
        assert!(p.weight("seafood") > 0.0);
    }

    #[test]
    fn graph_expansion_spreads_mass() {
        // seafood and lobster always co-occur → graph edge; clicking a
        // snippet with only one is impossible here, so craft snippets where
        // snippet 0 has both and check a third concept stays untouched.
        let snippets = ["seafood lobster", "seafood lobster", "sushi bar"];
        let onto = ontology(&snippets);
        let imp = impression(&snippets, vec![(1, 500)]);
        let mut no_graph = ContentProfile::new();
        no_graph.observe(&onto, &imp, &cfg());
        let mut with_graph = ContentProfile::new();
        with_graph.observe(
            &onto,
            &imp,
            &ContentProfileConfig { graph_damping: 0.5, decay: 1.0, ..Default::default() },
        );
        // With expansion, co-occurring concepts reinforce each other.
        assert!(with_graph.weight("seafood") > no_graph.weight("seafood"));
        assert_eq!(with_graph.weight("sushi"), 0.0);
    }

    #[test]
    fn decay_forgets_old_mass() {
        let snippets = ["seafood platter", "x y"];
        let onto = ontology(&snippets);
        let imp = impression(&snippets, vec![(1, 500)]);
        let mut p = ContentProfile::new();
        let c = ContentProfileConfig { decay: 0.5, graph_damping: 0.0, ..Default::default() };
        p.observe(&onto, &imp, &c);
        let w1 = p.weight("seafood");
        // Observe an unrelated impression: seafood mass should halve.
        let snippets2 = ["unrelated things", "more unrelated"];
        let onto2 = ontology(&snippets2);
        let imp2 = impression(&snippets2, vec![]);
        p.observe(&onto2, &imp2, &c);
        assert!((p.weight("seafood") - w1 * 0.5).abs() < 1e-9);
    }

    #[test]
    fn score_concepts_is_normalized_and_signed() {
        let snippets = ["seafood lobster", "sushi bar"];
        let onto = ontology(&snippets);
        let imp = impression(&snippets, vec![(2, 500)]); // skip 1, click 2... wait
        // Clicking rank 2 ("sushi bar") and skipping rank 1.
        let mut p = ContentProfile::new();
        p.observe(&onto, &imp, &cfg());
        let pos = p.score_concepts(["sushi"].into_iter());
        let neg = p.score_concepts(["seafood"].into_iter());
        assert!(pos > 0.0);
        assert!(neg < 0.0);
        assert!(pos <= 1.0 && neg >= -1.0);
    }

    #[test]
    fn empty_profile_scores_zero() {
        let p = ContentProfile::new();
        assert_eq!(p.score_concepts(["anything"].into_iter()), 0.0);
        assert!(p.is_empty());
    }

    #[test]
    fn top_concepts_ordering() {
        let snippets = ["seafood seafood lobster", "seafood crab"];
        let onto = ontology(&snippets);
        let mut p = ContentProfile::new();
        p.observe(&onto, &impression(&snippets, vec![(1, 500), (2, 500)]), &cfg());
        let top = p.top_concepts(2);
        assert_eq!(top.len(), 2);
        assert!(top[0].1 >= top[1].1);
        // "seafood" appears in every snippet (support 1.0) → it is
        // non-discriminative and receives no mass; the subtopic angles do.
        assert_eq!(p.weight("seafood"), 0.0);
        assert!(p.weight("lobster") > 0.0);
        assert!(p.weight("crab") > 0.0);
    }

    #[test]
    fn ubiquitous_concepts_receive_no_mass() {
        let snippets = ["filler seafood", "filler sushi"];
        let onto = ontology(&snippets);
        let mut p = ContentProfile::new();
        p.observe(&onto, &impression(&snippets, vec![(1, 500)]), &cfg());
        assert_eq!(p.weight("filler"), 0.0, "support-1.0 concept must stay at 0");
        assert!(p.weight("seafood") > 0.0);
    }
}
