//! Preference-pair mining from clickthrough (Joachims, 2002).
//!
//! The clicks in an impression are *relative* judgments: a clicked result
//! was preferred over the results the user demonstrably saw and passed
//! over. Two strategies, both enabled by default:
//!
//! * **click ≻ skip-above** — the clicked doc beats every unclicked doc
//!   ranked above it (those were certainly examined);
//! * **click ≻ next-unclicked** — the clicked doc beats the first unclicked
//!   doc directly below it (likely examined too).

use pws_click::Impression;
use pws_ranksvm::PreferencePair;

/// Mining strategy switches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairMiningConfig {
    /// Mine click ≻ skip-above pairs.
    pub skip_above: bool,
    /// Mine click ≻ first-unclicked-below pairs.
    pub next_unclicked: bool,
    /// Cap on pairs per impression (0 = unlimited).
    pub max_pairs: usize,
    /// Minimum dwell grade for a click to seed pairs (SAT filtering —
    /// bounce clicks express curiosity, not preference).
    pub min_dwell_grade: u32,
}

impl Default for PairMiningConfig {
    fn default() -> Self {
        PairMiningConfig { skip_above: true, next_unclicked: true, max_pairs: 0, min_dwell_grade: 1 }
    }
}

/// Mine preference pairs from one impression.
///
/// `features[i]` is the feature vector of `imp.results[i]` (same order).
pub fn mine_pairs(
    imp: &Impression,
    features: &[Vec<f64>],
    cfg: &PairMiningConfig,
) -> Vec<PreferencePair> {
    debug_assert_eq!(imp.results.len(), features.len());
    let mut pairs = Vec::new();
    let clicked_ranks: Vec<usize> = imp.clicks.iter().map(|c| c.rank).collect();
    let is_clicked = |rank: usize| clicked_ranks.contains(&rank);

    for click in &imp.clicks {
        if click.dwell_grade() < cfg.min_dwell_grade {
            continue;
        }
        let ci = click.rank - 1;
        let Some(cf) = features.get(ci) else { continue };

        if cfg.skip_above {
            for r in imp.results.iter().filter(|r| r.rank < click.rank && !is_clicked(r.rank)) {
                let si = r.rank - 1;
                if let Some(sf) = features.get(si) {
                    pairs.push(PreferencePair::new(cf.clone(), sf.clone()));
                }
            }
        }
        if cfg.next_unclicked {
            if let Some(r) = imp
                .results
                .iter()
                .filter(|r| r.rank > click.rank && !is_clicked(r.rank))
                .min_by_key(|r| r.rank)
            {
                let si = r.rank - 1;
                if let Some(sf) = features.get(si) {
                    pairs.push(PreferencePair::new(cf.clone(), sf.clone()));
                }
            }
        }
    }

    if cfg.max_pairs > 0 && pairs.len() > cfg.max_pairs {
        pairs.truncate(cfg.max_pairs);
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use pws_click::{Click, ShownResult, UserId};
    use pws_corpus::query::QueryId;

    fn imp(n: usize, clicks: &[usize]) -> (Impression, Vec<Vec<f64>>) {
        let results = (0..n)
            .map(|i| ShownResult {
                doc: i as u32,
                rank: i + 1,
                url: format!("u{i}"),
                title: "t".into(),
                snippet: "s".into(),
            })
            .collect();
        let clicks = clicks
            .iter()
            .map(|&r| Click { doc: (r - 1) as u32, rank: r, dwell: 100 })
            .collect();
        let features: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        (
            Impression {
                user: UserId(0),
                query: QueryId(0),
                query_text: "q".into(),
                results,
                clicks,
            },
            features,
        )
    }

    fn cfg(skip_above: bool, next_unclicked: bool) -> PairMiningConfig {
        PairMiningConfig { skip_above, next_unclicked, max_pairs: 0, min_dwell_grade: 0 }
    }

    #[test]
    fn no_clicks_no_pairs() {
        let (i, f) = imp(5, &[]);
        assert!(mine_pairs(&i, &f, &PairMiningConfig::default()).is_empty());
    }

    #[test]
    fn skip_above_pairs() {
        // Click rank 3; ranks 1 and 2 skipped.
        let (i, f) = imp(5, &[3]);
        let pairs = mine_pairs(&i, &f, &cfg(true, false));
        assert_eq!(pairs.len(), 2);
        for p in &pairs {
            assert_eq!(p.better, vec![2.0]); // rank-3 doc's features
            assert!(p.worse == vec![0.0] || p.worse == vec![1.0]);
        }
    }

    #[test]
    fn next_unclicked_pair() {
        let (i, f) = imp(5, &[2]);
        let pairs = mine_pairs(&i, &f, &cfg(false, true));
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].better, vec![1.0]);
        assert_eq!(pairs[0].worse, vec![2.0]); // rank 3 is the next unclicked
    }

    #[test]
    fn clicked_docs_never_appear_as_worse() {
        let (i, f) = imp(5, &[1, 3]);
        let pairs = mine_pairs(&i, &f, &PairMiningConfig::default());
        for p in &pairs {
            // Doc features are [rank-1]; clicked ranks 1 and 3 → features 0.0 and 2.0.
            assert!(p.worse != vec![0.0] && p.worse != vec![2.0], "clicked doc as worse: {p:?}");
        }
    }

    #[test]
    fn rank_one_click_has_no_skip_above() {
        let (i, f) = imp(5, &[1]);
        let pairs = mine_pairs(&i, &f, &cfg(true, false));
        assert!(pairs.is_empty());
    }

    #[test]
    fn last_rank_click_has_no_next_unclicked() {
        let (i, f) = imp(3, &[3]);
        let pairs = mine_pairs(&i, &f, &cfg(false, true));
        assert!(pairs.is_empty());
    }

    #[test]
    fn max_pairs_caps() {
        let (i, f) = imp(10, &[10]);
        let c = PairMiningConfig { skip_above: true, next_unclicked: false, max_pairs: 3, min_dwell_grade: 0 };
        assert_eq!(mine_pairs(&i, &f, &c).len(), 3);
    }

    #[test]
    fn both_strategies_compose() {
        let (i, f) = imp(5, &[3]);
        let pairs = mine_pairs(&i, &f, &PairMiningConfig::default());
        // 2 skip-above + 1 next-unclicked.
        assert_eq!(pairs.len(), 3);
    }
}
