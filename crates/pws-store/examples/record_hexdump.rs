//! Print an annotated hexdump of a small encoded user record.
//!
//! ```text
//! cargo run -p pws-store --example record_hexdump
//! ```
//!
//! The output is the source of the worked example in
//! `docs/STORE_FORMAT.md` — rerun this after any codec change and
//! refresh the doc from it.

use pws_click::UserId;
use pws_core::UserState;
use pws_entropy::QueryStats;
use pws_geo::LocId;
use pws_profile::{ContentProfile, LocationProfile, UserHistory};
use pws_ranksvm::{LinearRankModel, PreferencePair};
use pws_store::{
    encode_user_record, SectionId, UserRecord, SECTION_ENTRY_LEN, TABLE_OFFSET,
};
use std::collections::BTreeMap;

fn tiny_record() -> UserRecord {
    let mut state = UserState::new();
    state.model = LinearRankModel::from_weights(vec![0.5, -1.0]);
    state.pairs = vec![PreferencePair { better: vec![1.0, 0.0], worse: vec![0.0, 1.0] }];
    state.content = ContentProfile::from_entries(vec![("fish".into(), 0.75)], 2);
    state.location = LocationProfile::from_entries(vec![(LocId(3), 1.0)], 1);
    state.history =
        UserHistory::from_entries(vec![("http://a/0".into(), 2)], vec![("a".into(), 2)], 2);
    state.observations = 2;
    state.seen_queries = vec!["fish".into()];
    let mut stats = BTreeMap::new();
    stats.insert(
        "fish".into(),
        QueryStats::from_parts(vec![], vec![("fish".into(), 1.0)], vec![], 2, 1),
    );
    UserRecord::new(UserId(0xAB), state, stats)
}

fn hexline(offset: usize, bytes: &[u8], note: &str) {
    let hex: Vec<String> = bytes.iter().map(|b| format!("{b:02x}")).collect();
    println!("{offset:06x}  {:<48}  {note}", hex.join(" "));
}

fn main() {
    let record = tiny_record();
    let bytes = encode_user_record(&record);
    println!("total: {} bytes\n", bytes.len());

    hexline(0, &bytes[0..8], "magic \"PWSUSR1\\0\"");
    hexline(8, &bytes[8..12], "format_version = 1 (u32 LE)");
    hexline(12, &bytes[12..16], "section_count = 8 (u32 LE)");
    println!();

    for (i, id) in SectionId::ALL.iter().enumerate() {
        let at = TABLE_OFFSET + i * SECTION_ENTRY_LEN;
        let e = &bytes[at..at + SECTION_ENTRY_LEN];
        let off = u64::from_le_bytes(e[4..12].try_into().unwrap());
        let len = u64::from_le_bytes(e[12..20].try_into().unwrap());
        let sum = u64::from_le_bytes(e[20..28].try_into().unwrap());
        hexline(
            at,
            &e[0..4],
            &format!("entry {i}: id={} ({}) flags=0", *id as u16, id.name()),
        );
        hexline(at + 4, &e[4..12], &format!("  offset = {off}"));
        hexline(at + 12, &e[12..20], &format!("  len = {len}"));
        hexline(at + 20, &e[20..28], &format!("  fnv1a64 = {sum:#018x}"));
    }
    println!();

    for (i, id) in SectionId::ALL.iter().enumerate() {
        let at = TABLE_OFFSET + i * SECTION_ENTRY_LEN;
        let e = &bytes[at..at + SECTION_ENTRY_LEN];
        let off = u64::from_le_bytes(e[4..12].try_into().unwrap()) as usize;
        let len = u64::from_le_bytes(e[12..20].try_into().unwrap()) as usize;
        println!("-- section {} ({} bytes) --", id.name(), len);
        for row in bytes[off..off + len].chunks(16).enumerate() {
            hexline(off + row.0 * 16, row.1, "");
        }
    }
}
