//! Directory-backed user-record store: one codec file per user.
//!
//! Writes are atomic-ish (temp file + rename on the same filesystem), so
//! a concurrent reader sees either the previous complete record or the
//! new complete record, never a torn write. Distinct users never contend;
//! concurrent writers of the *same* user last-write-win at the rename.

use crate::codec::{decode_user_record, encode_user_record, StoreError, UserRecord};
use pws_click::UserId;
use pws_obs::StageMetrics;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::sync::OnceLock;

fn read_stage() -> &'static Arc<StageMetrics> {
    static STAGE: OnceLock<Arc<StageMetrics>> = OnceLock::new();
    STAGE.get_or_init(|| pws_obs::stage("store.read"))
}

fn write_stage() -> &'static Arc<StageMetrics> {
    static STAGE: OnceLock<Arc<StageMetrics>> = OnceLock::new();
    STAGE.get_or_init(|| pws_obs::stage("store.write"))
}

/// A directory of user records.
#[derive(Debug, Clone)]
pub struct UserStore {
    dir: PathBuf,
}

impl UserStore {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| StoreError::Io(e.to_string()))?;
        Ok(UserStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, user: UserId) -> PathBuf {
        self.dir.join(format!("user-{:08x}.pwsu", user.0))
    }

    /// Persist one record (encode + temp write + rename).
    pub fn put(&self, record: &UserRecord) -> Result<(), StoreError> {
        let _span = write_stage().span();
        let bytes = encode_user_record(record);
        let path = self.path_for(record.user);
        let tmp = self.dir.join(format!(".user-{:08x}.tmp", record.user.0));
        fs::write(&tmp, &bytes).map_err(|e| StoreError::Io(e.to_string()))?;
        fs::rename(&tmp, &path).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            StoreError::Io(e.to_string())
        })
    }

    /// Load one record. `Ok(None)` when the user has never been written;
    /// a present-but-unreadable record is an `Err` (corruption must
    /// surface as a typed error, not as a silently fresh user).
    pub fn get(&self, user: UserId) -> Result<Option<UserRecord>, StoreError> {
        let _span = read_stage().span();
        let path = self.path_for(user);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::Io(e.to_string())),
        };
        decode_user_record(&bytes).map(Some)
    }

    /// Whether a record exists for `user` (no decode).
    pub fn contains(&self, user: UserId) -> bool {
        self.path_for(user).exists()
    }

    /// Delete a user's record. `Ok(true)` if one existed.
    pub fn remove(&self, user: UserId) -> Result<bool, StoreError> {
        match fs::remove_file(self.path_for(user)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(StoreError::Io(e.to_string())),
        }
    }

    /// All user ids with a record, ascending.
    pub fn users(&self) -> Result<Vec<UserId>, StoreError> {
        let mut out = Vec::new();
        let entries = fs::read_dir(&self.dir).map_err(|e| StoreError::Io(e.to_string()))?;
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::Io(e.to_string()))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(hex) = name.strip_prefix("user-").and_then(|n| n.strip_suffix(".pwsu"))
            else {
                continue;
            };
            if let Ok(id) = u32::from_str_radix(hex, 16) {
                out.push(UserId(id));
            }
        }
        out.sort();
        Ok(out)
    }

    /// Number of stored records.
    pub fn len(&self) -> Result<usize, StoreError> {
        Ok(self.users()?.len())
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> Result<bool, StoreError> {
        Ok(self.users()?.is_empty())
    }
}
