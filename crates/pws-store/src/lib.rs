//! # pws-store — tiered persistence for per-user state
//!
//! The paper's premise is durable per-user concept/location profiles;
//! this crate is where they become durable. It provides the three layers
//! under the serving tier's LRU residency machinery (`pws-serve`):
//!
//! 1. **A binary user-record codec** ([`codec`]): versioned, checksummed
//!    (`PWSUSR1\0`, section table + FNV-1a-64 per section — the
//!    `docs/INDEX_FORMAT.md` idiom), capturing the *complete*
//!    replay-relevant state: profiles, RankSVM weights, revisit history,
//!    preference pairs, **and** the per-query adaptive-β statistics the
//!    old JSON export silently dropped. Encoding is canonical (sorted
//!    maps, `f64::to_bits` little-endian), so equal logical records have
//!    equal bytes and a faulted-in user replays **byte-identically**.
//! 2. **Product-quantized cold vectors** ([`pq`]): per-record codebooks
//!    compress the weight vectors to one byte per dimension for
//!    scan-time analytics; the exact sections are always kept alongside,
//!    so the quantized form never touches the serving path.
//! 3. **A directory store** ([`store`]): one file per user, temp-file +
//!    rename writes, typed [`StoreError`] on every corruption.
//!
//! See `docs/STORE_FORMAT.md` for the byte-level format specification.

pub mod codec;
pub mod pq;
pub mod store;

pub use codec::{
    decode_user_record, encode_user_record, fnv1a64, QuantizedVectors, SectionId, StoreError,
    UserRecord, FORMAT_VERSION, SECTION_ENTRY_LEN, STORE_MAGIC, TABLE_OFFSET,
};
pub use pq::ProductQuantizer;
pub use store::UserStore;
