//! Product quantization for cold-tier vector storage.
//!
//! A [`ProductQuantizer`] splits a `dim`-dimensional vector into `m`
//! contiguous subspaces (`dim % m == 0`) and learns, per subspace, a
//! codebook of `k ≤ 256` centroids with Lloyd's k-means. A vector is
//! stored cold as `m` bytes — one centroid index per subspace — and
//! reconstructed as the concatenation of its centroids.
//!
//! Everything is **deterministic**: seeded SplitMix64 initialization,
//! fixed iteration order, ties broken by lowest index. Training the same
//! vector set with the same parameters always produces the same codebook,
//! so the record codec's bytes are a pure function of the record.
//!
//! The quantized form is *approximate* and serves scan/analytics over
//! cold records; fault-in always reads the exact bit-level sections.

/// SplitMix64 — the repo's standard seeding PRNG.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A trained product quantizer: `m` subspaces × `k` centroids over
/// `dim`-dimensional vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct ProductQuantizer {
    dim: usize,
    m: usize,
    k: usize,
    /// Per-subspace codebooks; `centroids[s]` is `k × sub_dim` values,
    /// centroid `c` at `[c * sub_dim .. (c + 1) * sub_dim]`.
    centroids: Vec<Vec<f64>>,
}

impl ProductQuantizer {
    /// Vector dimensionality this quantizer encodes.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of subspaces — the encoded size in bytes.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Centroids per subspace.
    pub fn k(&self) -> usize {
        self.k
    }

    fn sub_dim(&self) -> usize {
        self.dim / self.m
    }

    /// Train on `vectors` with `m` subspaces and `k` centroids each.
    ///
    /// Returns `None` for degenerate parameters: no vectors, `dim == 0`,
    /// `m == 0` or not dividing `dim`, `k == 0` or `k > 256`, any vector
    /// of the wrong length, or any non-finite component.
    pub fn train(
        vectors: &[Vec<f64>],
        m: usize,
        k: usize,
        iters: usize,
        seed: u64,
    ) -> Option<Self> {
        let dim = vectors.first()?.len();
        if dim == 0 || m == 0 || !dim.is_multiple_of(m) || k == 0 || k > 256 {
            return None;
        }
        if vectors.iter().any(|v| v.len() != dim) {
            return None;
        }
        if vectors.iter().any(|v| v.iter().any(|x| !x.is_finite())) {
            return None;
        }
        let k = k.min(vectors.len()).max(1);
        let sub_dim = dim / m;
        let mut centroids = Vec::with_capacity(m);
        for s in 0..m {
            let subs: Vec<&[f64]> =
                vectors.iter().map(|v| &v[s * sub_dim..(s + 1) * sub_dim]).collect();
            centroids.push(kmeans(&subs, sub_dim, k, iters, splitmix64(seed ^ s as u64)));
        }
        Some(ProductQuantizer { dim, m, k, centroids })
    }

    /// Encode a vector as `m` centroid indices (nearest per subspace,
    /// ties by lowest index). `None` if the length differs from `dim`.
    pub fn encode(&self, v: &[f64]) -> Option<Vec<u8>> {
        if v.len() != self.dim {
            return None;
        }
        let sub_dim = self.sub_dim();
        let mut code = Vec::with_capacity(self.m);
        for s in 0..self.m {
            let sub = &v[s * sub_dim..(s + 1) * sub_dim];
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for c in 0..self.k {
                let cent = &self.centroids[s][c * sub_dim..(c + 1) * sub_dim];
                let d = dist_sq(sub, cent);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            code.push(best as u8);
        }
        Some(code)
    }

    /// Reconstruct the approximate vector for a code word. `None` if the
    /// code length differs from `m` or any index is out of range.
    pub fn decode(&self, code: &[u8]) -> Option<Vec<f64>> {
        if code.len() != self.m {
            return None;
        }
        let sub_dim = self.sub_dim();
        let mut out = Vec::with_capacity(self.dim);
        for (s, &c) in code.iter().enumerate() {
            let c = usize::from(c);
            if c >= self.k {
                return None;
            }
            out.extend_from_slice(&self.centroids[s][c * sub_dim..(c + 1) * sub_dim]);
        }
        Some(out)
    }

    /// Serialize: `dim u32 · m u32 · k u32 · m × k × sub_dim f64 bits`,
    /// all little-endian.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.m * self.k * self.sub_dim() * 8);
        out.extend_from_slice(&(self.dim as u32).to_le_bytes());
        out.extend_from_slice(&(self.m as u32).to_le_bytes());
        out.extend_from_slice(&(self.k as u32).to_le_bytes());
        for cb in &self.centroids {
            for &v in cb {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        out
    }

    /// Inverse of [`Self::to_bytes`]. `None` on any structural problem
    /// (never panics on corrupt input).
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 12 {
            return None;
        }
        let dim = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let m = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
        let k = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        if dim == 0 || m == 0 || !dim.is_multiple_of(m) || k == 0 || k > 256 {
            return None;
        }
        let sub_dim = dim / m;
        let want = m.checked_mul(k)?.checked_mul(sub_dim)?.checked_mul(8)?;
        if bytes.len() != 12 + want {
            return None;
        }
        let mut at = 12;
        let mut centroids = Vec::with_capacity(m);
        for _ in 0..m {
            let mut cb = Vec::with_capacity(k * sub_dim);
            for _ in 0..k * sub_dim {
                cb.push(f64::from_bits(u64::from_le_bytes(
                    bytes[at..at + 8].try_into().unwrap(),
                )));
                at += 8;
            }
            centroids.push(cb);
        }
        Some(ProductQuantizer { dim, m, k, centroids })
    }
}

fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Lloyd's k-means over `sub_dim`-dimensional points, fully deterministic:
/// seeded sample initialization, assignment ties to the lowest centroid
/// index, empty clusters reseeded to the point farthest from its centroid.
fn kmeans(points: &[&[f64]], sub_dim: usize, k: usize, iters: usize, seed: u64) -> Vec<f64> {
    let n = points.len();
    // Initialize with k deterministic samples: a seeded permutation-free
    // draw — stride through the points from a seeded start.
    let mut centroids = vec![0.0; k * sub_dim];
    for c in 0..k {
        let idx = if k >= n { c % n } else { (splitmix64(seed ^ c as u64) as usize) % n };
        centroids[c * sub_dim..(c + 1) * sub_dim].copy_from_slice(points[idx]);
    }

    let mut assign = vec![0usize; n];
    for _ in 0..iters {
        // Assignment.
        for (i, p) in points.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for c in 0..k {
                let d = dist_sq(p, &centroids[c * sub_dim..(c + 1) * sub_dim]);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            assign[i] = best;
        }
        // Update.
        let mut sums = vec![0.0; k * sub_dim];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            let c = assign[i];
            counts[c] += 1;
            for (d, &v) in p.iter().enumerate() {
                sums[c * sub_dim + d] += v;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Reseed the empty cluster with the point farthest from
                // its current centroid (first max — deterministic).
                let mut far = 0usize;
                let mut far_d = -1.0;
                for (i, p) in points.iter().enumerate() {
                    let a = assign[i];
                    let d = dist_sq(p, &centroids[a * sub_dim..(a + 1) * sub_dim]);
                    if d > far_d {
                        far_d = d;
                        far = i;
                    }
                }
                centroids[c * sub_dim..(c + 1) * sub_dim].copy_from_slice(points[far]);
            } else {
                for d in 0..sub_dim {
                    centroids[c * sub_dim + d] = sums[c * sub_dim + d] / counts[c] as f64;
                }
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(rows: &[&[f64]]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| r.to_vec()).collect()
    }

    #[test]
    fn train_rejects_degenerate_inputs() {
        assert!(ProductQuantizer::train(&[], 1, 4, 4, 1).is_none());
        assert!(ProductQuantizer::train(&vecs(&[&[]]), 1, 4, 4, 1).is_none());
        assert!(ProductQuantizer::train(&vecs(&[&[1.0, 2.0]]), 3, 4, 4, 1).is_none(), "m∤dim");
        assert!(ProductQuantizer::train(&vecs(&[&[1.0], &[1.0, 2.0]]), 1, 4, 4, 1).is_none());
        assert!(ProductQuantizer::train(&vecs(&[&[f64::NAN]]), 1, 4, 4, 1).is_none());
        assert!(ProductQuantizer::train(&vecs(&[&[1.0]]), 1, 0, 4, 1).is_none());
        assert!(ProductQuantizer::train(&vecs(&[&[1.0]]), 1, 257, 4, 1).is_none());
    }

    #[test]
    fn exact_when_k_covers_distinct_points() {
        let vs = vecs(&[&[0.0, 10.0], &[1.0, 20.0], &[2.0, 30.0]]);
        let pq = ProductQuantizer::train(&vs, 2, 3, 16, 7).unwrap();
        for v in &vs {
            let code = pq.encode(v).unwrap();
            let back = pq.decode(&code).unwrap();
            for (a, b) in v.iter().zip(&back) {
                assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn deterministic_across_trainings() {
        let vs: Vec<Vec<f64>> =
            (0..40).map(|i| (0..4).map(|d| ((i * 7 + d) % 13) as f64).collect()).collect();
        let a = ProductQuantizer::train(&vs, 2, 8, 8, 42).unwrap();
        let b = ProductQuantizer::train(&vs, 2, 8, 8, 42).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn bytes_round_trip() {
        let vs = vecs(&[&[1.5, -2.5, 3.5, 0.0], &[0.5, 2.5, -3.5, 1.0]]);
        let pq = ProductQuantizer::train(&vs, 4, 2, 8, 3).unwrap();
        let back = ProductQuantizer::from_bytes(&pq.to_bytes()).unwrap();
        assert_eq!(pq, back);
    }

    #[test]
    fn from_bytes_rejects_corrupt() {
        let pq = ProductQuantizer::train(&vecs(&[&[1.0, 2.0]]), 2, 1, 4, 1).unwrap();
        let bytes = pq.to_bytes();
        assert!(ProductQuantizer::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        assert!(ProductQuantizer::from_bytes(&[]).is_none());
        let mut zero_m = bytes.clone();
        zero_m[4..8].copy_from_slice(&0u32.to_le_bytes());
        assert!(ProductQuantizer::from_bytes(&zero_m).is_none());
    }

    #[test]
    fn decode_rejects_out_of_range_code() {
        let pq = ProductQuantizer::train(&vecs(&[&[1.0], &[2.0]]), 1, 2, 4, 1).unwrap();
        assert!(pq.decode(&[200]).is_none());
        assert!(pq.decode(&[0, 0]).is_none());
        assert!(pq.decode(&[0]).is_some());
    }

    #[test]
    fn reconstruction_stays_within_data_range() {
        // Centroids are means of training points, so every decoded
        // component lies within the per-dimension min..max envelope.
        let vs: Vec<Vec<f64>> =
            (0..50).map(|i| (0..3).map(|d| ((i * 11 + d * 3) % 17) as f64 - 8.0).collect()).collect();
        let pq = ProductQuantizer::train(&vs, 3, 8, 8, 9).unwrap();
        for v in &vs {
            let back = pq.decode(&pq.encode(v).unwrap()).unwrap();
            for d in 0..3 {
                let lo = vs.iter().map(|v| v[d]).fold(f64::INFINITY, f64::min);
                let hi = vs.iter().map(|v| v[d]).fold(f64::NEG_INFINITY, f64::max);
                assert!(back[d] >= lo - 1e-9 && back[d] <= hi + 1e-9);
            }
        }
    }
}
