//! The binary user-record codec.
//!
//! One file per user, carrying the *complete* replay-relevant state: the
//! [`UserState`] (profiles, revisit history, RankSVM model, preference
//! pairs) **plus** the user's contribution to the per-query adaptive-β
//! statistics — the part the old JSON escape hatch silently dropped — and
//! a product-quantized cold form of the weight vectors for scan-time
//! analytics.
//!
//! The layout follows the segment file format (`pws-index::segfile`,
//! `docs/INDEX_FORMAT.md`): a fixed header, a section table with
//! per-section FNV-1a-64 checksums, then the section payloads. See
//! `docs/STORE_FORMAT.md` for the byte-level spec.
//!
//! ```text
//! ┌───────────────────────────────────────────────┐
//! │ magic "PWSUSR1\0"                     8 bytes │
//! │ format_version (u32 LE)               4 bytes │
//! │ section_count  (u32 LE)               4 bytes │
//! ├───────────────────────────────────────────────┤
//! │ section table: count × 28-byte entries        │
//! │   id u16 · flags u16 · offset u64 ·           │
//! │   len u64 · fnv1a64 checksum u64    (all LE)  │
//! ├───────────────────────────────────────────────┤
//! │ section payloads (contiguous, table order)    │
//! └───────────────────────────────────────────────┘
//! ```
//!
//! Every map is serialized in **sorted key order** and every `f64`
//! travels as its `to_bits()` little-endian image, so encoding is a pure
//! function of the record's logical content (no `HashMap` iteration
//! order leaks into the bytes) and decoding is bit-exact — an
//! evicted-then-faulted-in user replays byte-identically to an
//! always-resident one.

use crate::pq::ProductQuantizer;
use pws_click::UserId;
use pws_core::{UserExport, UserState};
use pws_entropy::QueryStats;
use pws_geo::LocId;
use pws_profile::{ContentProfile, LocationProfile, UserHistory};
use pws_ranksvm::{LinearRankModel, PreferencePair};
use std::collections::BTreeMap;

/// Magic bytes opening every user record.
pub const STORE_MAGIC: &[u8; 8] = b"PWSUSR1\0";

/// Current format version. Readers reject anything newer.
pub const FORMAT_VERSION: u32 = 1;

/// Bytes per section-table entry: id u16 + flags u16 + offset u64 +
/// len u64 + checksum u64.
pub const SECTION_ENTRY_LEN: usize = 28;

/// Offset of the section table: magic + version + section count.
pub const TABLE_OFFSET: usize = 8 + 4 + 4;

/// The sections of a user record. The discriminant is the on-disk id.
///
/// `docs/STORE_FORMAT.md` documents each section's payload; a `check.sh`
/// gate diffs this enum against the spec's section table in both
/// directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u16)]
pub enum SectionId {
    /// User id, observation count, seen-query keys.
    Meta = 1,
    /// RankSVM weight vector, bit-exact f64s.
    Model = 2,
    /// Content-concept preference weights.
    ContentProfile = 3,
    /// Location-ontology preference weights.
    LocationProfile = 4,
    /// URL/domain revisit counters.
    History = 5,
    /// Mined preference-pair training window.
    Pairs = 6,
    /// Per-query adaptive-β statistics contributed by this user.
    QueryStats = 7,
    /// Product-quantized cold form of the weight vectors.
    Quantized = 8,
}

impl SectionId {
    /// All sections, in canonical file order. Every section is required.
    pub const ALL: [SectionId; 8] = [
        SectionId::Meta,
        SectionId::Model,
        SectionId::ContentProfile,
        SectionId::LocationProfile,
        SectionId::History,
        SectionId::Pairs,
        SectionId::QueryStats,
        SectionId::Quantized,
    ];

    /// Stable lowercase name (used in errors and the format spec).
    pub fn name(self) -> &'static str {
        match self {
            SectionId::Meta => "meta",
            SectionId::Model => "model",
            SectionId::ContentProfile => "content_profile",
            SectionId::LocationProfile => "location_profile",
            SectionId::History => "history",
            SectionId::Pairs => "pairs",
            SectionId::QueryStats => "query_stats",
            SectionId::Quantized => "quantized",
        }
    }

    fn from_u16(raw: u16) -> Option<SectionId> {
        SectionId::ALL.into_iter().find(|s| *s as u16 == raw)
    }
}

/// Why a user record failed to load or decode. Every malformed input —
/// including every possible single-byte corruption and truncation — maps
/// to one of these; the codec never panics on untrusted bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Filesystem error (message carries the `std::io::Error` display).
    Io(String),
    /// The file does not start with [`STORE_MAGIC`].
    BadMagic,
    /// Format version newer than this reader understands.
    UnsupportedVersion(u32),
    /// The file ends before the named structure is complete.
    Truncated(&'static str),
    /// A section's payload does not match its table checksum.
    ChecksumMismatch(&'static str),
    /// A required section is absent.
    MissingSection(&'static str),
    /// A section id this reader does not know.
    UnknownSection(u16),
    /// Structurally invalid content (reserved flags, overlapping or
    /// out-of-order sections, bad string lengths, invalid UTF-8, …).
    Malformed(&'static str),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io error: {e}"),
            StoreError::BadMagic => write!(f, "not a user record (bad magic)"),
            StoreError::UnsupportedVersion(v) => {
                write!(f, "unsupported record format version {v} (reader knows {FORMAT_VERSION})")
            }
            StoreError::Truncated(what) => write!(f, "record truncated in {what}"),
            StoreError::ChecksumMismatch(s) => write!(f, "checksum mismatch in section {s}"),
            StoreError::MissingSection(s) => write!(f, "missing required section {s}"),
            StoreError::UnknownSection(id) => write!(f, "unknown section id {id}"),
            StoreError::Malformed(what) => write!(f, "malformed record: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// FNV-1a 64-bit — the same checksum the segment format uses.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The decoded cold-tier form: the record's product quantizer plus the
/// u8 codes of every stored vector. `codes[0]` is the model weight
/// vector; codes `1 + 2i` / `2 + 2i` are pair `i`'s better/worse
/// vectors. Approximate only — fault-in always uses the exact sections.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedVectors {
    /// The trained per-record quantizer.
    pub pq: ProductQuantizer,
    /// One code word per stored vector.
    pub codes: Vec<Vec<u8>>,
}

impl QuantizedVectors {
    /// Decoded (approximate) model weight vector, when present.
    pub fn approx_model(&self) -> Option<Vec<f64>> {
        self.codes.first().and_then(|c| self.pq.decode(c))
    }
}

/// One user's complete persisted state.
#[derive(Debug, Clone)]
pub struct UserRecord {
    /// The user this record belongs to.
    pub user: UserId,
    /// The replay-exact engine state.
    pub state: UserState,
    /// Per-query statistics for the keys in `state.seen_queries`.
    pub query_stats: BTreeMap<String, QueryStats>,
    /// The cold-tier quantized vectors (filled by [`decode_user_record`];
    /// ignored and recomputed by [`encode_user_record`]).
    pub quantized: Option<QuantizedVectors>,
}

impl UserRecord {
    /// Assemble a record from its exact parts.
    pub fn new(user: UserId, state: UserState, query_stats: BTreeMap<String, QueryStats>) -> Self {
        UserRecord { user, state, query_stats, quantized: None }
    }

    /// View as the portable export envelope (drops the quantized form).
    pub fn into_export(self) -> UserExport {
        UserExport { state: self.state, query_stats: self.query_stats }
    }
}

// ── Encoding ─────────────────────────────────────────────────────────────

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64bits(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

fn encode_meta(record: &UserRecord) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(u64::from(record.user.0));
    w.u64(record.state.observations);
    w.u32(record.state.seen_queries.len() as u32);
    for q in &record.state.seen_queries {
        w.str(q);
    }
    w.buf
}

fn encode_model(model: &LinearRankModel) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(model.dim() as u32);
    w.buf.extend_from_slice(&model.weight_bits_le());
    w.buf
}

fn encode_content(profile: &ContentProfile) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(profile.observations());
    let entries = profile.weight_entries();
    w.u32(entries.len() as u32);
    for (term, weight) in entries {
        w.str(&term);
        w.f64bits(weight);
    }
    w.buf
}

fn encode_location(profile: &LocationProfile) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(profile.observations());
    let entries = profile.weight_entries();
    w.u32(entries.len() as u32);
    for (loc, weight) in entries {
        w.u32(loc.0);
        w.f64bits(weight);
    }
    w.buf
}

fn encode_history(history: &UserHistory) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(history.total_clicks());
    let urls = history.url_click_entries();
    w.u32(urls.len() as u32);
    for (url, clicks) in urls {
        w.str(&url);
        w.u32(clicks);
    }
    let domains = history.domain_click_entries();
    w.u32(domains.len() as u32);
    for (domain, clicks) in domains {
        w.str(&domain);
        w.u32(clicks);
    }
    w.buf
}

fn encode_pairs(pairs: &[PreferencePair]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(pairs.len() as u32);
    for p in pairs {
        w.u32(p.better.len() as u32);
        for &v in &p.better {
            w.f64bits(v);
        }
        w.u32(p.worse.len() as u32);
        for &v in &p.worse {
            w.f64bits(v);
        }
    }
    w.buf
}

fn encode_query_stats(stats: &BTreeMap<String, QueryStats>) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(stats.len() as u32);
    for (key, s) in stats {
        w.str(key);
        w.u64(s.impressions());
        w.u64(s.clicks());
        let urls = s.url_click_entries();
        w.u32(urls.len() as u32);
        for (url, mass) in urls {
            w.str(&url);
            w.f64bits(mass);
        }
        let concepts = s.concept_click_entries();
        w.u32(concepts.len() as u32);
        for (term, mass) in concepts {
            w.str(&term);
            w.f64bits(mass);
        }
        let locs = s.location_click_entries();
        w.u32(locs.len() as u32);
        for (loc, mass) in locs {
            w.u32(loc.0);
            w.f64bits(mass);
        }
    }
    w.buf
}

/// Subspace count for a per-record quantizer: one dimension per subspace
/// (profile vectors are short — `FEATURE_DIM` — so scalar subspaces give
/// the tightest codebook a 1-byte-per-dim budget allows).
fn pq_params(dim: usize, vector_count: usize) -> (usize, usize) {
    (dim, vector_count.clamp(1, 16))
}

/// Deterministic training seed: a fixed constant, so identical logical
/// records always produce identical bytes.
const PQ_SEED: u64 = 0x9e37_79b9_7f4a_7c15;
const PQ_ITERS: usize = 8;

fn encode_quantized(state: &UserState) -> Vec<u8> {
    let mut w = Writer::new();
    let dim = state.model.dim();
    // Vectors to quantize: the model weights plus every pair vector of
    // matching dimension (all of them, in well-formed states).
    let mut vectors: Vec<Vec<f64>> = vec![state.model.weights.clone()];
    let pairs_match = state
        .pairs
        .iter()
        .all(|p| p.better.len() == dim && p.worse.len() == dim);
    if pairs_match {
        for p in &state.pairs {
            vectors.push(p.better.clone());
            vectors.push(p.worse.clone());
        }
    }
    let finite = vectors.iter().all(|v| v.iter().all(|x| x.is_finite()));
    let (m, k) = pq_params(dim, vectors.len());
    let pq = if dim == 0 || !finite {
        None
    } else {
        ProductQuantizer::train(&vectors, m, k, PQ_ITERS, PQ_SEED)
    };
    match pq {
        None => w.u8(0),
        Some(pq) => {
            w.u8(1);
            let pq_bytes = pq.to_bytes();
            w.u32(pq_bytes.len() as u32);
            w.buf.extend_from_slice(&pq_bytes);
            w.u32(vectors.len() as u32);
            for v in &vectors {
                // Encode never fails here: dims match by construction.
                let code = pq.encode(v).unwrap_or_else(|| vec![0; pq.m()]);
                w.buf.extend_from_slice(&code);
            }
        }
    }
    w.buf
}

/// Serialize a user record to its canonical byte image.
///
/// Deterministic: the bytes are a pure function of the record's logical
/// content (sorted map order, bit-exact floats, fixed quantizer seed).
pub fn encode_user_record(record: &UserRecord) -> Vec<u8> {
    let payloads: Vec<(SectionId, Vec<u8>)> = vec![
        (SectionId::Meta, encode_meta(record)),
        (SectionId::Model, encode_model(&record.state.model)),
        (SectionId::ContentProfile, encode_content(&record.state.content)),
        (SectionId::LocationProfile, encode_location(&record.state.location)),
        (SectionId::History, encode_history(&record.state.history)),
        (SectionId::Pairs, encode_pairs(&record.state.pairs)),
        (SectionId::QueryStats, encode_query_stats(&record.query_stats)),
        (SectionId::Quantized, encode_quantized(&record.state)),
    ];

    let table_len = payloads.len() * SECTION_ENTRY_LEN;
    let mut out = Vec::with_capacity(
        TABLE_OFFSET + table_len + payloads.iter().map(|(_, p)| p.len()).sum::<usize>(),
    );
    out.extend_from_slice(STORE_MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payloads.len() as u32).to_le_bytes());

    let mut offset = (TABLE_OFFSET + table_len) as u64;
    for (id, payload) in &payloads {
        out.extend_from_slice(&(*id as u16).to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // flags, reserved
        out.extend_from_slice(&offset.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        offset += payload.len() as u64;
    }
    for (_, payload) in &payloads {
        out.extend_from_slice(payload);
    }
    out
}

// ── Decoding ─────────────────────────────────────────────────────────────

/// Sequential reader over one section's payload; every read that runs
/// past the end is a typed [`StoreError::Truncated`] naming the section.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8], section: &'static str) -> Self {
        Reader { buf, pos: 0, section }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(StoreError::Malformed("length overflow"))?;
        if end > self.buf.len() {
            return Err(StoreError::Truncated(self.section));
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64bits(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String, StoreError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::Malformed("invalid utf-8 in string"))
    }

    /// A count field, sanity-bounded so corrupt counts fail fast as
    /// truncation instead of attempting huge allocations: each counted
    /// element occupies at least `min_elem_bytes` bytes of payload.
    fn count(&mut self, min_elem_bytes: usize) -> Result<usize, StoreError> {
        let n = self.u32()? as usize;
        let need = n
            .checked_mul(min_elem_bytes)
            .ok_or(StoreError::Malformed("count overflow"))?;
        if self.pos.saturating_add(need) > self.buf.len() {
            return Err(StoreError::Truncated(self.section));
        }
        Ok(n)
    }

    fn finish(&self) -> Result<(), StoreError> {
        if self.pos != self.buf.len() {
            return Err(StoreError::Malformed("trailing bytes in section"));
        }
        Ok(())
    }
}

fn read_u64le(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
}

/// Locate, bound-check and checksum every section. Returns the payload
/// slice per required section, in [`SectionId::ALL`] order.
fn parse_sections(bytes: &[u8]) -> Result<Vec<&[u8]>, StoreError> {
    if bytes.len() < STORE_MAGIC.len() {
        return Err(StoreError::Truncated("magic"));
    }
    if &bytes[..STORE_MAGIC.len()] != STORE_MAGIC {
        return Err(StoreError::BadMagic);
    }
    if bytes.len() < TABLE_OFFSET {
        return Err(StoreError::Truncated("header"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let section_count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let table_len = section_count
        .checked_mul(SECTION_ENTRY_LEN)
        .ok_or(StoreError::Malformed("section count overflow"))?;
    let table_end = TABLE_OFFSET
        .checked_add(table_len)
        .ok_or(StoreError::Malformed("section table overflow"))?;
    if table_end > bytes.len() {
        return Err(StoreError::Truncated("section table"));
    }

    let mut found: Vec<Option<&[u8]>> = vec![None; SectionId::ALL.len()];
    for i in 0..section_count {
        let at = TABLE_OFFSET + i * SECTION_ENTRY_LEN;
        let raw_id = u16::from_le_bytes(bytes[at..at + 2].try_into().unwrap());
        let id = SectionId::from_u16(raw_id).ok_or(StoreError::UnknownSection(raw_id))?;
        let flags = u16::from_le_bytes(bytes[at + 2..at + 4].try_into().unwrap());
        if flags != 0 {
            return Err(StoreError::Malformed("reserved section flags set"));
        }
        let offset = read_u64le(bytes, at + 4) as usize;
        let len = read_u64le(bytes, at + 12) as usize;
        let checksum = read_u64le(bytes, at + 20);
        let end = offset
            .checked_add(len)
            .ok_or(StoreError::Malformed("section range overflow"))?;
        if offset < table_end || end > bytes.len() {
            return Err(StoreError::Truncated(id.name()));
        }
        let payload = &bytes[offset..end];
        if fnv1a64(payload) != checksum {
            return Err(StoreError::ChecksumMismatch(id.name()));
        }
        let slot = SectionId::ALL.iter().position(|s| *s == id).unwrap();
        if found[slot].is_some() {
            return Err(StoreError::Malformed("duplicate section"));
        }
        found[slot] = Some(payload);
    }

    SectionId::ALL
        .iter()
        .zip(found)
        .map(|(id, p)| p.ok_or(StoreError::MissingSection(id.name())))
        .collect()
}

fn decode_meta(payload: &[u8]) -> Result<(UserId, u64, Vec<String>), StoreError> {
    let mut r = Reader::new(payload, "meta");
    let user_raw = r.u64()?;
    let user = u32::try_from(user_raw)
        .map(UserId)
        .map_err(|_| StoreError::Malformed("user id out of range"))?;
    let observations = r.u64()?;
    let n = r.count(4)?;
    let mut seen = Vec::with_capacity(n);
    for _ in 0..n {
        seen.push(r.str()?);
    }
    r.finish()?;
    Ok((user, observations, seen))
}

fn decode_model(payload: &[u8]) -> Result<LinearRankModel, StoreError> {
    let mut r = Reader::new(payload, "model");
    let dim = r.count(8)?;
    let mut weights = Vec::with_capacity(dim);
    for _ in 0..dim {
        weights.push(r.f64bits()?);
    }
    r.finish()?;
    Ok(LinearRankModel::from_weights(weights))
}

fn decode_content(payload: &[u8]) -> Result<ContentProfile, StoreError> {
    let mut r = Reader::new(payload, "content_profile");
    let observations = r.u64()?;
    let n = r.count(12)?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let term = r.str()?;
        let weight = r.f64bits()?;
        entries.push((term, weight));
    }
    r.finish()?;
    Ok(ContentProfile::from_entries(entries, observations))
}

fn decode_location(payload: &[u8]) -> Result<LocationProfile, StoreError> {
    let mut r = Reader::new(payload, "location_profile");
    let observations = r.u64()?;
    let n = r.count(12)?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let loc = LocId(r.u32()?);
        let weight = r.f64bits()?;
        entries.push((loc, weight));
    }
    r.finish()?;
    Ok(LocationProfile::from_entries(entries, observations))
}

fn decode_history(payload: &[u8]) -> Result<UserHistory, StoreError> {
    let mut r = Reader::new(payload, "history");
    let total = r.u64()?;
    let nu = r.count(8)?;
    let mut urls = Vec::with_capacity(nu);
    for _ in 0..nu {
        let url = r.str()?;
        let clicks = r.u32()?;
        urls.push((url, clicks));
    }
    let nd = r.count(8)?;
    let mut domains = Vec::with_capacity(nd);
    for _ in 0..nd {
        let domain = r.str()?;
        let clicks = r.u32()?;
        domains.push((domain, clicks));
    }
    r.finish()?;
    Ok(UserHistory::from_entries(urls, domains, total))
}

fn decode_pairs(payload: &[u8]) -> Result<Vec<PreferencePair>, StoreError> {
    let mut r = Reader::new(payload, "pairs");
    let n = r.count(8)?;
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        let db = r.count(8)?;
        let mut better = Vec::with_capacity(db);
        for _ in 0..db {
            better.push(r.f64bits()?);
        }
        let dw = r.count(8)?;
        let mut worse = Vec::with_capacity(dw);
        for _ in 0..dw {
            worse.push(r.f64bits()?);
        }
        pairs.push(PreferencePair { better, worse });
    }
    r.finish()?;
    Ok(pairs)
}

fn decode_query_stats(payload: &[u8]) -> Result<BTreeMap<String, QueryStats>, StoreError> {
    let mut r = Reader::new(payload, "query_stats");
    let n = r.count(4)?;
    let mut out = BTreeMap::new();
    for _ in 0..n {
        let key = r.str()?;
        let impressions = r.u64()?;
        let clicks = r.u64()?;
        let nu = r.count(12)?;
        let mut urls = Vec::with_capacity(nu);
        for _ in 0..nu {
            let url = r.str()?;
            let mass = r.f64bits()?;
            urls.push((url, mass));
        }
        let nc = r.count(12)?;
        let mut concepts = Vec::with_capacity(nc);
        for _ in 0..nc {
            let term = r.str()?;
            let mass = r.f64bits()?;
            concepts.push((term, mass));
        }
        let nl = r.count(12)?;
        let mut locs = Vec::with_capacity(nl);
        for _ in 0..nl {
            let loc = LocId(r.u32()?);
            let mass = r.f64bits()?;
            locs.push((loc, mass));
        }
        if out
            .insert(key, QueryStats::from_parts(urls, concepts, locs, impressions, clicks))
            .is_some()
        {
            return Err(StoreError::Malformed("duplicate query-stats key"));
        }
    }
    r.finish()?;
    Ok(out)
}

fn decode_quantized(payload: &[u8]) -> Result<Option<QuantizedVectors>, StoreError> {
    let mut r = Reader::new(payload, "quantized");
    match r.u8()? {
        0 => {
            r.finish()?;
            Ok(None)
        }
        1 => {
            let pq_len = r.count(1)?;
            let pq_bytes = r.take(pq_len)?;
            let pq = ProductQuantizer::from_bytes(pq_bytes)
                .ok_or(StoreError::Malformed("invalid quantizer"))?;
            let n = r.count(pq.m())?;
            let mut codes = Vec::with_capacity(n);
            for _ in 0..n {
                let code = r.take(pq.m())?.to_vec();
                if code.iter().any(|&c| usize::from(c) >= pq.k()) {
                    return Err(StoreError::Malformed("quantizer code out of range"));
                }
                codes.push(code);
            }
            r.finish()?;
            Ok(Some(QuantizedVectors { pq, codes }))
        }
        _ => Err(StoreError::Malformed("invalid quantized flag")),
    }
}

/// Decode a user record from its byte image, validating structure and
/// every section checksum. Inverse of [`encode_user_record`]:
/// `decode(encode(r))` reproduces `r`'s logical content bit-exactly.
pub fn decode_user_record(bytes: &[u8]) -> Result<UserRecord, StoreError> {
    let sections = parse_sections(bytes)?;
    let (user, observations, seen_queries) = decode_meta(sections[0])?;
    let model = decode_model(sections[1])?;
    let content = decode_content(sections[2])?;
    let location = decode_location(sections[3])?;
    let history = decode_history(sections[4])?;
    let pairs = decode_pairs(sections[5])?;
    let query_stats = decode_query_stats(sections[6])?;
    let quantized = decode_quantized(sections[7])?;

    let mut state = UserState::new();
    state.content = content;
    state.location = location;
    state.history = history;
    state.model = model;
    state.pairs = pairs;
    state.observations = observations;
    state.seen_queries = seen_queries;

    Ok(UserRecord { user, state, query_stats, quantized })
}
