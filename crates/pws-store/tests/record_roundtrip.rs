//! Property tests for user-record persistence (the `segment_roundtrip`
//! idiom, applied to the user-state tier).
//!
//! Three guarantees, for *arbitrary* records:
//!
//! 1. **Round trip** — `decode(encode(r))` reproduces `r`'s logical
//!    content bit-exactly. `UserState` has no `PartialEq`, so the test
//!    asserts the stronger canonical-bytes property instead:
//!    `encode(decode(encode(r))) == encode(r)`, plus field spot checks.
//! 2. **Durability** — corrupted (every single byte flipped), truncated
//!    (every prefix), wrong-magic, and future-version files all fail to
//!    decode with a typed [`StoreError`], never a panic.
//! 3. **Quantizer bounds** — when the cold quantized form is present,
//!    every reconstructed coordinate is finite and lies within the range
//!    spanned by the training vectors for that coordinate (k-means
//!    centroids are convex combinations of training points).

use proptest::prelude::*;
use pws_click::UserId;
use pws_core::UserState;
use pws_entropy::QueryStats;
use pws_geo::LocId;
use pws_profile::{ContentProfile, LocationProfile, UserHistory};
use pws_ranksvm::{LinearRankModel, PreferencePair};
use pws_store::{
    decode_user_record, encode_user_record, StoreError, UserRecord, UserStore, FORMAT_VERSION,
};
use std::collections::BTreeMap;

// ── Record strategies ───────────────────────────────────────────────────

const TERMS: [&str; 9] = [
    "lobster", "seafood", "harbor", "android", "battery", "camera", "hotel", "booking", "museum",
];

fn term() -> impl Strategy<Value = String> {
    prop::sample::select(TERMS.to_vec()).prop_map(str::to_string)
}

/// Finite weights spanning several magnitudes, including negatives and
/// exact zero (the codec must carry all of them bit-exactly).
fn weight() -> impl Strategy<Value = f64> {
    (0u32..4, -1e6..1e6f64).prop_map(|(kind, v)| match kind {
        0 => 0.0,
        1 => v * 1e-15,
        _ => v,
    })
}

/// Largest model dimension the generator uses; vectors are generated at
/// this length and truncated to the record's drawn dimension.
const MAX_DIM: usize = 6;

fn vector() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(weight(), MAX_DIM)
}

fn query_stats() -> impl Strategy<Value = QueryStats> {
    (
        prop::collection::vec((term(), weight()), 0..4),
        prop::collection::vec((term(), weight()), 0..4),
        prop::collection::vec((any::<u32>().prop_map(LocId), weight()), 0..4),
        0u64..1000,
        0u64..1000,
    )
        .prop_map(|(urls, concepts, locs, imp, clk)| {
            QueryStats::from_parts(urls, concepts, locs, imp, clk)
        })
}

fn user_record(min_dim: usize) -> impl Strategy<Value = UserRecord> {
    (
        (any::<u32>(), 0u64..10_000, min_dim..=MAX_DIM),
        (
            prop::collection::btree_map(term(), query_stats(), 0..4),
            vector(),
            prop::collection::vec((vector(), vector()), 0..5),
        ),
        (
            prop::collection::vec((term(), weight()), 0..6),
            prop::collection::vec((any::<u32>().prop_map(LocId), weight()), 0..6),
            prop::collection::vec((term(), 0u32..50), 0..5),
            prop::collection::vec((term(), 0u32..50), 0..5),
        ),
    )
        .prop_map(
            |(
                (user, obs, dim),
                (stats, weights, raw_pairs),
                (content, location, urls, domains),
            )| {
                let mut state = UserState::new();
                let mut weights = weights;
                weights.truncate(dim);
                state.model = LinearRankModel::from_weights(weights);
                state.pairs = raw_pairs
                    .into_iter()
                    .map(|(mut better, mut worse)| {
                        better.truncate(dim);
                        worse.truncate(dim);
                        PreferencePair { better, worse }
                    })
                    .collect();
                state.content = ContentProfile::from_entries(content, obs);
                state.location = LocationProfile::from_entries(location, obs / 2);
                let total = urls.iter().map(|(_, c)| u64::from(*c)).sum();
                state.history = UserHistory::from_entries(urls, domains, total);
                state.observations = obs;
                let mut seen: Vec<String> = stats.keys().cloned().collect();
                seen.sort();
                state.seen_queries = seen;
                UserRecord::new(UserId(user), state, stats)
            },
        )
}

/// A fixed, fully-populated record for the deterministic corruption and
/// truncation sweeps (every section non-empty).
fn dense_record() -> UserRecord {
    let mut state = UserState::new();
    state.model = LinearRankModel::from_weights(vec![0.25, -1.5, 3.0, 0.0]);
    state.pairs = vec![
        PreferencePair { better: vec![1.0, 2.0, -0.5, 0.125], worse: vec![0.0, 1.0, 0.5, -2.0] },
        PreferencePair { better: vec![-3.0, 0.75, 2.5, 1.0], worse: vec![1.5, -0.25, 0.0, 4.0] },
    ];
    state.content =
        ContentProfile::from_entries(vec![("seafood".into(), 0.7), ("harbor".into(), 0.3)], 11);
    state.location =
        LocationProfile::from_entries(vec![(LocId(3), 0.6), (LocId(7), 0.4)], 5);
    state.history = UserHistory::from_entries(
        vec![("http://t.test/0".into(), 3), ("http://t.test/1".into(), 1)],
        vec![("t.test".into(), 4)],
        4,
    );
    state.observations = 11;
    state.seen_queries = vec!["hotel".into(), "seafood".into()];
    let mut stats = BTreeMap::new();
    stats.insert(
        "seafood".into(),
        QueryStats::from_parts(
            vec![("http://t.test/0".into(), 2.0)],
            vec![("seafood".into(), 1.5)],
            vec![(LocId(3), 0.5)],
            9,
            4,
        ),
    );
    stats.insert(
        "hotel".into(),
        QueryStats::from_parts(vec![], vec![("hotel".into(), 0.25)], vec![], 2, 1),
    );
    UserRecord::new(UserId(0xBEEF), state, stats)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("pws-store-{tag}-{}", std::process::id()))
}

// ── 1. Round trip ───────────────────────────────────────────────────────

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encode_decode_is_canonical(record in user_record(0)) {
        let bytes = encode_user_record(&record);
        let decoded = decode_user_record(&bytes).expect("decode own encoding");
        // Canonical-bytes round trip: re-encoding the decoded record
        // reproduces the exact byte image, so every field (including
        // every f64 bit pattern) survived.
        prop_assert_eq!(encode_user_record(&decoded), bytes);
        // Spot checks on fields with an equality to compare directly.
        prop_assert_eq!(decoded.user, record.user);
        prop_assert_eq!(decoded.state.observations, record.state.observations);
        prop_assert_eq!(&decoded.state.seen_queries, &record.state.seen_queries);
        prop_assert_eq!(
            decoded.state.model.weight_bits_le(),
            record.state.model.weight_bits_le()
        );
        prop_assert_eq!(decoded.state.pairs.len(), record.state.pairs.len());
        prop_assert_eq!(
            decoded.state.history.total_clicks(),
            record.state.history.total_clicks()
        );
        prop_assert_eq!(decoded.query_stats.len(), record.query_stats.len());
    }

    #[test]
    fn quantized_reconstruction_is_bounded(record in user_record(1)) {
        let bytes = encode_user_record(&record);
        let decoded = decode_user_record(&bytes).expect("decode own encoding");
        let Some(q) = &decoded.quantized else {
            // Quantizer training declined (e.g. degenerate geometry) —
            // allowed; the exact sections always carry the state.
            return Ok(());
        };
        let dim = record.state.model.dim();
        let mut training: Vec<&[f64]> = vec![&record.state.model.weights];
        if record.state.pairs.iter().all(|p| p.better.len() == dim && p.worse.len() == dim) {
            for p in &record.state.pairs {
                training.push(&p.better);
                training.push(&p.worse);
            }
        }
        prop_assert_eq!(q.codes.len(), training.len());
        let approx = q.approx_model().expect("model code decodes");
        prop_assert_eq!(approx.len(), dim);
        for (d, &a) in approx.iter().enumerate() {
            let lo = training.iter().map(|v| v[d]).fold(f64::INFINITY, f64::min);
            let hi = training.iter().map(|v| v[d]).fold(f64::NEG_INFINITY, f64::max);
            let slack = 1e-9 * (1.0 + lo.abs().max(hi.abs()));
            prop_assert!(a.is_finite(), "coordinate {d} not finite: {a}");
            prop_assert!(
                a >= lo - slack && a <= hi + slack,
                "coordinate {d} = {a} outside training range [{lo}, {hi}]"
            );
        }
    }
}

#[test]
fn non_finite_weights_skip_quantizer_but_round_trip() {
    let mut record = dense_record();
    record.state.model = LinearRankModel::from_weights(vec![f64::NAN, f64::INFINITY, -0.5, 1.0]);
    let bytes = encode_user_record(&record);
    let decoded = decode_user_record(&bytes).expect("decode");
    assert!(decoded.quantized.is_none(), "non-finite vectors must not train a quantizer");
    // NaN and ±∞ still travel bit-exactly through the exact sections.
    assert_eq!(decoded.state.model.weight_bits_le(), record.state.model.weight_bits_le());
    assert_eq!(encode_user_record(&decoded), bytes);
}

// ── 2. Durability ───────────────────────────────────────────────────────

#[test]
fn every_single_byte_corruption_is_a_typed_error() {
    let bytes = encode_user_record(&dense_record());
    assert!(decode_user_record(&bytes).is_ok(), "canonical bytes must decode");
    for i in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[i] ^= 0xA5;
        // Every flip must surface as Err — the header is structurally
        // validated and every payload byte is checksummed, so no flip
        // can silently decode. A panic here fails the test harness.
        assert!(
            decode_user_record(&bad).is_err(),
            "flipping byte {i} of {} decoded successfully",
            bytes.len()
        );
    }
}

#[test]
fn every_truncation_is_a_typed_error() {
    let bytes = encode_user_record(&dense_record());
    for len in 0..bytes.len() {
        assert!(
            decode_user_record(&bytes[..len]).is_err(),
            "prefix of {len}/{} bytes decoded successfully",
            bytes.len()
        );
    }
}

#[test]
fn future_version_is_rejected() {
    let mut bytes = encode_user_record(&dense_record());
    bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    match decode_user_record(&bytes) {
        Err(StoreError::UnsupportedVersion(v)) => assert_eq!(v, FORMAT_VERSION + 1),
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn wrong_magic_is_rejected() {
    assert!(matches!(decode_user_record(b"NOTAPWSU record"), Err(StoreError::BadMagic)));
    assert!(matches!(decode_user_record(b""), Err(StoreError::Truncated(_))));
}

// ── 3. Directory store ──────────────────────────────────────────────────

#[test]
fn store_round_trips_and_surfaces_corruption() {
    let dir = temp_dir("roundtrip");
    let _ = std::fs::remove_dir_all(&dir);
    let store = UserStore::open(&dir).expect("open store");

    let record = dense_record();
    assert!(!store.contains(record.user));
    assert!(store.get(record.user).expect("get missing").is_none());
    store.put(&record).expect("put");
    assert!(store.contains(record.user));
    assert_eq!(store.users().expect("users"), vec![record.user]);
    assert_eq!(store.len().expect("len"), 1);

    let loaded = store.get(record.user).expect("get").expect("present");
    assert_eq!(encode_user_record(&loaded), encode_user_record(&record));

    // A present-but-corrupt file is an Err from get, never a fresh user.
    let path = dir.join(format!("user-{:08x}.pwsu", record.user.0));
    let mut raw = std::fs::read(&path).expect("read back");
    let mid = raw.len() / 2;
    raw[mid] ^= 0xFF;
    std::fs::write(&path, &raw).expect("tamper");
    assert!(store.get(record.user).is_err());

    assert!(store.remove(record.user).expect("remove"));
    assert!(!store.remove(record.user).expect("remove again"));
    assert!(store.is_empty().expect("is_empty"));

    let _ = std::fs::remove_dir_all(&dir);
}
