//! Location-concept extraction.
//!
//! Snippets are scanned with the [`pws_geo::LocationMatcher`]; each matched
//! place contributes snippet-frequency support, exactly like content
//! concepts. Additionally, support is *rolled up* the ontology with a decay
//! factor: a snippet naming "port alden" also weakly evidences "north vale"
//! (its state) and "ardonia" (its country). Rollup is what lets a location
//! profile built from city-level clicks answer state-level questions —
//! and is ablated in experiment F7.

use pws_geo::{LocId, LocationMatcher, LocationOntology};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Extraction parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct LocationConceptConfig {
    /// Minimum rolled-up support to keep a concept.
    pub min_support: f64,
    /// Per-level decay applied when propagating a match to its ancestor
    /// (city→state multiplies by this once, city→country twice, …).
    pub rollup_decay: f64,
    /// Enable ancestor rollup at all (F7 ablation switch).
    pub rollup: bool,
}

impl Default for LocationConceptConfig {
    fn default() -> Self {
        LocationConceptConfig { min_support: 0.05, rollup_decay: 0.5, rollup: true }
    }
}

/// One extracted location concept.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocationConcept {
    /// The ontology node.
    pub loc: LocId,
    /// Rolled-up support mass (fraction of snippets, decayed for
    /// ancestor-derived mass). Direct mentions contribute 1 per snippet.
    pub support: f64,
    /// Number of snippets mentioning this node *directly*.
    pub direct_freq: u32,
}

/// Extract location concepts from `snippets`.
///
/// Sorted by descending support, ties by `LocId` (deterministic).
pub fn extract_locations(
    snippets: &[String],
    matcher: &LocationMatcher,
    world: &LocationOntology,
    cfg: &LocationConceptConfig,
) -> Vec<LocationConcept> {
    if snippets.is_empty() {
        return Vec::new();
    }
    let n = snippets.len() as f64;
    let mut mass: HashMap<LocId, f64> = HashMap::new();
    let mut direct: HashMap<LocId, u32> = HashMap::new();

    for snippet in snippets {
        // Snippet-frequency semantics: each place counts once per snippet.
        for loc in matcher.locations_in(snippet) {
            *direct.entry(loc).or_insert(0) += 1;
            *mass.entry(loc).or_insert(0.0) += 1.0;
            if cfg.rollup {
                let mut decay = cfg.rollup_decay;
                for anc in world.ancestors(loc).into_iter().skip(1) {
                    if anc == LocId::WORLD {
                        break;
                    }
                    *mass.entry(anc).or_insert(0.0) += decay;
                    decay *= cfg.rollup_decay;
                }
            }
        }
    }

    let mut out: Vec<LocationConcept> = mass
        .into_iter()
        .filter_map(|(loc, m)| {
            let support = m / n;
            (support >= cfg.min_support).then_some(LocationConcept {
                loc,
                support,
                direct_freq: direct.get(&loc).copied().unwrap_or(0),
            })
        })
        .collect();
    out.sort_unstable_by(|a, b| {
        b.support
            .partial_cmp(&a.support)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.loc.cmp(&b.loc))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (LocationOntology, LocId, LocId, LocId, LocId) {
        let mut o = LocationOntology::new();
        let r = o.add(LocId::WORLD, "westland", vec![]);
        let c = o.add(r, "ardonia", vec![]);
        let s = o.add(c, "north vale", vec![]);
        let city = o.add(s, "port alden", vec![]);
        (o, r, c, s, city)
    }

    fn snips(texts: &[&str]) -> Vec<String> {
        texts.iter().map(|t| t.to_string()).collect()
    }

    #[test]
    fn empty_input() {
        let (o, ..) = fixture();
        let m = LocationMatcher::build(&o);
        assert!(extract_locations(&[], &m, &o, &LocationConceptConfig::default()).is_empty());
    }

    #[test]
    fn direct_mentions_counted_per_snippet() {
        let (o, _, _, _, city) = fixture();
        let m = LocationMatcher::build(&o);
        let s = snips(&["port alden port alden news", "no places here"]);
        let cfg = LocationConceptConfig { min_support: 0.0, ..Default::default() };
        let cs = extract_locations(&s, &m, &o, &cfg);
        let cc = cs.iter().find(|c| c.loc == city).unwrap();
        assert_eq!(cc.direct_freq, 1, "per-snippet counting");
        assert!((cc.support - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rollup_propagates_decayed_mass() {
        let (o, r, c, s, city) = fixture();
        let m = LocationMatcher::build(&o);
        let sn = snips(&["visit port alden"]);
        let cfg = LocationConceptConfig { min_support: 0.0, rollup_decay: 0.5, rollup: true };
        let cs = extract_locations(&sn, &m, &o, &cfg);
        let get = |id| cs.iter().find(|x| x.loc == id).map(|x| x.support);
        assert_eq!(get(city), Some(1.0));
        assert_eq!(get(s), Some(0.5));
        assert_eq!(get(c), Some(0.25));
        assert_eq!(get(r), Some(0.125));
    }

    #[test]
    fn world_root_never_appears() {
        let (o, _, _, _, _) = fixture();
        let m = LocationMatcher::build(&o);
        let sn = snips(&["port alden and ardonia"]);
        let cfg = LocationConceptConfig { min_support: 0.0, ..Default::default() };
        let cs = extract_locations(&sn, &m, &o, &cfg);
        assert!(cs.iter().all(|c| c.loc != LocId::WORLD));
    }

    #[test]
    fn rollup_disabled_keeps_only_direct() {
        let (o, _, _, s, city) = fixture();
        let m = LocationMatcher::build(&o);
        let sn = snips(&["visit port alden"]);
        let cfg = LocationConceptConfig { min_support: 0.0, rollup: false, ..Default::default() };
        let cs = extract_locations(&sn, &m, &o, &cfg);
        assert!(cs.iter().any(|c| c.loc == city));
        assert!(!cs.iter().any(|c| c.loc == s));
    }

    #[test]
    fn direct_mention_of_ancestor_adds_full_mass() {
        let (o, _, c, _, city) = fixture();
        let m = LocationMatcher::build(&o);
        let sn = snips(&["port alden report", "ardonia election"]);
        let cfg = LocationConceptConfig { min_support: 0.0, rollup_decay: 0.5, rollup: true };
        let cs = extract_locations(&sn, &m, &o, &cfg);
        let country = cs.iter().find(|x| x.loc == c).unwrap();
        // 1.0 direct (snippet 2) + 0.25 rolled up from the city (snippet 1),
        // over n=2 snippets.
        assert!((country.support - 1.25 / 2.0).abs() < 1e-12);
        assert_eq!(country.direct_freq, 1);
        let ci = cs.iter().find(|x| x.loc == city).unwrap();
        assert!((ci.support - 0.5).abs() < 1e-12);
    }

    #[test]
    fn threshold_filters() {
        let (o, r, _, _, _) = fixture();
        let m = LocationMatcher::build(&o);
        let sn = snips(&["port alden", "x", "x", "x", "x", "x", "x", "x"]);
        let cfg = LocationConceptConfig { min_support: 0.1, rollup_decay: 0.5, rollup: true };
        let cs = extract_locations(&sn, &m, &o, &cfg);
        // City support 1/8 = 0.125 passes; region rollup 0.125/8 ≈ 0.016 does not.
        assert!(cs.iter().any(|c| o.level(c.loc) == pws_geo::Level::City));
        assert!(!cs.iter().any(|c| c.loc == r));
    }

    #[test]
    fn sorted_by_support_desc() {
        let (o, ..) = fixture();
        let m = LocationMatcher::build(&o);
        let sn = snips(&["port alden", "port alden", "ardonia"]);
        let cfg = LocationConceptConfig { min_support: 0.0, ..Default::default() };
        let cs = extract_locations(&sn, &m, &o, &cfg);
        for w in cs.windows(2) {
            assert!(w[0].support >= w[1].support);
        }
    }
}
