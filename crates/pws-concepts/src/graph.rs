//! Concept relationship graph.
//!
//! Concepts extracted for a query are related through their *snippet
//! incidence*: two concepts appearing in many of the same snippets are
//! similar. Similarity is the cosine over snippet-incidence vectors,
//!
//! ```text
//! sim(a, b) = |S_a ∩ S_b| / sqrt(|S_a| · |S_b|)
//! ```
//!
//! with `S_c` the set of snippets containing `c`. The graph also types
//! edges: when one concept's snippet set (nearly) contains another's, the
//! broader concept is a *parent* (e.g. "seafood" ⊃ "lobster roll").
//!
//! The user profile uses this graph to spread a click's preference mass to
//! concepts related to the clicked ones (the paper's expansion step; GCS
//! ablation in F7).

use crate::content::ContentConcept;
use pws_text::{bigrams, Analyzer};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Edge type between two concepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConceptRelation {
    /// Symmetric: high snippet-incidence cosine.
    Similar,
    /// `a` is broader than `b` (S_b mostly ⊆ S_a).
    ParentOf,
    /// `a` is narrower than `b`.
    ChildOf,
}

/// One typed, weighted edge (indices into the concept list).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConceptEdge {
    /// Source concept index.
    pub a: usize,
    /// Target concept index.
    pub b: usize,
    /// Cosine similarity in [0, 1].
    pub weight: f64,
    /// Relation as seen from `a`.
    pub relation: ConceptRelation,
}

/// Similarity graph over one query's content concepts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConceptGraph {
    /// Number of concepts (nodes).
    num_concepts: usize,
    /// All edges with weight ≥ the build threshold, `a < b` normalized for
    /// `Similar`, directed for parent/child.
    edges: Vec<ConceptEdge>,
}

impl ConceptGraph {
    /// Build the graph for `concepts` from the snippets they were extracted
    /// from.
    ///
    /// `sim_threshold` — minimum cosine to keep an edge;
    /// `containment_threshold` — minimum |S_a∩S_b|/|S_b| for `a` to count
    /// as a parent of `b` (0.8 is a good default).
    pub fn build(
        concepts: &[ContentConcept],
        snippets: &[String],
        sim_threshold: f64,
        containment_threshold: f64,
    ) -> Self {
        let analyzer = Analyzer::default();
        // Incidence sets per concept.
        let mut incidence: Vec<HashSet<usize>> = vec![HashSet::new(); concepts.len()];
        for (si, snippet) in snippets.iter().enumerate() {
            let tokens = analyzer.analyze(snippet);
            let unigrams: HashSet<&str> = tokens.iter().map(|s| s.as_str()).collect();
            let bigram_set: HashSet<String> = bigrams(&tokens).into_iter().collect();
            for (ci, c) in concepts.iter().enumerate() {
                let present = if c.term.contains(' ') {
                    bigram_set.contains(&c.term)
                } else {
                    unigrams.contains(c.term.as_str())
                };
                if present {
                    incidence[ci].insert(si);
                }
            }
        }

        let mut edges = Vec::new();
        for a in 0..concepts.len() {
            for b in (a + 1)..concepts.len() {
                let sa = &incidence[a];
                let sb = &incidence[b];
                if sa.is_empty() || sb.is_empty() {
                    continue;
                }
                let inter = sa.intersection(sb).count() as f64;
                if inter == 0.0 {
                    continue;
                }
                let cosine = inter / ((sa.len() as f64) * (sb.len() as f64)).sqrt();
                if cosine < sim_threshold {
                    continue;
                }
                // Containment checks decide parent/child typing.
                let a_contains_b = inter / sb.len() as f64;
                let b_contains_a = inter / sa.len() as f64;
                let relation = if a_contains_b >= containment_threshold
                    && sa.len() > sb.len()
                {
                    ConceptRelation::ParentOf
                } else if b_contains_a >= containment_threshold && sb.len() > sa.len() {
                    ConceptRelation::ChildOf
                } else {
                    ConceptRelation::Similar
                };
                edges.push(ConceptEdge { a, b, weight: cosine, relation });
            }
        }
        ConceptGraph { num_concepts: concepts.len(), edges }
    }

    /// Number of nodes.
    pub fn num_concepts(&self) -> usize {
        self.num_concepts
    }

    /// All edges.
    pub fn edges(&self) -> &[ConceptEdge] {
        &self.edges
    }

    /// Neighbors of concept `i` with weights (both directions).
    pub fn neighbors(&self, i: usize) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        for e in &self.edges {
            if e.a == i {
                out.push((e.b, e.weight));
            } else if e.b == i {
                out.push((e.a, e.weight));
            }
        }
        out
    }

    /// Spread `mass` from concept `i` to its neighbors: returns
    /// `(concept, mass · weight · damping)` pairs. This implements the
    /// profile's concept-expansion step.
    pub fn spread(&self, i: usize, mass: f64, damping: f64) -> Vec<(usize, f64)> {
        self.neighbors(i)
            .into_iter()
            .map(|(j, w)| (j, mass * w * damping))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::{extract_content, ConceptConfig};

    fn snips(texts: &[&str]) -> Vec<String> {
        texts.iter().map(|t| t.to_string()).collect()
    }

    fn cfg() -> ConceptConfig {
        ConceptConfig { min_support: 0.0, min_snippet_freq: 1, bigrams: false, max_concepts: 100 }
    }

    #[test]
    fn cooccurring_concepts_get_edges() {
        let s = snips(&["seafood lobster platter", "seafood lobster rolls", "sushi menu"]);
        let concepts = extract_content("q", &s, &cfg());
        let g = ConceptGraph::build(&concepts, &s, 0.3, 0.8);
        let sea = concepts.iter().position(|c| c.term == "seafood").unwrap();
        let lob = concepts.iter().position(|c| c.term == "lobster").unwrap();
        assert!(
            g.neighbors(sea).iter().any(|(j, _)| *j == lob),
            "seafood–lobster edge missing: {:?}",
            g.edges()
        );
    }

    #[test]
    fn disjoint_concepts_have_no_edge() {
        let s = snips(&["seafood platter", "sushi menu"]);
        let concepts = extract_content("q", &s, &cfg());
        let g = ConceptGraph::build(&concepts, &s, 0.1, 0.8);
        let sea = concepts.iter().position(|c| c.term == "seafood").unwrap();
        let sus = concepts.iter().position(|c| c.term == "sushi").unwrap();
        assert!(!g.neighbors(sea).iter().any(|(j, _)| *j == sus));
    }

    #[test]
    fn perfect_cooccurrence_has_cosine_one() {
        let s = snips(&["alpha beta", "alpha beta", "gamma delta"]);
        let concepts = extract_content("q", &s, &cfg());
        let g = ConceptGraph::build(&concepts, &s, 0.5, 2.0);
        let a = concepts.iter().position(|c| c.term == "alpha").unwrap();
        let b = concepts.iter().position(|c| c.term == "beta").unwrap();
        let e = g
            .edges()
            .iter()
            .find(|e| (e.a == a && e.b == b) || (e.a == b && e.b == a))
            .expect("edge");
        assert!((e.weight - 1.0).abs() < 1e-12);
        assert_eq!(e.relation, ConceptRelation::Similar);
    }

    #[test]
    fn containment_types_parent_child() {
        // "seafood" in 3 snippets; "lobster" only where seafood also is.
        let s = snips(&["seafood lobster", "seafood lobster", "seafood crab"]);
        let concepts = extract_content("q", &s, &cfg());
        let g = ConceptGraph::build(&concepts, &s, 0.1, 0.8);
        let sea = concepts.iter().position(|c| c.term == "seafood").unwrap();
        let lob = concepts.iter().position(|c| c.term == "lobster").unwrap();
        let e = g
            .edges()
            .iter()
            .find(|e| (e.a == sea && e.b == lob) || (e.a == lob && e.b == sea))
            .expect("edge");
        let rel_from_sea = if e.a == sea { e.relation } else {
            match e.relation {
                ConceptRelation::ParentOf => ConceptRelation::ChildOf,
                ConceptRelation::ChildOf => ConceptRelation::ParentOf,
                r => r,
            }
        };
        assert_eq!(rel_from_sea, ConceptRelation::ParentOf);
    }

    #[test]
    fn threshold_prunes_weak_edges() {
        let s = snips(&["aa bb", "aa cc", "aa dd", "bb cc", "cc dd", "bb dd"]);
        let concepts = extract_content("q", &s, &cfg());
        let loose = ConceptGraph::build(&concepts, &s, 0.0, 0.9);
        let tight = ConceptGraph::build(&concepts, &s, 0.9, 0.9);
        assert!(loose.edges().len() > tight.edges().len());
    }

    #[test]
    fn spread_scales_mass_by_weight_and_damping() {
        let s = snips(&["alpha beta", "alpha beta"]);
        let concepts = extract_content("q", &s, &cfg());
        let g = ConceptGraph::build(&concepts, &s, 0.5, 2.0);
        let a = concepts.iter().position(|c| c.term == "alpha").unwrap();
        let spread = g.spread(a, 2.0, 0.5);
        assert_eq!(spread.len(), 1);
        assert!((spread[0].1 - 1.0).abs() < 1e-12); // 2.0 * cos(1.0) * 0.5
    }

    #[test]
    fn empty_concepts_build_empty_graph() {
        let g = ConceptGraph::build(&[], &snips(&["x"]), 0.1, 0.8);
        assert_eq!(g.num_concepts(), 0);
        assert!(g.edges().is_empty());
    }
}
