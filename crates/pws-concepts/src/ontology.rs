//! Per-query concept ontology.
//!
//! Bundles everything the extraction stage produces for one query issue:
//! the content concepts + their relationship graph, and the location
//! concepts. User profiling consumes this; the entropy module measures its
//! diversity.

use crate::content::{concepts_in_snippet, extract_content, ConceptConfig, ContentConcept};
use crate::graph::ConceptGraph;
use crate::location::{extract_locations, LocationConcept, LocationConceptConfig};
use pws_geo::{LocationMatcher, LocationOntology};
use serde::{Deserialize, Serialize};

/// The combined concept view of one query's result snippets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryConceptOntology {
    /// The query text concepts were extracted for.
    pub query_text: String,
    /// Content concepts, support-descending.
    pub content: Vec<ContentConcept>,
    /// Relationship graph over `content` (indices align).
    pub graph: ConceptGraph,
    /// Location concepts, support-descending.
    pub locations: Vec<LocationConcept>,
    /// Per-snippet concept membership: `content_by_snippet[i]` lists the
    /// indices (into `content`) of the concepts occurring in snippet `i`.
    pub content_by_snippet: Vec<Vec<usize>>,
    /// Per-snippet location membership, indices into `locations`.
    pub locations_by_snippet: Vec<Vec<usize>>,
}

impl QueryConceptOntology {
    /// Extract the full ontology from a result page's snippets.
    pub fn extract(
        query_text: &str,
        snippets: &[String],
        matcher: &LocationMatcher,
        world: &LocationOntology,
        content_cfg: &ConceptConfig,
        location_cfg: &LocationConceptConfig,
    ) -> Self {
        let content = extract_content(query_text, snippets, content_cfg);
        let graph = ConceptGraph::build(&content, snippets, 0.4, 0.8);
        let locations = extract_locations(snippets, matcher, world, location_cfg);

        let content_by_snippet: Vec<Vec<usize>> =
            snippets.iter().map(|s| concepts_in_snippet(&content, s)).collect();

        let locations_by_snippet: Vec<Vec<usize>> = snippets
            .iter()
            .map(|s| {
                let present = matcher.locations_in(s);
                locations
                    .iter()
                    .enumerate()
                    .filter(|(_, lc)| present.contains(&lc.loc))
                    .map(|(i, _)| i)
                    .collect()
            })
            .collect();

        QueryConceptOntology {
            query_text: query_text.to_string(),
            content,
            graph,
            locations,
            content_by_snippet,
            locations_by_snippet,
        }
    }

    /// Total number of extracted concepts (content + location).
    pub fn concept_count(&self) -> usize {
        self.content.len() + self.locations.len()
    }

    /// True when no concepts of either kind were extracted — personalization
    /// has nothing to work with for this query.
    pub fn is_vacuous(&self) -> bool {
        self.content.is_empty() && self.locations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pws_geo::LocId;

    fn world() -> LocationOntology {
        let mut o = LocationOntology::new();
        let r = o.add(LocId::WORLD, "westland", vec![]);
        let c = o.add(r, "ardonia", vec![]);
        let s = o.add(c, "north vale", vec![]);
        o.add(s, "port alden", vec![]);
        o
    }

    fn snips() -> Vec<String> {
        vec![
            "seafood lobster specials in port alden".into(),
            "the seafood menu with lobster rolls".into(),
            "sushi and seafood downtown port alden".into(),
        ]
    }

    fn extract(snippets: &[String]) -> QueryConceptOntology {
        let w = world();
        let m = LocationMatcher::build(&w);
        QueryConceptOntology::extract(
            "restaurant",
            snippets,
            &m,
            &w,
            &ConceptConfig { min_support: 0.0, min_snippet_freq: 1, bigrams: true, max_concepts: 50 },
            &LocationConceptConfig { min_support: 0.0, ..Default::default() },
        )
    }

    #[test]
    fn extracts_both_dimensions() {
        let o = extract(&snips());
        assert!(o.content.iter().any(|c| c.term == "seafood"));
        assert!(!o.locations.is_empty());
        assert!(!o.is_vacuous());
        assert_eq!(o.concept_count(), o.content.len() + o.locations.len());
    }

    #[test]
    fn snippet_membership_is_consistent() {
        let s = snips();
        let o = extract(&s);
        assert_eq!(o.content_by_snippet.len(), s.len());
        assert_eq!(o.locations_by_snippet.len(), s.len());
        // Snippet 0 contains "seafood".
        let sea = o.content.iter().position(|c| c.term == "seafood").unwrap();
        assert!(o.content_by_snippet[0].contains(&sea));
        // Snippet 1 has no location.
        assert!(o.locations_by_snippet[1].is_empty());
        // Snippets 0 and 2 mention port alden.
        assert!(!o.locations_by_snippet[0].is_empty());
        assert!(!o.locations_by_snippet[2].is_empty());
    }

    #[test]
    fn graph_aligns_with_content_indices() {
        let o = extract(&snips());
        assert_eq!(o.graph.num_concepts(), o.content.len());
        for e in o.graph.edges() {
            assert!(e.a < o.content.len() && e.b < o.content.len());
        }
    }

    #[test]
    fn empty_snippets_are_vacuous() {
        let o = extract(&[]);
        assert!(o.is_vacuous());
        assert!(o.content_by_snippet.is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let o = extract(&snips());
        let j = serde_json::to_string(&o).unwrap();
        let back: QueryConceptOntology = serde_json::from_str(&j).unwrap();
        assert_eq!(back.content, o.content);
        assert_eq!(back.locations, o.locations);
    }
}
