//! Content-concept extraction.
//!
//! Following the paper's support-based mining: a term/phrase `c` appearing
//! in the snippets of query `q`'s top results is a *content concept* of `q`
//! when
//!
//! ```text
//! support(c) = sf(c) / n  ≥  s
//! ```
//!
//! where `sf(c)` is the number of snippets containing `c` (snippet
//! frequency, not raw term frequency — one snippet mentioning a term five
//! times is still one vote), `n` the number of snippets examined, and `s`
//! the support threshold. Candidates are analyzed unigrams and bigrams,
//! excluding the query's own terms (a concept must add information beyond
//! the query).

use pws_text::{bigrams, Analyzer};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Extraction parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ConceptConfig {
    /// Minimum support `s` (fraction of snippets).
    pub min_support: f64,
    /// Minimum absolute snippet count (guards tiny result sets where one
    /// snippet is already 100% support).
    pub min_snippet_freq: u32,
    /// Extract bigram concepts in addition to unigrams.
    pub bigrams: bool,
    /// Cap on concepts returned (highest-support first).
    pub max_concepts: usize,
}

impl Default for ConceptConfig {
    fn default() -> Self {
        ConceptConfig { min_support: 0.05, min_snippet_freq: 2, bigrams: true, max_concepts: 50 }
    }
}

/// One extracted content concept.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContentConcept {
    /// The (analyzed) concept term or phrase.
    pub term: String,
    /// Number of snippets containing the concept.
    pub snippet_freq: u32,
    /// `snippet_freq / n`.
    pub support: f64,
}

/// Extract content concepts of `query_text` from `snippets`.
///
/// Returns concepts sorted by descending support, ties broken
/// lexicographically (deterministic).
pub fn extract_content(
    query_text: &str,
    snippets: &[String],
    cfg: &ConceptConfig,
) -> Vec<ContentConcept> {
    if snippets.is_empty() {
        return Vec::new();
    }
    let analyzer = Analyzer::default();
    let query_terms: HashSet<String> = analyzer.analyze(query_text).into_iter().collect();

    // Snippet frequency per candidate.
    let mut sf: HashMap<String, u32> = HashMap::new();
    for snippet in snippets {
        let tokens = analyzer.analyze(snippet);
        let mut in_this: HashSet<String> = HashSet::new();
        for t in &tokens {
            if !query_terms.contains(t) {
                in_this.insert(t.clone());
            }
        }
        if cfg.bigrams {
            for bg in bigrams(&tokens) {
                // A bigram containing a query term on either side is still
                // informative ("seafood restaurant" for query "restaurant"),
                // but a bigram of *only* query terms is not.
                let both_query = bg.split(' ').all(|w| query_terms.contains(w));
                if !both_query {
                    in_this.insert(bg);
                }
            }
        }
        for c in in_this {
            *sf.entry(c).or_insert(0) += 1;
        }
    }

    let n = snippets.len() as f64;
    let mut out: Vec<ContentConcept> = sf
        .into_iter()
        .filter_map(|(term, freq)| {
            let support = f64::from(freq) / n;
            (support >= cfg.min_support && freq >= cfg.min_snippet_freq)
                .then_some(ContentConcept { term, snippet_freq: freq, support })
        })
        .collect();

    out.sort_unstable_by(|a, b| {
        b.support
            .partial_cmp(&a.support)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.term.cmp(&b.term))
    });
    out.truncate(cfg.max_concepts);
    out
}

/// Which of `concepts` occur in the given snippet? Used online when
/// attributing a click to the concepts visible in the clicked result.
pub fn concepts_in_snippet(concepts: &[ContentConcept], snippet: &str) -> Vec<usize> {
    let analyzer = Analyzer::default();
    let tokens = analyzer.analyze(snippet);
    let unigrams: HashSet<&str> = tokens.iter().map(|s| s.as_str()).collect();
    let bigram_set: HashSet<String> = bigrams(&tokens).into_iter().collect();
    concepts
        .iter()
        .enumerate()
        .filter(|(_, c)| {
            if c.term.contains(' ') {
                bigram_set.contains(&c.term)
            } else {
                unigrams.contains(c.term.as_str())
            }
        })
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snips(texts: &[&str]) -> Vec<String> {
        texts.iter().map(|t| t.to_string()).collect()
    }

    fn cfg(min_support: f64) -> ConceptConfig {
        ConceptConfig { min_support, min_snippet_freq: 1, bigrams: true, max_concepts: 100 }
    }

    #[test]
    fn empty_snippets_give_no_concepts() {
        assert!(extract_content("q", &[], &ConceptConfig::default()).is_empty());
    }

    #[test]
    fn support_is_snippet_fraction() {
        let s = snips(&["seafood here", "seafood there", "nothing else"]);
        let cs = extract_content("restaurant", &s, &cfg(0.0));
        let seafood = cs.iter().find(|c| c.term == "seafood").expect("seafood extracted");
        assert_eq!(seafood.snippet_freq, 2);
        assert!((seafood.support - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn repeated_mentions_in_one_snippet_count_once() {
        let s = snips(&["lobster lobster lobster", "other text"]);
        let cs = extract_content("q", &s, &cfg(0.0));
        let lob = cs.iter().find(|c| c.term == "lobster").unwrap();
        assert_eq!(lob.snippet_freq, 1);
    }

    #[test]
    fn query_terms_are_excluded() {
        let s = snips(&["restaurant seafood", "restaurant sushi"]);
        let cs = extract_content("restaurant", &s, &cfg(0.0));
        assert!(!cs.iter().any(|c| c.term == "restaur"), "query term leaked: {cs:?}");
        assert!(cs.iter().any(|c| c.term == "seafood"));
    }

    #[test]
    fn stemmed_query_matching_excludes_inflections() {
        let s = snips(&["restaurants everywhere", "many restaurants"]);
        let cs = extract_content("restaurant", &s, &cfg(0.0));
        // "restaurants" stems to the query term's stem → excluded as a
        // unigram concept (bigrams containing it may survive by design).
        assert!(cs.iter().all(|c| c.term != "restaur"), "{cs:?}");
    }

    #[test]
    fn threshold_filters_low_support() {
        let s = snips(&["seafood a", "seafood b", "seafood c", "rare d"]);
        let cs = extract_content("q", &s, &cfg(0.5));
        assert!(cs.iter().any(|c| c.term == "seafood"));
        assert!(!cs.iter().any(|c| c.term == "rare"));
    }

    #[test]
    fn min_snippet_freq_guards_small_sets() {
        let s = snips(&["unique mention only"]);
        let c = ConceptConfig { min_support: 0.0, min_snippet_freq: 2, ..ConceptConfig::default() };
        assert!(extract_content("q", &s, &c).is_empty());
    }

    #[test]
    fn bigram_concepts_extracted() {
        let s = snips(&["lobster roll special", "try the lobster roll"]);
        let cs = extract_content("q", &s, &cfg(0.5));
        assert!(cs.iter().any(|c| c.term == "lobster roll"), "{cs:?}");
    }

    #[test]
    fn bigram_with_query_term_is_kept_but_pure_query_bigram_dropped() {
        let s = snips(&["seafood restaurant here", "seafood restaurant there"]);
        let cs = extract_content("seafood restaurant", &s, &cfg(0.0));
        assert!(!cs.iter().any(|c| c.term == "seafood restaur"), "{cs:?}");
    }

    #[test]
    fn bigrams_disabled() {
        let s = snips(&["lobster roll a", "lobster roll b"]);
        let c = ConceptConfig { bigrams: false, min_support: 0.0, min_snippet_freq: 1, max_concepts: 100 };
        let cs = extract_content("q", &s, &c);
        assert!(cs.iter().all(|c| !c.term.contains(' ')));
    }

    #[test]
    fn ordering_is_support_desc_then_term() {
        let s = snips(&["alpha beta", "alpha gamma", "alpha beta"]);
        let cs = extract_content("q", &s, &cfg(0.0));
        assert_eq!(cs[0].term, "alpha");
        for w in cs.windows(2) {
            assert!(w[0].support >= w[1].support);
        }
    }

    #[test]
    fn max_concepts_caps_output() {
        let s = snips(&["aa bb cc dd ee ff gg hh", "aa bb cc dd ee ff gg hh"]);
        let c = ConceptConfig { max_concepts: 3, min_support: 0.0, min_snippet_freq: 1, bigrams: true };
        assert_eq!(extract_content("q", &s, &c).len(), 3);
    }

    #[test]
    fn concepts_in_snippet_finds_unigrams_and_bigrams() {
        let concepts = vec![
            ContentConcept { term: "seafood".into(), snippet_freq: 2, support: 0.5 },
            ContentConcept { term: "lobster roll".into(), snippet_freq: 2, support: 0.5 },
            ContentConcept { term: "sushi".into(), snippet_freq: 2, support: 0.5 },
        ];
        let idx = concepts_in_snippet(&concepts, "fresh lobster roll and seafood platter");
        assert_eq!(idx, vec![0, 1]);
        assert!(concepts_in_snippet(&concepts, "nothing here").is_empty());
    }
}
