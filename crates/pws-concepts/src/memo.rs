//! Memoization of [`QueryConceptOntology::extract`].
//!
//! Concept extraction is a pure function of `(query_text, snippets,
//! configs)` — the matcher and world are fixed per engine — yet the
//! pipeline runs it at least twice per turn (candidate-pool extraction in
//! `search`, page extraction in `finish_turn`) and base retrieval is
//! user-independent, so identical snippet pools recur across users issuing
//! the same query. [`ConceptMemo`] keys one extraction per fingerprint and
//! hands out clones, which cost refcount bumps and `Vec` copies instead of
//! tokenizing every snippet again.
//!
//! Sharded `Mutex<HashMap>` with a per-shard LRU bound; safe to share
//! across threads (`&self` everywhere, `Send + Sync`).

use crate::content::ConceptConfig;
use crate::location::LocationConceptConfig;
use crate::ontology::QueryConceptOntology;
use pws_geo::{LocationMatcher, LocationOntology};
use std::collections::HashMap;
use std::sync::Mutex;

/// FNV-1a over a byte stream, used for both fingerprinting and sharding.
#[derive(Debug, Clone, Copy)]
struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// One cached extraction with its LRU tick.
#[derive(Debug)]
struct MemoEntry {
    tick: u64,
    value: QueryConceptOntology,
}

#[derive(Debug, Default)]
struct MemoShard {
    entries: HashMap<u64, MemoEntry>,
    tick: u64,
}

/// Bounded, sharded memo table for concept extraction.
///
/// Capacity 0 disables memoization entirely (every call extracts).
#[derive(Debug)]
pub struct ConceptMemo {
    shards: Vec<Mutex<MemoShard>>,
    capacity_per_shard: usize,
}

const MEMO_SHARDS: usize = 8;

impl ConceptMemo {
    /// A memo holding at most `capacity` extractions (split across shards).
    /// `capacity = 0` disables caching.
    pub fn new(capacity: usize) -> Self {
        let capacity_per_shard = capacity.div_ceil(MEMO_SHARDS);
        ConceptMemo {
            shards: (0..MEMO_SHARDS).map(|_| Mutex::new(MemoShard::default())).collect(),
            capacity_per_shard,
        }
    }

    /// Fingerprint of everything the extraction output depends on (beyond
    /// the per-engine matcher/world, which callers must keep fixed).
    fn fingerprint(
        query_text: &str,
        snippets: &[String],
        content_cfg: &ConceptConfig,
        location_cfg: &LocationConceptConfig,
    ) -> u64 {
        let mut h = Fnv1a::new();
        h.write(query_text.as_bytes());
        h.write(&[0xff]);
        for s in snippets {
            h.write(s.as_bytes());
            h.write(&[0xfe]);
        }
        h.write(&content_cfg.min_support.to_bits().to_le_bytes());
        h.write(&content_cfg.min_snippet_freq.to_le_bytes());
        h.write(&[u8::from(content_cfg.bigrams)]);
        h.write(&(content_cfg.max_concepts as u64).to_le_bytes());
        h.write(&location_cfg.min_support.to_bits().to_le_bytes());
        h.write(&location_cfg.rollup_decay.to_bits().to_le_bytes());
        h.write(&[u8::from(location_cfg.rollup)]);
        h.finish()
    }

    /// Memoized [`QueryConceptOntology::extract`]. Extraction is
    /// deterministic, so a cached clone is indistinguishable from a fresh
    /// extraction. Returns `(ontology, was_hit)`.
    #[allow(clippy::too_many_arguments)]
    pub fn get_or_extract(
        &self,
        query_text: &str,
        snippets: &[String],
        matcher: &LocationMatcher,
        world: &LocationOntology,
        content_cfg: &ConceptConfig,
        location_cfg: &LocationConceptConfig,
    ) -> (QueryConceptOntology, bool) {
        if self.capacity_per_shard == 0 {
            let o = QueryConceptOntology::extract(
                query_text, snippets, matcher, world, content_cfg, location_cfg,
            );
            return (o, false);
        }
        let key = Self::fingerprint(query_text, snippets, content_cfg, location_cfg);
        let shard = &self.shards[(key as usize) % MEMO_SHARDS];
        {
            let mut s = shard.lock().unwrap_or_else(|e| e.into_inner());
            s.tick += 1;
            let tick = s.tick;
            if let Some(entry) = s.entries.get_mut(&key) {
                entry.tick = tick;
                return (entry.value.clone(), true);
            }
        }
        // Extract outside the lock: extraction is the expensive part, and
        // racing extractors for the same key just insert the same value.
        let value = QueryConceptOntology::extract(
            query_text, snippets, matcher, world, content_cfg, location_cfg,
        );
        let mut s = shard.lock().unwrap_or_else(|e| e.into_inner());
        s.tick += 1;
        let tick = s.tick;
        if s.entries.len() >= self.capacity_per_shard && !s.entries.contains_key(&key) {
            // Evict the least recently used entry in this shard. Linear scan
            // is fine: shards are small and eviction is rare relative to
            // the extraction work a miss already paid for.
            if let Some(&evict) = s
                .entries
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k)
            {
                s.entries.remove(&evict);
            }
        }
        s.entries.insert(key, MemoEntry { tick, value: value.clone() });
        (value, false)
    }

    /// Drop every cached extraction (e.g. after an index swap).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.lock().unwrap_or_else(|e| e.into_inner());
            s.entries.clear();
        }
    }

    /// Number of cached extractions across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).entries.len())
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pws_geo::LocId;

    fn world() -> LocationOntology {
        let mut o = LocationOntology::new();
        let r = o.add(LocId::WORLD, "westland", vec![]);
        let c = o.add(r, "ardonia", vec![]);
        let s = o.add(c, "north vale", vec![]);
        o.add(s, "port alden", vec![]);
        o
    }

    fn snips(tag: &str) -> Vec<String> {
        vec![
            format!("seafood lobster {tag} in port alden"),
            format!("the seafood menu with lobster {tag}"),
        ]
    }

    fn cfgs() -> (ConceptConfig, LocationConceptConfig) {
        (
            ConceptConfig { min_support: 0.0, min_snippet_freq: 1, bigrams: true, max_concepts: 50 },
            LocationConceptConfig { min_support: 0.0, ..Default::default() },
        )
    }

    #[test]
    fn second_call_hits_and_matches_direct_extraction() {
        let w = world();
        let m = LocationMatcher::build(&w);
        let (cc, lc) = cfgs();
        let memo = ConceptMemo::new(16);
        let s = snips("specials");
        let (a, hit_a) = memo.get_or_extract("restaurant", &s, &m, &w, &cc, &lc);
        let (b, hit_b) = memo.get_or_extract("restaurant", &s, &m, &w, &cc, &lc);
        assert!(!hit_a && hit_b);
        let direct = QueryConceptOntology::extract("restaurant", &s, &m, &w, &cc, &lc);
        for o in [&a, &b] {
            assert_eq!(o.content, direct.content);
            assert_eq!(o.locations, direct.locations);
            assert_eq!(o.content_by_snippet, direct.content_by_snippet);
            assert_eq!(o.locations_by_snippet, direct.locations_by_snippet);
        }
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn different_query_or_snippets_miss() {
        let w = world();
        let m = LocationMatcher::build(&w);
        let (cc, lc) = cfgs();
        let memo = ConceptMemo::new(16);
        let s = snips("specials");
        assert!(!memo.get_or_extract("restaurant", &s, &m, &w, &cc, &lc).1);
        assert!(!memo.get_or_extract("hotel", &s, &m, &w, &cc, &lc).1);
        assert!(!memo.get_or_extract("restaurant", &snips("rolls"), &m, &w, &cc, &lc).1);
        assert_eq!(memo.len(), 3);
    }

    #[test]
    fn config_changes_miss() {
        let w = world();
        let m = LocationMatcher::build(&w);
        let (cc, lc) = cfgs();
        let memo = ConceptMemo::new(16);
        let s = snips("specials");
        assert!(!memo.get_or_extract("restaurant", &s, &m, &w, &cc, &lc).1);
        let cc2 = ConceptConfig { bigrams: false, ..cc };
        let (o, hit) = memo.get_or_extract("restaurant", &s, &m, &w, &cc2, &lc);
        assert!(!hit);
        assert_eq!(o.content, QueryConceptOntology::extract("restaurant", &s, &m, &w, &cc2, &lc).content);
    }

    #[test]
    fn capacity_bounds_and_evicts_lru() {
        let w = world();
        let m = LocationMatcher::build(&w);
        let (cc, lc) = cfgs();
        // 8 shards × 1 entry each.
        let memo = ConceptMemo::new(8);
        for i in 0..50 {
            let s = snips(&format!("tag{i}"));
            memo.get_or_extract("restaurant", &s, &m, &w, &cc, &lc);
        }
        assert!(memo.len() <= 8, "memo grew past its bound: {}", memo.len());
    }

    #[test]
    fn zero_capacity_disables() {
        let w = world();
        let m = LocationMatcher::build(&w);
        let (cc, lc) = cfgs();
        let memo = ConceptMemo::new(0);
        let s = snips("specials");
        assert!(!memo.get_or_extract("restaurant", &s, &m, &w, &cc, &lc).1);
        assert!(!memo.get_or_extract("restaurant", &s, &m, &w, &cc, &lc).1);
        assert!(memo.is_empty());
    }

    #[test]
    fn clear_empties() {
        let w = world();
        let m = LocationMatcher::build(&w);
        let (cc, lc) = cfgs();
        let memo = ConceptMemo::new(16);
        memo.get_or_extract("restaurant", &snips("a"), &m, &w, &cc, &lc);
        assert!(!memo.is_empty());
        memo.clear();
        assert!(memo.is_empty());
    }
}
