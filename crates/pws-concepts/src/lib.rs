//! # pws-concepts — content & location concept extraction
//!
//! The heart of the paper's representation: for each query, mine from the
//! top-K result *snippets*
//!
//! * **content concepts** ([`content`]) — unigrams and bigrams that
//!   co-occur with the query in snippets with *support* above a threshold
//!   (support = fraction of snippets containing the candidate). These are
//!   the topical angles of the result set ("seafood", "lobster roll" for
//!   query "restaurant");
//! * **location concepts** ([`location`]) — place names of the location
//!   ontology matched in snippets, rolled up the ontology so a mention of a
//!   city also (fractionally) supports its state and country;
//! * a **concept relationship graph** ([`graph`]) — snippet-incidence
//!   cosine similarity between content concepts, used to expand profile
//!   mass to related concepts (the GCS ablation of F7);
//! * the **per-query concept ontology** ([`ontology`]) — the combined
//!   structure consumed by user profiling.
//!
//! ```
//! use pws_concepts::{ConceptConfig, extract_content};
//!
//! let snippets = vec![
//!     "fresh seafood daily lobster specials".to_string(),
//!     "the seafood menu and lobster rolls".to_string(),
//!     "seafood buffet downtown".to_string(),
//! ];
//! let concepts = extract_content("restaurant", &snippets, &ConceptConfig::default());
//! assert!(concepts.iter().any(|c| c.term == "seafood"));
//! ```

pub mod content;
pub mod graph;
pub mod location;
pub mod memo;
pub mod ontology;

pub use content::{extract_content, ConceptConfig, ContentConcept};
pub use graph::{ConceptGraph, ConceptRelation};
pub use location::{extract_locations, LocationConcept, LocationConceptConfig};
pub use memo::ConceptMemo;
pub use ontology::QueryConceptOntology;
