//! Property tests for concept extraction: support-counting laws, threshold
//! monotonicity, and graph/ontology consistency over random snippet sets.

use proptest::prelude::*;
use pws_concepts::{extract_content, ConceptConfig, ConceptGraph, LocationConceptConfig, QueryConceptOntology};
use pws_geo::{LocId, LocationMatcher, LocationOntology};

fn vocab_word() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec![
        "seafood", "lobster", "sushi", "buffet", "menu", "hotel", "booking", "android",
        "battery", "stadium", "guide", "review",
    ])
}

fn snippet() -> impl Strategy<Value = String> {
    prop::collection::vec(vocab_word(), 1..12).prop_map(|ws| ws.join(" "))
}

fn snippets() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(snippet(), 0..12)
}

fn loose(bigrams: bool) -> ConceptConfig {
    ConceptConfig { min_support: 0.0, min_snippet_freq: 1, bigrams, max_concepts: 1000 }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Support values are consistent: `support = snippet_freq / n`,
    /// `1 ≤ snippet_freq ≤ n`, list sorted by support descending.
    #[test]
    fn support_accounting(snips in snippets()) {
        let concepts = extract_content("query", &snips, &loose(true));
        let n = snips.len() as f64;
        for c in &concepts {
            prop_assert!(c.snippet_freq >= 1);
            prop_assert!(c.snippet_freq as usize <= snips.len());
            prop_assert!((c.support - f64::from(c.snippet_freq) / n).abs() < 1e-12);
        }
        for w in concepts.windows(2) {
            prop_assert!(w[0].support >= w[1].support);
        }
        // No duplicates.
        let mut terms: Vec<&str> = concepts.iter().map(|c| c.term.as_str()).collect();
        let len = terms.len();
        terms.sort_unstable();
        terms.dedup();
        prop_assert_eq!(terms.len(), len);
    }

    /// Raising the threshold can only shrink the concept set, and the
    /// surviving set is exactly the prefix filter of the loose set.
    #[test]
    fn threshold_monotonicity(snips in snippets(), s1 in 0.0f64..0.5, s2 in 0.5f64..1.0) {
        let lo = extract_content("query", &snips, &ConceptConfig { min_support: s1, ..loose(true) });
        let hi = extract_content("query", &snips, &ConceptConfig { min_support: s2, ..loose(true) });
        prop_assert!(hi.len() <= lo.len());
        for c in &hi {
            prop_assert!(c.support >= s2);
            prop_assert!(lo.iter().any(|d| d.term == c.term));
        }
    }

    /// Unigram concepts ⊆ (unigram + bigram) concepts.
    #[test]
    fn bigrams_only_add(snips in snippets()) {
        let uni = extract_content("query", &snips, &loose(false));
        let both = extract_content("query", &snips, &loose(true));
        for c in &uni {
            prop_assert!(both.iter().any(|d| d.term == c.term));
        }
    }

    /// Graph edges: valid indices, weights in (0, 1], no self-loops,
    /// no duplicate pairs.
    #[test]
    fn graph_well_formed(snips in snippets()) {
        let concepts = extract_content("query", &snips, &loose(false));
        let g = ConceptGraph::build(&concepts, &snips, 0.1, 0.8);
        let mut seen = std::collections::HashSet::new();
        for e in g.edges() {
            prop_assert!(e.a < concepts.len() && e.b < concepts.len());
            prop_assert!(e.a != e.b);
            prop_assert!(e.weight > 0.0 && e.weight <= 1.0 + 1e-12);
            prop_assert!(seen.insert((e.a.min(e.b), e.a.max(e.b))), "dup edge");
        }
    }

    /// Full ontology extraction: membership lists are consistent with the
    /// concept lists and every index is in bounds.
    #[test]
    fn ontology_membership_consistent(snips in snippets()) {
        let mut world = LocationOntology::new();
        let r = world.add(LocId::WORLD, "westland", vec![]);
        let c = world.add(r, "ardonia", vec![]);
        let s = world.add(c, "vale", vec![]);
        world.add(s, "alden", vec![]);
        let matcher = LocationMatcher::build(&world);
        let onto = QueryConceptOntology::extract(
            "query",
            &snips,
            &matcher,
            &world,
            &loose(true),
            &LocationConceptConfig { min_support: 0.0, ..Default::default() },
        );
        prop_assert_eq!(onto.content_by_snippet.len(), snips.len());
        prop_assert_eq!(onto.locations_by_snippet.len(), snips.len());
        for per_snippet in &onto.content_by_snippet {
            for &ci in per_snippet {
                prop_assert!(ci < onto.content.len());
            }
        }
        for per_snippet in &onto.locations_by_snippet {
            for &li in per_snippet {
                prop_assert!(li < onto.locations.len());
            }
        }
        prop_assert_eq!(onto.graph.num_concepts(), onto.content.len());
    }
}
