//! Geographic coordinates for ontology nodes.
//!
//! The paper's follow-up work extends location preferences with physical
//! (GPS) distance. This module provides that substrate: every ontology
//! node gets a deterministic synthetic coordinate (children cluster around
//! their parents, so tree locality implies geographic locality), plus the
//! haversine metric and nearest-neighbour queries used for
//! proximity-smoothed location preferences.

use crate::ontology::{Level, LocId, LocationOntology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A WGS84-style coordinate (degrees).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Coord {
    /// Latitude in degrees, clamped to [-85, 85] (no pole cities).
    pub lat: f64,
    /// Longitude in degrees, wrapped to [-180, 180).
    pub lon: f64,
}

impl Coord {
    /// Construct with clamping/wrapping.
    pub fn new(lat: f64, lon: f64) -> Self {
        let lat = lat.clamp(-85.0, 85.0);
        let mut lon = (lon + 180.0) % 360.0;
        if lon < 0.0 {
            lon += 360.0;
        }
        Coord { lat, lon: lon - 180.0 }
    }
}

/// Mean Earth radius in kilometres.
pub const EARTH_RADIUS_KM: f64 = 6371.0;

/// Great-circle distance between two coordinates (haversine), in km.
pub fn haversine_km(a: Coord, b: Coord) -> f64 {
    let (lat1, lon1) = (a.lat.to_radians(), a.lon.to_radians());
    let (lat2, lon2) = (b.lat.to_radians(), b.lon.to_radians());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * h.sqrt().min(1.0).asin()
}

/// Coordinates for every node of one ontology (indexed by `LocId`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldCoords {
    coords: Vec<Coord>,
}

impl WorldCoords {
    /// Deterministically assign coordinates to `world`: region centres are
    /// spread over the globe, and each child is jittered around its parent
    /// with a level-dependent spread (country ±12°, state ±4°, city ±1.2°),
    /// so ontology locality implies geographic locality.
    pub fn generate(world: &LocationOntology, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coords = vec![Coord { lat: 0.0, lon: 0.0 }; world.len()];
        // Walk ids in order: parents always precede children (construction
        // order guarantees it).
        for id in world.ids() {
            let node_level = world.level(id);
            coords[id.index()] = match world.parent(id) {
                None => Coord { lat: 0.0, lon: 0.0 }, // root placeholder
                Some(parent) if world.level(parent) == Level::World => {
                    // Regions: spread over the globe.
                    Coord::new(rng.gen_range(-60.0..60.0), rng.gen_range(-180.0..180.0))
                }
                Some(parent) => {
                    let p = coords[parent.index()];
                    let spread = match node_level {
                        Level::Country => 12.0,
                        Level::State => 4.0,
                        Level::City => 1.2,
                        _ => 20.0,
                    };
                    Coord::new(
                        p.lat + rng.gen_range(-spread..spread),
                        p.lon + rng.gen_range(-spread..spread),
                    )
                }
            };
        }
        WorldCoords { coords }
    }

    /// Coordinate of a node.
    pub fn get(&self, id: LocId) -> Coord {
        self.coords[id.index()]
    }

    /// Distance in km between two nodes.
    pub fn distance_km(&self, a: LocId, b: LocId) -> f64 {
        haversine_km(self.get(a), self.get(b))
    }

    /// The `k` cities nearest to `from` (excluding `from` itself),
    /// ascending by distance, ties by id.
    pub fn nearest_cities(
        &self,
        world: &LocationOntology,
        from: LocId,
        k: usize,
    ) -> Vec<(LocId, f64)> {
        let origin = self.get(from);
        let mut all: Vec<(LocId, f64)> = world
            .cities()
            .filter(|&c| c != from)
            .map(|c| (c, haversine_km(origin, self.get(c))))
            .collect();
        all.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        all.truncate(k);
        all
    }

    /// Exponential proximity kernel `exp(−d/scale_km)` in (0, 1].
    pub fn proximity(&self, a: LocId, b: LocId, scale_km: f64) -> f64 {
        (-self.distance_km(a, b) / scale_km.max(1e-9)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{WorldGen, WorldSpec};

    fn world() -> LocationOntology {
        WorldGen::new(3).generate(&WorldSpec::small())
    }

    #[test]
    fn haversine_known_points() {
        // Equatorial degree of longitude ≈ 111.19 km.
        let a = Coord::new(0.0, 0.0);
        let b = Coord::new(0.0, 1.0);
        let d = haversine_km(a, b);
        assert!((d - 111.19).abs() < 0.5, "got {d}");
        // Identical points.
        assert_eq!(haversine_km(a, a), 0.0);
    }

    #[test]
    fn haversine_symmetry_and_triangle() {
        let a = Coord::new(10.0, 20.0);
        let b = Coord::new(-30.0, 100.0);
        let c = Coord::new(45.0, -60.0);
        assert!((haversine_km(a, b) - haversine_km(b, a)).abs() < 1e-9);
        assert!(haversine_km(a, c) <= haversine_km(a, b) + haversine_km(b, c) + 1e-6);
    }

    #[test]
    fn coord_clamps_and_wraps() {
        let c = Coord::new(95.0, 190.0);
        assert_eq!(c.lat, 85.0);
        assert!((-180.0..180.0).contains(&c.lon));
    }

    #[test]
    fn generation_is_deterministic() {
        let w = world();
        let a = WorldCoords::generate(&w, 9);
        let b = WorldCoords::generate(&w, 9);
        for id in w.ids() {
            assert_eq!(a.get(id), b.get(id));
        }
        let c = WorldCoords::generate(&w, 10);
        assert!(w.ids().any(|id| a.get(id) != c.get(id)));
    }

    #[test]
    fn tree_locality_implies_geo_locality() {
        let w = world();
        let coords = WorldCoords::generate(&w, 9);
        // Cities in the same state should on average be closer than cities
        // in different regions.
        let mut same_state = Vec::new();
        let mut cross_region = Vec::new();
        let cities: Vec<LocId> = w.cities().collect();
        for (i, &a) in cities.iter().enumerate() {
            for &b in &cities[i + 1..] {
                let d = coords.distance_km(a, b);
                if w.parent(a) == w.parent(b) {
                    same_state.push(d);
                } else if w.lca(a, b) == LocId::WORLD {
                    cross_region.push(d);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(!same_state.is_empty() && !cross_region.is_empty());
        assert!(
            mean(&same_state) < mean(&cross_region) / 2.0,
            "same-state {} vs cross-region {}",
            mean(&same_state),
            mean(&cross_region)
        );
    }

    #[test]
    fn nearest_cities_sorted_and_exclusive() {
        let w = world();
        let coords = WorldCoords::generate(&w, 9);
        let city = w.cities().next().unwrap();
        let near = coords.nearest_cities(&w, city, 5);
        assert_eq!(near.len(), 5);
        assert!(near.iter().all(|(c, _)| *c != city));
        for pair in near.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
    }

    #[test]
    fn proximity_kernel_bounds_and_decay() {
        let w = world();
        let coords = WorldCoords::generate(&w, 9);
        let cities: Vec<LocId> = w.cities().collect();
        let (a, b) = (cities[0], cities[1]);
        let p_near = coords.proximity(a, a, 100.0);
        let p_far = coords.proximity(a, b, 100.0);
        assert_eq!(p_near, 1.0);
        assert!(p_far > 0.0 && p_far <= 1.0);
        // Larger scale → higher proximity for the same pair.
        assert!(coords.proximity(a, b, 1000.0) >= coords.proximity(a, b, 10.0));
    }
}
