//! # pws-geo — hierarchical location ontology
//!
//! The paper's location preferences are defined over a predefined *location
//! ontology*: a tree of place names (region → country → state → city) against
//! which result snippets are matched to extract *location concepts*.
//!
//! The real paper used a hand-curated ontology of actual place names. We
//! have no such data offline, so this crate provides:
//!
//! * [`ontology::LocationOntology`] — the tree structure, with parents,
//!   children, ancestor walks, lowest common ancestors, and a tree distance
//!   used for profile smoothing;
//! * [`gen::WorldGen`] — a seeded synthetic world generator that produces a
//!   deterministic gazetteer of pronounceable multi-word place names (the
//!   *shape* of the data — tree depth, multi-word names, aliasing, name
//!   ambiguity — is what the matching and profiling code exercises, so
//!   synthetic names preserve the relevant behaviour);
//! * [`matcher::LocationMatcher`] — longest-match multi-word recognition of
//!   place names in token streams, the core of location-concept extraction.
//!
//! ```
//! use pws_geo::gen::{WorldGen, WorldSpec};
//! use pws_geo::matcher::LocationMatcher;
//!
//! let world = WorldGen::new(42).generate(&WorldSpec::small());
//! let matcher = LocationMatcher::build(&world);
//! let city = world.cities().next().unwrap();
//! let text = format!("best seafood in {}", world.name(city));
//! let hits = matcher.match_text(&text);
//! assert!(hits.iter().any(|h| h.loc == city));
//! ```

pub mod coords;
pub mod gen;
pub mod matcher;
pub mod ontology;

pub use coords::{haversine_km, Coord, WorldCoords};
pub use gen::{WorldGen, WorldSpec};
pub use matcher::{LocationMatch, LocationMatcher};
pub use ontology::{Level, LocId, LocationOntology};
