//! Synthetic world generation.
//!
//! Substitutes for the hand-curated place-name ontology the paper used.
//! Names are generated from syllable templates so they are pronounceable,
//! distinct-looking, and — crucially — multi-word with controllable
//! probability, which is what stresses the longest-match recognizer.
//!
//! Generation is fully deterministic given the seed.

use crate::ontology::{LocId, LocationOntology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Shape parameters of the generated world.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldSpec {
    /// Number of top-level regions.
    pub regions: usize,
    /// Countries per region.
    pub countries_per_region: usize,
    /// States per country.
    pub states_per_country: usize,
    /// Cities per state.
    pub cities_per_state: usize,
    /// Probability that a city name is two words ("port alden").
    pub multiword_city_prob: f64,
    /// Probability that a node gets one alias.
    pub alias_prob: f64,
}

impl WorldSpec {
    /// The default experimental world: 3 regions × 4 countries × 3 states ×
    /// 4 cities = 144 cities, matching T1 in DESIGN.md.
    ///
    /// Density matters: with the default 8k-document corpus this gives
    /// roughly 30 localized documents per city (~2.5 per city×topic), so a
    /// user's home city actually has content to surface. A sparser world
    /// starves location personalization of candidates, a denser one makes
    /// the problem trivially easy.
    pub fn default_world() -> Self {
        WorldSpec {
            regions: 3,
            countries_per_region: 4,
            states_per_country: 3,
            cities_per_state: 4,
            multiword_city_prob: 0.45,
            alias_prob: 0.15,
        }
    }

    /// A small world for unit tests and doc examples (2×2×2×3 = 24 cities).
    pub fn small() -> Self {
        WorldSpec {
            regions: 2,
            countries_per_region: 2,
            states_per_country: 2,
            cities_per_state: 3,
            multiword_city_prob: 0.4,
            alias_prob: 0.2,
        }
    }

    /// Total number of cities this spec will produce.
    pub fn total_cities(&self) -> usize {
        self.regions * self.countries_per_region * self.states_per_country * self.cities_per_state
    }

    /// Total nodes including the root.
    pub fn total_nodes(&self) -> usize {
        let r = self.regions;
        let c = r * self.countries_per_region;
        let s = c * self.states_per_country;
        let ci = s * self.cities_per_state;
        1 + r + c + s + ci
    }
}

/// Seeded generator of [`LocationOntology`] worlds.
#[derive(Debug)]
pub struct WorldGen {
    rng: StdRng,
    used_names: HashSet<String>,
}

/// City-name prefixes that create multi-word names.
const CITY_PREFIXES: &[&str] = &["port", "new", "mount", "lake", "fort", "east", "west", "north", "south", "saint"];

/// Syllable inventory for generated names. Chosen to avoid producing real
/// English stopwords or common content words.
const ONSETS: &[&str] = &["b", "br", "c", "cr", "d", "dr", "f", "g", "gr", "h", "k", "kl", "l", "m", "n", "p", "pr", "r", "s", "st", "t", "tr", "v", "w", "z"];
const NUCLEI: &[&str] = &["a", "e", "i", "o", "u", "ai", "ea", "io", "ou"];
const CODAS: &[&str] = &["", "l", "m", "n", "r", "s", "th", "nd", "rk", "x"];

impl WorldGen {
    /// Create a generator with a fixed seed.
    pub fn new(seed: u64) -> Self {
        WorldGen { rng: StdRng::seed_from_u64(seed), used_names: HashSet::new() }
    }

    /// Generate a fresh world according to `spec`.
    pub fn generate(&mut self, spec: &WorldSpec) -> LocationOntology {
        let mut onto = LocationOntology::new();
        for _ in 0..spec.regions {
            let rname = self.fresh_name(3, 0.0);
            let region = onto.add(LocId::WORLD, &rname, self.maybe_alias(spec));
            for _ in 0..spec.countries_per_region {
                let cname = self.fresh_name(3, 0.0);
                let country = onto.add(region, &cname, self.maybe_alias(spec));
                for _ in 0..spec.states_per_country {
                    let sname = self.fresh_name(2, 0.2);
                    let state = onto.add(country, &sname, self.maybe_alias(spec));
                    for _ in 0..spec.cities_per_state {
                        let ciname = self.fresh_name(2, spec.multiword_city_prob);
                        onto.add(state, &ciname, self.maybe_alias(spec));
                    }
                }
            }
        }
        onto
    }

    /// A name no previous call of this generator returned.
    fn fresh_name(&mut self, syllables: usize, multiword_prob: f64) -> String {
        for _attempt in 0..1000 {
            let name = self.candidate_name(syllables, multiword_prob);
            if self.used_names.insert(name.clone()) {
                return name;
            }
        }
        // Extremely unlikely with this syllable inventory; disambiguate with
        // a counter rather than loop forever.
        let n = self.used_names.len();
        let name = format!("{} {}", self.candidate_name(syllables, 0.0), n);
        self.used_names.insert(name.clone());
        name
    }

    fn candidate_name(&mut self, syllables: usize, multiword_prob: f64) -> String {
        let base = self.word(syllables);
        if self.rng.gen_bool(multiword_prob) {
            let prefix = CITY_PREFIXES[self.rng.gen_range(0..CITY_PREFIXES.len())];
            format!("{prefix} {base}")
        } else {
            base
        }
    }

    fn word(&mut self, syllables: usize) -> String {
        let mut w = String::new();
        for i in 0..syllables.max(1) {
            w.push_str(ONSETS[self.rng.gen_range(0..ONSETS.len())]);
            w.push_str(NUCLEI[self.rng.gen_range(0..NUCLEI.len())]);
            // Only the final syllable takes a coda, keeping names short.
            if i + 1 == syllables {
                w.push_str(CODAS[self.rng.gen_range(0..CODAS.len())]);
            }
        }
        w
    }

    fn maybe_alias(&mut self, spec: &WorldSpec) -> Vec<String> {
        if self.rng.gen_bool(spec.alias_prob) {
            vec![self.fresh_name(2, 0.0)]
        } else {
            Vec::new()
        }
    }
}

/// Convenience: generate the default experimental world from a seed.
pub fn default_world(seed: u64) -> LocationOntology {
    WorldGen::new(seed).generate(&WorldSpec::default_world())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ontology::Level;

    #[test]
    fn generation_is_deterministic() {
        let a = WorldGen::new(7).generate(&WorldSpec::small());
        let b = WorldGen::new(7).generate(&WorldSpec::small());
        assert_eq!(a.len(), b.len());
        for id in a.ids() {
            assert_eq!(a.name(id), b.name(id));
            assert_eq!(a.level(id), b.level(id));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorldGen::new(1).generate(&WorldSpec::small());
        let b = WorldGen::new(2).generate(&WorldSpec::small());
        let names_a: Vec<_> = a.ids().map(|i| a.name(i).to_string()).collect();
        let names_b: Vec<_> = b.ids().map(|i| b.name(i).to_string()).collect();
        assert_ne!(names_a, names_b);
    }

    #[test]
    fn node_counts_match_spec() {
        let spec = WorldSpec::small();
        let w = WorldGen::new(3).generate(&spec);
        assert_eq!(w.len(), spec.total_nodes());
        assert_eq!(w.cities().count(), spec.total_cities());
    }

    #[test]
    fn default_world_shape() {
        let spec = WorldSpec::default_world();
        assert_eq!(spec.total_cities(), 144);
        let w = default_world(42);
        assert_eq!(w.len(), spec.total_nodes());
    }

    #[test]
    fn names_are_unique() {
        let w = WorldGen::new(9).generate(&WorldSpec::small());
        let mut seen = std::collections::HashSet::new();
        for id in w.ids() {
            assert!(seen.insert(w.name(id).to_string()), "dup name {}", w.name(id));
        }
    }

    #[test]
    fn some_city_names_are_multiword() {
        let w = default_world(11);
        let multi = w.cities().filter(|&c| w.name(c).contains(' ')).count();
        let total = w.cities().count();
        // spec prob is 0.45; allow a loose band.
        assert!(multi > total / 5, "only {multi}/{total} multiword");
        assert!(multi < total, "all names multiword is suspicious");
    }

    #[test]
    fn levels_are_consistent() {
        let w = WorldGen::new(5).generate(&WorldSpec::small());
        for id in w.ids() {
            if let Some(p) = w.parent(id) {
                assert_eq!(w.level(p).depth() + 1, w.level(id).depth());
            } else {
                assert_eq!(w.level(id), Level::World);
            }
        }
    }
}
