//! Longest-match recognition of place names in text.
//!
//! Location-concept extraction scans each result snippet for ontology names.
//! Multi-word names ("port alden") must win over their single-word suffixes
//! when both exist, so the matcher is a token-level trie traversed greedily:
//! at each position we take the *longest* name starting there, then resume
//! after it.

use crate::ontology::{LocId, LocationOntology};
use pws_text::Analyzer;
use std::collections::HashMap;

/// One recognized place name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocationMatch {
    /// The matched ontology node.
    pub loc: LocId,
    /// Token index where the match starts.
    pub start: usize,
    /// Number of tokens the match spans.
    pub len: usize,
}

#[derive(Debug, Default)]
struct TrieNode {
    children: HashMap<String, TrieNode>,
    /// Node whose (canonical or alias) name ends here.
    terminal: Option<LocId>,
}

/// Token-trie matcher over an ontology's names and aliases.
///
/// Matching is case-insensitive because both the trie and the input go
/// through the same verbatim analyzer.
#[derive(Debug)]
pub struct LocationMatcher {
    root: TrieNode,
    analyzer: Analyzer,
}

impl LocationMatcher {
    /// Build a matcher from every name and alias in `onto` (the root
    /// "world" node is excluded — it is not a real place name).
    pub fn build(onto: &LocationOntology) -> Self {
        let analyzer = Analyzer::verbatim();
        let mut root = TrieNode::default();
        for id in onto.ids() {
            if id == LocId::WORLD {
                continue;
            }
            let node = onto.node(id);
            Self::insert(&mut root, &analyzer, &node.name, id);
            for alias in &node.aliases {
                Self::insert(&mut root, &analyzer, alias, id);
            }
        }
        LocationMatcher { root, analyzer }
    }

    fn insert(root: &mut TrieNode, analyzer: &Analyzer, name: &str, id: LocId) {
        let toks = analyzer.analyze(name);
        if toks.is_empty() {
            return;
        }
        let mut cur = root;
        for t in toks {
            cur = cur.children.entry(t).or_default();
        }
        // If two places share a surface form, the first inserted wins; the
        // generator guarantees uniqueness, and hand-built ontologies get
        // deterministic first-wins semantics.
        cur.terminal.get_or_insert(id);
    }

    /// Match over an already-tokenized (verbatim-analyzed) token stream.
    pub fn match_tokens(&self, tokens: &[String]) -> Vec<LocationMatch> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            let mut cur = &self.root;
            let mut best: Option<(LocId, usize)> = None;
            let mut j = i;
            while j < tokens.len() {
                match cur.children.get(&tokens[j]) {
                    Some(next) => {
                        cur = next;
                        j += 1;
                        if let Some(id) = cur.terminal {
                            best = Some((id, j - i));
                        }
                    }
                    None => break,
                }
            }
            if let Some((loc, len)) = best {
                out.push(LocationMatch { loc, start: i, len });
                i += len;
            } else {
                i += 1;
            }
        }
        out
    }

    /// Tokenize `text` and match.
    pub fn match_text(&self, text: &str) -> Vec<LocationMatch> {
        let toks = self.analyzer.analyze(text);
        self.match_tokens(&toks)
    }

    /// Just the matched ids, deduplicated, order of first appearance.
    pub fn locations_in(&self, text: &str) -> Vec<LocId> {
        let mut seen = std::collections::HashSet::new();
        self.match_text(text)
            .into_iter()
            .map(|m| m.loc)
            .filter(|l| seen.insert(*l))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ontology::LocationOntology;

    fn fixture() -> (LocationOntology, LocId, LocId, LocId, LocId) {
        let mut o = LocationOntology::new();
        let r = o.add(LocId::WORLD, "westland", vec![]);
        let c = o.add(r, "ardonia", vec!["ardonia republic".into()]);
        let s = o.add(c, "north vale", vec![]);
        let city = o.add(s, "port alden", vec!["alden harbor".into()]);
        (o, r, c, s, city)
    }

    #[test]
    fn single_word_match() {
        let (o, r, ..) = fixture();
        let m = LocationMatcher::build(&o);
        let hits = m.match_text("travel guide to Westland today");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].loc, r);
    }

    #[test]
    fn multiword_match_spans_tokens() {
        let (o, _, _, _, city) = fixture();
        let m = LocationMatcher::build(&o);
        let hits = m.match_text("hotels in Port Alden tonight");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].loc, city);
        assert_eq!(hits[0].len, 2);
    }

    #[test]
    fn longest_match_wins_over_prefix() {
        let mut o = LocationOntology::new();
        let r = o.add(LocId::WORLD, "vale", vec![]);
        let c = o.add(r, "vale norte", vec![]);
        let m = LocationMatcher::build(&o);
        // "vale norte" should match as the 2-token country, not the region.
        let hits = m.match_text("visiting vale norte soon");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].loc, c);
        // Bare "vale" still matches the region.
        let hits = m.match_text("the vale is lovely");
        assert_eq!(hits[0].loc, r);
    }

    #[test]
    fn aliases_match_same_node() {
        let (o, _, c, _, city) = fixture();
        let m = LocationMatcher::build(&o);
        assert_eq!(m.locations_in("the ardonia republic announced"), vec![c]);
        assert_eq!(m.locations_in("ferry to alden harbor"), vec![city]);
    }

    #[test]
    fn case_insensitive() {
        let (o, _, _, _, city) = fixture();
        let m = LocationMatcher::build(&o);
        assert_eq!(m.locations_in("PORT ALDEN"), vec![city]);
    }

    #[test]
    fn multiple_and_deduped_matches() {
        let (o, r, c, ..) = fixture();
        let m = LocationMatcher::build(&o);
        let locs = m.locations_in("westland news: ardonia and westland trade");
        assert_eq!(locs, vec![r, c]);
    }

    #[test]
    fn no_match_in_plain_text() {
        let (o, ..) = fixture();
        let m = LocationMatcher::build(&o);
        assert!(m.match_text("nothing geographic here at all").is_empty());
        assert!(m.match_text("").is_empty());
    }

    #[test]
    fn partial_multiword_does_not_match() {
        let (o, _, _, s, _) = fixture();
        let m = LocationMatcher::build(&o);
        // "north" alone is only a prefix of "north vale" — no match.
        assert!(m.match_text("heading north tomorrow").is_empty());
        assert_eq!(m.locations_in("the north vale council"), vec![s]);
    }

    #[test]
    fn matches_do_not_overlap() {
        let (o, ..) = fixture();
        let m = LocationMatcher::build(&o);
        let hits = m.match_text("port alden port alden");
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].start, 0);
        assert_eq!(hits[1].start, 2);
    }

    #[test]
    fn generated_world_all_cities_match_their_own_name() {
        let w = crate::gen::WorldGen::new(5).generate(&crate::gen::WorldSpec::small());
        let m = LocationMatcher::build(&w);
        for city in w.cities() {
            let text = format!("best food in {} downtown", w.name(city));
            let locs = m.locations_in(&text);
            assert!(
                locs.contains(&city),
                "city {} not matched in its own text",
                w.name(city)
            );
        }
    }
}
