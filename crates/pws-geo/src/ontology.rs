//! The location ontology tree.
//!
//! A rooted tree with fixed levels. Node 0 is always the synthetic root
//! ("world"). Every other node has exactly one parent one level up.

use serde::{Deserialize, Serialize};

/// Identifier of an ontology node. Dense: `0..ontology.len()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LocId(pub u32);

impl LocId {
    /// The implicit root of every ontology.
    pub const WORLD: LocId = LocId(0);

    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Depth level of an ontology node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Level {
    /// The synthetic root.
    World,
    /// Continent-scale region.
    Region,
    /// Country.
    Country,
    /// State / province.
    State,
    /// City — the leaves, and the level users' location preferences live at.
    City,
}

impl Level {
    /// Numeric depth (World = 0 … City = 4).
    pub fn depth(self) -> u32 {
        match self {
            Level::World => 0,
            Level::Region => 1,
            Level::Country => 2,
            Level::State => 3,
            Level::City => 4,
        }
    }

    /// Parse back from a depth value.
    pub fn from_depth(d: u32) -> Option<Level> {
        Some(match d {
            0 => Level::World,
            1 => Level::Region,
            2 => Level::Country,
            3 => Level::State,
            4 => Level::City,
            _ => return None,
        })
    }

    /// The level one step towards the root, if any.
    pub fn parent(self) -> Option<Level> {
        Level::from_depth(self.depth().wrapping_sub(1))
    }
}

/// One node of the ontology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocNode {
    /// Canonical name ("port alden"). Lowercased; may be multi-word.
    pub name: String,
    /// Alternative surface forms that should also match in text.
    pub aliases: Vec<String>,
    /// Tree level.
    pub level: Level,
    /// Parent id; `None` only for the root.
    pub parent: Option<LocId>,
    /// Children, in insertion order.
    pub children: Vec<LocId>,
}

/// A rooted location tree with level structure.
///
/// Constructed either by [`crate::gen::WorldGen`] (synthetic) or manually via
/// [`LocationOntology::new`] + [`LocationOntology::add`] (tests, custom
/// gazetteers).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocationOntology {
    nodes: Vec<LocNode>,
}

impl Default for LocationOntology {
    fn default() -> Self {
        Self::new()
    }
}

impl LocationOntology {
    /// Create an ontology containing only the root "world" node.
    pub fn new() -> Self {
        LocationOntology {
            nodes: vec![LocNode {
                name: "world".to_string(),
                aliases: Vec::new(),
                level: Level::World,
                parent: None,
                children: Vec::new(),
            }],
        }
    }

    /// Add a node under `parent`. The node's level must be exactly one
    /// deeper than the parent's.
    ///
    /// # Panics
    /// Panics if `parent` is out of range or the level arithmetic is wrong —
    /// these are construction bugs, not runtime conditions.
    pub fn add(&mut self, parent: LocId, name: &str, aliases: Vec<String>) -> LocId {
        let parent_level = self.nodes[parent.index()].level;
        let level = Level::from_depth(parent_level.depth() + 1)
            .expect("cannot add a child below City level");
        let id = LocId(u32::try_from(self.nodes.len()).expect("ontology too large"));
        self.nodes.push(LocNode {
            name: name.to_lowercase(),
            aliases: aliases.into_iter().map(|a| a.to_lowercase()).collect(),
            level,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Total number of nodes, root included.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false: the root exists by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Borrow a node.
    pub fn node(&self, id: LocId) -> &LocNode {
        &self.nodes[id.index()]
    }

    /// Canonical name of `id`.
    pub fn name(&self, id: LocId) -> &str {
        &self.nodes[id.index()].name
    }

    /// Level of `id`.
    pub fn level(&self, id: LocId) -> Level {
        self.nodes[id.index()].level
    }

    /// Parent of `id` (`None` for the root).
    pub fn parent(&self, id: LocId) -> Option<LocId> {
        self.nodes[id.index()].parent
    }

    /// Children of `id` in insertion order.
    pub fn children(&self, id: LocId) -> &[LocId] {
        &self.nodes[id.index()].children
    }

    /// Iterate all node ids (including the root).
    pub fn ids(&self) -> impl Iterator<Item = LocId> + '_ {
        (0..self.nodes.len() as u32).map(LocId)
    }

    /// Iterate all nodes at a given level.
    pub fn at_level(&self, level: Level) -> impl Iterator<Item = LocId> + '_ {
        self.ids().filter(move |id| self.level(*id) == level)
    }

    /// Iterate all cities (the leaves location preferences live at).
    pub fn cities(&self) -> impl Iterator<Item = LocId> + '_ {
        self.at_level(Level::City)
    }

    /// Path from `id` up to (and including) the root, starting at `id`.
    pub fn ancestors(&self, id: LocId) -> Vec<LocId> {
        let mut path = vec![id];
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path
    }

    /// Is `anc` an ancestor of `desc` (or equal to it)?
    pub fn is_ancestor_or_self(&self, anc: LocId, desc: LocId) -> bool {
        let mut cur = Some(desc);
        while let Some(c) = cur {
            if c == anc {
                return true;
            }
            cur = self.parent(c);
        }
        false
    }

    /// Lowest common ancestor of two nodes. Always exists (root).
    pub fn lca(&self, a: LocId, b: LocId) -> LocId {
        let pa = self.ancestors(a);
        let pb = self.ancestors(b);
        // Walk from the root down while the paths agree.
        let mut lca = LocId::WORLD;
        for (x, y) in pa.iter().rev().zip(pb.iter().rev()) {
            if x == y {
                lca = *x;
            } else {
                break;
            }
        }
        lca
    }

    /// Tree distance (number of edges) between two nodes.
    ///
    /// Used by the location profile to smooth preference mass over nearby
    /// places: a click on a city also weakly endorses its siblings.
    pub fn distance(&self, a: LocId, b: LocId) -> u32 {
        let l = self.lca(a, b);
        let da = self.level(a).depth() - self.level(l).depth();
        let db = self.level(b).depth() - self.level(l).depth();
        da + db
    }

    /// A similarity in (0, 1] that decays with tree distance:
    /// `1 / (1 + distance)`.
    pub fn similarity(&self, a: LocId, b: LocId) -> f64 {
        1.0 / (1.0 + f64::from(self.distance(a, b)))
    }

    /// All descendant leaves (cities) under `id`, `id` included if it is a
    /// city itself.
    pub fn cities_under(&self, id: LocId) -> Vec<LocId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            if self.level(n) == Level::City {
                out.push(n);
            }
            stack.extend(self.children(n).iter().copied());
        }
        out
    }

    /// Full human-readable path "world / region / country / state / city".
    pub fn path_string(&self, id: LocId) -> String {
        let mut parts: Vec<&str> =
            self.ancestors(id).into_iter().map(|a| self.name(a)).collect();
        parts.reverse();
        parts.join(" / ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (LocationOntology, LocId, LocId, LocId, LocId, LocId) {
        let mut o = LocationOntology::new();
        let r = o.add(LocId::WORLD, "Westland", vec![]);
        let c = o.add(r, "Ardonia", vec!["ardonia republic".into()]);
        let s = o.add(c, "North Vale", vec![]);
        let city1 = o.add(s, "Port Alden", vec![]);
        let city2 = o.add(s, "Lakemoor", vec![]);
        (o, r, c, s, city1, city2)
    }

    #[test]
    fn construction_sets_levels_and_parents() {
        let (o, r, c, s, city1, _) = tiny();
        assert_eq!(o.level(r), Level::Region);
        assert_eq!(o.level(c), Level::Country);
        assert_eq!(o.level(s), Level::State);
        assert_eq!(o.level(city1), Level::City);
        assert_eq!(o.parent(city1), Some(s));
        assert_eq!(o.parent(LocId::WORLD), None);
    }

    #[test]
    fn names_are_lowercased() {
        let (o, r, ..) = tiny();
        assert_eq!(o.name(r), "westland");
    }

    #[test]
    fn ancestors_walk_to_root() {
        let (o, r, c, s, city1, _) = tiny();
        assert_eq!(o.ancestors(city1), vec![city1, s, c, r, LocId::WORLD]);
    }

    #[test]
    fn lca_of_siblings_is_parent() {
        let (o, _, _, s, city1, city2) = tiny();
        assert_eq!(o.lca(city1, city2), s);
        assert_eq!(o.lca(city1, city1), city1);
    }

    #[test]
    fn distance_and_similarity() {
        let (o, r, _, _, city1, city2) = tiny();
        assert_eq!(o.distance(city1, city1), 0);
        assert_eq!(o.distance(city1, city2), 2);
        assert_eq!(o.distance(city1, r), 3);
        assert!((o.similarity(city1, city1) - 1.0).abs() < 1e-12);
        assert!((o.similarity(city1, city2) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ancestor_or_self_checks() {
        let (o, r, c, _, city1, city2) = tiny();
        assert!(o.is_ancestor_or_self(r, city1));
        assert!(o.is_ancestor_or_self(c, city1));
        assert!(o.is_ancestor_or_self(city1, city1));
        assert!(!o.is_ancestor_or_self(city1, city2));
        assert!(o.is_ancestor_or_self(LocId::WORLD, city2));
    }

    #[test]
    fn cities_under_rolls_up() {
        let (o, r, _, _, city1, city2) = tiny();
        let mut cities = o.cities_under(r);
        cities.sort();
        assert_eq!(cities, vec![city1, city2]);
        assert_eq!(o.cities_under(city1), vec![city1]);
    }

    #[test]
    fn path_string_is_root_to_leaf() {
        let (o, _, _, _, city1, _) = tiny();
        assert_eq!(o.path_string(city1), "world / westland / ardonia / north vale / port alden");
    }

    #[test]
    fn level_depth_round_trips() {
        for l in [Level::World, Level::Region, Level::Country, Level::State, Level::City] {
            assert_eq!(Level::from_depth(l.depth()), Some(l));
        }
        assert_eq!(Level::from_depth(5), None);
        assert_eq!(Level::City.parent(), Some(Level::State));
        assert_eq!(Level::World.parent(), None);
    }

    #[test]
    #[should_panic]
    fn adding_below_city_panics() {
        let (mut o, _, _, _, city1, _) = tiny();
        o.add(city1, "too deep", vec![]);
    }
}
