//! Property tests over randomly generated worlds: ontology and matcher
//! invariants that must hold for any seed and shape.

use proptest::prelude::*;
use pws_geo::{haversine_km, Coord, Level, LocId, LocationMatcher, WorldCoords, WorldGen, WorldSpec};

fn spec_strategy() -> impl Strategy<Value = WorldSpec> {
    (1usize..3, 1usize..3, 1usize..3, 1usize..4, 0.0f64..0.9, 0.0f64..0.5).prop_map(
        |(r, c, s, ci, mw, al)| WorldSpec {
            regions: r,
            countries_per_region: c,
            states_per_country: s,
            cities_per_state: ci,
            multiword_city_prob: mw,
            alias_prob: al,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Structural invariants of any generated world.
    #[test]
    fn generated_world_is_well_formed(seed in 0u64..1000, spec in spec_strategy()) {
        let w = WorldGen::new(seed).generate(&spec);
        prop_assert_eq!(w.len(), spec.total_nodes());
        prop_assert_eq!(w.cities().count(), spec.total_cities());
        for id in w.ids() {
            // Level consistency with parent.
            match w.parent(id) {
                None => prop_assert_eq!(w.level(id), Level::World),
                Some(p) => prop_assert_eq!(w.level(p).depth() + 1, w.level(id).depth()),
            }
            // Ancestors end at the root.
            let anc = w.ancestors(id);
            prop_assert_eq!(*anc.last().unwrap(), LocId::WORLD);
            prop_assert_eq!(anc.len() as u32, w.level(id).depth() + 1);
            // Children point back to the parent.
            for &ch in w.children(id) {
                prop_assert_eq!(w.parent(ch), Some(id));
            }
        }
    }

    /// lca and distance laws.
    #[test]
    fn lca_distance_laws(seed in 0u64..500) {
        let w = WorldGen::new(seed).generate(&WorldSpec::small());
        let ids: Vec<LocId> = w.ids().collect();
        for (i, &a) in ids.iter().enumerate().step_by(5) {
            for &b in ids.iter().skip(i).step_by(7) {
                let l = w.lca(a, b);
                prop_assert!(w.is_ancestor_or_self(l, a));
                prop_assert!(w.is_ancestor_or_self(l, b));
                // Distance symmetry and identity.
                prop_assert_eq!(w.distance(a, b), w.distance(b, a));
                prop_assert_eq!(w.distance(a, a), 0);
                // Similarity bounds.
                let s = w.similarity(a, b);
                prop_assert!(s > 0.0 && s <= 1.0);
            }
        }
    }

    /// Every canonical name and alias of every node matches back to it.
    #[test]
    fn matcher_finds_every_name(seed in 0u64..200) {
        let w = WorldGen::new(seed).generate(&WorldSpec::small());
        let m = LocationMatcher::build(&w);
        for id in w.ids() {
            if id == LocId::WORLD {
                continue;
            }
            let node = w.node(id);
            for name in std::iter::once(&node.name).chain(node.aliases.iter()) {
                let found = m.locations_in(&format!("travel to {name} today"));
                prop_assert!(
                    found.contains(&id),
                    "{name} did not match node {id:?} (matched {found:?})"
                );
            }
        }
    }

    /// Matches never overlap and spans stay in bounds.
    #[test]
    fn matcher_spans_are_disjoint(seed in 0u64..200, filler in "[a-z ]{0,40}") {
        let w = WorldGen::new(seed).generate(&WorldSpec::small());
        let m = LocationMatcher::build(&w);
        let names: Vec<String> =
            w.cities().take(4).map(|c| w.name(c).to_string()).collect();
        let text = format!("{} {} {}", names.join(" and "), filler, names.first().unwrap());
        let matches = m.match_text(&text);
        for pair in matches.windows(2) {
            prop_assert!(pair[0].start + pair[0].len <= pair[1].start, "overlap");
        }
    }

    /// Haversine is a metric (symmetry, identity, bounded by half the
    /// circumference).
    #[test]
    fn haversine_metric_laws(
        lat1 in -85.0f64..85.0, lon1 in -180.0f64..180.0,
        lat2 in -85.0f64..85.0, lon2 in -180.0f64..180.0,
    ) {
        let a = Coord::new(lat1, lon1);
        let b = Coord::new(lat2, lon2);
        let d = haversine_km(a, b);
        prop_assert!(d >= 0.0);
        prop_assert!(d <= 20_038.0, "more than half the circumference: {d}");
        prop_assert!((haversine_km(b, a) - d).abs() < 1e-9);
        prop_assert!(haversine_km(a, a) < 1e-9);
    }

    /// Coordinates generation covers every node and respects determinism.
    #[test]
    fn coords_cover_world(seed in 0u64..200) {
        let w = WorldGen::new(seed).generate(&WorldSpec::small());
        let c1 = WorldCoords::generate(&w, seed);
        let c2 = WorldCoords::generate(&w, seed);
        for id in w.ids() {
            let c = c1.get(id);
            prop_assert!((-85.0..=85.0).contains(&c.lat));
            prop_assert!((-180.0..180.0).contains(&c.lon));
            prop_assert_eq!(c, c2.get(id));
        }
    }
}
