//! T4 — RankSVM training-epoch cost at the engine's pair-window size.

use criterion::{criterion_group, criterion_main, Criterion};
use pws_profile::FEATURE_DIM;
use pws_ranksvm::{PairwiseTrainer, PreferencePair, TrainConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn pairs(n: usize, seed: u64) -> Vec<PreferencePair> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let better: Vec<f64> = (0..FEATURE_DIM).map(|_| rng.gen_range(0.0..1.0)).collect();
            let worse: Vec<f64> = (0..FEATURE_DIM).map(|_| rng.gen_range(0.0..1.0)).collect();
            PreferencePair::new(better, worse)
        })
        .collect()
}

fn bench_ranksvm(c: &mut Criterion) {
    let small = pairs(200, 1);
    let window = pairs(2_000, 2);

    let mut g = c.benchmark_group("ranksvm");
    g.bench_function("train_200_pairs_20_epochs", |b| {
        let t = PairwiseTrainer::new(TrainConfig::default());
        b.iter(|| std::hint::black_box(t.train(FEATURE_DIM, &small)))
    });
    g.bench_function("train_2000_pairs_20_epochs", |b| {
        let t = PairwiseTrainer::new(TrainConfig::default());
        b.iter(|| std::hint::black_box(t.train(FEATURE_DIM, &window)))
    });
    g.bench_function("score_page_of_30", |b| {
        let t = PairwiseTrainer::new(TrainConfig::default());
        let model = t.train(FEATURE_DIM, &small);
        let page: Vec<Vec<f64>> = window.iter().take(30).map(|p| p.better.clone()).collect();
        b.iter(|| std::hint::black_box(model.rank(&page)))
    });
    g.finish();
}

criterion_group!(benches, bench_ranksvm);
criterion_main!(benches);
