//! T4 — gazetteer construction and place-name matching throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pws_geo::{LocationMatcher, WorldGen, WorldSpec};

fn bench_gazetteer(c: &mut Criterion) {
    let world = WorldGen::new(42).generate(&WorldSpec::default_world());
    let matcher = LocationMatcher::build(&world);

    // A snippet-sized text mentioning two places.
    let city = world.cities().next().unwrap();
    let text = format!(
        "best seafood buffet near {} with daily lobster specials and a view of the harbor",
        world.name(city)
    );

    let mut g = c.benchmark_group("gazetteer");
    g.bench_function("build_matcher_default_world", |b| {
        b.iter(|| std::hint::black_box(LocationMatcher::build(&world)))
    });
    g.throughput(Throughput::Elements(1));
    g.bench_function("match_snippet", |b| {
        b.iter(|| std::hint::black_box(matcher.match_text(&text)))
    });
    g.bench_function("match_snippet_no_places", |b| {
        b.iter(|| {
            std::hint::black_box(
                matcher.match_text("generic text with no geography mentioned anywhere at all"),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_gazetteer);
criterion_main!(benches);
