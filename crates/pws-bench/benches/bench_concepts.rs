//! T4 — concept-extraction latency (the per-query online cost the paper's
//! middleware pays before re-ranking).

use criterion::{criterion_group, criterion_main, Criterion};
use pws_bench::bench_world;
use pws_concepts::{extract_content, extract_locations, ConceptConfig, LocationConceptConfig, QueryConceptOntology};
use pws_geo::LocationMatcher;

fn bench_concepts(c: &mut Criterion) {
    let world = bench_world();
    let matcher = LocationMatcher::build(&world.world);

    // Snippets of a representative query's top-30 pool.
    let q = &world.queries[0];
    let hits = world.engine.search(&q.text, 30);
    let snippets: Vec<String> = hits.iter().map(|h| h.snippet.clone()).collect();
    assert!(!snippets.is_empty());

    let mut g = c.benchmark_group("concepts");
    g.bench_function("content_30_snippets", |b| {
        b.iter(|| {
            std::hint::black_box(extract_content(&q.text, &snippets, &ConceptConfig::default()))
        })
    });
    g.bench_function("locations_30_snippets", |b| {
        b.iter(|| {
            std::hint::black_box(extract_locations(
                &snippets,
                &matcher,
                &world.world,
                &LocationConceptConfig::default(),
            ))
        })
    });
    g.bench_function("full_ontology_30_snippets", |b| {
        b.iter(|| {
            std::hint::black_box(QueryConceptOntology::extract(
                &q.text,
                &snippets,
                &matcher,
                &world.world,
                &ConceptConfig::default(),
                &LocationConceptConfig::default(),
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_concepts);
criterion_main!(benches);
