//! T4 — end-to-end personalized search latency (retrieval + extraction +
//! feature computation + re-rank) and observe (profile update) latency,
//! for warm user state.

use criterion::{criterion_group, criterion_main, Criterion};
use pws_bench::bench_world;
use pws_click::{SessionSimulator, SimConfig, UserId};
use pws_core::{EngineConfig, PersonalizationMode, PersonalizedSearchEngine};
use pws_corpus::query::QueryId;

fn bench_rerank(c: &mut Criterion) {
    let world = bench_world();

    // Warm an engine with some training traffic.
    let mut engine =
        PersonalizedSearchEngine::new(&world.engine, &world.world, EngineConfig::default());
    let mut sim = SessionSimulator::new(
        &world.engine,
        &world.corpus,
        &world.world,
        &world.population,
        &world.queries,
        SimConfig { top_k: 10, seed: 3 },
    );
    let user = UserId(0);
    let mut turns = Vec::new();
    for t in 0..30 {
        let qid = QueryId((t % world.queries.len()) as u32);
        let q = &world.queries[qid.index()];
        let intent = sim.sample_intent_city(user);
        let text = sim.render_query(q, intent);
        let turn = engine.search(user, &text);
        let outcome = sim.issue_on_hits(user, qid, intent, &text, &turn.hits);
        engine.observe(&turn, &outcome.impression);
        turns.push((turn, outcome.impression));
    }

    let mut g = c.benchmark_group("rerank");
    g.bench_function("personalized_search_warm", |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &world.queries[i % world.queries.len()];
            i += 1;
            std::hint::black_box(engine.search(user, &q.text))
        })
    });
    g.bench_function("observe_clicks", |b| {
        let mut i = 0;
        b.iter(|| {
            let (turn, imp) = &turns[i % turns.len()];
            i += 1;
            engine.observe(turn, imp);
        })
    });

    // Baseline search for comparison (the personalization overhead factor).
    let mut baseline = PersonalizedSearchEngine::new(
        &world.engine,
        &world.world,
        EngineConfig::for_mode(PersonalizationMode::Baseline),
    );
    g.bench_function("baseline_search", |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &world.queries[i % world.queries.len()];
            i += 1;
            std::hint::black_box(baseline.search(user, &q.text))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_rerank);
criterion_main!(benches);
