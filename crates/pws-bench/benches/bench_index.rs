//! T4 — index build throughput and query latency.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use pws_bench::bench_world;
use pws_index::{IndexBuilder, StoredDoc};

fn bench_index(c: &mut Criterion) {
    let world = bench_world();

    let mut g = c.benchmark_group("index");

    // Build: docs/sec over the 2k-doc corpus.
    g.throughput(Throughput::Elements(world.corpus.len() as u64));
    g.bench_function("build_2k_docs", |b| {
        b.iter_batched(
            IndexBuilder::new,
            |mut builder| {
                for d in &world.corpus.docs {
                    builder.add(StoredDoc::new(d.id.0, &d.url, &d.title, &d.body));
                }
                builder.build()
            },
            BatchSize::LargeInput,
        )
    });
    g.throughput(Throughput::Elements(1));

    // Query latency across the workload (amortized per query).
    let queries: Vec<&str> = world.queries.iter().map(|q| q.text.as_str()).collect();
    g.bench_function("query_top10", |b| {
        let mut i = 0;
        b.iter(|| {
            let q = queries[i % queries.len()];
            i += 1;
            std::hint::black_box(world.engine.search(q, 10))
        })
    });
    g.bench_function("query_top30_pool", |b| {
        let mut i = 0;
        b.iter(|| {
            let q = queries[i % queries.len()];
            i += 1;
            std::hint::black_box(world.engine.search(q, 30))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_index);
criterion_main!(benches);
