//! T4 — click-simulation throughput (the harness must be far faster than
//! the engine so simulation never dominates experiment wall-clock).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pws_click::relevance::Grade;
use pws_click::{CascadeModel, ClickModel, PositionBiasModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_clickmodel(c: &mut Criterion) {
    let docs: Vec<u32> = (0..10).collect();
    let grades: Vec<Grade> =
        [2u32, 0, 1, 0, 0, 2, 0, 1, 0, 0].iter().map(|&g| Grade::from_level(g)).collect();

    let mut g = c.benchmark_group("clickmodel");
    g.throughput(Throughput::Elements(1));
    g.bench_function("position_bias_page10", |b| {
        let m = PositionBiasModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| std::hint::black_box(m.simulate(&docs, &grades, 0.05, &mut rng)))
    });
    g.bench_function("cascade_page10", |b| {
        let m = CascadeModel::default();
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| std::hint::black_box(m.simulate(&docs, &grades, 0.05, &mut rng)))
    });
    g.finish();
}

criterion_group!(benches, bench_clickmodel);
criterion_main!(benches);
