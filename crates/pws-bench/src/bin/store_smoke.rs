//! Store-tier correctness gate: write → evict → fault-in → replay equality.
//!
//! ```text
//! cargo run -p pws-bench --bin store_smoke        # CI gate (scripts/check.sh)
//! ```
//!
//! Three runs over the same round-robin session log (every user's turn
//! interleaved with every other user's, so a capacity-1 store tier
//! evicts and faults in on nearly every turn):
//!
//! 1. **resident** — a storeless engine; every user stays in memory for
//!    the whole replay. This is the reference transcript.
//! 2. **evicting** — a store tier with `capacity_per_shard: 1` and
//!    synchronous writeback. Each turn evicts the previous user (with
//!    writeback) and faults the current one back in from its on-disk
//!    record. Transcripts must be **byte-identical** to the resident
//!    run, and the `serve.store.{fault_in,evict,writeback}` counters
//!    must have actually fired.
//! 3. **restart** — the second half of the log replayed by a *fresh*
//!    engine over the evicting run's directory, after the first engine
//!    was dropped (which flushes dirty residents). Transcripts must
//!    match the resident run's second half byte-for-byte: the records
//!    carry complete replay state across a process boundary.
//!
//! Any disagreement prints the first divergent turn and exits non-zero.

use pws_click::{Click, Impression, ShownResult, UserId};
use pws_core::{EngineConfig, SearchTurn};
use pws_corpus::query::QueryId;
use pws_geo::{LocId, LocationOntology};
use pws_index::{IndexBuilder, SearchEngine, StoredDoc};
use pws_serve::{SearchBudget, ServeConfig, ServingEngine, StoreTierConfig};
use std::collections::HashMap;

const USERS: u32 = 8;
const ROUNDS: usize = 2;

fn world() -> LocationOntology {
    let mut o = LocationOntology::new();
    let r = o.add(LocId::WORLD, "westland", vec![]);
    let c = o.add(r, "ardonia", vec![]);
    let s = o.add(c, "vale", vec![]);
    o.add(s, "alden", vec![]);
    o.add(s, "lakemoor", vec![]);
    o
}

fn index() -> SearchEngine {
    let mut b = IndexBuilder::new();
    b.add(StoredDoc::new(0, "http://a.test/0", "Seafood guide",
        "seafood restaurant guide with lobster in alden harbor area"));
    b.add(StoredDoc::new(1, "http://b.test/1", "Seafood lakemoor",
        "seafood restaurant in lakemoor with fresh oysters"));
    b.add(StoredDoc::new(2, "http://c.test/2", "Sushi place",
        "sushi restaurant downtown with omakase menu in alden"));
    b.add(StoredDoc::new(3, "http://d.test/3", "Steak house",
        "steak restaurant grill with ribeye specials"));
    b.add(StoredDoc::new(4, "http://e.test/4", "Pizza lakemoor",
        "pizza restaurant in lakemoor stone oven margherita"));
    b.add(StoredDoc::new(5, "http://f.test/5", "Noodle bar",
        "noodle restaurant with ramen and broth in alden"));
    b.build()
}

fn queries_for(u: u32) -> Vec<String> {
    vec![
        format!("seafood restaurant u{u}"),
        format!("restaurant u{u}"),
        format!("seafood restaurant u{u}"),
        format!("sushi restaurant u{u}"),
    ]
}

/// Click the highest doc id on the page (stable, exercises skip-above).
fn impression_from(turn: &SearchTurn) -> Impression {
    let clicked = turn.hits.iter().map(|h| h.doc).max();
    Impression {
        user: turn.user,
        query: QueryId(0),
        query_text: turn.query_text.clone(),
        results: turn
            .hits
            .iter()
            .map(|h| ShownResult {
                doc: h.doc,
                rank: h.rank,
                url: h.url.to_string(),
                title: h.title.to_string(),
                snippet: h.snippet.clone(),
            })
            .collect(),
        clicks: turn
            .hits
            .iter()
            .filter(|h| Some(h.doc) == clicked)
            .map(|h| Click { doc: h.doc, rank: h.rank, dwell: 600 })
            .collect(),
    }
}

/// Round-robin replay of query indices `range` for every user: each
/// round interleaves all users, so a small-capacity store tier churns.
/// Returns per-user transcripts keyed by `(user, query_index)`.
fn replay(
    e: &ServingEngine<'_>,
    range: std::ops::Range<usize>,
) -> HashMap<(u32, usize), String> {
    let mut out = HashMap::new();
    for qi in range {
        for u in 0..USERS {
            let q = &queries_for(u)[qi % 4];
            let resp = e
                .search_with(UserId(u), q, SearchBudget::none())
                .expect("no admission limit configured");
            e.observe(&resp.turn, &impression_from(&resp.turn));
            out.insert((u, qi), format!("{:?}", resp.turn));
        }
    }
    out
}

fn count(name: &str) -> u64 {
    pws_obs::snapshot()
        .stages
        .iter()
        .find(|s| s.name == name)
        .map(|s| s.count)
        .unwrap_or(0)
}

fn compare(
    label: &str,
    reference: &HashMap<(u32, usize), String>,
    candidate: &HashMap<(u32, usize), String>,
) {
    for ((u, qi), want) in reference {
        match candidate.get(&(*u, *qi)) {
            Some(got) if got == want => {}
            Some(got) => {
                eprintln!("FAIL [{label}]: user {u} turn {qi} diverged");
                eprintln!("  resident: {want}");
                eprintln!("  {label}: {got}");
                std::process::exit(1);
            }
            None => {
                eprintln!("FAIL [{label}]: user {u} turn {qi} missing");
                std::process::exit(1);
            }
        }
    }
}

fn main() {
    let idx = index();
    let w = world();
    let dir = std::env::temp_dir().join(format!("pws-store-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let serve = |store: Option<StoreTierConfig>| ServeConfig {
        shards: 3,
        stats_refresh_every: 1,
        store,
        ..ServeConfig::default()
    };
    let total = 4 * ROUNDS;

    // 1. Reference: everyone resident for the whole log.
    let resident_engine =
        ServingEngine::new(&idx, &w, EngineConfig::default(), serve(None));
    let resident = replay(&resident_engine, 0..total);

    // 2. Evicting: capacity 1 per shard, synchronous writeback. First
    //    half of the log, then drop (flushes dirty residents to disk).
    pws_obs::reset();
    let store_cfg = StoreTierConfig {
        capacity_per_shard: 1,
        writeback: false,
        ..StoreTierConfig::new(&dir)
    };
    let evicting_engine =
        ServingEngine::new(&idx, &w, EngineConfig::default(), serve(Some(store_cfg)));
    let evicting = replay(&evicting_engine, 0..total / 2);
    compare("evicting", &resident.clone().into_iter()
        .filter(|((_, qi), _)| *qi < total / 2).collect(), &evicting);
    let (fault_in, evict, writeback) = (
        count("serve.store.fault_in"),
        count("serve.store.evict"),
        count("serve.store.writeback"),
    );
    if fault_in == 0 || evict == 0 || writeback == 0 {
        eprintln!(
            "FAIL: store tier never churned \
             (fault_in={fault_in} evict={evict} writeback={writeback})"
        );
        std::process::exit(1);
    }
    if count("serve.state_io_error") != 0 {
        eprintln!("FAIL: store I/O errors during smoke replay");
        std::process::exit(1);
    }
    drop(evicting_engine);

    // 3. Restart: a fresh engine over the same directory replays the
    //    second half; every user faults in from disk mid-session.
    let store_cfg = StoreTierConfig {
        capacity_per_shard: 1,
        writeback: false,
        ..StoreTierConfig::new(&dir)
    };
    let restarted_engine =
        ServingEngine::new(&idx, &w, EngineConfig::default(), serve(Some(store_cfg)));
    let restarted = replay(&restarted_engine, total / 2..total);
    compare("restart", &resident.into_iter()
        .filter(|((_, qi), _)| *qi >= total / 2).collect(), &restarted);
    drop(restarted_engine);

    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "store smoke OK: {} users x {} turns byte-identical across \
         evict/fault-in and a restart (fault_in={fault_in} evict={evict} \
         writeback={writeback})",
        USERS, total,
    );
}
