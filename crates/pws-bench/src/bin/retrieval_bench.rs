//! Base-retrieval fast-path benchmark: naive vs heap/MaxScore vs cached.
//!
//! ```text
//! cargo run -p pws-bench --release --bin retrieval_bench             # paper scale
//! cargo run -p pws-bench --release --bin retrieval_bench -- --smoke  # CI gate
//! ```
//!
//! Three backends answer the same query workload over the same index:
//!
//! * **naive** — [`SearchEngine::search_naive`], the retained
//!   term-at-a-time reference scorer (score every matching document,
//!   sort everything);
//! * **fast** — [`SearchEngine::search`], the document-at-a-time
//!   top-k heap with MaxScore pruning;
//! * **cached** — the fast path behind `pws-serve`'s
//!   [`ShardedRetrievalCache`] (analyze once, probe, fall through on
//!   miss), the configuration the serving layer runs.
//!
//! Every query's results are compared across backends first —
//! **bit-identical scores and identical pages are required**, and any
//! disagreement exits non-zero (this is the correctness gate
//! `scripts/check.sh` runs in `--smoke` mode). Then each backend is
//! timed under the `bench.retrieval.{naive,fast,cached}` stages and the
//! report (QPS + p50/p95/p99 per backend) goes to stdout and
//! `results/BENCH_retrieval.json`.
//!
//! [`SearchEngine::search`]: pws_index::SearchEngine::search
//! [`SearchEngine::search_naive`]: pws_index::SearchEngine::search_naive

use pws_core::RetrievalCache;
use pws_eval::{ExperimentSpec, ExperimentWorld};
use pws_index::{SearchEngine, SearchHit};
use pws_serve::ShardedRetrievalCache;
use std::fs;
use std::time::Instant;

/// Pool size per query — the serving layer's default rerank pool.
const POOL_K: usize = 30;

/// Minimum measured queries per backend (rounds are sized to reach it).
const MIN_MEASURED_QUERIES: usize = 2_000;

type BackendFn<'a> = Box<dyn Fn(&str) -> Vec<SearchHit> + 'a>;

struct Backend<'a> {
    name: &'static str,
    stage: &'static str,
    run: BackendFn<'a>,
}

fn backends<'a>(
    engine: &'a SearchEngine,
    cache: &'a ShardedRetrievalCache,
) -> Vec<Backend<'a>> {
    vec![
        Backend {
            name: "naive",
            stage: "bench.retrieval.naive",
            run: Box::new(move |q| engine.search_naive(q, POOL_K)),
        },
        Backend {
            name: "fast",
            stage: "bench.retrieval.fast",
            run: Box::new(move |q| engine.search(q, POOL_K)),
        },
        Backend {
            name: "cached",
            stage: "bench.retrieval.cached",
            run: Box::new(move |q| {
                let tokens = engine.analyze_text(q);
                if let Some(hits) = cache.get(&tokens, POOL_K) {
                    hits
                } else {
                    let hits = engine.search_tokens(&tokens, POOL_K);
                    cache.put(&tokens, POOL_K, &hits);
                    hits
                }
            }),
        },
    ]
}

/// Exact equivalence: same page, same ranks, bit-identical scores.
fn hits_equal(a: &[SearchHit], b: &[SearchHit]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.doc == y.doc
                && x.rank == y.rank
                && x.score.to_bits() == y.score.to_bits()
                && x.url == y.url
                && x.title == y.title
                && x.snippet == y.snippet
        })
}

fn verify(world: &ExperimentWorld, cache: &ShardedRetrievalCache) -> usize {
    let mut disagreements = 0;
    for q in &world.queries {
        let naive = world.engine.search_naive(&q.text, POOL_K);
        let fast = world.engine.search(&q.text, POOL_K);
        if !hits_equal(&naive, &fast) {
            eprintln!("DISAGREEMENT fast vs naive on query {:?}", q.text);
            disagreements += 1;
            continue;
        }
        // Cached: probe twice so both the miss (fill) and the hit
        // (serve from cache) paths are checked against the reference.
        let tokens = world.engine.analyze_text(&q.text);
        let miss = match cache.get(&tokens, POOL_K) {
            Some(hits) => hits,
            None => {
                let hits = world.engine.search_tokens(&tokens, POOL_K);
                cache.put(&tokens, POOL_K, &hits);
                hits
            }
        };
        let hit = cache.get(&tokens, POOL_K).expect("just inserted");
        if !hits_equal(&naive, &miss) || !hits_equal(&naive, &hit) {
            eprintln!("DISAGREEMENT cached vs naive on query {:?}", q.text);
            disagreements += 1;
        }
    }
    disagreements
}

#[derive(serde::Serialize)]
struct BackendReport {
    backend: String,
    queries: u64,
    qps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    mean_us: f64,
}

#[derive(serde::Serialize)]
struct Report {
    scale: String,
    num_docs: usize,
    num_query_templates: usize,
    pool_k: usize,
    backends: Vec<BackendReport>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");

    let (scale, spec) = if smoke {
        ("smoke", ExperimentSpec::small())
    } else {
        ("paper", ExperimentSpec::default_paper())
    };
    eprintln!("building {scale} world…");
    let world = ExperimentWorld::build(spec);

    // ── Correctness gate ─────────────────────────────────────────────
    let verify_cache = ShardedRetrievalCache::new(4096);
    let disagreements = verify(&world, &verify_cache);
    if disagreements > 0 {
        eprintln!(
            "FAIL: {disagreements} of {} queries disagree between backends",
            world.queries.len()
        );
        std::process::exit(1);
    }
    println!(
        "correctness: fast path and cache bit-identical to naive scorer \
         on all {} queries",
        world.queries.len()
    );
    if smoke {
        // The gate is the point of smoke mode; skip the timing runs so
        // check.sh stays fast.
        return;
    }

    // ── Timing ───────────────────────────────────────────────────────
    let rounds = MIN_MEASURED_QUERIES.div_ceil(world.queries.len()).max(1);
    let bench_cache = ShardedRetrievalCache::new(4096);
    let mut reports = Vec::new();
    for b in backends(&world.engine, &bench_cache) {
        // Warmup round: page in postings, fill the cache (so the cached
        // backend's measured numbers reflect steady-state hit traffic —
        // the regime the serving layer runs in).
        for q in &world.queries {
            std::hint::black_box((b.run)(&q.text));
        }
        let stage = pws_obs::stage(b.stage);
        let mut samples: Vec<u64> = Vec::with_capacity(rounds * world.queries.len());
        let wall = Instant::now();
        for _ in 0..rounds {
            for q in &world.queries {
                let span = stage.span();
                std::hint::black_box((b.run)(&q.text));
                samples.push(span.finish());
            }
        }
        let elapsed = wall.elapsed().as_secs_f64();
        // Exact percentiles from the raw samples — the registry's log₂
        // histogram buckets are too coarse to separate the backends.
        samples.sort_unstable();
        let pct = |q: f64| -> f64 {
            let idx = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len()) - 1;
            samples[idx] as f64 / 1_000.0
        };
        let report = BackendReport {
            backend: b.name.to_string(),
            queries: samples.len() as u64,
            qps: samples.len() as f64 / elapsed,
            p50_us: pct(0.50),
            p95_us: pct(0.95),
            p99_us: pct(0.99),
            mean_us: samples.iter().sum::<u64>() as f64 / samples.len() as f64 / 1_000.0,
        };
        println!(
            "{:<8} {:>7} queries  {:>10.0} qps  p50 {:>8.1}µs  p95 {:>8.1}µs  p99 {:>8.1}µs",
            report.backend, report.queries, report.qps, report.p50_us, report.p95_us,
            report.p99_us
        );
        reports.push(report);
    }

    let report = Report {
        scale: scale.to_string(),
        num_docs: world.corpus.len(),
        num_query_templates: world.queries.len(),
        pool_k: POOL_K,
        backends: reports,
    };
    let _ = fs::create_dir_all("results");
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = fs::write("results/BENCH_retrieval.json", json) {
                eprintln!("warn: could not write results/BENCH_retrieval.json: {e}");
            } else {
                eprintln!("wrote results/BENCH_retrieval.json");
            }
        }
        Err(e) => eprintln!("warn: could not serialize report: {e}"),
    }
}
