//! Base-retrieval benchmark: naive vs heap/MaxScore vs cached vs the
//! segmented on-disk index (Block-Max WAND).
//!
//! ```text
//! cargo run -p pws-bench --release --bin retrieval_bench                  # paper scale (8k docs)
//! cargo run -p pws-bench --release --bin retrieval_bench -- --scale large # 1M docs, on-disk segments
//! cargo run -p pws-bench --release --bin retrieval_bench -- --smoke      # CI gate
//! ```
//!
//! At paper scale, four backends answer the same query workload over the
//! same corpus:
//!
//! * **naive** — [`SearchEngine::search_naive`], the retained
//!   term-at-a-time reference scorer (score every matching document,
//!   sort everything);
//! * **fast** — [`SearchEngine::search`], the document-at-a-time
//!   top-k heap with MaxScore pruning;
//! * **cached** — the fast path behind `pws-serve`'s
//!   [`ShardedRetrievalCache`] (analyze once, probe, fall through on
//!   miss), the configuration the serving layer runs;
//! * **segmented** — [`SegmentedIndex`] over on-disk segment files
//!   (written, then re-opened), answering with Block-Max WAND.
//!
//! Every query's results are compared across backends first —
//! **bit-identical scores and identical pages are required**, and any
//! disagreement exits non-zero (this is the correctness gate
//! `scripts/check.sh` runs in `--smoke` mode; smoke mode also exercises
//! the full segment write → load → search round trip and checks that a
//! corrupted segment file fails with a typed error). Then each backend
//! is timed under the `bench.retrieval.*` stages.
//!
//! `--scale large` builds a ≥1M-document corpus into on-disk segments
//! (parallel, thread-count-invariant), records build time and index
//! size, verifies Block-Max WAND against exhaustive scoring on every
//! fixture query, and measures QPS/p50/p95/p99 through the segmented
//! backend. All scales merge into `results/BENCH_retrieval.json` under
//! a `scales` array keyed by scale name.
//!
//! [`SearchEngine::search`]: pws_index::SearchEngine::search
//! [`SearchEngine::search_naive`]: pws_index::SearchEngine::search_naive
//! [`SegmentedIndex`]: pws_index::SegmentedIndex

use pws_core::RetrievalCache;
use pws_corpus::{CorpusGen, CorpusSpec, Query, QueryGen, QuerySpec};
use pws_eval::{ExperimentSpec, ExperimentWorld};
use pws_geo::{WorldGen, WorldSpec};
use pws_index::{Segment, SegmentBuilder, SearchEngine, SearchHit, SegmentedIndex};
use pws_serve::ShardedRetrievalCache;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Pool size per query — the serving layer's default rerank pool.
const POOL_K: usize = 30;

/// Minimum measured queries per backend (rounds are sized to reach it).
const MIN_MEASURED_QUERIES: usize = 2_000;

/// Documents per segment at the large tier: 1M docs → 16 segments.
const LARGE_DOCS_PER_SEGMENT: usize = 65_536;

type BackendFn<'a> = Box<dyn Fn(&str) -> Vec<SearchHit> + 'a>;

struct Backend<'a> {
    name: &'static str,
    stage: &'static str,
    run: BackendFn<'a>,
}

fn backends<'a>(
    engine: &'a SearchEngine,
    cache: &'a ShardedRetrievalCache,
    segmented: &'a SegmentedIndex,
) -> Vec<Backend<'a>> {
    vec![
        Backend {
            name: "naive",
            stage: "bench.retrieval.naive",
            run: Box::new(move |q| engine.search_naive(q, POOL_K)),
        },
        Backend {
            name: "fast",
            stage: "bench.retrieval.fast",
            run: Box::new(move |q| engine.search(q, POOL_K)),
        },
        Backend {
            name: "cached",
            stage: "bench.retrieval.cached",
            run: Box::new(move |q| {
                let tokens = engine.analyze_text(q);
                if let Some(hits) = cache.get(&tokens, POOL_K) {
                    hits
                } else {
                    let hits = engine.search_tokens(&tokens, POOL_K);
                    cache.put(&tokens, POOL_K, &hits);
                    hits
                }
            }),
        },
        Backend {
            name: "segmented",
            stage: "bench.retrieval.segmented",
            run: Box::new(move |q| segmented.search(q, POOL_K)),
        },
    ]
}

/// Exact equivalence: same page, same ranks, bit-identical scores.
fn hits_equal(a: &[SearchHit], b: &[SearchHit]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.doc == y.doc
                && x.rank == y.rank
                && x.score.to_bits() == y.score.to_bits()
                && x.url == y.url
                && x.title == y.title
                && x.snippet == y.snippet
        })
}

/// Split the world's corpus into on-disk segments, re-open them from
/// their files, and assemble a [`SegmentedIndex`] — so everything the
/// segmented backend serves has round-tripped through the format.
fn segmented_from_disk(
    world: &ExperimentWorld,
    dir: &Path,
    num_segments: usize,
) -> (SegmentedIndex, f64) {
    let build_start = Instant::now();
    let _ = fs::remove_dir_all(dir);
    fs::create_dir_all(dir).expect("create segment dir");
    let per = world.corpus.len().div_ceil(num_segments.max(1)).max(1);
    let mut paths: Vec<PathBuf> = Vec::new();
    for (s, chunk) in world.corpus.docs.chunks(per).enumerate() {
        let mut b = SegmentBuilder::new(Default::default());
        for d in chunk {
            b.add(&d.url, &d.title, &d.body);
        }
        let seg = b.finish_segment().expect("segment build");
        let path = dir.join(format!("seg{s:03}.pws"));
        seg.write_file(&path).expect("segment write");
        paths.push(path);
    }
    let segments: Vec<Segment> =
        paths.iter().map(|p| Segment::open(p).expect("segment open")).collect();
    let idx = SegmentedIndex::from_segments(segments).expect("assemble segmented index");
    (idx, build_start.elapsed().as_secs_f64())
}

/// Corrupting or truncating a segment file must produce a typed load
/// error, never a panic and never a successful load.
fn check_corruption_detection(dir: &Path) -> Result<(), String> {
    let path = fs::read_dir(dir)
        .map_err(|e| e.to_string())?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "pws"))
        .ok_or("no segment file to corrupt")?;
    let bytes = fs::read(&path).map_err(|e| e.to_string())?;
    // Flip one byte near the middle (inside some section payload).
    let mut bad = bytes.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0xFF;
    if Segment::load_bytes(bad).is_ok() {
        return Err("corrupted segment loaded successfully".into());
    }
    // Truncations at every prefix of the header plus a payload cut.
    for cut in [0, 4, 9, 17, bytes.len() / 3, bytes.len() - 1] {
        if Segment::load_bytes(bytes[..cut.min(bytes.len())].to_vec()).is_ok() {
            return Err(format!("truncated segment (at {cut}) loaded successfully"));
        }
    }
    Ok(())
}

fn verify(
    world: &ExperimentWorld,
    cache: &ShardedRetrievalCache,
    segmented: &SegmentedIndex,
) -> usize {
    let mut disagreements = 0;
    for q in &world.queries {
        let naive = world.engine.search_naive(&q.text, POOL_K);
        let fast = world.engine.search(&q.text, POOL_K);
        if !hits_equal(&naive, &fast) {
            eprintln!("DISAGREEMENT fast vs naive on query {:?}", q.text);
            disagreements += 1;
            continue;
        }
        // Cached: probe twice so both the miss (fill) and the hit
        // (serve from cache) paths are checked against the reference.
        let tokens = world.engine.analyze_text(&q.text);
        let miss = match cache.get(&tokens, POOL_K) {
            Some(hits) => hits,
            None => {
                let hits = world.engine.search_tokens(&tokens, POOL_K);
                cache.put(&tokens, POOL_K, &hits);
                hits
            }
        };
        let hit = cache.get(&tokens, POOL_K).expect("just inserted");
        if !hits_equal(&naive, &miss) || !hits_equal(&naive, &hit) {
            eprintln!("DISAGREEMENT cached vs naive on query {:?}", q.text);
            disagreements += 1;
            continue;
        }
        // Segmented (from disk): Block-Max WAND must match both the
        // in-memory naive reference and its own exhaustive scorer.
        let seg = segmented.search(&q.text, POOL_K);
        if !hits_equal(&naive, &seg) {
            eprintln!("DISAGREEMENT segmented vs naive on query {:?}", q.text);
            disagreements += 1;
            continue;
        }
        if !hits_equal(&seg, &segmented.search_exhaustive(&q.text, POOL_K)) {
            eprintln!("DISAGREEMENT segmented BMW vs exhaustive on query {:?}", q.text);
            disagreements += 1;
        }
    }
    disagreements
}

#[derive(serde::Serialize, serde::Deserialize)]
struct BackendReport {
    backend: String,
    queries: u64,
    qps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    mean_us: f64,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct IndexReport {
    segments: usize,
    build_secs: f64,
    index_bytes: u64,
    vocab_terms: usize,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct Report {
    scale: String,
    num_docs: usize,
    num_query_templates: usize,
    pool_k: usize,
    /// Segmented-index build/size stats (`null` in legacy entries).
    index: Option<IndexReport>,
    backends: Vec<BackendReport>,
}

/// The on-disk shape of `results/BENCH_retrieval.json`: one entry per
/// benchmark scale, accumulated across runs.
#[derive(serde::Serialize, serde::Deserialize)]
struct ScalesFile {
    scales: Vec<Report>,
}

/// Time one backend over `rounds` passes of the workload.
fn time_backend(
    name: &'static str,
    stage_name: &'static str,
    queries: &[Query],
    rounds: usize,
    run: &dyn Fn(&str) -> Vec<SearchHit>,
) -> BackendReport {
    // Warmup round: page in postings, fill caches (so cached backends'
    // measured numbers reflect steady-state hit traffic).
    for q in queries {
        std::hint::black_box(run(&q.text));
    }
    let stage = pws_obs::stage(stage_name);
    let mut samples: Vec<u64> = Vec::with_capacity(rounds * queries.len());
    let wall = Instant::now();
    for _ in 0..rounds {
        for q in queries {
            let span = stage.span();
            std::hint::black_box(run(&q.text));
            samples.push(span.finish());
        }
    }
    let elapsed = wall.elapsed().as_secs_f64();
    // Exact percentiles from the raw samples — the registry's log₂
    // histogram buckets are too coarse to separate the backends.
    samples.sort_unstable();
    let pct = |q: f64| -> f64 {
        let idx = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len()) - 1;
        samples[idx] as f64 / 1_000.0
    };
    let report = BackendReport {
        backend: name.to_string(),
        queries: samples.len() as u64,
        qps: samples.len() as f64 / elapsed,
        p50_us: pct(0.50),
        p95_us: pct(0.95),
        p99_us: pct(0.99),
        mean_us: samples.iter().sum::<u64>() as f64 / samples.len() as f64 / 1_000.0,
    };
    println!(
        "{:<10} {:>7} queries  {:>10.0} qps  p50 {:>8.1}µs  p95 {:>8.1}µs  p99 {:>8.1}µs",
        report.backend, report.queries, report.qps, report.p50_us, report.p95_us, report.p99_us
    );
    report
}

/// Merge `report` into `results/BENCH_retrieval.json`, replacing any
/// existing entry for the same scale and preserving the others (so the
/// paper and large tiers accumulate into one file).
fn write_report(report: Report) {
    let path = "results/BENCH_retrieval.json";
    let mut scales: Vec<Report> = fs::read_to_string(path)
        .ok()
        .and_then(|old| serde_json::from_str::<ScalesFile>(&old).ok())
        .map(|f| f.scales)
        .unwrap_or_default();
    scales.retain(|s| s.scale != report.scale);
    scales.push(report);
    scales.sort_by(|a, b| a.scale.cmp(&b.scale));
    let _ = fs::create_dir_all("results");
    match serde_json::to_string_pretty(&ScalesFile { scales }) {
        Ok(json) => {
            if let Err(e) = fs::write(path, json) {
                eprintln!("warn: could not write {path}: {e}");
            } else {
                eprintln!("wrote {path}");
            }
        }
        Err(e) => eprintln!("warn: could not serialize report: {e}"),
    }
}

/// The paper-scale (and smoke) flow: in-memory world + disk-round-trip
/// segmented index, full cross-backend verification, then timing.
fn run_world_scale(scale: &'static str, spec: ExperimentSpec, smoke: bool) {
    eprintln!("building {scale} world…");
    let world = ExperimentWorld::build(spec);
    let seg_dir = std::env::temp_dir().join(format!("pws_retrieval_bench_{scale}"));
    let (segmented, build_secs) = segmented_from_disk(&world, &seg_dir, 4);

    // ── Correctness gate ─────────────────────────────────────────────
    let verify_cache = ShardedRetrievalCache::new(4096);
    let disagreements = verify(&world, &verify_cache, &segmented);
    if disagreements > 0 {
        eprintln!(
            "FAIL: {disagreements} of {} queries disagree between backends",
            world.queries.len()
        );
        std::process::exit(1);
    }
    println!(
        "correctness: fast path, cache, and on-disk segmented index (BMW) \
         bit-identical to naive scorer on all {} queries",
        world.queries.len()
    );
    if let Err(e) = check_corruption_detection(&seg_dir) {
        eprintln!("FAIL: segment corruption not detected: {e}");
        std::process::exit(1);
    }
    println!("correctness: corrupted/truncated segment files fail load with typed errors");
    if smoke {
        // The gates are the point of smoke mode; skip the timing runs so
        // check.sh stays fast.
        let _ = fs::remove_dir_all(&seg_dir);
        return;
    }

    // ── Timing ───────────────────────────────────────────────────────
    let rounds = MIN_MEASURED_QUERIES.div_ceil(world.queries.len()).max(1);
    let bench_cache = ShardedRetrievalCache::new(4096);
    let mut reports = Vec::new();
    for b in backends(&world.engine, &bench_cache, &segmented) {
        reports.push(time_backend(b.name, b.stage, &world.queries, rounds, &b.run));
    }
    let _ = fs::remove_dir_all(&seg_dir);

    write_report(Report {
        scale: scale.to_string(),
        num_docs: world.corpus.len(),
        num_query_templates: world.queries.len(),
        pool_k: POOL_K,
        index: Some(IndexReport {
            segments: segmented.num_segments(),
            build_secs,
            index_bytes: segmented.index_bytes() as u64,
            vocab_terms: segmented.vocab_size(),
        }),
        backends: reports,
    });
}

/// The large tier: stream a ≥1M-document corpus straight into parallel
/// segment builds (never holding the corpus in memory), persist every
/// segment, re-open from disk, verify BMW vs exhaustive on the fixture
/// workload, then measure the segmented backend.
fn run_large() {
    let spec = CorpusSpec::large();
    let num_docs = spec.num_docs;
    let seed = 42u64;
    eprintln!("building large world ({num_docs} docs)…");
    let ontology = WorldGen::new(seed).generate(&WorldSpec::default_world());
    let docs = CorpusGen::new(seed.wrapping_add(1)).doc_gen(spec, &ontology);
    let queries = QueryGen::new(seed.wrapping_add(3)).generate(&QuerySpec::default_workload());

    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let build_start = Instant::now();
    let built = SegmentedIndex::build_parallel(
        Default::default(),
        num_docs,
        LARGE_DOCS_PER_SEGMENT,
        threads,
        |i| {
            let d = docs.doc(i);
            (d.url, d.title, d.body)
        },
    )
    .expect("large segmented build");
    let build_secs = build_start.elapsed().as_secs_f64();

    // Persist every segment and re-open from disk — the benchmark runs
    // against files, not against the build's in-memory byte buffers.
    let seg_dir = std::env::temp_dir().join("pws_retrieval_bench_large");
    let _ = fs::remove_dir_all(&seg_dir);
    fs::create_dir_all(&seg_dir).expect("create segment dir");
    let mut paths = Vec::new();
    for (s, seg) in built.segments().iter().enumerate() {
        let path = seg_dir.join(format!("seg{s:03}.pws"));
        seg.write_file(&path).expect("segment write");
        paths.push(path);
    }
    drop(built);
    let load_start = Instant::now();
    let segments: Vec<Segment> =
        paths.iter().map(|p| Segment::open(p).expect("segment open")).collect();
    let segmented = SegmentedIndex::from_segments(segments).expect("assemble");
    let load_secs = load_start.elapsed().as_secs_f64();
    let index_bytes = segmented.index_bytes() as u64;
    eprintln!(
        "built {} segments over {} docs in {build_secs:.1}s \
         ({:.1} MB on disk, loaded in {load_secs:.2}s)",
        segmented.num_segments(),
        segmented.doc_count(),
        index_bytes as f64 / 1e6
    );

    // ── Correctness gate: BMW vs exhaustive on every fixture query ───
    let mut disagreements = 0;
    for q in &queries {
        let bmw = segmented.search(&q.text, POOL_K);
        let full = segmented.search_exhaustive(&q.text, POOL_K);
        if !hits_equal(&bmw, &full) {
            eprintln!("DISAGREEMENT BMW vs exhaustive on query {:?}", q.text);
            disagreements += 1;
        }
    }
    if disagreements > 0 {
        eprintln!("FAIL: {disagreements} of {} queries disagree", queries.len());
        std::process::exit(1);
    }
    println!(
        "correctness: Block-Max WAND bit-identical to exhaustive scoring \
         on all {} queries at {} docs",
        queries.len(),
        segmented.doc_count()
    );

    // ── Timing ───────────────────────────────────────────────────────
    let rounds = MIN_MEASURED_QUERIES.div_ceil(queries.len()).max(1);
    let bench_cache = ShardedRetrievalCache::new(4096);
    let mut reports = Vec::new();
    reports.push(time_backend(
        "segmented",
        "bench.retrieval.segmented",
        &queries,
        rounds,
        &|q| segmented.search(q, POOL_K),
    ));
    reports.push(time_backend(
        "seg+cache",
        "bench.retrieval.segcached",
        &queries,
        rounds,
        &|q| {
            let tokens = segmented.analyze_text(q);
            if let Some(hits) = bench_cache.get(&tokens, POOL_K) {
                hits
            } else {
                let hits = segmented.search_tokens(&tokens, POOL_K);
                bench_cache.put(&tokens, POOL_K, &hits);
                hits
            }
        },
    ));
    let _ = fs::remove_dir_all(&seg_dir);

    write_report(Report {
        scale: "large".to_string(),
        num_docs,
        num_query_templates: queries.len(),
        pool_k: POOL_K,
        index: Some(IndexReport {
            segments: segmented.num_segments(),
            build_secs,
            index_bytes,
            vocab_terms: segmented.vocab_size(),
        }),
        backends: reports,
    });
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let scale = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or(if smoke { "smoke" } else { "paper" });

    match scale {
        "smoke" => run_world_scale("smoke", ExperimentSpec::small(), true),
        "paper" => run_world_scale("paper", ExperimentSpec::default_paper(), smoke),
        "large" => run_large(),
        other => {
            eprintln!("unknown --scale {other:?} (expected smoke | paper | large)");
            std::process::exit(2);
        }
    }
}
