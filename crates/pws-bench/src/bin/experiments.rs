//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p pws-bench --release --bin experiments -- all
//! cargo run -p pws-bench --release --bin experiments -- t3 f5
//! cargo run -p pws-bench --release --bin experiments -- --quick all
//! cargo run -p pws-bench --release --bin experiments -- --threads 4 all
//! cargo run -p pws-bench --release --bin experiments -- --backend sharded:8 all
//! ```
//!
//! Rendered tables go to stdout; JSON for each experiment is written to
//! `results/<id>.json`. `--threads N` shards per-user replay over N worker
//! threads; `--backend serial|sharded[:N]` selects which engine frontend
//! replays users (the serial middleware or the `pws-serve` concurrent
//! engine with N user shards). The JSON output is byte-identical for
//! every thread count *and* backend (see EXPERIMENTS.md). A stage-latency
//! profile from the engine's built-in metrics (`pws-obs`) is written to
//! `results/metrics.json` (and, in Prometheus text exposition format,
//! `results/metrics.prom`) on exit.

use pws_eval::experiments as exp;
use pws_eval::experiments::Protocol;
use pws_eval::{ExperimentSpec, ExperimentWorld};
use serde::Serialize;
use std::fs;
use std::time::Instant;

fn save<T: Serialize>(id: &str, value: &T) {
    let _ = fs::create_dir_all("results");
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            let path = format!("results/{id}.json");
            if let Err(e) = fs::write(&path, json) {
                eprintln!("warn: could not write {path}: {e}");
            }
        }
        Err(e) => eprintln!("warn: could not serialize {id}: {e}"),
    }
}

/// Parse `--threads N` / `--threads=N`, returning the thread count and the
/// args with the flag (and its value) removed.
fn parse_threads(args: Vec<String>) -> (usize, Vec<String>) {
    let mut threads = 1usize;
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--threads" {
            match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => threads = n,
                None => eprintln!("warn: --threads needs a number; using 1"),
            }
        } else if let Some(v) = a.strip_prefix("--threads=") {
            match v.parse() {
                Ok(n) => threads = n,
                Err(_) => eprintln!("warn: bad --threads value {v:?}; using 1"),
            }
        } else {
            rest.push(a);
        }
    }
    (threads.max(1), rest)
}

/// Parse `--backend serial|sharded[:N]` (also `--backend=…`), returning
/// the backend and the args with the flag removed. `sharded` without a
/// shard count uses the serving layer's default of 8.
fn parse_backend(args: Vec<String>) -> (pws_eval::EvalBackend, Vec<String>) {
    fn decode(v: &str) -> Option<pws_eval::EvalBackend> {
        match v {
            "serial" => Some(pws_eval::EvalBackend::Serial),
            "sharded" => Some(pws_eval::EvalBackend::Sharded { shards: 8 }),
            _ => v
                .strip_prefix("sharded:")
                .and_then(|n| n.parse().ok())
                .map(|shards| pws_eval::EvalBackend::Sharded { shards }),
        }
    }
    let mut backend = pws_eval::EvalBackend::Serial;
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let value = if a == "--backend" {
            it.next()
        } else if let Some(v) = a.strip_prefix("--backend=") {
            Some(v.to_string())
        } else {
            rest.push(a);
            continue;
        };
        match value.as_deref().and_then(decode) {
            Some(b) => backend = b,
            None => eprintln!(
                "warn: --backend wants serial|sharded[:N], got {value:?}; using serial"
            ),
        }
    }
    (backend, rest)
}

fn main() {
    let (threads, args) = parse_threads(std::env::args().skip(1).collect());
    let (backend, args) = parse_backend(args);
    pws_eval::set_eval_threads(threads);
    pws_eval::set_eval_backend(backend);
    let quick = args.iter().any(|a| a == "--quick");
    let ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_lowercase())
        .collect();
    let run_all = ids.is_empty() || ids.iter().any(|i| i == "all");
    let want = |id: &str| run_all || ids.iter().any(|i| i == id);

    let (spec, proto) = if quick {
        (ExperimentSpec::small(), Protocol::quick())
    } else {
        (ExperimentSpec::default_paper(), Protocol::standard())
    };

    eprintln!(
        "building experiment world ({} docs, {} users, {} queries)…",
        spec.corpus.num_docs, spec.users.num_users, spec.queries.num_queries
    );
    let t0 = Instant::now();
    let world = ExperimentWorld::build(spec);
    eprintln!("world built in {:.1?}\n", t0.elapsed());

    let timed = |label: &str, f: &mut dyn FnMut()| {
        let t = Instant::now();
        f();
        eprintln!("[{label} done in {:.1?}]\n", t.elapsed());
    };

    // T3 is reused by F2, so hold it if either is requested.
    let mut t3_cache: Option<exp::T3Report> = None;

    if want("t1") {
        timed("t1", &mut || {
            let r = exp::t1_dataset_stats(&world);
            println!("{}", r.render());
            save("t1", &r);
        });
    }
    if want("t2") {
        timed("t2", &mut || {
            let r = exp::t2_sample_concepts(&world);
            println!("{}", r.render());
            save("t2", &r);
        });
    }
    if want("t3") || want("f2") {
        timed("t3", &mut || {
            let r = exp::t3_method_comparison(&world, &proto);
            println!("{}", r.render());
            save("t3", &r);
            t3_cache = Some(r);
        });
    }
    if want("f2") {
        timed("f2", &mut || {
            let t3 = t3_cache.as_ref().expect("computed above");
            let r = exp::f2_topn_precision(t3);
            println!("{}", r.render());
            save("f2", &r);
        });
    }
    if want("f1") {
        timed("f1", &mut || {
            let budgets: &[usize] =
                if quick { &[0, 4, 8] } else { &[0, 5, 10, 20, 40, 80] };
            let r = exp::f1_learning_curve(&world, &proto, budgets);
            println!("{}", r.render());
            save("f1", &r);
        });
    }
    if want("f3") {
        timed("f3", &mut || {
            let thresholds: &[f64] = if quick {
                &[0.02, 0.1, 0.3]
            } else {
                &[0.01, 0.02, 0.05, 0.08, 0.12, 0.20, 0.30]
            };
            let r = exp::f3_support_threshold_sweep(&world, &proto, thresholds);
            println!("{}", r.render());
            save("f3", &r);
        });
    }
    if want("f4") {
        timed("f4", &mut || {
            let r = exp::f4_entropy_analysis(&world, &proto);
            println!("{}", r.render());
            save("f4", &r);
        });
    }
    if want("f5") {
        timed("f5", &mut || {
            let betas: &[f64] =
                if quick { &[0.0, 0.5, 1.0] } else { &[0.0, 0.25, 0.5, 0.75, 1.0] };
            let r = exp::f5_blend_sweep(&world, &proto, betas);
            println!("{}", r.render());
            save("f5", &r);
        });
    }
    if want("f6") {
        timed("f6", &mut || {
            let horizon = if quick { 6 } else { 20 };
            let r = exp::f6_cold_start(&world, &proto, horizon);
            println!("{}", r.render());
            save("f6", &r);
        });
    }
    if want("f7") {
        timed("f7", &mut || {
            let r = exp::f7_ablations(&world, &proto);
            println!("{}", r.render());
            save("f7", &r);
        });
    }
    if want("t5") {
        timed("t5", &mut || {
            let r = exp::t5_class_breakdown(&world, &proto);
            println!("{}", r.render());
            save("t5", &r);
        });
    }
    if want("f8") {
        timed("f8", &mut || {
            let levels: &[f64] = if quick { &[0.02, 0.2] } else { &[0.0, 0.05, 0.1, 0.2, 0.35] };
            let r = exp::f8_noise_robustness(&world.spec, &proto, levels);
            println!("{}", r.render());
            save("f8", &r);
        });
    }
    if want("f9") {
        timed("f9", &mut || {
            let r = exp::f9_click_model_robustness(&world, &proto);
            println!("{}", r.render());
            save("f9", &r);
        });
    }
    if want("f10") {
        timed("f10", &mut || {
            let sessions = if quick { 2 } else { 6 };
            let r = exp::f10_session_adaptation(&world, &proto, sessions);
            println!("{}", r.render());
            save("f10", &r);
        });
    }

    // Stage-latency profile accumulated by the engine's instrumentation
    // over everything that just ran: JSON for the repo's own tooling,
    // Prometheus text exposition for scrape-style consumers.
    let snapshot = pws_obs::snapshot();
    let _ = fs::create_dir_all("results");
    if let Err(e) = fs::write("results/metrics.json", snapshot.to_json(true)) {
        eprintln!("warn: could not write results/metrics.json: {e}");
    }
    if let Err(e) = fs::write("results/metrics.prom", snapshot.to_prometheus()) {
        eprintln!("warn: could not write results/metrics.prom: {e}");
    }

    eprintln!("total {:.1?} ({threads} thread(s), {backend:?} backend)", t0.elapsed());
}
