//! `pws-trace` — replay one query from an eval fixture and pretty-print
//! its decision trace.
//!
//! ```text
//! cargo run -p pws-bench --release --bin pws-trace -- small 3
//! cargo run -p pws-bench --release --bin pws-trace -- small 3 --user 2 --train 40
//! cargo run -p pws-bench --release --bin pws-trace -- paper 17 --shards 8 --json
//! ```
//!
//! Builds the named experiment fixture (`small` or `paper`), warms the
//! target user with `--train` simulated interactions exactly the way the
//! eval harness does (same per-user seed, same click model), then issues
//! query `<query-id>` through the sharded serving path with tracing on
//! and prints the resulting [`pws_obs::trace::QueryTrace`]: stage-by-stage
//! latency, extracted content/location concepts with supports, the chosen
//! β and its provenance, and per-result feature vectors with base→final
//! rank deltas for every pool candidate. `--json` emits the trace as JSON
//! instead of the human-readable rendering.

use pws_click::{SessionSimulator, SimConfig, UserId};
use pws_core::EngineConfig;
use pws_corpus::query::QueryId;
use pws_eval::{user_seed, ClickModelKind, ExperimentSpec, ExperimentWorld};
use pws_serve::{ServeConfig, ServingEngine};

fn usage() -> ! {
    eprintln!(
        "usage: pws-trace <small|paper> <query-id> [--user N] [--train N] \
         [--shards N] [--seed N] [--json]\n\
         \n\
         Replays one query from the eval fixture through the serving path\n\
         with tracing enabled and prints the decision trace."
    );
    std::process::exit(2);
}

fn parse_flag(args: &[String], name: &str) -> Option<u64> {
    let eq = format!("--{name}=");
    for (i, a) in args.iter().enumerate() {
        if a == &format!("--{name}") {
            return args.get(i + 1).and_then(|v| v.parse().ok());
        }
        if let Some(v) = a.strip_prefix(&eq) {
            return v.parse().ok();
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let positional: Vec<&String> =
        args.iter().filter(|a| !a.starts_with("--")).collect();
    // Flag values consumed by `--flag N` also land in `positional`; only
    // the first two positionals (fixture, query id) are meaningful, and
    // flags are recommended in `--flag=N` form. Reject obvious misuse.
    let (fixture, query_arg) = match (positional.first(), positional.get(1)) {
        (Some(f), Some(q)) => (f.as_str(), q.as_str()),
        _ => usage(),
    };

    let spec = match fixture {
        "small" => ExperimentSpec::small(),
        "paper" => ExperimentSpec::default_paper(),
        other => {
            eprintln!("unknown fixture {other:?} (want: small | paper)");
            usage();
        }
    };
    let Ok(query_id) = query_arg.parse::<u32>() else {
        eprintln!("query id {query_arg:?} is not a number");
        usage();
    };

    let user_idx = parse_flag(&args, "user").unwrap_or(0) as usize;
    let train = parse_flag(&args, "train").unwrap_or(40) as usize;
    let shards = parse_flag(&args, "shards").unwrap_or(8).max(1) as usize;
    let seed = parse_flag(&args, "seed").unwrap_or(99);
    let json = args.iter().any(|a| a == "--json");

    eprintln!(
        "building {fixture} fixture ({} docs, {} users, {} queries)…",
        spec.corpus.num_docs, spec.users.num_users, spec.queries.num_queries
    );
    let world = ExperimentWorld::build(spec);
    if query_id as usize >= world.queries.len() {
        eprintln!(
            "query id {query_id} out of range: the {fixture} fixture has {} queries (0..={})",
            world.queries.len(),
            world.queries.len() - 1
        );
        std::process::exit(2);
    }
    if user_idx >= world.population.len() {
        eprintln!(
            "user {user_idx} out of range: the {fixture} fixture has {} users",
            world.population.len()
        );
        std::process::exit(2);
    }

    // Same serving configuration the eval harness uses for its sharded
    // backend, plus an always-on trace ring so the warm-up traffic is
    // admitted to the slow-query log too.
    let engine = ServingEngine::new(
        &world.engine,
        &world.world,
        EngineConfig::default(),
        ServeConfig {
            shards,
            stats_refresh_every: 1,
            trace: pws_serve::TraceConfig::sample_all(64),
            ..ServeConfig::default()
        },
    );
    let top_k = EngineConfig::default().top_k;
    let mut sim = SessionSimulator::with_model(
        &world.engine,
        &world.corpus,
        &world.world,
        &world.population,
        &world.queries,
        SimConfig { top_k, seed: user_seed(seed, user_idx) },
        ClickModelKind::PositionBias.build(),
    );
    let user = UserId(user_idx as u32);

    // Warm the user's profile exactly like the harness training phase.
    eprintln!("warming user {user_idx} with {train} interaction(s)…");
    for _ in 0..train {
        let qid = sim.sample_query(user);
        let intent = sim.sample_intent_city(user);
        let query = &sim.queries()[qid.index()];
        let text = sim.render_query(query, intent);
        let turn = engine.search(user, &text);
        let outcome = sim.issue_on_hits(user, qid, intent, &text, &turn.hits);
        engine.observe(&turn, &outcome.impression);
    }

    // The replayed query: the requested template, rendered with a
    // deterministically sampled intent city for this user.
    let qid = QueryId(query_id);
    let intent = sim.sample_intent_city(user);
    let query = &sim.queries()[qid.index()];
    let text = sim.render_query(query, intent);
    let (_turn, trace) = engine.search_traced(user, &text);

    if json {
        println!("{}", trace.to_json(true));
    } else {
        println!("{}", trace.render());
    }
}
