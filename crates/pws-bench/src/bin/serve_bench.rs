//! Multi-threaded closed-loop throughput benchmark for `pws-serve`.
//!
//! ```text
//! cargo run -p pws-bench --release --bin serve_bench
//! cargo run -p pws-bench --release --bin serve_bench -- --workers 8 --shards 16
//! cargo run -p pws-bench --release --bin serve_bench -- --requests 2000 --sweep
//! ```
//!
//! Prints QPS and p50/p95/p99 request latency (from the `pws-obs`
//! histograms) and writes the report plus the full stage profile —
//! including the per-shard `serve.shard{i}.*` stages — to
//! `results/serve_bench.json` / `results/serve_bench_metrics.json`.
//! `--sweep` additionally scans worker counts 1, 2, 4, … up to
//! `--workers` to show throughput scaling. `--metrics-out PATH` also
//! writes the stage profile in Prometheus text exposition format (the
//! file a node exporter's textfile collector would scrape).
//!
//! Fault tolerance knobs:
//!
//! ```text
//! cargo run -p pws-bench --release --bin serve_bench -- --deadline-ms 2
//! cargo run -p pws-bench --release --bin serve_bench -- \
//!     --chaos seed=42,panic=64,delay=16:200us,poison=512 --deadline-ms 5
//! ```
//!
//! `--deadline-ms N` gives every request a [`SearchBudget`] deadline
//! (queries over budget degrade to base ranking at the engine's stage
//! checkpoints). `--chaos PLAN` attaches a deterministic seeded
//! [`pws_chaos::SeededFaultPlan`]; after the run the `serve.*` fault
//! counter family (degrade reasons, lock recoveries, evictions, state
//! rollbacks) is printed so injected faults can be reconciled against
//! the report's degraded/shed totals by eye.
//!
//! [`SearchBudget`]: pws_serve::SearchBudget

use pws_bench::throughput::{run_throughput, ThroughputOptions};
use pws_chaos::ChaosSpec;
use std::fs;
use std::time::Duration;

fn parse_str_flag(args: &[String], name: &str) -> Option<String> {
    let eq = format!("--{name}=");
    for (i, a) in args.iter().enumerate() {
        if a == &format!("--{name}") {
            return args.get(i + 1).cloned();
        }
        if let Some(v) = a.strip_prefix(&eq) {
            return Some(v.to_string());
        }
    }
    None
}

fn parse_flag(args: &[String], name: &str) -> Option<usize> {
    parse_str_flag(args, name).and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = ThroughputOptions::default();
    if let Some(w) = parse_flag(&args, "workers") {
        opts.workers = w.max(1);
    }
    if let Some(r) = parse_flag(&args, "requests") {
        opts.requests_per_worker = r;
    }
    if let Some(s) = parse_flag(&args, "shards") {
        opts.shards = s.max(1);
    }
    if let Some(o) = parse_flag(&args, "observe-every") {
        opts.observe_every = o;
    }
    if let Some(ms) = parse_flag(&args, "deadline-ms") {
        opts.deadline = Some(Duration::from_millis(ms as u64));
    }
    if let Some(plan) = parse_str_flag(&args, "chaos") {
        match ChaosSpec::parse(&plan) {
            Ok(spec) => opts.chaos = Some(spec),
            Err(e) => {
                eprintln!("error: bad --chaos plan {plan:?}: {e}");
                std::process::exit(2);
            }
        }
    }
    let sweep = args.iter().any(|a| a == "--sweep");

    eprintln!("building bench world…");
    let world = pws_bench::bench_world();

    let reports = if sweep {
        let mut w = 1;
        let mut reports = Vec::new();
        while w <= opts.workers {
            let r = run_throughput(&world, &ThroughputOptions { workers: w, ..opts.clone() });
            println!("{}\n", r.render());
            reports.push(r);
            w *= 2;
        }
        reports
    } else {
        let r = run_throughput(&world, &opts);
        println!("{}", r.render());
        vec![r]
    };

    if opts.chaos.is_some() || opts.deadline.is_some() {
        let snap = pws_obs::snapshot();
        let mut fault_counters: Vec<(String, u64)> = snap
            .stages
            .iter()
            .filter(|s| {
                s.count > 0
                    && (s.name.starts_with("serve.degraded.")
                        || matches!(
                            s.name.as_str(),
                            "serve.lock_recovered"
                                | "serve.user_evicted"
                                | "serve.state_restored"
                                | "serve.overloaded"
                                | "serve.state_io_error"
                        ))
            })
            .map(|s| (s.name.clone(), s.count))
            .collect();
        fault_counters.sort();
        println!("\nfault counters:");
        if fault_counters.is_empty() {
            println!("  (none fired)");
        }
        for (name, count) in fault_counters {
            println!("  {name:<34} {count}");
        }
    }

    let _ = fs::create_dir_all("results");
    match serde_json::to_string_pretty(&reports) {
        Ok(json) => {
            if let Err(e) = fs::write("results/serve_bench.json", json) {
                eprintln!("warn: could not write results/serve_bench.json: {e}");
            }
        }
        Err(e) => eprintln!("warn: could not serialize report: {e}"),
    }
    if let Err(e) = fs::write("results/serve_bench_metrics.json", pws_obs::snapshot().to_json(true))
    {
        eprintln!("warn: could not write results/serve_bench_metrics.json: {e}");
    }
    if let Some(path) = parse_str_flag(&args, "metrics-out") {
        if let Err(e) = fs::write(&path, pws_obs::prometheus_text()) {
            eprintln!("warn: could not write {path}: {e}");
        }
    }
}
