//! # pws-bench — benchmarks and the experiment driver
//!
//! * `cargo run -p pws-bench --release --bin experiments -- all` regenerates
//!   every table and figure of the evaluation (T1–T3, F1–F7) and writes
//!   both the rendered tables and machine-readable JSON to `results/`;
//! * `cargo bench -p pws-bench` runs the criterion micro-benchmarks behind
//!   efficiency table T4 (index build/query, concept extraction,
//!   personalized re-ranking, RankSVM training, click simulation,
//!   gazetteer matching);
//! * `cargo run -p pws-bench --release --bin serve_bench` runs the
//!   closed-loop multi-threaded throughput benchmark of the `pws-serve`
//!   concurrent engine ([`throughput::run_throughput`]).
//!
//! Shared fixtures for the benches live here.

pub mod throughput;

use pws_eval::{ExperimentSpec, ExperimentWorld};

/// The bench fixture scale: smaller than the paper world so criterion can
/// iterate, larger than the unit-test world so numbers are meaningful.
pub fn bench_spec() -> ExperimentSpec {
    let mut spec = ExperimentSpec::small();
    spec.corpus.num_docs = 2_000;
    spec.corpus.num_topics = 8;
    spec.queries.num_queries = 40;
    spec.queries.num_topics = 8;
    spec.users.num_topics = 8;
    spec
}

/// Build the shared bench world (a few hundred ms; benches build it once).
pub fn bench_world() -> ExperimentWorld {
    ExperimentWorld::build(bench_spec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_world_builds() {
        let w = bench_world();
        assert_eq!(w.corpus.len(), 2_000);
        assert!(!w.engine.search(&w.queries[0].text, 10).is_empty());
    }
}
