//! Closed-loop throughput benchmark of the `pws-serve` concurrent engine.
//!
//! `W` worker threads share one [`ServingEngine`] and each drives a
//! closed loop: issue a personalized search for the next (user, query)
//! pair of its deterministic schedule, and every `observe_every`-th turn
//! also click the top result and feed the impression back through the
//! write path. Every request is timed into the `serve.request` stage of
//! the global [`pws_obs`] registry, so the reported p50/p95/p99 come
//! from the same log₂ histograms the engine uses for its own stage
//! profile — and the per-shard `serve.shard{i}.*` stages fill in
//! alongside, giving a shard-level view of the same run.

use pws_chaos::ChaosSpec;
use pws_click::{Click, Impression, ShownResult, UserId};
use pws_core::{EngineConfig, SearchTurn};
use pws_corpus::query::QueryId;
use pws_eval::ExperimentWorld;
use pws_serve::{quiet_injected_panics, SearchBudget, ServeConfig, ServingEngine};
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Workload shape for one throughput run.
#[derive(Debug, Clone)]
pub struct ThroughputOptions {
    /// Closed-loop worker threads.
    pub workers: usize,
    /// Requests each worker issues (searches; observes ride on top).
    pub requests_per_worker: usize,
    /// User shards in the serving engine.
    pub shards: usize,
    /// Every n-th search also exercises the write path (click + observe);
    /// 0 disables observes entirely (pure read workload).
    pub observe_every: usize,
    /// Simulated user population size the workload cycles through.
    pub users: usize,
    /// Per-request deadline budget. `Some` switches the loop to
    /// `search_with` so queries degrade at the engine's stage
    /// checkpoints instead of running past the deadline.
    pub deadline: Option<Duration>,
    /// Deterministic fault injection ([`ChaosSpec`]); `None` runs
    /// fault-free. Any chaos (or a deadline) routes requests through
    /// the budgeted `search_with` path.
    pub chaos: Option<ChaosSpec>,
}

impl Default for ThroughputOptions {
    fn default() -> Self {
        ThroughputOptions {
            workers: 4,
            requests_per_worker: 250,
            shards: 8,
            observe_every: 4,
            users: 64,
            deadline: None,
            chaos: None,
        }
    }
}

/// Result of one throughput run. All latency fields are nanoseconds read
/// from the `serve.request` histogram (log₂ buckets — percentiles are
/// bucket midpoints, see `pws-obs`).
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputReport {
    /// Worker threads that drove the engine.
    pub workers: usize,
    /// User shards in the engine.
    pub shards: usize,
    /// Search requests completed.
    pub searches: u64,
    /// Observe (write-path) requests completed.
    pub observes: u64,
    /// Wall-clock of the whole closed loop, seconds.
    pub elapsed_secs: f64,
    /// Requests (searches + observes) per second.
    pub qps: f64,
    /// Mean request latency, nanoseconds.
    pub mean_nanos: f64,
    /// Median request latency (histogram bucket midpoint).
    pub p50_nanos: u64,
    /// 95th-percentile request latency.
    pub p95_nanos: u64,
    /// 99th-percentile request latency.
    pub p99_nanos: u64,
    /// Searches answered from the degraded (base-ranking) path.
    pub degraded: u64,
    /// Searches shed by admission control (`Overloaded`).
    pub shed: u64,
}

impl ThroughputReport {
    /// Human-readable one-run table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "serve throughput: {} workers x {} shards\n\
             requests  {:>8} searches + {:>6} observes in {:.2}s\n\
             qps       {:>10.0}\n\
             latency   mean {:.1}us  p50 {:.1}us  p95 {:.1}us  p99 {:.1}us",
            self.workers,
            self.shards,
            self.searches,
            self.observes,
            self.elapsed_secs,
            self.qps,
            self.mean_nanos / 1e3,
            self.p50_nanos as f64 / 1e3,
            self.p95_nanos as f64 / 1e3,
            self.p99_nanos as f64 / 1e3,
        );
        if self.degraded > 0 || self.shed > 0 {
            out.push_str(&format!(
                "\nfaults    {:>8} degraded + {:>6} shed (every query still answered)",
                self.degraded, self.shed
            ));
        }
        out
    }
}

/// SplitMix64 finalizer for the per-worker schedules.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Build the feedback impression for a turn: a click on the top result.
fn top_click_impression(turn: &SearchTurn, qid: QueryId) -> Impression {
    Impression {
        user: turn.user,
        query: qid,
        query_text: turn.query_text.clone(),
        results: turn
            .hits
            .iter()
            .map(|h| ShownResult {
                doc: h.doc,
                rank: h.rank,
                url: h.url.to_string(),
                title: h.title.to_string(),
                snippet: h.snippet.clone(),
            })
            .collect(),
        clicks: turn
            .hits
            .first()
            .map(|h| Click { doc: h.doc, rank: h.rank, dwell: 600 })
            .into_iter()
            .collect(),
    }
}

/// Run the closed-loop benchmark against a shared [`ServingEngine`] built
/// over `world`'s index and ontology.
///
/// Deterministic workload, nondeterministic interleaving: each worker's
/// (user, query) schedule is a pure function of its worker index, but
/// threads race on the engine — which is the point; the engine's own
/// equivalence tests cover correctness, this measures contention.
pub fn run_throughput(world: &ExperimentWorld, opts: &ThroughputOptions) -> ThroughputReport {
    let mut engine = ServingEngine::new(
        &world.engine,
        &world.world,
        EngineConfig::default(),
        ServeConfig { shards: opts.shards, ..ServeConfig::default() },
    );
    if let Some(spec) = &opts.chaos {
        quiet_injected_panics();
        engine = engine.with_fault_plan(Arc::new(spec.build()));
    }
    // Budgeted path whenever a deadline or chaos is in play; the plain
    // `search` path otherwise, so fault-free baselines measure the
    // engine without the budget machinery on the request path.
    let budgeted = opts.deadline.is_some() || opts.chaos.is_some();
    let request_stage = pws_obs::stage("serve.request");
    request_stage.reset();
    let searches = AtomicU64::new(0);
    let observes = AtomicU64::new(0);
    let degraded = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let users = opts.users.max(1) as u64;
    let n_queries = world.queries.len() as u64;

    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..opts.workers.max(1) {
            let engine = &engine;
            let request_stage = &request_stage;
            let searches = &searches;
            let observes = &observes;
            let degraded = &degraded;
            let shed = &shed;
            let queries = &world.queries;
            scope.spawn(move || {
                for i in 0..opts.requests_per_worker {
                    let tag = mix((w as u64) << 32 | i as u64);
                    let user = UserId((tag % users) as u32);
                    let qidx = (tag >> 16) % n_queries;
                    let text = &queries[qidx as usize].text;
                    let turn = if budgeted {
                        let budget = match opts.deadline {
                            Some(d) => SearchBudget::with_deadline_in(d),
                            None => SearchBudget::none(),
                        };
                        let resp = {
                            let _t = request_stage.span();
                            engine.search_with(user, text, budget)
                        };
                        match resp {
                            Ok(resp) => {
                                if resp.is_degraded() {
                                    degraded.fetch_add(1, Ordering::Relaxed);
                                }
                                resp.turn
                            }
                            Err(_) => {
                                shed.fetch_add(1, Ordering::Relaxed);
                                searches.fetch_add(1, Ordering::Relaxed);
                                continue;
                            }
                        }
                    } else {
                        let _t = request_stage.span();
                        engine.search(user, text)
                    };
                    searches.fetch_add(1, Ordering::Relaxed);
                    if opts.observe_every > 0
                        && i % opts.observe_every == 0
                        && !turn.hits.is_empty()
                    {
                        let imp = top_click_impression(&turn, QueryId(qidx as u32));
                        let _t = request_stage.span();
                        engine.observe(&turn, &imp);
                        observes.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();

    let snap = request_stage.snapshot();
    let searches = searches.load(Ordering::Relaxed);
    let observes = observes.load(Ordering::Relaxed);
    ThroughputReport {
        workers: opts.workers.max(1),
        shards: opts.shards,
        searches,
        observes,
        elapsed_secs: elapsed,
        qps: if elapsed > 0.0 { (searches + observes) as f64 / elapsed } else { 0.0 },
        mean_nanos: snap.mean_nanos,
        p50_nanos: snap.p50_nanos,
        p95_nanos: snap.p95_nanos,
        p99_nanos: snap.p99_nanos,
        degraded: degraded.load(Ordering::Relaxed),
        shed: shed.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_loop_reports_qps_and_percentiles() {
        // run_throughput resets the shared `serve.request` stage and this
        // test asserts on global per-shard counts — serialize against
        // every other registry-touching test in this binary.
        let _guard = pws_obs::test_lock();
        let world = pws_eval::ExperimentWorld::build(pws_eval::ExperimentSpec::small());
        let opts = ThroughputOptions {
            workers: 4, // the acceptance criterion: >1 worker thread
            requests_per_worker: 30,
            shards: 4,
            observe_every: 3,
            users: 16,
            ..ThroughputOptions::default()
        };
        let r = run_throughput(&world, &opts);
        assert_eq!(r.workers, 4);
        assert_eq!(r.searches, 4 * 30);
        assert!(r.observes > 0, "write path exercised");
        assert!(r.qps > 0.0);
        assert!(r.elapsed_secs > 0.0);
        assert!(r.mean_nanos > 0.0);
        assert!(r.p50_nanos > 0, "histogram populated");
        assert!(r.p95_nanos >= r.p50_nanos);
        assert!(r.p99_nanos >= r.p95_nanos);
        // The per-shard serving stages recorded the same run.
        let snap = pws_obs::snapshot();
        let shard_searches: u64 = snap
            .stages
            .iter()
            .filter(|s| s.name.starts_with("serve.shard") && s.name.ends_with(".search"))
            .map(|s| s.count)
            .sum();
        assert!(shard_searches >= r.searches, "per-shard stages saw every search");
        let rendered = r.render();
        assert!(rendered.contains("qps"));
        assert!(rendered.contains("p99"));
    }

    #[test]
    fn pure_read_workload_skips_observes() {
        // Serialized for the same reason as above: run_throughput resets
        // the shared `serve.request` stage.
        let _guard = pws_obs::test_lock();
        let world = pws_eval::ExperimentWorld::build(pws_eval::ExperimentSpec::small());
        let opts = ThroughputOptions {
            workers: 2,
            requests_per_worker: 10,
            shards: 2,
            observe_every: 0,
            users: 8,
            ..ThroughputOptions::default()
        };
        let r = run_throughput(&world, &opts);
        assert_eq!(r.searches, 20);
        assert_eq!(r.observes, 0);
        assert_eq!(r.degraded, 0);
        assert_eq!(r.shed, 0);
    }

    #[test]
    fn chaos_workload_degrades_but_answers_every_search() {
        // Serialized: run_throughput resets the shared `serve.request` stage.
        let _guard = pws_obs::test_lock();
        let world = pws_eval::ExperimentWorld::build(pws_eval::ExperimentSpec::small());
        let opts = ThroughputOptions {
            workers: 3,
            requests_per_worker: 40,
            shards: 4,
            observe_every: 4,
            users: 16,
            chaos: Some(ChaosSpec::parse("seed=11,panic=8,poison=16").unwrap()),
            ..ThroughputOptions::default()
        };
        let r = run_throughput(&world, &opts);
        assert_eq!(r.searches, 3 * 40, "chaos must not lose searches");
        assert!(r.degraded > 0, "panic/poison rates of 1-in-8/1-in-16 must fire");
        assert_eq!(r.shed, 0, "no admission limit configured");
        assert!(r.render().contains("degraded"));
    }
}
