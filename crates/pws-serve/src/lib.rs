//! # pws-serve — user-sharded concurrent serving
//!
//! The serial [`pws_core::PersonalizedSearchEngine`] takes `&mut self`
//! over one global user map, so a process serves exactly one query at a
//! time. This crate is the concurrent frontend over the same
//! [`EngineCore`]: an engine that is `&self + Send + Sync`, sharding the
//! *only* mutable state — per-user profiles and per-query statistics —
//! so that requests for different users proceed in parallel and never
//! contend on a global lock.
//!
//! ## Sharding and locking
//!
//! ```text
//!                    ┌───────────────────────────────┐
//!                    │  EngineCore (shared, &self)   │
//!                    │  index · ontology · matcher   │
//!                    │  config · trainer · metrics   │
//!                    └──────────────┬────────────────┘
//!          search/observe(user, q)  │ hash(user) → shard
//!              ┌───────────────┬────┴──────────┬───────────────┐
//!              ▼               ▼               ▼               ▼
//!        ┌───────────┐   ┌───────────┐                  ┌───────────┐
//!        │ shard 0   │   │ shard 1   │       …          │ shard N-1 │
//!        │ Mutex<    │   │ Mutex<    │                  │ Mutex<    │
//!        │  user map>│   │  user map>│                  │  user map>│
//!        └───────────┘   └───────────┘                  └───────────┘
//!
//!        query statistics (adaptive β):
//!          writes → hash(query) → Mutex shard      (observe path)
//!          reads  → RwLock<Arc<snapshot>>, epoch-  (search path —
//!                   rebuilt every `stats_refresh_every` observes;
//!                   an Arc clone, never a shard lock)
//! ```
//!
//! **Read path** (`search`): lock exactly one user shard (the issuing
//! user's), read β statistics from the lock-free epoch snapshot, run
//! [`EngineCore::search_user`]. Queries for users on different shards
//! share no locks at all.
//!
//! **Write path** (`observe`): lock the user's shard and the query's
//! statistics shard (always in that order — the deadlock-freedom
//! invariant), fold the clicks in, then bump the epoch counter and — at
//! most every [`ServeConfig::stats_refresh_every`] observes — rebuild
//! the statistics snapshot.
//!
//! ## Determinism
//!
//! Both frontends run the same [`EngineCore::search_user`] /
//! [`EngineCore::observe_user`], so a session log replayed per-user in
//! order produces byte-identical [`SearchTurn`]s to the serial engine —
//! for any shard count and any thread count — whenever the adaptive-β
//! coupling between users is inert: fixed/mode β, or per-user-disjoint
//! query strings with `stats_refresh_every = 1`. The equivalence tests
//! at the bottom of this file pin exactly that.
//!
//! ## Metrics
//!
//! Each shard registers `serve.shard{i}.search`, `serve.shard{i}.observe`
//! (latency histograms) and `serve.shard{i}.queue` (in-flight request
//! depth sampled at arrival) in the global [`pws_obs`] registry, next to
//! the engine's own `engine.*` stages.
//!
//! ## Tracing
//!
//! With [`TraceConfig::enabled`], every `search` fills a per-query
//! [`QueryTrace`] (stage timings, concepts, β provenance, per-candidate
//! rank movement — see [`pws_obs::trace`]) and stamps it with the shard
//! index and the queue depth the request saw at admission. Traces are
//! *admitted* to a fixed-capacity **slow-query ring** — lock-free
//! slot-claiming on the write path — by a deterministic policy: 1-in-N
//! sampling keyed by the canonical query key ([`TraceConfig::sample_every`];
//! replay-stable, so two identical replays capture identical trace
//! sets), and/or a wall-clock latency threshold
//! ([`TraceConfig::slow_threshold_nanos`]; inherently timing-dependent).
//! Read the ring with [`ServingEngine::slow_queries`]; force a trace for
//! one request with [`ServingEngine::search_traced`]. Tracing never
//! changes what a search returns — the replay-equivalence tests below
//! run with tracing enabled to pin that.

use pws_click::{Impression, UserId};
use pws_core::{EngineConfig, EngineCore, SearchTurn, UserState};
use pws_entropy::QueryStats;
use pws_obs::trace::QueryTrace;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Configuration of the serving layer (the engine's own behavior lives
/// in [`EngineConfig`]).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of user shards (and query-statistics shards). More shards
    /// → less lock contention, slightly more memory. Clamped to ≥ 1.
    pub shards: usize,
    /// Rebuild the adaptive-β statistics snapshot every this many
    /// observes. `1` = after every observe (strongest freshness, used by
    /// the replay-equivalence tests); larger values amortize the rebuild
    /// under heavy write traffic at the cost of β lagging by at most
    /// that many clicks. Clamped to ≥ 1.
    pub stats_refresh_every: u64,
    /// Per-query tracing and the slow-query ring (disabled by default —
    /// a disabled trace costs one branch per search).
    pub trace: TraceConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { shards: 8, stats_refresh_every: 64, trace: TraceConfig::default() }
    }
}

/// Per-query tracing policy for the serving layer.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Master switch. When `false` no [`QueryTrace`] is ever allocated
    /// and [`ServingEngine::slow_queries`] is always empty.
    pub enabled: bool,
    /// Admit any trace whose end-to-end `search` latency is at least
    /// this many nanoseconds (`0` disables the latency criterion).
    /// Latency admission is honest about being timing-dependent: two
    /// replays of the same log may capture different trace sets.
    pub slow_threshold_nanos: u64,
    /// Admit 1-in-N queries by hash of the canonical query key
    /// (`0` disables sampling; `1` admits everything). Deterministic:
    /// the same query string is always admitted or always skipped, so
    /// replays capture identical trace sets.
    pub sample_every: u64,
    /// Slow-query ring capacity (oldest traces are overwritten).
    /// Clamped to ≥ 1.
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: false,
            slow_threshold_nanos: 0,
            sample_every: 0,
            ring_capacity: 64,
        }
    }
}

impl TraceConfig {
    /// Tracing on, every query admitted to the ring — the configuration
    /// the replay-equivalence tests run with.
    pub fn sample_all(ring_capacity: usize) -> Self {
        TraceConfig {
            enabled: true,
            slow_threshold_nanos: 0,
            sample_every: 1,
            ring_capacity,
        }
    }
}

/// Fixed-capacity overwrite-oldest ring of admitted query traces.
///
/// The write path is lock-free in its coordination: a single atomic
/// `fetch_add` claims a slot, and the per-slot mutexes only serialize
/// two writers that wrapped onto the *same* slot (or a writer with a
/// concurrent [`collect`](Self::collect)) — never writer against
/// writer on different slots. No allocation happens on push beyond the
/// trace the engine already built.
struct TraceRing {
    slots: Vec<Mutex<Option<QueryTrace>>>,
    cursor: AtomicU64,
}

impl TraceRing {
    fn new(capacity: usize) -> Self {
        TraceRing {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
        }
    }

    fn push(&self, trace: QueryTrace) {
        let claimed = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = (claimed % self.slots.len() as u64) as usize;
        *self.slots[slot].lock().expect("trace ring slot poisoned") = Some(trace);
    }

    /// Snapshot the ring's contents, oldest first.
    fn collect(&self) -> Vec<QueryTrace> {
        let cursor = self.cursor.load(Ordering::Relaxed);
        let n = self.slots.len() as u64;
        (0..n)
            .map(|k| ((cursor + k) % n) as usize)
            .filter_map(|i| self.slots[i].lock().expect("trace ring slot poisoned").clone())
            .collect()
    }
}

/// FNV-1a over a string; stable across runs and platforms (no
/// `RandomState`), shared by statistics sharding and trace sampling.
fn fnv1a(key: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in key.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// One user shard: the mutable per-user state for every user hashing
/// here, plus this shard's metric handles.
struct UserShard {
    users: Mutex<HashMap<UserId, UserState>>,
    /// Requests currently inside `search`/`observe` on this shard;
    /// sampled into the `queue` histogram at arrival, so its p99 is the
    /// queue depth an arriving request actually saw.
    inflight: AtomicU64,
    search: Arc<pws_obs::StageMetrics>,
    observe: Arc<pws_obs::StageMetrics>,
    queue: Arc<pws_obs::StageMetrics>,
}

/// Sharded query statistics with an epoch-snapshot read path.
///
/// Writers mutate hash-sharded `Mutex<HashMap>`s; readers only ever
/// clone an `Arc` out of an `RwLock` — they never touch a shard lock,
/// so `search` cannot block behind a stats write.
struct ShardedStats {
    shards: Vec<Mutex<HashMap<String, QueryStats>>>,
    snapshot: RwLock<Arc<HashMap<String, QueryStats>>>,
    /// Observes since the last snapshot rebuild.
    pending: AtomicU64,
    refresh_every: u64,
}

impl ShardedStats {
    fn new(shards: usize, refresh_every: u64) -> Self {
        ShardedStats {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            snapshot: RwLock::new(Arc::new(HashMap::new())),
            pending: AtomicU64::new(0),
            refresh_every: refresh_every.max(1),
        }
    }

    fn shard_of(&self, key: &str) -> usize {
        (fnv1a(key) % self.shards.len() as u64) as usize
    }

    /// The current epoch snapshot (an `Arc` clone; cheap).
    fn read(&self) -> Arc<HashMap<String, QueryStats>> {
        self.snapshot.read().expect("stats snapshot poisoned").clone()
    }

    /// Merge every shard into a fresh snapshot and publish it.
    fn refresh(&self) {
        let mut merged = HashMap::new();
        for shard in &self.shards {
            let guard = shard.lock().expect("stats shard poisoned");
            for (k, v) in guard.iter() {
                merged.insert(k.clone(), v.clone());
            }
        }
        *self.snapshot.write().expect("stats snapshot poisoned") = Arc::new(merged);
    }

    /// Account one observe; refresh the snapshot when the epoch is due.
    /// Must be called with **no** stats-shard lock held (refresh takes
    /// them all).
    fn tick(&self) {
        let pending = self.pending.fetch_add(1, Ordering::Relaxed) + 1;
        if pending >= self.refresh_every {
            self.pending.store(0, Ordering::Relaxed);
            self.refresh();
        }
    }
}

/// SplitMix64 finalizer — the same user-hash the eval harness uses for
/// seeding, reused here so shard assignment is well-mixed even for the
/// dense sequential `UserId`s the simulator generates.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The concurrent serving engine: shared [`EngineCore`] + user-sharded
/// mutable state. All request methods take `&self`; the type is
/// `Send + Sync` and intended to be put behind an `Arc` (or borrowed by
/// scoped threads) and called from as many threads as you like.
///
/// ```
/// use pws_click::UserId;
/// use pws_core::EngineConfig;
/// use pws_geo::{LocId, LocationOntology};
/// use pws_index::{IndexBuilder, StoredDoc};
/// use pws_serve::{ServeConfig, ServingEngine};
///
/// let mut b = IndexBuilder::new();
/// b.add(StoredDoc::new(0, "http://a.test", "Harbor dining",
///     "seafood restaurant by the harbor"));
/// let index = b.build();
/// let mut world = LocationOntology::new();
/// let r = world.add(LocId::WORLD, "westland", vec![]);
/// world.add(r, "alden", vec![]);
///
/// let engine = ServingEngine::new(&index, &world, EngineConfig::default(),
///     ServeConfig::default());
/// std::thread::scope(|s| {
///     for u in 0..4u32 {
///         let engine = &engine;
///         s.spawn(move || engine.search(UserId(u), "restaurant"));
///     }
/// });
/// assert_eq!(engine.user_count(), 4);
/// ```
pub struct ServingEngine<'a> {
    core: EngineCore<'a>,
    shards: Vec<UserShard>,
    stats: ShardedStats,
    trace_cfg: TraceConfig,
    /// `Some` iff tracing is enabled; the `None` fast path skips trace
    /// allocation entirely.
    ring: Option<TraceRing>,
}

impl<'a> ServingEngine<'a> {
    /// Build a serving engine over an already-built baseline index.
    pub fn new(
        base: &'a pws_index::SearchEngine,
        world: &'a pws_geo::LocationOntology,
        cfg: EngineConfig,
        serve_cfg: ServeConfig,
    ) -> Self {
        let n = serve_cfg.shards.max(1);
        let search_m = pws_obs::shard_stages("serve.shard", n, "search");
        let observe_m = pws_obs::shard_stages("serve.shard", n, "observe");
        let queue_m = pws_obs::shard_stages("serve.shard", n, "queue");
        let shards = search_m
            .into_iter()
            .zip(observe_m)
            .zip(queue_m)
            .map(|((search, observe), queue)| UserShard {
                users: Mutex::new(HashMap::new()),
                inflight: AtomicU64::new(0),
                search,
                observe,
                queue,
            })
            .collect();
        let ring =
            serve_cfg.trace.enabled.then(|| TraceRing::new(serve_cfg.trace.ring_capacity));
        ServingEngine {
            core: EngineCore::new(base, world, cfg),
            shards,
            stats: ShardedStats::new(n, serve_cfg.stats_refresh_every),
            trace_cfg: serve_cfg.trace,
            ring,
        }
    }

    /// Enable proximity-smoothed location scoring (see
    /// [`EngineCore::with_geo`]).
    pub fn with_geo(mut self, coords: &'a pws_geo::WorldCoords, scale_km: f64) -> Self {
        self.core = self.core.with_geo(coords, scale_km);
        self
    }

    /// The shared read side.
    pub fn core(&self) -> &EngineCore<'a> {
        &self.core
    }

    /// The active engine configuration.
    pub fn config(&self) -> &EngineConfig {
        self.core.config()
    }

    /// Number of user shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, user: UserId) -> usize {
        (splitmix64(user.0 as u64) % self.shards.len() as u64) as usize
    }

    /// Execute one personalized search for `user`.
    ///
    /// Locks only the user's shard; β statistics come from the epoch
    /// snapshot, so no cross-shard or global lock is ever taken. When
    /// tracing is enabled the turn's trace is offered to the slow-query
    /// ring under the configured admission policy.
    pub fn search(&self, user: UserId, query_text: &str) -> SearchTurn {
        let (turn, trace) = self.search_inner(user, query_text, false);
        if let (Some(trace), Some(ring)) = (trace, &self.ring) {
            if self.admit(&trace) {
                ring.push(trace);
            }
        }
        turn
    }

    /// [`search`](Self::search) with a forced trace, regardless of the
    /// configured admission policy — the single-query diagnostic path
    /// (`pws-trace`). The returned turn is byte-identical to what
    /// `search` would produce; the trace bypasses the slow-query ring.
    pub fn search_traced(&self, user: UserId, query_text: &str) -> (SearchTurn, QueryTrace) {
        let (turn, trace) = self.search_inner(user, query_text, true);
        (turn, trace.expect("forced trace is always filled"))
    }

    /// The one search implementation: traces iff `force` or tracing is
    /// enabled, and stamps the trace with the serving-layer context
    /// (shard, queue depth at admission, end-to-end nanoseconds).
    fn search_inner(
        &self,
        user: UserId,
        query_text: &str,
        force: bool,
    ) -> (SearchTurn, Option<QueryTrace>) {
        let shard_idx = self.shard_of(user);
        let shard = &self.shards[shard_idx];
        let depth = shard.inflight.fetch_add(1, Ordering::Relaxed);
        shard.queue.record_value(depth);
        let mut trace = if force || self.ring.is_some() {
            let mut t = QueryTrace::new(user.0, query_text);
            t.shard = Some(shard_idx);
            t.queue_depth = Some(depth);
            Some(t)
        } else {
            None
        };
        let span = shard.search.span();
        let snap = self.stats.read();
        let stats = snap.get(&EngineCore::query_key(query_text));
        let turn = {
            let mut users = shard.users.lock().expect("user shard poisoned");
            let state = users.entry(user).or_default();
            self.core.search_user_traced(user, query_text, state, stats, trace.as_mut())
        };
        let total_nanos = span.finish();
        shard.inflight.fetch_sub(1, Ordering::Relaxed);
        if let Some(t) = trace.as_mut() {
            t.total_nanos = total_nanos;
        }
        (turn, trace)
    }

    /// The deterministic-by-sampling / timing-by-threshold admission
    /// policy (see [`TraceConfig`]).
    fn admit(&self, trace: &QueryTrace) -> bool {
        let cfg = &self.trace_cfg;
        let sampled = cfg.sample_every > 0
            && fnv1a(&EngineCore::query_key(&trace.query_text)).is_multiple_of(cfg.sample_every);
        let slow =
            cfg.slow_threshold_nanos > 0 && trace.total_nanos >= cfg.slow_threshold_nanos;
        sampled || slow
    }

    /// The slow-query ring's current contents, oldest first. Empty when
    /// tracing is disabled.
    pub fn slow_queries(&self) -> Vec<QueryTrace> {
        self.ring.as_ref().map(TraceRing::collect).unwrap_or_default()
    }

    /// Each shard's current in-flight request count (index-aligned with
    /// shard ids). All zeros whenever no request is mid-flight.
    pub fn queue_depths(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.inflight.load(Ordering::Relaxed)).collect()
    }

    /// Fold the user's clicks on a turn back into the engine.
    ///
    /// Lock order: user shard, then query-statistics shard — every
    /// writer acquires in that order, so the pair can never deadlock.
    /// The snapshot refresh runs only after both are released.
    pub fn observe(&self, turn: &SearchTurn, impression: &Impression) {
        let shard = &self.shards[self.shard_of(turn.user)];
        let depth = shard.inflight.fetch_add(1, Ordering::Relaxed);
        shard.queue.record_value(depth);
        {
            let _span = shard.observe.span();
            let key = EngineCore::query_key(&turn.query_text);
            let stats_idx = self.stats.shard_of(&key);
            let mut users = shard.users.lock().expect("user shard poisoned");
            let state = users.entry(turn.user).or_default();
            let mut stats_shard =
                self.stats.shards[stats_idx].lock().expect("stats shard poisoned");
            let stats = stats_shard.entry(key).or_default();
            self.core.observe_user(turn, impression, state, stats);
        }
        shard.inflight.fetch_sub(1, Ordering::Relaxed);
        self.stats.tick();
    }

    /// Execute a batch of searches, one thread per occupied shard.
    ///
    /// Results are returned in request order. Requests for users on the
    /// same shard run sequentially in request order (they'd serialize on
    /// the shard lock anyway); requests on different shards run in
    /// parallel. Since `search` does not learn (only `observe` does),
    /// this is observationally identical to calling [`Self::search`] in
    /// a loop.
    pub fn batch_search(&self, requests: &[(UserId, String)]) -> Vec<SearchTurn> {
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, (user, _)) in requests.iter().enumerate() {
            by_shard[self.shard_of(*user)].push(i);
        }
        let results: Mutex<Vec<(usize, SearchTurn)>> =
            Mutex::new(Vec::with_capacity(requests.len()));
        std::thread::scope(|scope| {
            for indices in by_shard.into_iter().filter(|v| !v.is_empty()) {
                let results = &results;
                scope.spawn(move || {
                    let mut local = Vec::with_capacity(indices.len());
                    for i in indices {
                        let (user, query) = &requests[i];
                        local.push((i, self.search(*user, query)));
                    }
                    results.lock().expect("batch sink poisoned").extend(local);
                });
            }
        });
        let mut results = results.into_inner().expect("batch sink poisoned");
        results.sort_by_key(|(i, _)| *i);
        results.into_iter().map(|(_, t)| t).collect()
    }

    /// Force an immediate rebuild of the β-statistics snapshot (tests
    /// and batch pipelines that want freshness at a phase boundary).
    pub fn refresh_stats(&self) {
        self.stats.refresh();
    }

    /// Clone out a user's state (if the user has been seen).
    pub fn user_state(&self, user: UserId) -> Option<UserState> {
        let shard = &self.shards[self.shard_of(user)];
        shard.users.lock().expect("user shard poisoned").get(&user).cloned()
    }

    /// Accumulated statistics for a query string, as of the last
    /// snapshot refresh.
    pub fn query_stats(&self, query_text: &str) -> Option<QueryStats> {
        self.stats.read().get(&EngineCore::query_key(query_text)).cloned()
    }

    /// Number of distinct users with state, across all shards.
    pub fn user_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.users.lock().expect("user shard poisoned").len())
            .sum()
    }

    /// Reset one user's learned state.
    pub fn forget_user(&self, user: UserId) {
        let shard = &self.shards[self.shard_of(user)];
        shard.users.lock().expect("user shard poisoned").remove(&user);
    }

    /// Export one user's learned state as JSON (profile portability).
    pub fn export_user(&self, user: UserId) -> Option<String> {
        self.user_state(user)
            .map(|s| serde_json::to_string(&s).expect("UserState serialization is infallible"))
    }

    /// Import a previously exported user state, replacing any existing
    /// state for that user id.
    pub fn import_user(&self, user: UserId, json: &str) -> Result<(), serde_json::Error> {
        let state: UserState = serde_json::from_str(json)?;
        let shard = &self.shards[self.shard_of(user)];
        shard.users.lock().expect("user shard poisoned").insert(user, state);
        Ok(())
    }
}

// The whole point of the crate; if a field ever grows interior
// mutability that isn't thread-safe, this fails to compile.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ServingEngine<'static>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use pws_click::{Click, ShownResult};
    use pws_core::{BlendStrategy, PersonalizedSearchEngine};
    use pws_corpus::query::QueryId;
    use pws_geo::{LocId, LocationOntology};
    use pws_index::{IndexBuilder, SearchEngine, StoredDoc};

    fn world() -> LocationOntology {
        let mut o = LocationOntology::new();
        let r = o.add(LocId::WORLD, "westland", vec![]);
        let c = o.add(r, "ardonia", vec![]);
        let s = o.add(c, "vale", vec![]);
        o.add(s, "alden", vec![]);
        o.add(s, "lakemoor", vec![]);
        o
    }

    fn index() -> SearchEngine {
        let mut b = IndexBuilder::new();
        b.add(StoredDoc::new(0, "http://a.test/0", "Seafood guide",
            "seafood restaurant guide with lobster in alden harbor area"));
        b.add(StoredDoc::new(1, "http://b.test/1", "Seafood lakemoor",
            "seafood restaurant in lakemoor with fresh oysters"));
        b.add(StoredDoc::new(2, "http://c.test/2", "Sushi place",
            "sushi restaurant downtown with omakase menu in alden"));
        b.add(StoredDoc::new(3, "http://d.test/3", "Steak house",
            "steak restaurant grill with ribeye specials"));
        b.add(StoredDoc::new(4, "http://e.test/4", "Pizza lakemoor",
            "pizza restaurant in lakemoor stone oven margherita"));
        b.add(StoredDoc::new(5, "http://f.test/5", "Noodle bar",
            "noodle restaurant with ramen and broth in alden"));
        b.build()
    }

    fn impression_from(turn: &SearchTurn, clicked_docs: &[u32]) -> Impression {
        Impression {
            user: turn.user,
            query: QueryId(0),
            query_text: turn.query_text.clone(),
            results: turn
                .hits
                .iter()
                .map(|h| ShownResult {
                    doc: h.doc,
                    rank: h.rank,
                    url: h.url.clone(),
                    title: h.title.clone(),
                    snippet: h.snippet.clone(),
                })
                .collect(),
            clicks: turn
                .hits
                .iter()
                .filter(|h| clicked_docs.contains(&h.doc))
                .map(|h| Click { doc: h.doc, rank: h.rank, dwell: 600 })
                .collect(),
        }
    }

    /// The deterministic replay click rule: click the highest doc id on
    /// the page (arbitrary but stable, and it exercises skip-above pair
    /// mining because the clicked doc is rarely rank 1).
    fn click_rule(turn: &SearchTurn) -> Vec<u32> {
        turn.hits.iter().map(|h| h.doc).max().into_iter().collect()
    }

    /// A session log: per user, an ordered list of query strings.
    fn session_log(queries: &dyn Fn(u32) -> Vec<String>, users: u32) -> Vec<(UserId, Vec<String>)> {
        (0..users).map(|u| (UserId(u), queries(u))).collect()
    }

    /// Replay through the serial engine, turns interleaved round-robin
    /// across users (the order the middleware would see); returns each
    /// user's Debug-formatted turn transcript.
    fn replay_serial(
        log: &[(UserId, Vec<String>)],
        cfg: EngineConfig,
    ) -> HashMap<UserId, Vec<String>> {
        let idx = index();
        let w = world();
        let mut e = PersonalizedSearchEngine::new(&idx, &w, cfg);
        let mut out: HashMap<UserId, Vec<String>> = HashMap::new();
        let rounds = log.iter().map(|(_, qs)| qs.len()).max().unwrap_or(0);
        for round in 0..rounds {
            for (user, qs) in log {
                let Some(q) = qs.get(round) else { continue };
                let turn = e.search(*user, q);
                let imp = impression_from(&turn, &click_rule(&turn));
                e.observe(&turn, &imp);
                out.entry(*user).or_default().push(format!("{turn:?}"));
            }
        }
        out
    }

    /// Replay through the sharded engine with `threads` worker threads,
    /// each owning a disjoint set of users (a user's turns must stay
    /// ordered; cross-user order is left to the scheduler on purpose).
    fn replay_sharded(
        log: &[(UserId, Vec<String>)],
        cfg: EngineConfig,
        shards: usize,
        threads: usize,
    ) -> HashMap<UserId, Vec<String>> {
        replay_sharded_traced(log, cfg, shards, threads, TraceConfig::default())
    }

    fn replay_sharded_traced(
        log: &[(UserId, Vec<String>)],
        cfg: EngineConfig,
        shards: usize,
        threads: usize,
        trace: TraceConfig,
    ) -> HashMap<UserId, Vec<String>> {
        let idx = index();
        let w = world();
        let e = ServingEngine::new(
            &idx,
            &w,
            cfg,
            ServeConfig { shards, stats_refresh_every: 1, trace },
        );
        type Transcript = Vec<(UserId, Vec<String>)>;
        let transcripts: Vec<Mutex<Transcript>> =
            (0..threads).map(|_| Mutex::new(Vec::new())).collect();
        std::thread::scope(|scope| {
            for (t, sink) in transcripts.iter().enumerate() {
                let e = &e;
                let log = &log;
                scope.spawn(move || {
                    for (i, (user, qs)) in log.iter().enumerate() {
                        if i % threads != t {
                            continue;
                        }
                        let mut turns = Vec::with_capacity(qs.len());
                        for q in qs {
                            let turn = e.search(*user, q);
                            let imp = impression_from(&turn, &click_rule(&turn));
                            e.observe(&turn, &imp);
                            turns.push(format!("{turn:?}"));
                        }
                        sink.lock().unwrap().push((*user, turns));
                    }
                });
            }
        });
        let mut out = HashMap::new();
        for sink in transcripts {
            for (user, turns) in sink.into_inner().unwrap() {
                out.insert(user, turns);
            }
        }
        out
    }

    fn assert_equivalent(
        serial: &HashMap<UserId, Vec<String>>,
        sharded: &HashMap<UserId, Vec<String>>,
        label: &str,
    ) {
        assert_eq!(serial.len(), sharded.len(), "{label}: user sets differ");
        for (user, s_turns) in serial {
            let p_turns = sharded.get(user).unwrap_or_else(|| panic!("{label}: {user:?} missing"));
            assert_eq!(
                s_turns, p_turns,
                "{label}: {user:?} transcripts diverge (byte-level)"
            );
        }
    }

    /// Sharded replay is byte-identical to serial replay across every
    /// shard/thread combination, under the *adaptive* β blend. Each user
    /// issues user-disjoint query strings, so the query-statistics
    /// coupling between users is inert and per-user determinism is the
    /// whole story (with `stats_refresh_every: 1` each user's own stats
    /// are always fresh for its next turn).
    #[test]
    fn sharded_replay_matches_serial_adaptive_disjoint_queries() {
        let queries = |u: u32| -> Vec<String> {
            vec![
                format!("seafood restaurant u{u}"),
                format!("restaurant u{u}"),
                format!("seafood restaurant u{u}"),
                format!("sushi restaurant u{u}"),
                format!("seafood restaurant u{u}"),
            ]
        };
        let log = session_log(&queries, 6);
        let serial = replay_serial(&log, EngineConfig::default());
        for shards in [1usize, 3, 8] {
            for threads in [1usize, 4] {
                let sharded = replay_sharded(&log, EngineConfig::default(), shards, threads);
                assert_equivalent(&serial, &sharded, &format!("{shards} shards / {threads} threads"));
            }
        }
    }

    /// With a fixed β the statistics never influence ranking, so even
    /// *shared* query strings replay byte-identically at any concurrency.
    #[test]
    fn sharded_replay_matches_serial_fixed_beta_shared_queries() {
        let queries = |_u: u32| -> Vec<String> {
            ["seafood restaurant", "restaurant", "seafood restaurant", "pizza restaurant"]
                .iter()
                .map(|s| s.to_string())
                .collect()
        };
        let log = session_log(&queries, 5);
        let cfg = EngineConfig {
            blend: BlendStrategy::Fixed(0.4),
            ..EngineConfig::default()
        };
        let serial = replay_serial(&log, cfg.clone());
        for shards in [1usize, 4] {
            for threads in [1usize, 4] {
                let sharded = replay_sharded(&log, cfg.clone(), shards, threads);
                assert_equivalent(&serial, &sharded, &format!("{shards} shards / {threads} threads"));
            }
        }
    }

    #[test]
    fn batch_search_matches_sequential_and_preserves_order() {
        let idx = index();
        let w = world();
        let e = ServingEngine::new(&idx, &w, EngineConfig::default(), ServeConfig::default());
        let requests: Vec<(UserId, String)> = (0..12u32)
            .map(|i| (UserId(i % 5), format!("restaurant u{}", i % 5)))
            .collect();
        let batch = e.batch_search(&requests);
        assert_eq!(batch.len(), requests.len());
        for ((user, q), turn) in requests.iter().zip(&batch) {
            assert_eq!(turn.user, *user);
            assert_eq!(&turn.query_text, q);
            let again = e.search(*user, q);
            assert_eq!(format!("{turn:?}"), format!("{again:?}"));
        }
    }

    #[test]
    fn adaptive_beta_flows_through_snapshot() {
        let idx = index();
        let w = world();
        let e = ServingEngine::new(
            &idx,
            &w,
            EngineConfig::default(),
            ServeConfig { shards: 4, stats_refresh_every: 1, ..ServeConfig::default() },
        );
        assert_eq!(e.search(UserId(0), "restaurant").beta, 0.5, "no stats → neutral");
        for u in 0..6u32 {
            let turn = e.search(UserId(u), "restaurant");
            let imp = impression_from(&turn, &click_rule(&turn));
            e.observe(&turn, &imp);
        }
        assert!(e.query_stats("restaurant").is_some());
        let beta = e.search(UserId(9), "restaurant").beta;
        assert!(beta > 0.0 && beta < 1.0, "β should now be stats-driven, got {beta}");
    }

    #[test]
    fn stats_refresh_epoch_batches_snapshot_rebuilds() {
        let idx = index();
        let w = world();
        let e = ServingEngine::new(
            &idx,
            &w,
            EngineConfig::default(),
            ServeConfig { shards: 2, stats_refresh_every: 1_000_000, ..ServeConfig::default() },
        );
        let turn = e.search(UserId(0), "restaurant");
        let imp = impression_from(&turn, &click_rule(&turn));
        e.observe(&turn, &imp);
        // The write landed in a shard but the epoch hasn't rolled, so the
        // snapshot still reads empty…
        assert!(e.query_stats("restaurant").is_none());
        // …until explicitly refreshed.
        e.refresh_stats();
        assert!(e.query_stats("restaurant").is_some());
    }

    #[test]
    fn user_lifecycle_forget_export_import() {
        let idx = index();
        let w = world();
        let e = ServingEngine::new(&idx, &w, EngineConfig::default(), ServeConfig::default());
        let user = UserId(42);
        for _ in 0..3 {
            let turn = e.search(user, "seafood restaurant");
            let imp = impression_from(&turn, &click_rule(&turn));
            e.observe(&turn, &imp);
        }
        let json = e.export_user(user).expect("state exists");
        let weights = e.user_state(user).unwrap().model.weights.clone();
        e.forget_user(user);
        assert!(e.user_state(user).is_none());
        e.import_user(user, &json).expect("round trip");
        assert_eq!(e.user_state(user).unwrap().model.weights, weights);
        assert!(e.import_user(user, "{not json").is_err());
    }

    #[test]
    fn per_shard_metrics_are_recorded() {
        // reset() zeroes the registry every test in this binary shares;
        // the lock serializes us against other global-count tests.
        let _guard = pws_obs::test_lock();
        let idx = index();
        let w = world();
        pws_obs::reset();
        let e = ServingEngine::new(
            &idx,
            &w,
            EngineConfig::default(),
            ServeConfig { shards: 3, stats_refresh_every: 1, ..ServeConfig::default() },
        );
        for u in 0..24u32 {
            let turn = e.search(UserId(u), "restaurant");
            let imp = impression_from(&turn, &click_rule(&turn));
            e.observe(&turn, &imp);
        }
        let snap = pws_obs::snapshot();
        let count = |name: &str| {
            snap.stages.iter().find(|s| s.name == name).map(|s| s.count).unwrap_or(0)
        };
        let searches: u64 = (0..3).map(|i| count(&format!("serve.shard{i}.search"))).sum();
        let observes: u64 = (0..3).map(|i| count(&format!("serve.shard{i}.observe"))).sum();
        let queue: u64 = (0..3).map(|i| count(&format!("serve.shard{i}.queue"))).sum();
        assert_eq!(searches, 24);
        assert_eq!(observes, 24);
        assert_eq!(queue, 48, "queue depth sampled once per search and per observe");
        // 24 users over 3 well-mixed shards: every shard should have seen
        // at least one search.
        for i in 0..3 {
            assert!(count(&format!("serve.shard{i}.search")) > 0, "shard {i} idle");
        }
    }

    /// The acceptance-criteria test: replay equivalence holds with
    /// tracing **enabled** (every query traced and admitted), across
    /// shard and thread counts — observability does not perturb ranking
    /// or determinism.
    #[test]
    fn sharded_replay_with_tracing_enabled_matches_serial() {
        let queries = |u: u32| -> Vec<String> {
            vec![
                format!("seafood restaurant u{u}"),
                format!("restaurant u{u}"),
                format!("seafood restaurant u{u}"),
                format!("sushi restaurant u{u}"),
            ]
        };
        let log = session_log(&queries, 6);
        let serial = replay_serial(&log, EngineConfig::default());
        for shards in [1usize, 3, 8] {
            for threads in [1usize, 4] {
                let traced = replay_sharded_traced(
                    &log,
                    EngineConfig::default(),
                    shards,
                    threads,
                    TraceConfig::sample_all(32),
                );
                assert_equivalent(
                    &serial,
                    &traced,
                    &format!("tracing on, {shards} shards / {threads} threads"),
                );
            }
        }
    }

    /// Sampling admission is keyed by the query string, so two identical
    /// replays capture identical trace sets — the deterministic half of
    /// the slow-query-log contract.
    #[test]
    fn slow_query_ring_sampling_is_replay_deterministic() {
        let run = || -> Vec<String> {
            let idx = index();
            let w = world();
            let e = ServingEngine::new(
                &idx,
                &w,
                EngineConfig::default(),
                ServeConfig {
                    shards: 4,
                    stats_refresh_every: 1,
                    trace: TraceConfig {
                        enabled: true,
                        slow_threshold_nanos: 0,
                        sample_every: 2,
                        ring_capacity: 64,
                    },
                },
            );
            for u in 0..8u32 {
                for q in ["seafood restaurant", "restaurant", "sushi restaurant",
                          "pizza restaurant", "noodle restaurant"] {
                    e.search(UserId(u), q);
                }
            }
            e.slow_queries().iter().map(|t| t.query_text.clone()).collect()
        };
        let first = run();
        let second = run();
        assert_eq!(first, second, "same replay must admit the same traces");
        assert!(!first.is_empty(), "1-in-2 sampling over 5 query strings admits some");
        // Admission is per query string: a string is either always in or
        // always out.
        let admitted: std::collections::HashSet<&String> = first.iter().collect();
        assert!(admitted.len() < 5, "1-in-2 sampling should reject some strings");
    }

    #[test]
    fn slow_query_ring_traces_carry_serving_context() {
        let idx = index();
        let w = world();
        let e = ServingEngine::new(
            &idx,
            &w,
            EngineConfig::default(),
            ServeConfig {
                shards: 4,
                stats_refresh_every: 1,
                trace: TraceConfig::sample_all(8),
            },
        );
        for u in 0..6u32 {
            e.search(UserId(u), "seafood restaurant");
        }
        let traces = e.slow_queries();
        assert_eq!(traces.len(), 6);
        for t in &traces {
            let shard = t.shard.expect("serving layer stamps the shard");
            assert!(shard < 4);
            assert!(t.queue_depth.is_some(), "queue depth at admission");
            assert!(t.total_nanos > 0, "end-to-end latency stamped");
            assert!(!t.results.is_empty(), "full decision record");
            assert!(!t.stages.is_empty());
        }
        // Ring capacity bounds the log, overwriting oldest.
        for u in 0..20u32 {
            e.search(UserId(u), "restaurant");
        }
        let traces = e.slow_queries();
        assert_eq!(traces.len(), 8, "capacity-bounded");
    }

    #[test]
    fn tracing_disabled_yields_no_traces() {
        let idx = index();
        let w = world();
        let e = ServingEngine::new(&idx, &w, EngineConfig::default(), ServeConfig::default());
        e.search(UserId(0), "restaurant");
        assert!(e.slow_queries().is_empty());
        // But a forced trace still works, without touching the ring.
        let (turn, trace) = e.search_traced(UserId(0), "restaurant");
        assert_eq!(trace.query_text, "restaurant");
        assert_eq!(trace.user, 0);
        assert!(!trace.results.is_empty());
        assert!(e.slow_queries().is_empty());
        // And it matches the untraced search byte-for-byte.
        let again = e.search(UserId(0), "restaurant");
        assert_eq!(format!("{turn:?}"), format!("{again:?}"));
    }

    #[test]
    fn queue_depth_returns_to_zero_after_batch_search() {
        let idx = index();
        let w = world();
        let e = ServingEngine::new(&idx, &w, EngineConfig::default(), ServeConfig::default());
        let requests: Vec<(UserId, String)> = (0..32u32)
            .map(|i| (UserId(i), format!("restaurant u{}", i % 4)))
            .collect();
        let turns = e.batch_search(&requests);
        assert_eq!(turns.len(), 32);
        assert!(
            e.queue_depths().iter().all(|&d| d == 0),
            "all shards drained: {:?}",
            e.queue_depths()
        );
    }

    #[test]
    fn queue_depth_gauge_never_underflows_under_concurrency() {
        // The inflight counter is incremented at admission and
        // decremented on exit; an unbalanced pair would underflow the
        // u64 and record astronomical depths. Hammer search+observe
        // concurrently, then check both the live gauge (exactly zero)
        // and the recorded samples (all plausibly small).
        let _guard = pws_obs::test_lock();
        let idx = index();
        let w = world();
        pws_obs::reset();
        let e = ServingEngine::new(
            &idx,
            &w,
            EngineConfig::default(),
            ServeConfig { shards: 2, stats_refresh_every: 1, ..ServeConfig::default() },
        );
        std::thread::scope(|scope| {
            for t in 0..8u32 {
                let e = &e;
                scope.spawn(move || {
                    for i in 0..20u32 {
                        let user = UserId(t * 100 + i % 5);
                        let turn = e.search(user, "seafood restaurant");
                        let imp = impression_from(&turn, &click_rule(&turn));
                        e.observe(&turn, &imp);
                    }
                });
            }
        });
        assert!(
            e.queue_depths().iter().all(|&d| d == 0),
            "gauge must return to zero: {:?}",
            e.queue_depths()
        );
        // Every sampled depth must be bounded by the worker count — an
        // underflow would have recorded ~2^64 into the histogram.
        let snap = pws_obs::snapshot();
        for s in snap.stages.iter().filter(|s| s.name.contains(".queue")) {
            assert!(
                s.p99_nanos <= 16,
                "{}: sampled queue depth p99 {} exceeds any plausible depth",
                s.name,
                s.p99_nanos
            );
        }
    }
}
