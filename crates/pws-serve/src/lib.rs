//! # pws-serve — user-sharded concurrent serving
//!
//! The serial [`pws_core::PersonalizedSearchEngine`] takes `&mut self`
//! over one global user map, so a process serves exactly one query at a
//! time. This crate is the concurrent frontend over the same
//! [`EngineCore`]: an engine that is `&self + Send + Sync`, sharding the
//! *only* mutable state — per-user profiles and per-query statistics —
//! so that requests for different users proceed in parallel and never
//! contend on a global lock.
//!
//! ## Sharding and locking
//!
//! ```text
//!                    ┌───────────────────────────────┐
//!                    │  EngineCore (shared, &self)   │
//!                    │  index · ontology · matcher   │
//!                    │  config · trainer · metrics   │
//!                    └──────────────┬────────────────┘
//!          search/observe(user, q)  │ hash(user) → shard
//!              ┌───────────────┬────┴──────────┬───────────────┐
//!              ▼               ▼               ▼               ▼
//!        ┌───────────┐   ┌───────────┐                  ┌───────────┐
//!        │ shard 0   │   │ shard 1   │       …          │ shard N-1 │
//!        │ Mutex<    │   │ Mutex<    │                  │ Mutex<    │
//!        │  user map>│   │  user map>│                  │  user map>│
//!        └───────────┘   └───────────┘                  └───────────┘
//!
//!        query statistics (adaptive β):
//!          writes → hash(query) → Mutex shard      (observe path)
//!          reads  → RwLock<Arc<snapshot>>, epoch-  (search path —
//!                   rebuilt every `stats_refresh_every` observes;
//!                   an Arc clone, never a shard lock)
//! ```
//!
//! **Read path** (`search`): lock exactly one user shard (the issuing
//! user's), read β statistics from the lock-free epoch snapshot, run
//! [`EngineCore::search_user`]. Queries for users on different shards
//! share no locks at all.
//!
//! **Write path** (`observe`): lock the user's shard and the query's
//! statistics shard (always in that order — the deadlock-freedom
//! invariant), fold the clicks in, then bump the epoch counter and — at
//! most every [`ServeConfig::stats_refresh_every`] observes — rebuild
//! the statistics snapshot.
//!
//! ## Determinism
//!
//! Both frontends run the same [`EngineCore::search_user`] /
//! [`EngineCore::observe_user`], so a session log replayed per-user in
//! order produces byte-identical [`SearchTurn`]s to the serial engine —
//! for any shard count and any thread count — whenever the adaptive-β
//! coupling between users is inert: fixed/mode β, or per-user-disjoint
//! query strings with `stats_refresh_every = 1`. The equivalence tests
//! at the bottom of this file pin exactly that.
//!
//! ## Metrics
//!
//! Each shard registers `serve.shard{i}.search`, `serve.shard{i}.observe`
//! (latency histograms) and `serve.shard{i}.queue` (in-flight request
//! depth sampled at arrival) in the global [`pws_obs`] registry, next to
//! the engine's own `engine.*` stages.
//!
//! ## Tracing
//!
//! With [`TraceConfig::enabled`], every `search` fills a per-query
//! [`QueryTrace`] (stage timings, concepts, β provenance, per-candidate
//! rank movement — see [`pws_obs::trace`]) and stamps it with the shard
//! index and the queue depth the request saw at admission. Traces are
//! *admitted* to a fixed-capacity **slow-query ring** — lock-free
//! slot-claiming on the write path — by a deterministic policy: 1-in-N
//! sampling keyed by the canonical query key ([`TraceConfig::sample_every`];
//! replay-stable, so two identical replays capture identical trace
//! sets), and/or a wall-clock latency threshold
//! ([`TraceConfig::slow_threshold_nanos`]; inherently timing-dependent).
//! Read the ring with [`ServingEngine::slow_queries`]; force a trace for
//! one request with [`ServingEngine::search_traced`]. Tracing never
//! changes what a search returns — the replay-equivalence tests below
//! run with tracing enabled to pin that.
//!
//! ## Fault tolerance
//!
//! Personalization is best-effort; **base retrieval is the contract**.
//! The paper's framework always has a safe floor — when personalization
//! cannot help, ranking degrades to the non-personalized engine — and
//! the serving layer enforces the same property at runtime:
//!
//! * **Deadline budgets** — [`ServingEngine::search_with`] takes a
//!   [`SearchBudget`]; [`EngineCore`] checks it at stage checkpoints
//!   (after retrieval / concepts / features) and aborts
//!   *personalization*, never the query, when the deadline passes.
//! * **Graceful degradation** — any personalization failure (deadline,
//!   panic, poisoned state lock) returns the pool-normalized base
//!   ranking, tagged with a [`DegradeReason`] that flows into the
//!   query trace and the `serve.degraded.{reason}` counter family.
//! * **Panic isolation** — per-query engine work runs under
//!   `catch_unwind`; the shard's user-map guard is held *outside* the
//!   unwind boundary, so a crashing query can never poison (wedge) its
//!   shard. A panic on the write path rolls the user's state back to
//!   the last good snapshot (`serve.state_restored`).
//! * **Lock recovery** — every lock acquisition recovers from
//!   poisoning instead of panicking: take `into_inner`-style ownership
//!   of the last good value, clear the poison flag, count
//!   `serve.lock_recovered`, and evict the single affected user rather
//!   than losing the shard.
//! * **Admission control** — when a shard's queue depth exceeds the
//!   configured high-water mark ([`ServeConfig::max_queue_depth`] or
//!   [`SearchBudget::max_queue_depth`]), [`ServingEngine::search_with`]
//!   sheds the request with [`Overloaded`] and a retry-after hint
//!   instead of letting the queue grow without bound.
//!
//! Faults themselves are injectable behind the [`FaultPlan`] trait
//! (per-stage panics, artificial latency, forced lock poisoning) —
//! the deterministic injector and the chaos test-suite proving the
//! properties above live in the `pws-chaos` crate.

use pws_click::{Impression, UserId};
use pws_core::{EngineConfig, EngineCore, RetrievalCache, SearchTurn, StageCheckpoint, UserState};
use pws_index::SearchHit;
use pws_entropy::QueryStats;
use pws_obs::trace::QueryTrace;
use pws_store::{UserRecord, UserStore};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::time::{Duration, Instant};

/// Configuration of the serving layer (the engine's own behavior lives
/// in [`EngineConfig`]).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of user shards (and query-statistics shards). More shards
    /// → less lock contention, slightly more memory. Clamped to ≥ 1.
    pub shards: usize,
    /// Rebuild the adaptive-β statistics snapshot every this many
    /// observes. `1` = after every observe (strongest freshness, used by
    /// the replay-equivalence tests); larger values amortize the rebuild
    /// under heavy write traffic at the cost of β lagging by at most
    /// that many clicks. Clamped to ≥ 1.
    pub stats_refresh_every: u64,
    /// Per-query tracing and the slow-query ring (disabled by default —
    /// a disabled trace costs one branch per search).
    pub trace: TraceConfig,
    /// Admission-control high-water mark: [`ServingEngine::search_with`]
    /// sheds a request with [`Overloaded`] when its shard already has
    /// this many requests in flight. `None` (the default) never sheds.
    /// A per-request [`SearchBudget::max_queue_depth`] tightens (never
    /// loosens) this bound. The trusted internal [`ServingEngine::search`]
    /// path bypasses admission control entirely.
    pub max_queue_depth: Option<u64>,
    /// Capacity (entries) of the shared base-retrieval cache
    /// ([`ShardedRetrievalCache`]). Base retrieval is user-independent,
    /// so the cache is shared across every user and shard; `0` disables
    /// caching entirely (the engine core goes straight to the index).
    /// Caching never changes what a turn contains — the
    /// replay-equivalence tests run with it on to pin that.
    pub retrieval_cache_capacity: usize,
    /// Tiered user-state persistence (`pws-store`). `None` (the
    /// default) keeps every user resident in memory forever — the
    /// pre-store behavior. `Some` bounds each shard's resident set and
    /// spills evicted users to disk; an evicted-then-faulted-in user
    /// ranks byte-identically to an always-resident one.
    pub store: Option<StoreTierConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 8,
            stats_refresh_every: 64,
            trace: TraceConfig::default(),
            max_queue_depth: None,
            retrieval_cache_capacity: 1024,
            store: None,
        }
    }
}

/// Configuration of the tiered user-state store (see
/// [`ServeConfig::store`]).
#[derive(Debug, Clone)]
pub struct StoreTierConfig {
    /// Directory holding one `pws-store` record file per user (created
    /// if missing). A fresh engine over an existing directory faults
    /// previously stored users back in on first access — restart-safe.
    pub dir: PathBuf,
    /// Maximum resident users per shard. When a request would exceed
    /// it, the least-recently-used *other* user on the shard is evicted
    /// (written back first when dirty). Clamped to ≥ 1.
    pub capacity_per_shard: usize,
    /// `true` spawns a background writeback daemon: `observe` marks the
    /// user dirty and enqueues; the daemon encodes and writes off the
    /// request path, so observes never block on persistence. `false`
    /// persists only at eviction time and on [`ServingEngine::flush_store`]
    /// — fully synchronous and deterministic (the counter-reconciliation
    /// tests use this mode).
    pub writeback: bool,
}

impl StoreTierConfig {
    /// A store tier rooted at `dir` with the defaults: 1024 resident
    /// users per shard, background writeback on.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        StoreTierConfig { dir: dir.into(), capacity_per_shard: 1024, writeback: true }
    }
}

/// Per-query execution budget for [`ServingEngine::search_with`].
///
/// The default budget is unlimited — identical to plain
/// [`ServingEngine::search`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchBudget {
    /// Absolute deadline. Checked at each [`StageCheckpoint`] inside the
    /// engine: once passed, personalization is abandoned — **not** the
    /// query — and the turn degrades to the base ranking.
    pub deadline: Option<Instant>,
    /// Per-request admission bound: shed with [`Overloaded`] when the
    /// user's shard already has this many requests in flight. Combines
    /// with [`ServeConfig::max_queue_depth`] by taking the tighter bound.
    pub max_queue_depth: Option<u64>,
}

impl SearchBudget {
    /// The unlimited budget (never degrades, never sheds).
    pub fn none() -> Self {
        SearchBudget::default()
    }

    /// A budget whose deadline is `timeout` from now.
    pub fn with_deadline_in(timeout: Duration) -> Self {
        SearchBudget { deadline: Some(Instant::now() + timeout), ..SearchBudget::default() }
    }

    /// A budget that is already past its deadline — personalization is
    /// deterministically aborted at the first checkpoint. Useful for
    /// tests and for explicitly requesting the degraded path.
    pub fn already_expired() -> Self {
        SearchBudget { deadline: Some(Instant::now()), ..SearchBudget::default() }
    }

    /// Has the deadline passed?
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// Why a turn was served from the degraded (non-personalized) path.
///
/// Each variant has a matching `serve.degraded.{as_str}` counter in the
/// global [`pws_obs`] registry and flows into the query trace's
/// `degraded` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DegradeReason {
    /// The [`SearchBudget`] deadline passed at the retrieval checkpoint.
    DeadlineRetrieval,
    /// The deadline passed at the concept-extraction checkpoint.
    DeadlineConcepts,
    /// The deadline passed at the feature-build checkpoint.
    DeadlineFeatures,
    /// Personalization panicked; the panic was isolated and the query
    /// re-served from stateless baseline retrieval.
    PanicIsolated,
    /// The user shard's state lock was found poisoned at admission; the
    /// map was recovered and this query served statelessly.
    LockPoisoned,
}

impl DegradeReason {
    /// Stable label — the `{reason}` segment of the
    /// `serve.degraded.{reason}` counter name.
    pub fn as_str(self) -> &'static str {
        match self {
            DegradeReason::DeadlineRetrieval => "deadline_retrieval",
            DegradeReason::DeadlineConcepts => "deadline_concepts",
            DegradeReason::DeadlineFeatures => "deadline_features",
            DegradeReason::PanicIsolated => "panic",
            DegradeReason::LockPoisoned => "lock_poisoned",
        }
    }

    fn from_checkpoint(cp: StageCheckpoint) -> Self {
        match cp {
            StageCheckpoint::Retrieval => DegradeReason::DeadlineRetrieval,
            StageCheckpoint::Concepts => DegradeReason::DeadlineConcepts,
            StageCheckpoint::Features => DegradeReason::DeadlineFeatures,
        }
    }
}

/// A served query: the ranked turn plus how it was served. `degraded`
/// is `None` for a fully personalized (healthy) turn.
#[derive(Debug, Clone)]
pub struct SearchResponse {
    /// The ranked page — always present; degradation never loses the query.
    pub turn: SearchTurn,
    /// Why the degraded path served this turn, if it did.
    pub degraded: Option<DegradeReason>,
}

impl SearchResponse {
    /// Was this turn served degraded?
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_some()
    }
}

/// Admission-control rejection: the target shard's queue was over its
/// high-water mark, so the request was shed *before* any engine work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overloaded {
    /// Shard that rejected the request.
    pub shard: usize,
    /// In-flight depth observed at admission.
    pub queue_depth: u64,
    /// Hint: how long to wait before retrying, estimated from the
    /// shard's mean search latency times the excess queue depth.
    pub retry_after: Duration,
}

impl std::fmt::Display for Overloaded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard {} overloaded (queue depth {}); retry after {:?}",
            self.shard, self.queue_depth, self.retry_after
        )
    }
}

impl std::error::Error for Overloaded {}

/// Stages at which a [`FaultPlan`] is consulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultStage {
    /// Request admission, before the shard lock is taken. The only stage
    /// where [`FaultAction::PoisonLock`] is honored; an injected `Panic`
    /// here is ignored (it would escape the per-query isolation
    /// boundary, which is exactly what the fault layer exists to
    /// prevent).
    Admission,
    /// The engine's retrieval checkpoint.
    Retrieval,
    /// The engine's concept-extraction checkpoint.
    Concepts,
    /// The engine's feature-build checkpoint.
    Features,
    /// The write path, inside [`ServingEngine::observe`]'s isolation.
    Observe,
    /// User-record fault-in from the store tier, inside its own panic
    /// isolation: an injected `Panic` here is caught, counts
    /// `serve.state_io_error`, and costs exactly that user a fresh
    /// profile — never the request. Store tier only.
    FaultIn,
    /// User-record writeback to the store tier, on the synchronous
    /// paths (evict-time and [`ServingEngine::flush_store`]). An
    /// injected `Panic` is caught and treated as a failed write: the
    /// user stays resident and dirty, so no state is ever lost to a
    /// writeback fault. The background daemon does not consult the
    /// plan (an async thread has no request to deterministically
    /// attribute a fault to). Store tier only.
    Writeback,
}

impl From<StageCheckpoint> for FaultStage {
    fn from(cp: StageCheckpoint) -> Self {
        match cp {
            StageCheckpoint::Retrieval => FaultStage::Retrieval,
            StageCheckpoint::Concepts => FaultStage::Concepts,
            StageCheckpoint::Features => FaultStage::Features,
        }
    }
}

/// A fault to inject at a [`FaultStage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic (via [`InjectedFault`]) — exercises panic isolation.
    Panic,
    /// Sleep this long — exercises deadline budgets.
    Delay(Duration),
    /// Poison the user shard's state lock before the request touches it
    /// — exercises lock recovery. Only honored at
    /// [`FaultStage::Admission`].
    PoisonLock,
}

/// A deterministic fault injector, compiled into the serving path and
/// consulted at every stage of every request. `None` everywhere — the
/// default when no plan is attached — costs one branch per checkpoint;
/// the replay-equivalence tests run with this layer wired in to pin
/// that it is inert. The seeded, replay-stable implementation lives in
/// `pws-chaos`.
pub trait FaultPlan: Send + Sync {
    /// The fault to inject for this (user, query, stage) site, if any.
    fn inject(&self, user: UserId, query_text: &str, stage: FaultStage) -> Option<FaultAction>;
}

/// Panic payload for injected faults, so the panic hook installed by
/// [`quiet_injected_panics`] can tell deliberate chaos from real bugs.
pub struct InjectedFault(pub &'static str);

/// Install (once per process) a panic hook that suppresses the default
/// "thread panicked" stderr noise for [`InjectedFault`] panics only;
/// every other panic still reports through the previous hook. Chaos
/// tests call this so hundreds of injected panics don't drown the test
/// output.
pub fn quiet_injected_panics() {
    static INSTALL: std::sync::Once = std::sync::Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedFault>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Lock a mutex, recovering from poisoning: take ownership of the last
/// good value, clear the poison flag (so recovery is a per-event cost,
/// not a permanent tax), and report whether recovery happened so the
/// caller can count it and judge the guarded state.
fn lock_or_recover<T>(m: &Mutex<T>) -> (MutexGuard<'_, T>, bool) {
    match m.lock() {
        Ok(g) => (g, false),
        Err(poisoned) => {
            m.clear_poison();
            (poisoned.into_inner(), true)
        }
    }
}

/// Deliberately poison `m` from a scoped helper thread (the only way to
/// poison a `std` mutex is dropping a guard mid-panic). Fault-injection
/// only.
fn poison_mutex<T: Send>(m: &Mutex<T>) {
    std::thread::scope(|s| {
        let handle = s.spawn(|| {
            let _guard = match m.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            std::panic::panic_any(InjectedFault("forced lock poisoning"));
        });
        let _ = handle.join();
    });
}

/// Per-query tracing policy for the serving layer.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Master switch. When `false` no [`QueryTrace`] is ever allocated
    /// and [`ServingEngine::slow_queries`] is always empty.
    pub enabled: bool,
    /// Admit any trace whose end-to-end `search` latency is at least
    /// this many nanoseconds (`0` disables the latency criterion).
    /// Latency admission is honest about being timing-dependent: two
    /// replays of the same log may capture different trace sets.
    pub slow_threshold_nanos: u64,
    /// Admit 1-in-N queries by hash of the canonical query key
    /// (`0` disables sampling; `1` admits everything). Deterministic:
    /// the same query string is always admitted or always skipped, so
    /// replays capture identical trace sets.
    pub sample_every: u64,
    /// Slow-query ring capacity (oldest traces are overwritten).
    /// Clamped to ≥ 1.
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: false,
            slow_threshold_nanos: 0,
            sample_every: 0,
            ring_capacity: 64,
        }
    }
}

impl TraceConfig {
    /// Tracing on, every query admitted to the ring — the configuration
    /// the replay-equivalence tests run with.
    pub fn sample_all(ring_capacity: usize) -> Self {
        TraceConfig {
            enabled: true,
            slow_threshold_nanos: 0,
            sample_every: 1,
            ring_capacity,
        }
    }
}

/// Fixed-capacity overwrite-oldest ring of admitted query traces.
///
/// The write path is lock-free in its coordination: a single atomic
/// `fetch_add` claims a slot, and the per-slot mutexes only serialize
/// two writers that wrapped onto the *same* slot (or a writer with a
/// concurrent [`collect`](Self::collect)) — never writer against
/// writer on different slots. No allocation happens on push beyond the
/// trace the engine already built.
struct TraceRing {
    slots: Vec<Mutex<Option<QueryTrace>>>,
    cursor: AtomicU64,
    /// `serve.lock_recovered` handle — a poisoned slot (a thread killed
    /// mid-push) is recovered, never allowed to wedge the ring.
    recovered: Arc<pws_obs::StageMetrics>,
}

impl TraceRing {
    fn new(capacity: usize, recovered: Arc<pws_obs::StageMetrics>) -> Self {
        TraceRing {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
            recovered,
        }
    }

    fn push(&self, trace: QueryTrace) {
        let claimed = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = (claimed % self.slots.len() as u64) as usize;
        let (mut guard, was_poisoned) = lock_or_recover(&self.slots[slot]);
        if was_poisoned {
            self.recovered.incr(1);
        }
        // Overwriting is the recovery: whatever half-state the dead
        // writer left behind is replaced wholesale.
        *guard = Some(trace);
    }

    /// Snapshot the ring's contents, oldest first.
    fn collect(&self) -> Vec<QueryTrace> {
        let cursor = self.cursor.load(Ordering::Relaxed);
        let n = self.slots.len() as u64;
        (0..n)
            .map(|k| ((cursor + k) % n) as usize)
            .filter_map(|i| {
                let (guard, was_poisoned) = lock_or_recover(&self.slots[i]);
                if was_poisoned {
                    self.recovered.incr(1);
                }
                guard.clone()
            })
            .collect()
    }
}

/// FNV-1a over a string; stable across runs and platforms (no
/// `RandomState`), shared by statistics sharding and trace sampling.
fn fnv1a(key: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in key.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Number of lock shards in the base-retrieval cache. Fixed: cache
/// contention is per-query-string, independent of the user shard count.
const CACHE_SHARDS: usize = 8;

/// One cached base-retrieval pool.
struct CacheEntry {
    /// The exact key, kept for collision rejection (the map is keyed by
    /// the 64-bit fingerprint; a colliding probe must miss, not alias).
    tokens: Vec<String>,
    k: usize,
    /// Index epoch this entry was computed under; a stale entry is
    /// dropped on probe.
    epoch: u64,
    /// Shard-local LRU clock value of the last touch.
    tick: u64,
    hits: Vec<SearchHit>,
}

/// One lock shard of the retrieval cache: fingerprint-keyed entries plus
/// the shard's LRU clock.
struct CacheShard {
    map: HashMap<u64, CacheEntry>,
    tick: u64,
}

/// The serving layer's [`RetrievalCache`]: sharded, bounded LRU, with
/// epoch-based invalidation.
///
/// * **Sharded** — `CACHE_SHARDS` mutexes, entries routed by an FNV-1a
///   fingerprint of `(tokens, k)`, so concurrent queries for different
///   strings rarely contend.
/// * **Bounded** — each shard holds at most `⌈capacity / shards⌉`
///   entries; inserting past that evicts the shard's least-recently
///   touched entry (`serve.cache.evict`).
/// * **Epoch invalidation** — [`invalidate`](Self::invalidate) bumps an
///   atomic epoch; entries stamped with an older epoch miss (and are
///   dropped) on their next probe, so invalidation is O(1) and never
///   takes a lock. Probes concurrent with the bump may still serve the
///   old epoch; callers needing a strict barrier drain in-flight
///   requests first.
///
/// Every probe counts exactly one of `serve.cache.hit` /
/// `serve.cache.miss`, so `hit + miss` equals the number of base
/// retrievals that consulted the cache.
pub struct ShardedRetrievalCache {
    shards: Vec<Mutex<CacheShard>>,
    per_shard_capacity: usize,
    epoch: AtomicU64,
    hit: Arc<pws_obs::StageMetrics>,
    miss: Arc<pws_obs::StageMetrics>,
    evict: Arc<pws_obs::StageMetrics>,
    /// `serve.lock_recovered` handle — a poisoned cache shard is
    /// recovered (worst case: a torn entry is overwritten or evicted),
    /// never allowed to wedge retrieval.
    recovered: Arc<pws_obs::StageMetrics>,
}

/// FNV-1a over the cache key. Token boundaries are delimited (so
/// `["ab","c"]` ≠ `["a","bc"]`) and the pool size is folded in last.
fn cache_fingerprint(tokens: &[String], k: usize) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    };
    for t in tokens {
        for &b in t.as_bytes() {
            eat(b);
        }
        eat(0xff);
    }
    for b in (k as u64).to_le_bytes() {
        eat(b);
    }
    h
}

impl ShardedRetrievalCache {
    /// A cache holding at most `capacity` pools (rounded up to a
    /// multiple of the shard count).
    pub fn new(capacity: usize) -> Self {
        ShardedRetrievalCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(CacheShard { map: HashMap::new(), tick: 0 }))
                .collect(),
            per_shard_capacity: capacity.div_ceil(CACHE_SHARDS).max(1),
            epoch: AtomicU64::new(0),
            hit: pws_obs::stage("serve.cache.hit"),
            miss: pws_obs::stage("serve.cache.miss"),
            evict: pws_obs::stage("serve.cache.evict"),
            recovered: pws_obs::stage("serve.lock_recovered"),
        }
    }

    fn lock_shard(&self, fp: u64) -> MutexGuard<'_, CacheShard> {
        let idx = (fp % CACHE_SHARDS as u64) as usize;
        let (guard, was_poisoned) = lock_or_recover(&self.shards[idx]);
        if was_poisoned {
            self.recovered.incr(1);
        }
        guard
    }

    /// Drop every cached pool at once (O(1)): entries stamped with an
    /// older epoch miss on their next probe. Call after anything that
    /// changes what base retrieval would return (index swap, BM25
    /// parameter change).
    pub fn invalidate(&self) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// The current invalidation epoch (monotonically increasing; each
    /// [`invalidate`](Self::invalidate) — including a segment publish
    /// via [`ServingEngine::publish_segment`] — bumps it by one).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Number of currently resident entries (stale-epoch entries still
    /// count until their next probe drops them).
    pub fn len(&self) -> usize {
        (0..CACHE_SHARDS as u64).map(|i| self.lock_shard(i).map.len()).sum()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl RetrievalCache for ShardedRetrievalCache {
    fn get(&self, tokens: &[String], k: usize) -> Option<Vec<SearchHit>> {
        let fp = cache_fingerprint(tokens, k);
        let epoch = self.epoch.load(Ordering::Acquire);
        let mut shard = self.lock_shard(fp);
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(&fp) {
            Some(e) if e.epoch == epoch && e.k == k && e.tokens == tokens => {
                e.tick = tick;
                let hits = e.hits.clone();
                drop(shard);
                self.hit.incr(1);
                Some(hits)
            }
            Some(e) if e.epoch != epoch && e.k == k && e.tokens == tokens => {
                // Stale epoch: drop eagerly so dead pools don't occupy
                // capacity until LRU pressure finds them.
                shard.map.remove(&fp);
                drop(shard);
                self.miss.incr(1);
                None
            }
            _ => {
                drop(shard);
                self.miss.incr(1);
                None
            }
        }
    }

    fn put(&self, tokens: &[String], k: usize, hits: &[SearchHit]) {
        let fp = cache_fingerprint(tokens, k);
        let epoch = self.epoch.load(Ordering::Acquire);
        let mut shard = self.lock_shard(fp);
        shard.tick += 1;
        let tick = shard.tick;
        if !shard.map.contains_key(&fp) && shard.map.len() >= self.per_shard_capacity {
            if let Some(&victim) =
                shard.map.iter().min_by_key(|(_, e)| e.tick).map(|(fp, _)| fp)
            {
                shard.map.remove(&victim);
                self.evict.incr(1);
            }
        }
        shard.map.insert(
            fp,
            CacheEntry {
                tokens: tokens.to_vec(),
                k,
                epoch,
                tick,
                hits: hits.to_vec(),
            },
        );
    }
}

/// One user shard: the mutable per-user state for every user hashing
/// here, plus this shard's metric handles.
struct UserShard {
    users: Mutex<HashMap<UserId, ResidentUser>>,
    /// Requests currently inside `search`/`observe` on this shard;
    /// sampled into the `queue` histogram at arrival, so its p99 is the
    /// queue depth an arriving request actually saw.
    inflight: AtomicU64,
    /// EWMA (α = 1/8) of end-to-end search nanoseconds over turns that
    /// did **not** hit the retrieval cache; `0` = no history yet. This
    /// is what [`ServingEngine::retry_after`] scales by: the lifetime
    /// mean of `search` collapses toward the cache-hit latency on a
    /// cache-hot shard and would hint near-zero backoffs.
    uncached_ewma_nanos: AtomicU64,
    search: Arc<pws_obs::StageMetrics>,
    observe: Arc<pws_obs::StageMetrics>,
    queue: Arc<pws_obs::StageMetrics>,
}

/// A user resident in a shard's in-memory map. Without a store tier
/// the map is the whole world (nothing is ever evicted) and the
/// bookkeeping fields stay zero; with one, the map is an LRU cache
/// over the on-disk records.
struct ResidentUser {
    state: UserState,
    /// Engine-wide monotone touch stamp; smallest = least recently
    /// used.
    last_touch: u64,
    /// Epoch of the newest unpersisted mutation; `0` = clean (on disk
    /// or never mutated). The writeback daemon clears it only when it
    /// still equals the epoch it snapshotted, so a write that raced a
    /// newer mutation can never mark the newer dirt clean.
    dirty_epoch: u64,
}

/// Sharded query statistics with an epoch-snapshot read path.
///
/// Writers mutate hash-sharded `Mutex<HashMap>`s; readers only ever
/// clone an `Arc` out of an `RwLock` — they never touch a shard lock,
/// so `search` cannot block behind a stats write.
struct ShardedStats {
    shards: Vec<Mutex<HashMap<String, QueryStats>>>,
    snapshot: RwLock<Arc<HashMap<String, QueryStats>>>,
    /// Observes since the last snapshot rebuild.
    pending: AtomicU64,
    refresh_every: u64,
    /// `serve.lock_recovered` handle. Statistics only tune β; a
    /// recovered shard at worst serves slightly stale entropy values,
    /// so recovery (count + keep the last good map) is always right.
    recovered: Arc<pws_obs::StageMetrics>,
}

impl ShardedStats {
    fn new(shards: usize, refresh_every: u64, recovered: Arc<pws_obs::StageMetrics>) -> Self {
        ShardedStats {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            snapshot: RwLock::new(Arc::new(HashMap::new())),
            pending: AtomicU64::new(0),
            refresh_every: refresh_every.max(1),
            recovered,
        }
    }

    fn shard_of(&self, key: &str) -> usize {
        (fnv1a(key) % self.shards.len() as u64) as usize
    }

    /// The current epoch snapshot (an `Arc` clone; cheap). The snapshot
    /// `Arc` is swapped atomically under the write lock, so even a
    /// poisoned `RwLock` always holds a complete, valid snapshot.
    fn read(&self) -> Arc<HashMap<String, QueryStats>> {
        match self.snapshot.read() {
            Ok(g) => g.clone(),
            Err(poisoned) => {
                self.snapshot.clear_poison();
                self.recovered.incr(1);
                poisoned.into_inner().clone()
            }
        }
    }

    /// Lock one stats shard, recovering (and counting) poisoning.
    fn lock_shard(&self, idx: usize) -> MutexGuard<'_, HashMap<String, QueryStats>> {
        let (guard, was_poisoned) = lock_or_recover(&self.shards[idx]);
        if was_poisoned {
            self.recovered.incr(1);
        }
        guard
    }

    /// Merge every shard into a fresh snapshot and publish it.
    fn refresh(&self) {
        let mut merged = HashMap::new();
        for idx in 0..self.shards.len() {
            let guard = self.lock_shard(idx);
            for (k, v) in guard.iter() {
                merged.insert(k.clone(), v.clone());
            }
        }
        let next = Arc::new(merged);
        match self.snapshot.write() {
            Ok(mut g) => *g = next,
            Err(poisoned) => {
                self.snapshot.clear_poison();
                self.recovered.incr(1);
                *poisoned.into_inner() = next;
            }
        }
    }

    /// Account one observe; refresh the snapshot when the epoch is due.
    /// Must be called with **no** stats-shard lock held (refresh takes
    /// them all).
    fn tick(&self) {
        let pending = self.pending.fetch_add(1, Ordering::Relaxed) + 1;
        if pending >= self.refresh_every {
            self.pending.store(0, Ordering::Relaxed);
            self.refresh();
        }
    }
}

/// The serving side of the tiered user-state store: the `pws-store`
/// directory plus the residency bookkeeping shared by the request
/// paths and the writeback daemon.
struct StoreTier {
    store: UserStore,
    /// Maximum resident users per shard (≥ 1).
    capacity_per_shard: usize,
    /// Monotone LRU clock; every access stamps the touched user.
    touch: AtomicU64,
    /// Dirty-epoch source; starts at 1 so `0` can mean "clean".
    epoch: AtomicU64,
    /// `serve.store.fault_in` — records loaded from disk on access.
    fault_in: Arc<pws_obs::StageMetrics>,
    /// `serve.store.evict` — residents evicted by the LRU bound.
    evict: Arc<pws_obs::StageMetrics>,
    /// `serve.store.writeback` — successful record writes (evict-time,
    /// daemon, and flush).
    writeback: Arc<pws_obs::StageMetrics>,
    /// Shared `serve.state_io_error` handle (failed reads/writes).
    io_error: Arc<pws_obs::StageMetrics>,
    /// Shared `serve.lock_recovered` handle for daemon-side recovery.
    lock_recovered: Arc<pws_obs::StageMetrics>,
    /// `Some` iff the background writeback daemon is configured.
    queue: Option<WritebackQueue>,
}

/// The writeback daemon's work queue: user ids with unpersisted
/// mutations, deduplicated (a hot user is queued at most once — the
/// daemon snapshots the *current* state when it gets there).
struct WritebackQueue {
    pending: Mutex<WritebackState>,
    cond: Condvar,
}

struct WritebackState {
    queue: VecDeque<UserId>,
    enqueued: HashSet<UserId>,
    shutdown: bool,
}

/// `user → shard index`, shared by the engine and the daemon.
fn shard_index(user: UserId, shard_count: usize) -> usize {
    (splitmix64(user.0 as u64) % shard_count as u64) as usize
}

/// Clone the live statistics for `keys` out of the stats shards, one
/// shard lock at a time (never while holding another stats lock).
/// This is how a user's adaptive-β statistics travel with their
/// record: `keys` is the user's `seen_queries` list.
fn collect_query_stats(stats: &ShardedStats, keys: &[String]) -> BTreeMap<String, QueryStats> {
    let mut out = BTreeMap::new();
    for key in keys {
        let guard = stats.lock_shard(stats.shard_of(key));
        if let Some(s) = guard.get(key) {
            out.insert(key.clone(), s.clone());
        }
    }
    out
}

/// The background writeback daemon: pop a dirty user, persist them,
/// repeat. On shutdown the queue is drained before exiting, so every
/// enqueued user is written (or has their failure counted) by the time
/// the engine finishes dropping.
fn writeback_daemon_loop(shards: Arc<Vec<UserShard>>, stats: Arc<ShardedStats>, tier: Arc<StoreTier>) {
    let queue = tier.queue.as_ref().expect("daemon runs only with a queue");
    loop {
        let user = {
            let (mut st, poisoned) = lock_or_recover(&queue.pending);
            if poisoned {
                tier.lock_recovered.incr(1);
            }
            loop {
                if let Some(u) = st.queue.pop_front() {
                    st.enqueued.remove(&u);
                    break Some(u);
                }
                if st.shutdown {
                    break None;
                }
                st = match queue.cond.wait(st) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
            }
        };
        let Some(user) = user else { return };
        writeback_offline(&shards, &stats, &tier, user);
    }
}

/// One background writeback: snapshot the user's state and dirty epoch
/// under the shard lock, encode and write with **no** lock held, then
/// clear the dirty mark only if no newer mutation landed meanwhile.
/// The request paths never wait on this IO. Returns whether a record
/// was written.
fn writeback_offline(
    shards: &[UserShard],
    stats: &ShardedStats,
    tier: &StoreTier,
    user: UserId,
) -> bool {
    let shard = &shards[shard_index(user, shards.len())];
    let snapshot = {
        let (users, poisoned) = lock_or_recover(&shard.users);
        if poisoned {
            tier.lock_recovered.incr(1);
        }
        users
            .get(&user)
            .filter(|r| r.dirty_epoch != 0)
            .map(|r| (r.state.clone(), r.dirty_epoch))
    };
    let Some((state, epoch)) = snapshot else { return false };
    let query_stats = collect_query_stats(stats, &state.seen_queries);
    let record = UserRecord::new(user, state, query_stats);
    match tier.store.put(&record) {
        Ok(()) => {
            let (mut users, poisoned) = lock_or_recover(&shard.users);
            if poisoned {
                tier.lock_recovered.incr(1);
            }
            if let Some(r) = users.get_mut(&user) {
                if r.dirty_epoch == epoch {
                    r.dirty_epoch = 0;
                }
            }
            tier.writeback.incr(1);
            true
        }
        Err(_) => {
            tier.io_error.incr(1);
            false
        }
    }
}

/// Synchronously persist every dirty resident across all shards (the
/// flush path and the drop guard). Returns the number of records
/// written.
fn flush_dirty(shards: &[UserShard], stats: &ShardedStats, tier: &StoreTier) -> usize {
    let mut written = 0;
    for shard in shards {
        let dirty: Vec<UserId> = {
            let (users, poisoned) = lock_or_recover(&shard.users);
            if poisoned {
                tier.lock_recovered.incr(1);
            }
            users.iter().filter(|(_, r)| r.dirty_epoch != 0).map(|(id, _)| *id).collect()
        };
        for user in dirty {
            if writeback_offline(shards, stats, tier, user) {
                written += 1;
            }
        }
    }
    written
}

/// Pre-resolved handles for the fault-tolerance counter family. All
/// names are literals (resolved once at engine construction) so the
/// stage-name registry stays greppable and the hot path never formats
/// a string.
struct FaultMetrics {
    degraded_deadline_retrieval: Arc<pws_obs::StageMetrics>,
    degraded_deadline_concepts: Arc<pws_obs::StageMetrics>,
    degraded_deadline_features: Arc<pws_obs::StageMetrics>,
    degraded_panic: Arc<pws_obs::StageMetrics>,
    degraded_lock_poisoned: Arc<pws_obs::StageMetrics>,
    lock_recovered: Arc<pws_obs::StageMetrics>,
    user_evicted: Arc<pws_obs::StageMetrics>,
    state_restored: Arc<pws_obs::StageMetrics>,
    overloaded: Arc<pws_obs::StageMetrics>,
    state_io_error: Arc<pws_obs::StageMetrics>,
}

impl FaultMetrics {
    fn resolve() -> Self {
        FaultMetrics {
            degraded_deadline_retrieval: pws_obs::stage("serve.degraded.deadline_retrieval"),
            degraded_deadline_concepts: pws_obs::stage("serve.degraded.deadline_concepts"),
            degraded_deadline_features: pws_obs::stage("serve.degraded.deadline_features"),
            degraded_panic: pws_obs::stage("serve.degraded.panic"),
            degraded_lock_poisoned: pws_obs::stage("serve.degraded.lock_poisoned"),
            lock_recovered: pws_obs::stage("serve.lock_recovered"),
            user_evicted: pws_obs::stage("serve.user_evicted"),
            state_restored: pws_obs::stage("serve.state_restored"),
            overloaded: pws_obs::stage("serve.overloaded"),
            state_io_error: pws_obs::stage("serve.state_io_error"),
        }
    }

    fn degraded(&self, reason: DegradeReason) -> &pws_obs::StageMetrics {
        match reason {
            DegradeReason::DeadlineRetrieval => &self.degraded_deadline_retrieval,
            DegradeReason::DeadlineConcepts => &self.degraded_deadline_concepts,
            DegradeReason::DeadlineFeatures => &self.degraded_deadline_features,
            DegradeReason::PanicIsolated => &self.degraded_panic,
            DegradeReason::LockPoisoned => &self.degraded_lock_poisoned,
        }
    }
}

/// A live-publishable segmented index: the mutable holder that lets a
/// serving process gain segments without restarting.
///
/// [`pws_core::EngineCore`] borrows its retrieval backend for the whole
/// engine lifetime, so the backend itself must absorb updates.
/// `LiveIndex` wraps an [`Arc<pws_index::SegmentedIndex>`] behind an
/// `RwLock`: queries clone the `Arc` (a snapshot — segments are
/// immutable, so an in-flight query is never affected by a publish) and
/// [`add_segment`](Self::add_segment) swaps in an extended index.
///
/// Publishing through [`ServingEngine::publish_segment`] pairs the swap
/// with one atomic-epoch bump of the [`ShardedRetrievalCache`], so
/// cached pools from the old segment set can never be served once the
/// new segment is visible.
///
/// Lock poisoning is recovered, never propagated (the last good index
/// keeps serving) — consistent with the serving layer's lock-recovery
/// policy.
pub struct LiveIndex {
    inner: RwLock<Arc<pws_index::SegmentedIndex>>,
}

impl LiveIndex {
    /// Start serving `index`.
    pub fn new(index: pws_index::SegmentedIndex) -> Self {
        LiveIndex { inner: RwLock::new(Arc::new(index)) }
    }

    /// Snapshot the current segment set. The snapshot stays valid (and
    /// consistent) for as long as the caller holds it, regardless of
    /// concurrent publishes.
    pub fn snapshot(&self) -> Arc<pws_index::SegmentedIndex> {
        match self.inner.read() {
            Ok(g) => g.clone(),
            Err(p) => p.into_inner().clone(),
        }
    }

    /// Atomically extend the served index with one more segment.
    ///
    /// On error (analyzer mismatch, doc-count overflow) the served index
    /// is unchanged. Callers inside a serving stack should prefer
    /// [`ServingEngine::publish_segment`], which also invalidates the
    /// retrieval cache.
    pub fn add_segment(&self, seg: pws_index::Segment) -> Result<(), pws_index::SegmentError> {
        let mut next = (*self.snapshot()).clone();
        next.add_segment(seg)?;
        let next = Arc::new(next);
        match self.inner.write() {
            Ok(mut g) => *g = next,
            Err(p) => *p.into_inner() = next,
        }
        Ok(())
    }
}

impl pws_index::RetrievalBackend for LiveIndex {
    fn analyze_text(&self, text: &str) -> Vec<String> {
        self.snapshot().analyze_text(text)
    }

    fn search(&self, query: &str, k: usize) -> Vec<SearchHit> {
        self.snapshot().search(query, k)
    }

    fn search_tokens(&self, q_tokens: &[String], k: usize) -> Vec<SearchHit> {
        self.snapshot().search_tokens(q_tokens, k)
    }

    fn score_docs(&self, query: &str, docs: &[u32]) -> Vec<f64> {
        self.snapshot().score_docs(query, docs)
    }
}

/// SplitMix64 finalizer — the same user-hash the eval harness uses for
/// seeding, reused here so shard assignment is well-mixed even for the
/// dense sequential `UserId`s the simulator generates.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The concurrent serving engine: shared [`EngineCore`] + user-sharded
/// mutable state. All request methods take `&self`; the type is
/// `Send + Sync` and intended to be put behind an `Arc` (or borrowed by
/// scoped threads) and called from as many threads as you like.
///
/// ```
/// use pws_click::UserId;
/// use pws_core::EngineConfig;
/// use pws_geo::{LocId, LocationOntology};
/// use pws_index::{IndexBuilder, StoredDoc};
/// use pws_serve::{ServeConfig, ServingEngine};
///
/// let mut b = IndexBuilder::new();
/// b.add(StoredDoc::new(0, "http://a.test", "Harbor dining",
///     "seafood restaurant by the harbor"));
/// let index = b.build();
/// let mut world = LocationOntology::new();
/// let r = world.add(LocId::WORLD, "westland", vec![]);
/// world.add(r, "alden", vec![]);
///
/// let engine = ServingEngine::new(&index, &world, EngineConfig::default(),
///     ServeConfig::default());
/// std::thread::scope(|s| {
///     for u in 0..4u32 {
///         let engine = &engine;
///         s.spawn(move || engine.search(UserId(u), "restaurant"));
///     }
/// });
/// assert_eq!(engine.user_count(), 4);
/// ```
pub struct ServingEngine<'a> {
    core: EngineCore<'a>,
    /// `Arc` so the writeback daemon can hold the shards without
    /// borrowing the (non-`'static`) engine.
    shards: Arc<Vec<UserShard>>,
    stats: Arc<ShardedStats>,
    trace_cfg: TraceConfig,
    /// `Some` iff tracing is enabled; the `None` fast path skips trace
    /// allocation entirely.
    ring: Option<TraceRing>,
    fault: FaultMetrics,
    /// Fault injector consulted at every request stage; `None` (the
    /// default) is the zero-fault production configuration.
    plan: Option<Arc<dyn FaultPlan>>,
    /// Engine-wide admission high-water mark (see [`ServeConfig`]).
    max_queue_depth: Option<u64>,
    /// Shared base-retrieval cache; `None` when
    /// [`ServeConfig::retrieval_cache_capacity`] is `0`.
    cache: Option<Arc<ShardedRetrievalCache>>,
    /// Tiered user-state store; `None` when [`ServeConfig::store`] is.
    store: Option<Arc<StoreTier>>,
    /// Drop guard that shuts the writeback daemon down and flushes
    /// dirty residents (a field with its own `Drop` rather than a
    /// `Drop` impl on the engine, so the `with_*` builders can still
    /// move fields out of `self`).
    _store_shutdown: Option<StoreShutdown>,
}

impl<'a> ServingEngine<'a> {
    /// Build a serving engine over an already-built baseline index.
    pub fn new(
        base: &'a dyn pws_index::RetrievalBackend,
        world: &'a pws_geo::LocationOntology,
        cfg: EngineConfig,
        serve_cfg: ServeConfig,
    ) -> Self {
        let n = serve_cfg.shards.max(1);
        let search_m = pws_obs::shard_stages("serve.shard", n, "search");
        let observe_m = pws_obs::shard_stages("serve.shard", n, "observe");
        let queue_m = pws_obs::shard_stages("serve.shard", n, "queue");
        let shards = search_m
            .into_iter()
            .zip(observe_m)
            .zip(queue_m)
            .map(|((search, observe), queue)| UserShard {
                users: Mutex::new(HashMap::new()),
                inflight: AtomicU64::new(0),
                uncached_ewma_nanos: AtomicU64::new(0),
                search,
                observe,
                queue,
            })
            .collect();
        let shards: Arc<Vec<UserShard>> = Arc::new(shards);
        let fault = FaultMetrics::resolve();
        let ring = serve_cfg
            .trace
            .enabled
            .then(|| TraceRing::new(serve_cfg.trace.ring_capacity, fault.lock_recovered.clone()));
        let cache = (serve_cfg.retrieval_cache_capacity > 0)
            .then(|| Arc::new(ShardedRetrievalCache::new(serve_cfg.retrieval_cache_capacity)));
        let mut core = EngineCore::new(base, world, cfg);
        if let Some(c) = &cache {
            core = core.with_retrieval_cache(c.clone() as Arc<dyn RetrievalCache>);
        }
        let stats = Arc::new(ShardedStats::new(
            n,
            serve_cfg.stats_refresh_every,
            fault.lock_recovered.clone(),
        ));
        let store = serve_cfg.store.as_ref().map(|sc| {
            Arc::new(StoreTier {
                store: UserStore::open(&sc.dir)
                    .expect("store tier: cannot open/create its directory"),
                capacity_per_shard: sc.capacity_per_shard.max(1),
                touch: AtomicU64::new(0),
                epoch: AtomicU64::new(1),
                fault_in: pws_obs::stage("serve.store.fault_in"),
                evict: pws_obs::stage("serve.store.evict"),
                writeback: pws_obs::stage("serve.store.writeback"),
                io_error: fault.state_io_error.clone(),
                lock_recovered: fault.lock_recovered.clone(),
                queue: sc.writeback.then(|| WritebackQueue {
                    pending: Mutex::new(WritebackState {
                        queue: VecDeque::new(),
                        enqueued: HashSet::new(),
                        shutdown: false,
                    }),
                    cond: Condvar::new(),
                }),
            })
        });
        let store_shutdown = store.as_ref().map(|tier| {
            let daemon = tier.queue.is_some().then(|| {
                let (shards, stats, tier) = (shards.clone(), stats.clone(), tier.clone());
                std::thread::Builder::new()
                    .name("pws-store-writeback".into())
                    .spawn(move || writeback_daemon_loop(shards, stats, tier))
                    .expect("spawn writeback daemon")
            });
            StoreShutdown {
                shards: shards.clone(),
                stats: stats.clone(),
                tier: tier.clone(),
                daemon,
            }
        });
        ServingEngine {
            core,
            shards,
            stats,
            trace_cfg: serve_cfg.trace,
            ring,
            fault,
            plan: None,
            max_queue_depth: serve_cfg.max_queue_depth,
            cache,
            store,
            _store_shutdown: store_shutdown,
        }
    }

    /// The shared base-retrieval cache, if one is configured.
    pub fn retrieval_cache(&self) -> Option<&ShardedRetrievalCache> {
        self.cache.as_deref()
    }

    /// Invalidate every cached base-retrieval pool (no-op without a
    /// cache). Call after anything that would change what the index
    /// returns.
    pub fn invalidate_retrieval_cache(&self) {
        if let Some(c) = &self.cache {
            c.invalidate();
        }
    }

    /// Publish one new segment to a live index and invalidate the
    /// retrieval cache: after this returns, no query served through this
    /// engine can observe a cached pool from the pre-publish segment
    /// set. `live` must be the [`LiveIndex`] this engine was built over.
    ///
    /// On error the index and the cache are both unchanged.
    pub fn publish_segment(
        &self,
        live: &LiveIndex,
        seg: pws_index::Segment,
    ) -> Result<(), pws_index::SegmentError> {
        live.add_segment(seg)?;
        self.invalidate_retrieval_cache();
        Ok(())
    }

    /// Enable proximity-smoothed location scoring (see
    /// [`EngineCore::with_geo`]).
    pub fn with_geo(mut self, coords: &'a pws_geo::WorldCoords, scale_km: f64) -> Self {
        self.core = self.core.with_geo(coords, scale_km);
        self
    }

    /// Attach a [`FaultPlan`]; every subsequent request consults it at
    /// each stage. Chaos testing and fault drills only — serving code
    /// never needs this.
    pub fn with_fault_plan(mut self, plan: Arc<dyn FaultPlan>) -> Self {
        self.plan = Some(plan);
        self
    }

    /// The shared read side.
    pub fn core(&self) -> &EngineCore<'a> {
        &self.core
    }

    /// The active engine configuration.
    pub fn config(&self) -> &EngineConfig {
        self.core.config()
    }

    /// Number of user shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, user: UserId) -> usize {
        (splitmix64(user.0 as u64) % self.shards.len() as u64) as usize
    }

    /// Execute one personalized search for `user`.
    ///
    /// Locks only the user's shard; β statistics come from the epoch
    /// snapshot, so no cross-shard or global lock is ever taken. When
    /// tracing is enabled the turn's trace is offered to the slow-query
    /// ring under the configured admission policy.
    ///
    /// This is the trusted internal path: no budget, and admission
    /// control is bypassed (it can never be shed). External request
    /// handlers should prefer [`Self::search_with`].
    pub fn search(&self, user: UserId, query_text: &str) -> SearchTurn {
        let (resp, trace) = self
            .search_inner(user, query_text, false, SearchBudget::none(), None)
            .expect("admission control disabled on this path; cannot be shed");
        self.offer_to_ring(trace);
        resp.turn
    }

    /// Execute one search under a [`SearchBudget`], with admission
    /// control. The three outcomes, from best to worst:
    ///
    /// * `Ok` with `degraded: None` — fully personalized.
    /// * `Ok` with `degraded: Some(reason)` — the base ranking; the
    ///   budget expired or personalization failed, but the query was
    ///   still answered.
    /// * `Err(Overloaded)` — shed before any engine work; the caller
    ///   should retry after the hinted backoff.
    pub fn search_with(
        &self,
        user: UserId,
        query_text: &str,
        budget: SearchBudget,
    ) -> Result<SearchResponse, Overloaded> {
        let limit = match (self.max_queue_depth, budget.max_queue_depth) {
            (Some(engine), Some(request)) => Some(engine.min(request)),
            (engine, request) => engine.or(request),
        };
        let (resp, trace) = self.search_inner(user, query_text, false, budget, limit)?;
        self.offer_to_ring(trace);
        Ok(resp)
    }

    /// [`search`](Self::search) with a forced trace, regardless of the
    /// configured admission policy — the single-query diagnostic path
    /// (`pws-trace`). The returned turn is byte-identical to what
    /// `search` would produce; the trace bypasses the slow-query ring.
    pub fn search_traced(&self, user: UserId, query_text: &str) -> (SearchTurn, QueryTrace) {
        let (resp, trace) = self
            .search_inner(user, query_text, true, SearchBudget::none(), None)
            .expect("admission control disabled on this path; cannot be shed");
        (resp.turn, trace.expect("forced trace is always filled"))
    }

    /// Offer an admitted trace to the slow-query ring.
    fn offer_to_ring(&self, trace: Option<QueryTrace>) {
        if let (Some(trace), Some(ring)) = (trace, &self.ring) {
            if self.admit(&trace) {
                ring.push(trace);
            }
        }
    }

    /// Lock one shard's user map, recovering from poisoning. Recovery
    /// counts `serve.lock_recovered`; the caller decides what to do
    /// with the (last-good but possibly mid-mutation) map.
    fn lock_users<'s>(
        &self,
        shard: &'s UserShard,
    ) -> (MutexGuard<'s, HashMap<UserId, ResidentUser>>, bool) {
        let (guard, was_poisoned) = lock_or_recover(&shard.users);
        if was_poisoned {
            self.fault.lock_recovered.incr(1);
        }
        (guard, was_poisoned)
    }

    /// Retry-after hint for a shed request: the shard's *recent
    /// uncached* search latency times the excess queue depth (how many
    /// requests must drain before this one would have been admitted).
    ///
    /// The estimate is an EWMA over turns that missed (or had no)
    /// retrieval cache, floored at 100µs per queued request. An earlier
    /// revision scaled the shard's lifetime mean of `search`, which a
    /// cache-hot shard drags toward the cache-hit latency — the hint
    /// told clients to retry after effectively zero, re-shedding them
    /// in a tight loop. Falls back to 1ms per request when the shard
    /// has no uncached history yet.
    fn retry_after(&self, shard: &UserShard, depth: u64, limit: u64) -> Duration {
        const FLOOR_NANOS: u64 = 100_000; // 100µs: below this a hint is noise
        const DEFAULT_NANOS: u64 = 1_000_000; // no history: assume 1ms per request
        let excess = depth.saturating_sub(limit) + 1;
        let ewma = shard.uncached_ewma_nanos.load(Ordering::Relaxed);
        let per_turn = if ewma == 0 { DEFAULT_NANOS } else { ewma.max(FLOOR_NANOS) };
        Duration::from_nanos(per_turn.saturating_mul(excess))
    }

    /// Make `user` resident in the (already locked) shard map and stamp
    /// their LRU touch: reuse the resident entry, fault the record in
    /// from the store tier, or start fresh.
    ///
    /// Fault-in runs under panic isolation: a corrupt record, an IO
    /// error, or an injected [`FaultStage::FaultIn`] panic counts
    /// `serve.state_io_error` and costs exactly this user a fresh
    /// profile — never the request, never the shard. A successful load
    /// counts `serve.store.fault_in` and re-seeds any statistics keys
    /// this process has never observed (live keys win — they are
    /// newer), so a fresh process over an old store directory resumes
    /// with the record's adaptive-β statistics.
    fn ensure_resident(
        &self,
        users: &mut HashMap<UserId, ResidentUser>,
        user: UserId,
        query_text: &str,
    ) {
        let touch = match &self.store {
            Some(tier) => tier.touch.fetch_add(1, Ordering::Relaxed),
            None => 0,
        };
        if let Some(r) = users.get_mut(&user) {
            r.last_touch = touch;
            return;
        }
        let state = match &self.store {
            None => UserState::default(),
            Some(tier) => {
                let plan = self.plan.as_deref();
                let loaded = catch_unwind(AssertUnwindSafe(|| {
                    if let Some(plan) = plan {
                        match plan.inject(user, query_text, FaultStage::FaultIn) {
                            Some(FaultAction::Panic) => {
                                std::panic::panic_any(InjectedFault("injected fault-in panic"))
                            }
                            Some(FaultAction::Delay(d)) => std::thread::sleep(d),
                            Some(FaultAction::PoisonLock) | None => {}
                        }
                    }
                    tier.store.get(user)
                }));
                match loaded {
                    Ok(Ok(Some(record))) => {
                        tier.fault_in.incr(1);
                        let mut seeded = false;
                        for (key, qs) in record.query_stats {
                            let mut g = self.stats.lock_shard(self.stats.shard_of(&key));
                            if let std::collections::hash_map::Entry::Vacant(v) = g.entry(key) {
                                v.insert(qs);
                                seeded = true;
                            }
                        }
                        if seeded {
                            // A fresh process over an old store: publish
                            // the re-seeded keys now, so this very turn's
                            // β matches an uninterrupted run. A no-op
                            // within one process (keys already live).
                            self.stats.refresh();
                        }
                        record.state
                    }
                    Ok(Ok(None)) => UserState::default(),
                    Ok(Err(_)) | Err(_) => {
                        self.fault.state_io_error.incr(1);
                        UserState::default()
                    }
                }
            }
        };
        users.insert(user, ResidentUser { state, last_touch: touch, dirty_epoch: 0 });
    }

    /// Enforce the shard's resident bound: while over capacity, evict
    /// the least-recently-used user other than `keep` (the one this
    /// request is serving), writing a dirty victim back first. A failed
    /// writeback aborts the eviction — the victim stays resident and
    /// dirty, over capacity, and is retried on the next request;
    /// evict-safety means state is never dropped unpersisted.
    fn evict_overflow(
        &self,
        users: &mut HashMap<UserId, ResidentUser>,
        keep: UserId,
        query_text: &str,
    ) {
        let Some(tier) = &self.store else { return };
        while users.len() > tier.capacity_per_shard {
            let victim = users
                .iter()
                .filter(|(id, _)| **id != keep)
                .min_by_key(|(id, r)| (r.last_touch, id.0))
                .map(|(id, _)| *id);
            let Some(victim) = victim else { break };
            if users[&victim].dirty_epoch != 0
                && !self.writeback_locked(users, victim, query_text)
            {
                break;
            }
            users.remove(&victim);
            tier.evict.incr(1);
        }
    }

    /// Synchronously write one resident user's record under the held
    /// shard guard, clearing their dirty mark on success. Injected
    /// [`FaultStage::Writeback`] panics are caught and treated as a
    /// failed write (`serve.state_io_error`, state kept). Returns
    /// whether the record is now persisted.
    fn writeback_locked(
        &self,
        users: &mut HashMap<UserId, ResidentUser>,
        user: UserId,
        query_text: &str,
    ) -> bool {
        let Some(tier) = &self.store else { return false };
        let Some(r) = users.get(&user) else { return false };
        let record = UserRecord::new(
            user,
            r.state.clone(),
            collect_query_stats(&self.stats, &r.state.seen_queries),
        );
        let plan = self.plan.as_deref();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            if let Some(plan) = plan {
                match plan.inject(user, query_text, FaultStage::Writeback) {
                    Some(FaultAction::Panic) => {
                        std::panic::panic_any(InjectedFault("injected writeback panic"))
                    }
                    Some(FaultAction::Delay(d)) => std::thread::sleep(d),
                    Some(FaultAction::PoisonLock) | None => {}
                }
            }
            tier.store.put(&record)
        }));
        match caught {
            Ok(Ok(())) => {
                if let Some(r) = users.get_mut(&user) {
                    r.dirty_epoch = 0;
                }
                tier.writeback.incr(1);
                true
            }
            _ => {
                self.fault.state_io_error.incr(1);
                false
            }
        }
    }

    /// Queue a dirty user for the background writeback daemon. No-op in
    /// synchronous mode ([`StoreTierConfig::writeback`] off) or without
    /// a store tier. Never blocks on IO — the daemon does the encode
    /// and the write.
    fn enqueue_writeback(&self, user: UserId) {
        let Some(tier) = &self.store else { return };
        let Some(q) = &tier.queue else { return };
        let (mut st, poisoned) = lock_or_recover(&q.pending);
        if poisoned {
            self.fault.lock_recovered.incr(1);
        }
        if st.enqueued.insert(user) {
            st.queue.push_back(user);
            q.cond.notify_one();
        }
    }

    /// Synchronously write every dirty resident user back to the store
    /// tier. Returns the number of records written; `0` without a store
    /// tier. Failed writes count `serve.state_io_error` and leave the
    /// user resident and dirty. Dropping the engine flushes
    /// automatically (after the writeback daemon drains), so an engine
    /// that was dropped cleanly has every observed click on disk.
    pub fn flush_store(&self) -> usize {
        if self.store.is_none() {
            return 0;
        }
        let mut written = 0;
        for shard in self.shards.iter() {
            let (mut users, _) = self.lock_users(shard);
            let dirty: Vec<UserId> = users
                .iter()
                .filter(|(_, r)| r.dirty_epoch != 0)
                .map(|(id, _)| *id)
                .collect();
            for user in dirty {
                if self.writeback_locked(&mut users, user, "") {
                    written += 1;
                }
            }
        }
        written
    }

    /// The one search implementation: traces iff `force` or tracing is
    /// enabled, stamps the trace with the serving-layer context (shard,
    /// queue depth at admission, end-to-end nanoseconds, degrade
    /// reason), enforces the budget at the engine's stage checkpoints,
    /// and isolates every failure to this one request.
    fn search_inner(
        &self,
        user: UserId,
        query_text: &str,
        force: bool,
        budget: SearchBudget,
        limit: Option<u64>,
    ) -> Result<(SearchResponse, Option<QueryTrace>), Overloaded> {
        let shard_idx = self.shard_of(user);
        let shard = &self.shards[shard_idx];
        // Admission control: shed before registering, so a shed request
        // costs nothing but the atomic load.
        if let Some(limit) = limit {
            let depth = shard.inflight.load(Ordering::Relaxed);
            if depth >= limit {
                self.fault.overloaded.incr(1);
                return Err(Overloaded {
                    shard: shard_idx,
                    queue_depth: depth,
                    retry_after: self.retry_after(shard, depth, limit),
                });
            }
        }
        // Admission-stage fault injection, before any lock is taken.
        // PoisonLock is only honored here (poisoning mid-request would
        // just deadlock the injector on its own lock); an injected
        // Panic here is ignored — it would escape the per-query
        // isolation boundary that begins below.
        if let Some(plan) = &self.plan {
            match plan.inject(user, query_text, FaultStage::Admission) {
                Some(FaultAction::PoisonLock) => poison_mutex(&shard.users),
                Some(FaultAction::Delay(d)) => std::thread::sleep(d),
                Some(FaultAction::Panic) | None => {}
            }
        }
        let depth = shard.inflight.fetch_add(1, Ordering::Relaxed);
        shard.queue.record_value(depth);
        let mut trace = if force || self.ring.is_some() {
            let mut t = QueryTrace::new(user.0, query_text);
            t.shard = Some(shard_idx);
            t.queue_depth = Some(depth);
            Some(t)
        } else {
            None
        };
        let span = shard.search.span();
        let snap = self.stats.read();
        let stats = snap.get(&EngineCore::query_key(query_text));
        let degraded: Option<DegradeReason>;
        let mut cache_hit: Option<bool> = None;
        let turn = {
            let (mut users, was_poisoned) = self.lock_users(shard);
            if was_poisoned {
                // The thread that poisoned this lock died mid-mutation;
                // only the user it was serving can hold torn state, but
                // we cannot know which user that was. Evicting *this*
                // request's user bounds the damage to one profile (with
                // a store tier it faults back in from its last-good
                // record; without one it re-learns from scratch) while
                // every other user on the shard keeps their state. The
                // possibly-torn resident copy is deliberately *not*
                // written back.
                users.remove(&user);
                drop(users);
                self.fault.user_evicted.incr(1);
                degraded = Some(DegradeReason::LockPoisoned);
                self.core.degraded_search(user, query_text, stats)
            } else {
                self.ensure_resident(&mut users, user, query_text);
                self.evict_overflow(&mut users, user, query_text);
                // Fault-in may have re-seeded statistics keys and
                // republished the snapshot; re-read so this very turn's
                // β sees them (cheap: a read lock and an Arc clone).
                let snap = self.stats.read();
                let stats = snap.get(&EngineCore::query_key(query_text));
                let state =
                    &mut users.get_mut(&user).expect("ensure_resident inserted it").state;
                // The guard lives OUTSIDE the catch_unwind closure:
                // unwinding stops at this boundary before the guard
                // would drop, so a panicking query can never poison
                // its shard.
                let plan = self.plan.as_deref();
                let caught = catch_unwind(AssertUnwindSafe(|| {
                    let mut gate = |cp: StageCheckpoint| -> bool {
                        if let Some(plan) = plan {
                            match plan.inject(user, query_text, cp.into()) {
                                Some(FaultAction::Panic) => std::panic::panic_any(
                                    InjectedFault("injected personalization panic"),
                                ),
                                Some(FaultAction::Delay(d)) => std::thread::sleep(d),
                                Some(FaultAction::PoisonLock) | None => {}
                            }
                        }
                        budget.expired()
                    };
                    self.core.search_user_gated(
                        user,
                        query_text,
                        state,
                        stats,
                        trace.as_mut(),
                        Some(&mut gate),
                    )
                }));
                match caught {
                    Ok((turn, aborted_at, hit)) => {
                        degraded = aborted_at.map(DegradeReason::from_checkpoint);
                        cache_hit = hit;
                        turn
                    }
                    Err(_) => {
                        // `search_user_gated` never mutates user state,
                        // so the state the panicking call saw is still
                        // good — no eviction, no rollback. Re-serve
                        // from the stateless baseline path (off the
                        // shard lock).
                        drop(users);
                        degraded = Some(DegradeReason::PanicIsolated);
                        self.core.degraded_search(user, query_text, stats)
                    }
                }
            }
        };
        let total_nanos = span.finish();
        shard.inflight.fetch_sub(1, Ordering::Relaxed);
        if cache_hit != Some(true) {
            // This turn did real retrieval work: fold it into the
            // uncached-latency EWMA the retry-after hint scales by.
            let prev = shard.uncached_ewma_nanos.load(Ordering::Relaxed);
            let next = if prev == 0 {
                total_nanos
            } else {
                prev.saturating_sub(prev / 8).saturating_add(total_nanos / 8)
            };
            shard.uncached_ewma_nanos.store(next.max(1), Ordering::Relaxed);
        }
        if let Some(reason) = degraded {
            self.fault.degraded(reason).incr(1);
        }
        if let Some(t) = trace.as_mut() {
            t.total_nanos = total_nanos;
            t.degraded = degraded.map(DegradeReason::as_str);
        }
        Ok((SearchResponse { turn, degraded }, trace))
    }

    /// The deterministic-by-sampling / timing-by-threshold admission
    /// policy (see [`TraceConfig`]).
    fn admit(&self, trace: &QueryTrace) -> bool {
        let cfg = &self.trace_cfg;
        let sampled = cfg.sample_every > 0
            && fnv1a(&EngineCore::query_key(&trace.query_text)).is_multiple_of(cfg.sample_every);
        let slow =
            cfg.slow_threshold_nanos > 0 && trace.total_nanos >= cfg.slow_threshold_nanos;
        sampled || slow
    }

    /// The slow-query ring's current contents, oldest first. Empty when
    /// tracing is disabled.
    pub fn slow_queries(&self) -> Vec<QueryTrace> {
        self.ring.as_ref().map(TraceRing::collect).unwrap_or_default()
    }

    /// Each shard's current in-flight request count (index-aligned with
    /// shard ids). All zeros whenever no request is mid-flight.
    pub fn queue_depths(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.inflight.load(Ordering::Relaxed)).collect()
    }

    /// Fold the user's clicks on a turn back into the engine.
    ///
    /// Lock order: user shard, then query-statistics shard — every
    /// writer acquires in that order, so the pair can never deadlock.
    /// The snapshot refresh runs only after both are released.
    ///
    /// The fold runs under panic isolation with rollback: the user's
    /// state and the query's statistics are snapshotted first, and a
    /// panic mid-fold restores both (`serve.state_restored`) — a
    /// half-applied impression never survives.
    pub fn observe(&self, turn: &SearchTurn, impression: &Impression) {
        let shard = &self.shards[self.shard_of(turn.user)];
        let depth = shard.inflight.fetch_add(1, Ordering::Relaxed);
        shard.queue.record_value(depth);
        let folded;
        {
            let _span = shard.observe.span();
            let key = EngineCore::query_key(&turn.query_text);
            let stats_idx = self.stats.shard_of(&key);
            let (mut users, users_poisoned) = self.lock_users(shard);
            if users_poisoned {
                // Same single-user eviction as the read path: only this
                // request's user can be rebuilt from scratch safely.
                users.remove(&turn.user);
                self.fault.user_evicted.incr(1);
            }
            let user_existed = users.contains_key(&turn.user);
            self.ensure_resident(&mut users, turn.user, &turn.query_text);
            {
                let state =
                    &mut users.get_mut(&turn.user).expect("ensure_resident inserted it").state;
                let mut stats_shard = self.stats.lock_shard(stats_idx);
                let stats_existed = stats_shard.contains_key(&key);
                let stats = stats_shard.entry(key.clone()).or_default();
                // Rollback snapshots: both maps hold &mut borrows across
                // the isolation boundary, so a panic mid-fold must
                // restore them to the pre-impression values before the
                // guards release.
                let state_before = state.clone();
                let stats_before = stats.clone();
                let plan = self.plan.as_deref();
                let caught = catch_unwind(AssertUnwindSafe(|| {
                    if let Some(plan) = plan {
                        match plan.inject(turn.user, &turn.query_text, FaultStage::Observe) {
                            Some(FaultAction::Panic) => {
                                std::panic::panic_any(InjectedFault("injected observe panic"))
                            }
                            Some(FaultAction::Delay(d)) => std::thread::sleep(d),
                            Some(FaultAction::PoisonLock) | None => {}
                        }
                    }
                    self.core.observe_user(turn, impression, state, stats);
                }));
                folded = caught.is_ok();
                if caught.is_err() {
                    *state = state_before;
                    if stats_existed {
                        *stats = stats_before;
                    } else {
                        // Entries `or_default` freshly created are
                        // removed, not just zeroed — rollback must leave
                        // the map exactly as it was, or a panicked fold
                        // would still leak default-valued entries into
                        // the stats snapshot.
                        stats_shard.remove(&key);
                    }
                    self.fault.state_restored.incr(1);
                }
            }
            if !folded && !user_existed && self.store.is_none() {
                // A panicked fold on a user this request created must
                // not leak a default-valued user entry. With the store
                // tier on, the entry stays — rollback restored it to the
                // faulted-in (or fresh) pre-fold state, which is exactly
                // the resident copy eviction would persist.
                users.remove(&turn.user);
            }
            if folded {
                if let Some(tier) = &self.store {
                    users.get_mut(&turn.user).expect("still resident").dirty_epoch =
                        tier.epoch.fetch_add(1, Ordering::Relaxed);
                }
            }
            self.evict_overflow(&mut users, turn.user, &turn.query_text);
        }
        if folded {
            self.enqueue_writeback(turn.user);
        }
        shard.inflight.fetch_sub(1, Ordering::Relaxed);
        self.stats.tick();
    }

    /// Scatter `requests` across shard worker threads, gather results
    /// in request order. Shared by [`Self::batch_search`] and
    /// [`Self::batch_search_with`].
    fn batch_run<R, F>(&self, requests: &[(UserId, String)], run: F) -> Vec<R>
    where
        R: Send,
        F: Fn(UserId, &str) -> R + Sync,
    {
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, (user, _)) in requests.iter().enumerate() {
            by_shard[self.shard_of(*user)].push(i);
        }
        let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(requests.len()));
        std::thread::scope(|scope| {
            for indices in by_shard.into_iter().filter(|v| !v.is_empty()) {
                let results = &results;
                let run = &run;
                scope.spawn(move || {
                    let mut local = Vec::with_capacity(indices.len());
                    for i in indices {
                        let (user, query) = &requests[i];
                        local.push((i, run(*user, query)));
                    }
                    let (mut sink, _) = lock_or_recover(results);
                    sink.extend(local);
                });
            }
        });
        let mut results = results.into_inner().unwrap_or_else(|p| p.into_inner());
        results.sort_by_key(|(i, _)| *i);
        results.into_iter().map(|(_, r)| r).collect()
    }

    /// Execute a batch of searches, one thread per occupied shard.
    ///
    /// Results are returned in request order. Requests for users on the
    /// same shard run sequentially in request order (they'd serialize on
    /// the shard lock anyway); requests on different shards run in
    /// parallel. Since `search` does not learn (only `observe` does),
    /// this is observationally identical to calling [`Self::search`] in
    /// a loop.
    pub fn batch_search(&self, requests: &[(UserId, String)]) -> Vec<SearchTurn> {
        self.batch_run(requests, |user, query| self.search(user, query))
    }

    /// [`Self::batch_search`] under a shared [`SearchBudget`] with
    /// admission control: each request independently degrades or sheds.
    /// The deadline is absolute, so it bounds the *batch*, not each
    /// request — requests admitted after it passes degrade to the base
    /// ranking rather than extending the tail.
    pub fn batch_search_with(
        &self,
        requests: &[(UserId, String)],
        budget: SearchBudget,
    ) -> Vec<Result<SearchResponse, Overloaded>> {
        self.batch_run(requests, |user, query| self.search_with(user, query, budget))
    }

    /// Force an immediate rebuild of the β-statistics snapshot (tests
    /// and batch pipelines that want freshness at a phase boundary).
    pub fn refresh_stats(&self) {
        self.stats.refresh();
    }

    /// Clone out a user's state (if the user has been seen): the
    /// resident copy when the user is in memory, else — with a store
    /// tier — their on-disk record (an evicted user's record is always
    /// current: dirty victims are written back before removal). Never
    /// faults the user in; reading state is not residency-relevant. An
    /// unreadable record counts `serve.state_io_error` and reads as
    /// absent.
    pub fn user_state(&self, user: UserId) -> Option<UserState> {
        let shard = &self.shards[self.shard_of(user)];
        {
            let (users, _) = self.lock_users(shard);
            if let Some(r) = users.get(&user) {
                return Some(r.state.clone());
            }
        }
        let tier = self.store.as_ref()?;
        match tier.store.get(user) {
            Ok(record) => record.map(|r| r.state),
            Err(_) => {
                self.fault.state_io_error.incr(1);
                None
            }
        }
    }

    /// Accumulated statistics for a query string, as of the last
    /// snapshot refresh.
    pub fn query_stats(&self, query_text: &str) -> Option<QueryStats> {
        self.stats.read().get(&EngineCore::query_key(query_text)).cloned()
    }

    /// Number of distinct users with state: resident across all
    /// shards, plus — with a store tier — evicted users whose record
    /// is on disk.
    pub fn user_count(&self) -> usize {
        let mut seen: HashSet<UserId> = HashSet::new();
        for s in self.shards.iter() {
            seen.extend(self.lock_users(s).0.keys().copied());
        }
        if let Some(tier) = &self.store {
            if let Ok(stored) = tier.store.users() {
                seen.extend(stored);
            }
        }
        seen.len()
    }

    /// Number of users currently resident in memory (≤ the per-shard
    /// capacity × shard count when a store tier bounds residency).
    pub fn resident_count(&self) -> usize {
        self.shards.iter().map(|s| self.lock_users(s).0.len()).sum()
    }

    /// Reset one user's learned state, both the resident copy and —
    /// with a store tier — their on-disk record.
    pub fn forget_user(&self, user: UserId) {
        let shard = &self.shards[self.shard_of(user)];
        self.lock_users(shard).0.remove(&user);
        if let Some(tier) = &self.store {
            if tier.store.remove(user).is_err() {
                self.fault.state_io_error.incr(1);
            }
        }
    }

    /// Export one user's learned state as JSON (profile portability):
    /// the [`pws_core::UserExport`] envelope — the state *plus* the
    /// per-query adaptive-β statistics for every query the user has
    /// issued. Earlier revisions exported the bare state; an engine
    /// importing it then chose β from empty statistics and replayed
    /// differently than the exporter (the regression test below pins
    /// the fix).
    ///
    /// `Ok(None)` when the user has no state (resident or stored).
    /// Serialization failure is a `serde_json` invariant violation that
    /// previous revisions treated as a panic; it now counts
    /// `serve.state_io_error` and surfaces as `Err` so a state-sync
    /// loop degrades to "skip this user" instead of killing its serving
    /// thread.
    pub fn export_user(&self, user: UserId) -> Result<Option<String>, serde_json::Error> {
        let Some(state) = self.user_state(user) else { return Ok(None) };
        let query_stats = collect_query_stats(&self.stats, &state.seen_queries);
        let export = pws_core::UserExport { state, query_stats };
        serde_json::to_string(&export)
            .map(Some)
            .inspect_err(|_| self.fault.state_io_error.incr(1))
    }

    /// Import a previously exported user state (the current
    /// [`pws_core::UserExport`] envelope or the legacy bare-state
    /// form), replacing any existing state for that user id.
    ///
    /// The payload is validated before anything is touched: a wrong
    /// model dimension, non-finite weights, or negative counts are
    /// rejected with a typed [`pws_core::ImportError`], count
    /// `serve.state_io_error`, and leave existing state untouched.
    /// Imported statistics only fill query keys this engine has never
    /// observed (live statistics are newer); the statistics snapshot is
    /// refreshed so the very next search sees them.
    pub fn import_user(&self, user: UserId, json: &str) -> Result<(), pws_core::ImportError> {
        let export = pws_core::parse_user_export(json)
            .inspect_err(|_| self.fault.state_io_error.incr(1))?;
        let shard = &self.shards[self.shard_of(user)];
        {
            let (mut users, _) = self.lock_users(shard);
            let (touch, dirty) = match &self.store {
                Some(tier) => (
                    tier.touch.fetch_add(1, Ordering::Relaxed),
                    tier.epoch.fetch_add(1, Ordering::Relaxed),
                ),
                None => (0, 0),
            };
            users.insert(
                user,
                ResidentUser { state: export.state, last_touch: touch, dirty_epoch: dirty },
            );
            for (key, qs) in export.query_stats {
                let mut g = self.stats.lock_shard(self.stats.shard_of(&key));
                g.entry(key).or_insert(qs);
            }
            self.evict_overflow(&mut users, user, "");
        }
        self.enqueue_writeback(user);
        self.stats.refresh();
        Ok(())
    }
}

/// Clean-shutdown guard for the store tier, dropped with the engine:
/// wake the writeback daemon with the shutdown flag (it drains its
/// queue first), join it, then flush any remaining dirty residents —
/// so a dropped engine has every observed click on disk.
struct StoreShutdown {
    shards: Arc<Vec<UserShard>>,
    stats: Arc<ShardedStats>,
    tier: Arc<StoreTier>,
    daemon: Option<std::thread::JoinHandle<()>>,
}

impl Drop for StoreShutdown {
    fn drop(&mut self) {
        if let Some(q) = &self.tier.queue {
            let (mut st, _) = lock_or_recover(&q.pending);
            st.shutdown = true;
            q.cond.notify_all();
        }
        if let Some(handle) = self.daemon.take() {
            let _ = handle.join();
        }
        flush_dirty(&self.shards, &self.stats, &self.tier);
    }
}

// The whole point of the crate; if a field ever grows interior
// mutability that isn't thread-safe, this fails to compile.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ServingEngine<'static>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use pws_click::{Click, ShownResult};
    use pws_core::{BlendStrategy, PersonalizedSearchEngine};
    use pws_corpus::query::QueryId;
    use pws_geo::{LocId, LocationOntology};
    use pws_index::{IndexBuilder, SearchEngine, StoredDoc};

    fn world() -> LocationOntology {
        let mut o = LocationOntology::new();
        let r = o.add(LocId::WORLD, "westland", vec![]);
        let c = o.add(r, "ardonia", vec![]);
        let s = o.add(c, "vale", vec![]);
        o.add(s, "alden", vec![]);
        o.add(s, "lakemoor", vec![]);
        o
    }

    fn index() -> SearchEngine {
        let mut b = IndexBuilder::new();
        b.add(StoredDoc::new(0, "http://a.test/0", "Seafood guide",
            "seafood restaurant guide with lobster in alden harbor area"));
        b.add(StoredDoc::new(1, "http://b.test/1", "Seafood lakemoor",
            "seafood restaurant in lakemoor with fresh oysters"));
        b.add(StoredDoc::new(2, "http://c.test/2", "Sushi place",
            "sushi restaurant downtown with omakase menu in alden"));
        b.add(StoredDoc::new(3, "http://d.test/3", "Steak house",
            "steak restaurant grill with ribeye specials"));
        b.add(StoredDoc::new(4, "http://e.test/4", "Pizza lakemoor",
            "pizza restaurant in lakemoor stone oven margherita"));
        b.add(StoredDoc::new(5, "http://f.test/5", "Noodle bar",
            "noodle restaurant with ramen and broth in alden"));
        b.build()
    }

    /// The same six documents as [`index`], as a two-segment on-disk
    /// index (docs 0–2 in segment 0, docs 3–5 in segment 1). Global doc
    /// ids come out identical, so transcripts are directly comparable.
    fn segmented_index() -> pws_index::SegmentedIndex {
        let docs: [(&str, &str, &str); 6] = [
            ("http://a.test/0", "Seafood guide",
                "seafood restaurant guide with lobster in alden harbor area"),
            ("http://b.test/1", "Seafood lakemoor",
                "seafood restaurant in lakemoor with fresh oysters"),
            ("http://c.test/2", "Sushi place",
                "sushi restaurant downtown with omakase menu in alden"),
            ("http://d.test/3", "Steak house",
                "steak restaurant grill with ribeye specials"),
            ("http://e.test/4", "Pizza lakemoor",
                "pizza restaurant in lakemoor stone oven margherita"),
            ("http://f.test/5", "Noodle bar",
                "noodle restaurant with ramen and broth in alden"),
        ];
        let mut segments = Vec::new();
        for chunk in docs.chunks(3) {
            let mut b = pws_index::SegmentBuilder::new(Default::default());
            for (url, title, body) in chunk {
                b.add(url, title, body);
            }
            segments.push(b.finish_segment().expect("segment"));
        }
        pws_index::SegmentedIndex::from_segments(segments).expect("segmented index")
    }

    fn impression_from(turn: &SearchTurn, clicked_docs: &[u32]) -> Impression {
        Impression {
            user: turn.user,
            query: QueryId(0),
            query_text: turn.query_text.clone(),
            results: turn
                .hits
                .iter()
                .map(|h| ShownResult {
                    doc: h.doc,
                    rank: h.rank,
                    url: h.url.to_string(),
                    title: h.title.to_string(),
                    snippet: h.snippet.clone(),
                })
                .collect(),
            clicks: turn
                .hits
                .iter()
                .filter(|h| clicked_docs.contains(&h.doc))
                .map(|h| Click { doc: h.doc, rank: h.rank, dwell: 600 })
                .collect(),
        }
    }

    /// The deterministic replay click rule: click the highest doc id on
    /// the page (arbitrary but stable, and it exercises skip-above pair
    /// mining because the clicked doc is rarely rank 1).
    fn click_rule(turn: &SearchTurn) -> Vec<u32> {
        turn.hits.iter().map(|h| h.doc).max().into_iter().collect()
    }

    /// A session log: per user, an ordered list of query strings.
    fn session_log(queries: &dyn Fn(u32) -> Vec<String>, users: u32) -> Vec<(UserId, Vec<String>)> {
        (0..users).map(|u| (UserId(u), queries(u))).collect()
    }

    /// Replay through the serial engine, turns interleaved round-robin
    /// across users (the order the middleware would see); returns each
    /// user's Debug-formatted turn transcript.
    fn replay_serial(
        log: &[(UserId, Vec<String>)],
        cfg: EngineConfig,
    ) -> HashMap<UserId, Vec<String>> {
        let idx = index();
        let w = world();
        let mut e = PersonalizedSearchEngine::new(&idx, &w, cfg);
        let mut out: HashMap<UserId, Vec<String>> = HashMap::new();
        let rounds = log.iter().map(|(_, qs)| qs.len()).max().unwrap_or(0);
        for round in 0..rounds {
            for (user, qs) in log {
                let Some(q) = qs.get(round) else { continue };
                let turn = e.search(*user, q);
                let imp = impression_from(&turn, &click_rule(&turn));
                e.observe(&turn, &imp);
                out.entry(*user).or_default().push(format!("{turn:?}"));
            }
        }
        out
    }

    /// Replay through the sharded engine with `threads` worker threads,
    /// each owning a disjoint set of users (a user's turns must stay
    /// ordered; cross-user order is left to the scheduler on purpose).
    fn replay_sharded(
        log: &[(UserId, Vec<String>)],
        cfg: EngineConfig,
        shards: usize,
        threads: usize,
    ) -> HashMap<UserId, Vec<String>> {
        replay_sharded_traced(log, cfg, shards, threads, TraceConfig::default())
    }

    fn replay_sharded_traced(
        log: &[(UserId, Vec<String>)],
        cfg: EngineConfig,
        shards: usize,
        threads: usize,
        trace: TraceConfig,
    ) -> HashMap<UserId, Vec<String>> {
        let idx = index();
        replay_sharded_on(&idx, log, cfg, shards, threads, trace)
    }

    /// Same sharded replay, but over any retrieval backend — the
    /// segmented-backend equivalence tests pass a [`SegmentedIndex`]
    /// (and a [`LiveIndex`]) here.
    fn replay_sharded_on(
        idx: &dyn pws_index::RetrievalBackend,
        log: &[(UserId, Vec<String>)],
        cfg: EngineConfig,
        shards: usize,
        threads: usize,
        trace: TraceConfig,
    ) -> HashMap<UserId, Vec<String>> {
        let w = world();
        let e = ServingEngine::new(
            idx,
            &w,
            cfg,
            ServeConfig { shards, stats_refresh_every: 1, trace, ..ServeConfig::default() },
        );
        type Transcript = Vec<(UserId, Vec<String>)>;
        let transcripts: Vec<Mutex<Transcript>> =
            (0..threads).map(|_| Mutex::new(Vec::new())).collect();
        std::thread::scope(|scope| {
            for (t, sink) in transcripts.iter().enumerate() {
                let e = &e;
                let log = &log;
                scope.spawn(move || {
                    for (i, (user, qs)) in log.iter().enumerate() {
                        if i % threads != t {
                            continue;
                        }
                        let mut turns = Vec::with_capacity(qs.len());
                        for q in qs {
                            let turn = e.search(*user, q);
                            let imp = impression_from(&turn, &click_rule(&turn));
                            e.observe(&turn, &imp);
                            turns.push(format!("{turn:?}"));
                        }
                        sink.lock().unwrap().push((*user, turns));
                    }
                });
            }
        });
        let mut out = HashMap::new();
        for sink in transcripts {
            for (user, turns) in sink.into_inner().unwrap() {
                out.insert(user, turns);
            }
        }
        out
    }

    fn assert_equivalent(
        serial: &HashMap<UserId, Vec<String>>,
        sharded: &HashMap<UserId, Vec<String>>,
        label: &str,
    ) {
        assert_eq!(serial.len(), sharded.len(), "{label}: user sets differ");
        for (user, s_turns) in serial {
            let p_turns = sharded.get(user).unwrap_or_else(|| panic!("{label}: {user:?} missing"));
            assert_eq!(
                s_turns, p_turns,
                "{label}: {user:?} transcripts diverge (byte-level)"
            );
        }
    }

    /// Sharded replay is byte-identical to serial replay across every
    /// shard/thread combination, under the *adaptive* β blend. Each user
    /// issues user-disjoint query strings, so the query-statistics
    /// coupling between users is inert and per-user determinism is the
    /// whole story (with `stats_refresh_every: 1` each user's own stats
    /// are always fresh for its next turn).
    #[test]
    fn sharded_replay_matches_serial_adaptive_disjoint_queries() {
        let queries = |u: u32| -> Vec<String> {
            vec![
                format!("seafood restaurant u{u}"),
                format!("restaurant u{u}"),
                format!("seafood restaurant u{u}"),
                format!("sushi restaurant u{u}"),
                format!("seafood restaurant u{u}"),
            ]
        };
        let log = session_log(&queries, 6);
        let serial = replay_serial(&log, EngineConfig::default());
        for shards in [1usize, 3, 8] {
            for threads in [1usize, 4] {
                let sharded = replay_sharded(&log, EngineConfig::default(), shards, threads);
                assert_equivalent(&serial, &sharded, &format!("{shards} shards / {threads} threads"));
            }
        }
    }

    /// With a fixed β the statistics never influence ranking, so even
    /// *shared* query strings replay byte-identically at any concurrency.
    #[test]
    fn sharded_replay_matches_serial_fixed_beta_shared_queries() {
        let queries = |_u: u32| -> Vec<String> {
            ["seafood restaurant", "restaurant", "seafood restaurant", "pizza restaurant"]
                .iter()
                .map(|s| s.to_string())
                .collect()
        };
        let log = session_log(&queries, 5);
        let cfg = EngineConfig {
            blend: BlendStrategy::Fixed(0.4),
            ..EngineConfig::default()
        };
        let serial = replay_serial(&log, cfg.clone());
        for shards in [1usize, 4] {
            for threads in [1usize, 4] {
                let sharded = replay_sharded(&log, cfg.clone(), shards, threads);
                assert_equivalent(&serial, &sharded, &format!("{shards} shards / {threads} threads"));
            }
        }
    }

    /// Swapping the segmented on-disk backend (via [`LiveIndex`]) under
    /// the serving stack leaves the replay-equivalence contract intact:
    /// sharded replays over both backends are byte-identical to the
    /// serial in-memory replay, cache and all.
    #[test]
    fn sharded_replay_on_segmented_backend_matches_serial() {
        let queries = |u: u32| -> Vec<String> {
            vec![
                format!("seafood restaurant u{u}"),
                format!("restaurant u{u}"),
                format!("seafood restaurant u{u}"),
                format!("sushi restaurant u{u}"),
            ]
        };
        let log = session_log(&queries, 6);
        let serial = replay_serial(&log, EngineConfig::default());
        let seg = segmented_index();
        let live = LiveIndex::new(segmented_index());
        for (shards, threads) in [(1usize, 1usize), (3, 4)] {
            let on_seg = replay_sharded_on(
                &seg, &log, EngineConfig::default(), shards, threads, TraceConfig::default());
            assert_equivalent(
                &serial, &on_seg,
                &format!("segmented backend, {shards} shards / {threads} threads"),
            );
            let on_live = replay_sharded_on(
                &live, &log, EngineConfig::default(), shards, threads, TraceConfig::default());
            assert_equivalent(
                &serial, &on_live,
                &format!("live segmented backend, {shards} shards / {threads} threads"),
            );
        }
    }

    /// Publishing a segment through [`ServingEngine::publish_segment`]
    /// bumps the retrieval-cache epoch (invalidating every cached pool)
    /// and makes the new segment's documents visible to the very next
    /// query — even one whose token sequence was already cached.
    #[test]
    fn publish_segment_bumps_epoch_and_surfaces_new_docs() {
        let seg_all = segmented_index();
        let (first, second) = {
            let segs = seg_all.segments();
            (segs[0].clone(), segs[1].clone())
        };
        let live = LiveIndex::new(
            pws_index::SegmentedIndex::from_segments(vec![first]).expect("index"));
        let w = world();
        let e = ServingEngine::new(
            &live,
            &w,
            EngineConfig::default(),
            ServeConfig { shards: 2, stats_refresh_every: 1, ..ServeConfig::default() },
        );
        let cache = e.retrieval_cache().expect("cache enabled by default");
        // Warm the cache on the single-segment index: "restaurant"
        // matches docs 0–2 only.
        let before = e.search(UserId(1), "pizza restaurant");
        assert!(before.hits.iter().all(|h| h.doc <= 2), "segment 1 not published yet");
        assert!(!cache.is_empty(), "base retrieval must have been cached");
        let epoch_before = cache.epoch();

        e.publish_segment(&live, second).expect("publish");
        assert_eq!(cache.epoch(), epoch_before + 1, "publish must bump the cache epoch");
        assert_eq!(live.snapshot().num_segments(), 2);
        assert_eq!(live.snapshot().doc_count(), 6);

        // The same query re-retrieves against the extended index: the
        // pizza doc lives in the published segment and must now surface.
        let after = e.search(UserId(1), "pizza restaurant");
        assert!(
            after.hits.iter().any(|h| h.doc == 4),
            "published segment's docs must be visible: {:?}",
            after.hits.iter().map(|h| h.doc).collect::<Vec<_>>()
        );
        // Publishing a mismatched segment leaves index + epoch unchanged.
        let mut bad = pws_index::SegmentBuilder::new(pws_index::Analyzer {
            stem: false,
            ..Default::default()
        });
        bad.add("http://g.test/6", "Mismatch", "built with a different analyzer");
        let bad = bad.finish_segment().expect("segment");
        let epoch = cache.epoch();
        assert!(e.publish_segment(&live, bad).is_err(), "analyzer mismatch must fail");
        assert_eq!(cache.epoch(), epoch, "failed publish must not invalidate");
        assert_eq!(live.snapshot().num_segments(), 2);
    }

    #[test]
    fn batch_search_matches_sequential_and_preserves_order() {
        let idx = index();
        let w = world();
        let e = ServingEngine::new(&idx, &w, EngineConfig::default(), ServeConfig::default());
        let requests: Vec<(UserId, String)> = (0..12u32)
            .map(|i| (UserId(i % 5), format!("restaurant u{}", i % 5)))
            .collect();
        let batch = e.batch_search(&requests);
        assert_eq!(batch.len(), requests.len());
        for ((user, q), turn) in requests.iter().zip(&batch) {
            assert_eq!(turn.user, *user);
            assert_eq!(&turn.query_text, q);
            let again = e.search(*user, q);
            assert_eq!(format!("{turn:?}"), format!("{again:?}"));
        }
    }

    #[test]
    fn adaptive_beta_flows_through_snapshot() {
        let idx = index();
        let w = world();
        let e = ServingEngine::new(
            &idx,
            &w,
            EngineConfig::default(),
            ServeConfig { shards: 4, stats_refresh_every: 1, ..ServeConfig::default() },
        );
        assert_eq!(e.search(UserId(0), "restaurant").beta, 0.5, "no stats → neutral");
        for u in 0..6u32 {
            let turn = e.search(UserId(u), "restaurant");
            let imp = impression_from(&turn, &click_rule(&turn));
            e.observe(&turn, &imp);
        }
        assert!(e.query_stats("restaurant").is_some());
        let beta = e.search(UserId(9), "restaurant").beta;
        assert!(beta > 0.0 && beta < 1.0, "β should now be stats-driven, got {beta}");
    }

    #[test]
    fn stats_refresh_epoch_batches_snapshot_rebuilds() {
        let idx = index();
        let w = world();
        let e = ServingEngine::new(
            &idx,
            &w,
            EngineConfig::default(),
            ServeConfig { shards: 2, stats_refresh_every: 1_000_000, ..ServeConfig::default() },
        );
        let turn = e.search(UserId(0), "restaurant");
        let imp = impression_from(&turn, &click_rule(&turn));
        e.observe(&turn, &imp);
        // The write landed in a shard but the epoch hasn't rolled, so the
        // snapshot still reads empty…
        assert!(e.query_stats("restaurant").is_none());
        // …until explicitly refreshed.
        e.refresh_stats();
        assert!(e.query_stats("restaurant").is_some());
    }

    #[test]
    fn user_lifecycle_forget_export_import() {
        let idx = index();
        let w = world();
        let e = ServingEngine::new(&idx, &w, EngineConfig::default(), ServeConfig::default());
        let user = UserId(42);
        for _ in 0..3 {
            let turn = e.search(user, "seafood restaurant");
            let imp = impression_from(&turn, &click_rule(&turn));
            e.observe(&turn, &imp);
        }
        let json = e.export_user(user).expect("serializable").expect("state exists");
        let weights = e.user_state(user).unwrap().model.weights.clone();
        e.forget_user(user);
        assert!(e.user_state(user).is_none());
        e.import_user(user, &json).expect("round trip");
        assert_eq!(e.user_state(user).unwrap().model.weights, weights);
        assert!(e.import_user(user, "{not json").is_err());
    }

    #[test]
    fn per_shard_metrics_are_recorded() {
        // reset() zeroes the registry every test in this binary shares;
        // the lock serializes us against other global-count tests.
        let _guard = pws_obs::test_lock();
        let idx = index();
        let w = world();
        pws_obs::reset();
        let e = ServingEngine::new(
            &idx,
            &w,
            EngineConfig::default(),
            ServeConfig { shards: 3, stats_refresh_every: 1, ..ServeConfig::default() },
        );
        for u in 0..24u32 {
            let turn = e.search(UserId(u), "restaurant");
            let imp = impression_from(&turn, &click_rule(&turn));
            e.observe(&turn, &imp);
        }
        let snap = pws_obs::snapshot();
        let count = |name: &str| {
            snap.stages.iter().find(|s| s.name == name).map(|s| s.count).unwrap_or(0)
        };
        let searches: u64 = (0..3).map(|i| count(&format!("serve.shard{i}.search"))).sum();
        let observes: u64 = (0..3).map(|i| count(&format!("serve.shard{i}.observe"))).sum();
        let queue: u64 = (0..3).map(|i| count(&format!("serve.shard{i}.queue"))).sum();
        assert_eq!(searches, 24);
        assert_eq!(observes, 24);
        assert_eq!(queue, 48, "queue depth sampled once per search and per observe");
        // 24 users over 3 well-mixed shards: every shard should have seen
        // at least one search.
        for i in 0..3 {
            assert!(count(&format!("serve.shard{i}.search")) > 0, "shard {i} idle");
        }
    }

    /// The acceptance-criteria test: replay equivalence holds with
    /// tracing **enabled** (every query traced and admitted), across
    /// shard and thread counts — observability does not perturb ranking
    /// or determinism.
    #[test]
    fn sharded_replay_with_tracing_enabled_matches_serial() {
        let queries = |u: u32| -> Vec<String> {
            vec![
                format!("seafood restaurant u{u}"),
                format!("restaurant u{u}"),
                format!("seafood restaurant u{u}"),
                format!("sushi restaurant u{u}"),
            ]
        };
        let log = session_log(&queries, 6);
        let serial = replay_serial(&log, EngineConfig::default());
        for shards in [1usize, 3, 8] {
            for threads in [1usize, 4] {
                let traced = replay_sharded_traced(
                    &log,
                    EngineConfig::default(),
                    shards,
                    threads,
                    TraceConfig::sample_all(32),
                );
                assert_equivalent(
                    &serial,
                    &traced,
                    &format!("tracing on, {shards} shards / {threads} threads"),
                );
            }
        }
    }

    /// Sampling admission is keyed by the query string, so two identical
    /// replays capture identical trace sets — the deterministic half of
    /// the slow-query-log contract.
    #[test]
    fn slow_query_ring_sampling_is_replay_deterministic() {
        let run = || -> Vec<String> {
            let idx = index();
            let w = world();
            let e = ServingEngine::new(
                &idx,
                &w,
                EngineConfig::default(),
                ServeConfig {
                    shards: 4,
                    stats_refresh_every: 1,
                    trace: TraceConfig {
                        enabled: true,
                        slow_threshold_nanos: 0,
                        sample_every: 2,
                        ring_capacity: 64,
                    },
                    ..ServeConfig::default()
                },
            );
            for u in 0..8u32 {
                for q in ["seafood restaurant", "restaurant", "sushi restaurant",
                          "pizza restaurant", "noodle restaurant"] {
                    e.search(UserId(u), q);
                }
            }
            e.slow_queries().iter().map(|t| t.query_text.clone()).collect()
        };
        let first = run();
        let second = run();
        assert_eq!(first, second, "same replay must admit the same traces");
        assert!(!first.is_empty(), "1-in-2 sampling over 5 query strings admits some");
        // Admission is per query string: a string is either always in or
        // always out.
        let admitted: std::collections::HashSet<&String> = first.iter().collect();
        assert!(admitted.len() < 5, "1-in-2 sampling should reject some strings");
    }

    #[test]
    fn slow_query_ring_traces_carry_serving_context() {
        let idx = index();
        let w = world();
        let e = ServingEngine::new(
            &idx,
            &w,
            EngineConfig::default(),
            ServeConfig {
                shards: 4,
                stats_refresh_every: 1,
                trace: TraceConfig::sample_all(8),
                ..ServeConfig::default()
            },
        );
        for u in 0..6u32 {
            e.search(UserId(u), "seafood restaurant");
        }
        let traces = e.slow_queries();
        assert_eq!(traces.len(), 6);
        for t in &traces {
            let shard = t.shard.expect("serving layer stamps the shard");
            assert!(shard < 4);
            assert!(t.queue_depth.is_some(), "queue depth at admission");
            assert!(t.total_nanos > 0, "end-to-end latency stamped");
            assert!(!t.results.is_empty(), "full decision record");
            assert!(!t.stages.is_empty());
        }
        // Ring capacity bounds the log, overwriting oldest.
        for u in 0..20u32 {
            e.search(UserId(u), "restaurant");
        }
        let traces = e.slow_queries();
        assert_eq!(traces.len(), 8, "capacity-bounded");
    }

    #[test]
    fn tracing_disabled_yields_no_traces() {
        let idx = index();
        let w = world();
        let e = ServingEngine::new(&idx, &w, EngineConfig::default(), ServeConfig::default());
        e.search(UserId(0), "restaurant");
        assert!(e.slow_queries().is_empty());
        // But a forced trace still works, without touching the ring.
        let (turn, trace) = e.search_traced(UserId(0), "restaurant");
        assert_eq!(trace.query_text, "restaurant");
        assert_eq!(trace.user, 0);
        assert!(!trace.results.is_empty());
        assert!(e.slow_queries().is_empty());
        // And it matches the untraced search byte-for-byte.
        let again = e.search(UserId(0), "restaurant");
        assert_eq!(format!("{turn:?}"), format!("{again:?}"));
    }

    #[test]
    fn queue_depth_returns_to_zero_after_batch_search() {
        let idx = index();
        let w = world();
        let e = ServingEngine::new(&idx, &w, EngineConfig::default(), ServeConfig::default());
        let requests: Vec<(UserId, String)> = (0..32u32)
            .map(|i| (UserId(i), format!("restaurant u{}", i % 4)))
            .collect();
        let turns = e.batch_search(&requests);
        assert_eq!(turns.len(), 32);
        assert!(
            e.queue_depths().iter().all(|&d| d == 0),
            "all shards drained: {:?}",
            e.queue_depths()
        );
    }

    /// Test-only injector: one action at one stage, for queries
    /// containing a marker substring.
    struct TargetedPlan {
        stage: FaultStage,
        action: FaultAction,
        query_contains: &'static str,
    }

    impl FaultPlan for TargetedPlan {
        fn inject(&self, _user: UserId, q: &str, stage: FaultStage) -> Option<FaultAction> {
            (stage == self.stage && q.contains(self.query_contains)).then_some(self.action)
        }
    }

    #[test]
    fn unlimited_budget_search_with_matches_search() {
        let idx = index();
        let w = world();
        let e = ServingEngine::new(&idx, &w, EngineConfig::default(), ServeConfig::default());
        for _ in 0..3 {
            let turn = e.search(UserId(1), "seafood restaurant");
            let imp = impression_from(&turn, &click_rule(&turn));
            e.observe(&turn, &imp);
        }
        let resp = e
            .search_with(UserId(1), "seafood restaurant", SearchBudget::none())
            .expect("no admission limit configured");
        assert!(!resp.is_degraded());
        let plain = e.search(UserId(1), "seafood restaurant");
        assert_eq!(format!("{:?}", resp.turn), format!("{plain:?}"));
    }

    #[test]
    fn expired_budget_degrades_to_baseline_order_never_errors() {
        let idx = index();
        let w = world();
        let e = ServingEngine::new(&idx, &w, EngineConfig::default(), ServeConfig::default());
        // Warm the user so personalization would actually reorder.
        for _ in 0..3 {
            let turn = e.search(UserId(7), "seafood restaurant");
            let imp = impression_from(&turn, &click_rule(&turn));
            e.observe(&turn, &imp);
        }
        let resp = e
            .search_with(UserId(7), "seafood restaurant", SearchBudget::already_expired())
            .expect("deadline expiry degrades, never sheds");
        assert_eq!(resp.degraded, Some(DegradeReason::DeadlineRetrieval));
        assert!(!resp.turn.hits.is_empty(), "degraded turn still answers the query");
        assert!(!resp.turn.personalized);
        // A degraded turn serves the same *ranking* the stateless
        // baseline path would (the diagnostic feature matrix may differ:
        // the checkpoint path computes it against the user's real
        // profile before aborting, the stateless path against a default
        // one — but neither re-orders the pool).
        let baseline = e.core().degraded_search(UserId(7), "seafood restaurant",
            e.query_stats("seafood restaurant").as_ref());
        let page = |t: &SearchTurn| -> Vec<(u32, usize, String)> {
            t.hits.iter().map(|h| (h.doc, h.rank, format!("{:.12}", h.score))).collect()
        };
        assert_eq!(page(&resp.turn), page(&baseline));
        assert_eq!(resp.turn.beta, baseline.beta);
    }

    #[test]
    fn admission_control_sheds_with_retry_hint_but_trusted_path_passes() {
        let idx = index();
        let w = world();
        let e = ServingEngine::new(
            &idx,
            &w,
            EngineConfig::default(),
            ServeConfig { max_queue_depth: Some(0), ..ServeConfig::default() },
        );
        let err = e
            .search_with(UserId(0), "restaurant", SearchBudget::none())
            .expect_err("high-water mark of zero sheds everything");
        assert!(err.retry_after > Duration::ZERO, "retry hint must be actionable");
        assert_eq!(err.queue_depth, 0);
        // The per-request bound sheds even when the engine-wide one is off.
        let e2 = ServingEngine::new(&idx, &w, EngineConfig::default(), ServeConfig::default());
        let budget = SearchBudget { max_queue_depth: Some(0), ..SearchBudget::none() };
        assert!(e2.search_with(UserId(0), "restaurant", budget).is_err());
        // The trusted internal path bypasses admission control entirely.
        let turn = e.search(UserId(0), "restaurant");
        assert!(!turn.hits.is_empty());
        // batch_search_with reports per-request shedding.
        let requests = vec![(UserId(0), "restaurant".to_string())];
        let out = e.batch_search_with(&requests, SearchBudget::none());
        assert!(out[0].is_err());
    }

    #[test]
    fn injected_delay_plus_deadline_degrades_at_the_right_checkpoint() {
        let idx = index();
        let w = world();
        let plan = Arc::new(TargetedPlan {
            stage: FaultStage::Concepts,
            action: FaultAction::Delay(Duration::from_millis(50)),
            query_contains: "slow",
        });
        let e = ServingEngine::new(&idx, &w, EngineConfig::default(), ServeConfig::default())
            .with_fault_plan(plan);
        // Deterministic despite being time-based: the injected 50ms delay
        // sits *before* the concepts checkpoint, dwarfing the 5ms budget.
        let resp = e
            .search_with(UserId(3), "slow seafood restaurant",
                SearchBudget::with_deadline_in(Duration::from_millis(5)))
            .expect("deadline degrades, never sheds");
        assert_eq!(resp.degraded, Some(DegradeReason::DeadlineConcepts));
        // Un-marked queries see no fault and no degradation.
        let resp = e
            .search_with(UserId(3), "seafood restaurant",
                SearchBudget::with_deadline_in(Duration::from_secs(60)))
            .expect("no admission limit");
        assert!(!resp.is_degraded());
    }

    #[test]
    fn panic_isolation_answers_the_query_and_preserves_state() {
        quiet_injected_panics();
        let idx = index();
        let w = world();
        let plan = Arc::new(TargetedPlan {
            stage: FaultStage::Features,
            action: FaultAction::Panic,
            query_contains: "boom",
        });
        let e = ServingEngine::new(&idx, &w, EngineConfig::default(), ServeConfig::default())
            .with_fault_plan(plan);
        for _ in 0..3 {
            let turn = e.search(UserId(5), "seafood restaurant");
            let imp = impression_from(&turn, &click_rule(&turn));
            e.observe(&turn, &imp);
        }
        let healthy_before = format!("{:?}", e.search(UserId(5), "seafood restaurant"));
        let resp = e
            .search_with(UserId(5), "boom seafood restaurant", SearchBudget::none())
            .expect("panics degrade, never shed");
        assert_eq!(resp.degraded, Some(DegradeReason::PanicIsolated));
        assert!(!resp.turn.hits.is_empty(), "isolated panic still answers the query");
        // The read path never mutates state, so the user's profile
        // survives the panic untouched and healthy queries are
        // byte-identical before and after.
        assert!(e.user_state(UserId(5)).is_some());
        let healthy_after = format!("{:?}", e.search(UserId(5), "seafood restaurant"));
        assert_eq!(healthy_before, healthy_after);
    }

    #[test]
    fn observe_panic_rolls_state_back_to_last_good_snapshot() {
        quiet_injected_panics();
        let _guard = pws_obs::test_lock();
        pws_obs::reset();
        let idx = index();
        let w = world();
        let plan = Arc::new(TargetedPlan {
            stage: FaultStage::Observe,
            action: FaultAction::Panic,
            query_contains: "boom",
        });
        let e = ServingEngine::new(
            &idx,
            &w,
            EngineConfig::default(),
            ServeConfig { stats_refresh_every: 1, ..ServeConfig::default() },
        )
        .with_fault_plan(plan);
        let turn = e.search(UserId(2), "seafood restaurant boom");
        let before = format!("{:?}", e.user_state(UserId(2)));
        let imp = impression_from(&turn, &click_rule(&turn));
        e.observe(&turn, &imp);
        assert_eq!(
            format!("{:?}", e.user_state(UserId(2))),
            before,
            "panicked fold must leave no trace in the profile"
        );
        assert!(e.query_stats("seafood restaurant boom").is_none(), "stats rolled back too");
        let snap = pws_obs::snapshot();
        let count = |name: &str| {
            snap.stages.iter().find(|s| s.name == name).map(|s| s.count).unwrap_or(0)
        };
        assert_eq!(count("serve.state_restored"), 1);
    }

    #[test]
    fn poisoned_user_shard_recovers_and_evicts_only_that_user() {
        let _guard = pws_obs::test_lock();
        pws_obs::reset();
        let idx = index();
        let w = world();
        let e = ServingEngine::new(
            &idx,
            &w,
            EngineConfig::default(),
            ServeConfig { shards: 2, stats_refresh_every: 1, ..ServeConfig::default() },
        );
        // Two users on the same shard, both with learned state.
        let victim = UserId(0);
        let neighbor = UserId((1..100).find(|&u| {
            e.shard_of(UserId(u)) == e.shard_of(victim)
        }).expect("some user shares shard 0's shard"));
        for user in [victim, neighbor] {
            let turn = e.search(user, "seafood restaurant");
            let imp = impression_from(&turn, &click_rule(&turn));
            e.observe(&turn, &imp);
        }
        quiet_injected_panics();
        poison_mutex(&e.shards[e.shard_of(victim)].users);
        let resp = e
            .search_with(victim, "seafood restaurant", SearchBudget::none())
            .expect("poisoning degrades, never sheds");
        assert_eq!(resp.degraded, Some(DegradeReason::LockPoisoned));
        assert!(!resp.turn.hits.is_empty());
        // The victim was evicted; the neighbor's profile survived.
        assert!(e.user_state(victim).is_none(), "victim evicted");
        assert!(e.user_state(neighbor).is_some(), "neighbor untouched");
        // The shard is healthy again: the next query personalizes.
        let resp = e
            .search_with(victim, "seafood restaurant", SearchBudget::none())
            .expect("recovered shard admits normally");
        assert!(!resp.is_degraded());
        let snap = pws_obs::snapshot();
        let count = |name: &str| {
            snap.stages.iter().find(|s| s.name == name).map(|s| s.count).unwrap_or(0)
        };
        assert!(count("serve.lock_recovered") >= 1);
        assert_eq!(count("serve.user_evicted"), 1);
        assert_eq!(count("serve.degraded.lock_poisoned"), 1);
    }

    /// Regression test for the trace ring: a thread killed while holding
    /// a slot used to poison it permanently, panicking every later push
    /// and collect. Now both recover.
    #[test]
    fn trace_ring_recovers_from_poisoned_slot() {
        quiet_injected_panics();
        let ring = TraceRing::new(1, pws_obs::stage("serve.lock_recovered"));
        ring.push(QueryTrace::new(1, "before"));
        poison_mutex(&ring.slots[0]);
        ring.push(QueryTrace::new(2, "after"));
        let collected = ring.collect();
        assert_eq!(collected.len(), 1);
        assert_eq!(collected[0].query_text, "after");
    }

    #[test]
    fn import_parse_failure_counts_state_io_error() {
        let _guard = pws_obs::test_lock();
        pws_obs::reset();
        let idx = index();
        let w = world();
        let e = ServingEngine::new(&idx, &w, EngineConfig::default(), ServeConfig::default());
        assert!(e.import_user(UserId(1), "{definitely not json").is_err());
        let snap = pws_obs::snapshot();
        let errors = snap
            .stages
            .iter()
            .find(|s| s.name == "serve.state_io_error")
            .map(|s| s.count)
            .unwrap_or(0);
        assert_eq!(errors, 1);
        assert!(e.user_state(UserId(1)).is_none(), "failed import leaves no state");
    }

    #[test]
    fn degraded_turns_are_visible_in_traces_and_counters() {
        let _guard = pws_obs::test_lock();
        pws_obs::reset();
        let idx = index();
        let w = world();
        let e = ServingEngine::new(
            &idx,
            &w,
            EngineConfig::default(),
            ServeConfig {
                trace: TraceConfig::sample_all(8),
                ..ServeConfig::default()
            },
        );
        e.search_with(UserId(0), "seafood restaurant", SearchBudget::already_expired())
            .expect("degrades, never sheds");
        e.search_with(UserId(0), "seafood restaurant", SearchBudget::none())
            .expect("healthy");
        let traces = e.slow_queries();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].degraded, Some("deadline_retrieval"));
        assert_eq!(traces[1].degraded, None);
        let snap = pws_obs::snapshot();
        let count = |name: &str| {
            snap.stages.iter().find(|s| s.name == name).map(|s| s.count).unwrap_or(0)
        };
        assert_eq!(count("serve.degraded.deadline_retrieval"), 1);
    }

    /// Satellite of the retrieval fast path: with the shared retrieval
    /// cache on (the default), N threads over M shards replay
    /// byte-identically to the serial engine (which has no cache), and
    /// `serve.cache.hit + serve.cache.miss` reconciles exactly with the
    /// number of searches issued.
    #[test]
    fn retrieval_cache_replay_is_byte_identical_and_counters_reconcile() {
        let _guard = pws_obs::test_lock();
        pws_obs::reset();
        // Augmentation off so every search performs exactly one base
        // retrieval (the augmented query would add a second, history-
        // dependent probe and break exact reconciliation).
        let cfg = EngineConfig { query_augmentation: false, ..EngineConfig::default() };
        let queries = |u: u32| -> Vec<String> {
            vec![
                format!("seafood restaurant u{u}"),
                format!("restaurant u{u}"),
                format!("seafood restaurant u{u}"),
                format!("sushi restaurant u{u}"),
            ]
        };
        let log = session_log(&queries, 6);
        let serial = replay_serial(&log, cfg.clone());
        let total_searches: u64 = log.iter().map(|(_, qs)| qs.len() as u64).sum();
        for (shards, threads) in [(1usize, 1usize), (3, 4), (8, 4)] {
            pws_obs::reset();
            let sharded = replay_sharded(&log, cfg.clone(), shards, threads);
            assert_equivalent(
                &serial,
                &sharded,
                &format!("cache on, {shards} shards / {threads} threads"),
            );
            let snap = pws_obs::snapshot();
            let count = |name: &str| {
                snap.stages.iter().find(|s| s.name == name).map(|s| s.count).unwrap_or(0)
            };
            let hits = count("serve.cache.hit");
            let misses = count("serve.cache.miss");
            assert_eq!(
                hits + misses,
                total_searches,
                "every search probes the cache exactly once \
                 ({shards} shards / {threads} threads)"
            );
            // Each user repeats "seafood restaurant u{u}" once, so at
            // least one probe per user must hit (the repeat), even
            // under maximal racing.
            assert!(hits >= 1, "repeated queries must produce cache hits");
        }
    }

    /// The cache is observable per query: the first retrieval of a
    /// token sequence misses, the second hits, and the trace records
    /// which one happened. Without a cache the stamp stays `None`.
    #[test]
    fn trace_stamps_retrieval_cache_hit() {
        let idx = index();
        let w = world();
        let e = ServingEngine::new(&idx, &w, EngineConfig::default(), ServeConfig::default());
        let (turn_miss, t1) = e.search_traced(UserId(0), "seafood restaurant");
        assert_eq!(t1.cache_hit, Some(false), "cold cache: first probe misses");
        let (turn_hit, t2) = e.search_traced(UserId(1), "seafood restaurant");
        assert_eq!(t2.cache_hit, Some(true), "second identical query hits");
        // Analysis-equivalent surface forms share one entry.
        let (_, t3) = e.search_traced(UserId(2), "Seafood  RESTAURANT");
        assert_eq!(t3.cache_hit, Some(true), "key is the analyzed token sequence");
        // A cached turn is byte-identical to the uncached one apart
        // from user id (different users, same query, no learned state).
        let page = |t: &SearchTurn| -> Vec<(u32, usize, String)> {
            t.hits.iter().map(|h| (h.doc, h.rank, format!("{:.17e}", h.score))).collect()
        };
        assert_eq!(page(&turn_miss), page(&turn_hit));
        let e2 = ServingEngine::new(
            &idx,
            &w,
            EngineConfig::default(),
            ServeConfig { retrieval_cache_capacity: 0, ..ServeConfig::default() },
        );
        let (_, t4) = e2.search_traced(UserId(0), "seafood restaurant");
        assert_eq!(t4.cache_hit, None, "no cache configured → no stamp");
    }

    #[test]
    fn cache_invalidation_forces_fresh_retrieval() {
        let _guard = pws_obs::test_lock();
        pws_obs::reset();
        let idx = index();
        let w = world();
        let cfg = EngineConfig { query_augmentation: false, ..EngineConfig::default() };
        let e = ServingEngine::new(&idx, &w, cfg, ServeConfig::default());
        e.search(UserId(0), "seafood restaurant"); // miss
        e.search(UserId(1), "seafood restaurant"); // hit
        e.invalidate_retrieval_cache();
        e.search(UserId(2), "seafood restaurant"); // stale epoch → miss
        e.search(UserId(3), "seafood restaurant"); // re-populated → hit
        let snap = pws_obs::snapshot();
        let count = |name: &str| {
            snap.stages.iter().find(|s| s.name == name).map(|s| s.count).unwrap_or(0)
        };
        assert_eq!(count("serve.cache.miss"), 2);
        assert_eq!(count("serve.cache.hit"), 2);
    }

    #[test]
    fn cache_is_bounded_and_evicts_lru() {
        let _guard = pws_obs::test_lock();
        pws_obs::reset();
        let cache = ShardedRetrievalCache::new(8); // 1 entry per lock shard
        for i in 0..100u32 {
            let tokens = vec![format!("term{i}")];
            cache.put(&tokens, 10, &[]);
            assert!(
                cache.get(&tokens, 10).is_some(),
                "just-inserted entry must be resident"
            );
        }
        assert!(cache.len() <= 8, "capacity bound violated: {}", cache.len());
        let snap = pws_obs::snapshot();
        let evictions = snap
            .stages
            .iter()
            .find(|s| s.name == "serve.cache.evict")
            .map(|s| s.count)
            .unwrap_or(0);
        assert!(evictions >= 92, "100 inserts into 8 slots evict at least 92");
        // Pool size is part of the key: same tokens, different k, miss.
        let tokens = vec!["term99".to_string()];
        assert!(cache.get(&tokens, 10).is_some());
        assert!(cache.get(&tokens, 20).is_none());
    }

    #[test]
    fn queue_depth_gauge_never_underflows_under_concurrency() {
        // The inflight counter is incremented at admission and
        // decremented on exit; an unbalanced pair would underflow the
        // u64 and record astronomical depths. Hammer search+observe
        // concurrently, then check both the live gauge (exactly zero)
        // and the recorded samples (all plausibly small).
        let _guard = pws_obs::test_lock();
        let idx = index();
        let w = world();
        pws_obs::reset();
        let e = ServingEngine::new(
            &idx,
            &w,
            EngineConfig::default(),
            ServeConfig { shards: 2, stats_refresh_every: 1, ..ServeConfig::default() },
        );
        std::thread::scope(|scope| {
            for t in 0..8u32 {
                let e = &e;
                scope.spawn(move || {
                    for i in 0..20u32 {
                        let user = UserId(t * 100 + i % 5);
                        let turn = e.search(user, "seafood restaurant");
                        let imp = impression_from(&turn, &click_rule(&turn));
                        e.observe(&turn, &imp);
                    }
                });
            }
        });
        assert!(
            e.queue_depths().iter().all(|&d| d == 0),
            "gauge must return to zero: {:?}",
            e.queue_depths()
        );
        // Every sampled depth must be bounded by the worker count — an
        // underflow would have recorded ~2^64 into the histogram.
        let snap = pws_obs::snapshot();
        for s in snap.stages.iter().filter(|s| s.name.contains(".queue")) {
            assert!(
                s.p99_nanos <= 16,
                "{}: sampled queue depth p99 {} exceeds any plausible depth",
                s.name,
                s.p99_nanos
            );
        }
    }

    // ── Store tier ──────────────────────────────────────────────────────

    /// Fresh per-test store directory (removed first, in case a prior
    /// run of the same pid left one behind).
    fn store_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pws-serve-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Round-robin replay on an already-built engine: every user takes
    /// one turn per round, rounds are barriers, users within a round are
    /// split across `threads` scoped threads. With a capacity-1 store
    /// tier this forces an eviction and a fault-in on nearly every turn
    /// — the access pattern `replay_sharded` (user-by-user) never
    /// produces.
    fn replay_round_robin(
        e: &ServingEngine<'_>,
        log: &[(UserId, Vec<String>)],
        threads: usize,
    ) -> HashMap<UserId, Vec<String>> {
        let mut out: HashMap<UserId, Vec<String>> = HashMap::new();
        let rounds = log.iter().map(|(_, qs)| qs.len()).max().unwrap_or(0);
        for round in 0..rounds {
            let sinks: Vec<Mutex<Vec<(UserId, String)>>> =
                (0..threads).map(|_| Mutex::new(Vec::new())).collect();
            std::thread::scope(|scope| {
                for (t, sink) in sinks.iter().enumerate() {
                    let e = &e;
                    let log = &log;
                    scope.spawn(move || {
                        for (i, (user, qs)) in log.iter().enumerate() {
                            if i % threads != t {
                                continue;
                            }
                            let Some(q) = qs.get(round) else { continue };
                            let turn = e.search(*user, q);
                            let imp = impression_from(&turn, &click_rule(&turn));
                            e.observe(&turn, &imp);
                            sink.lock().unwrap().push((*user, format!("{turn:?}")));
                        }
                    });
                }
            });
            for sink in sinks {
                for (user, turn) in sink.into_inner().unwrap() {
                    out.entry(user).or_default().push(turn);
                }
            }
        }
        out
    }

    /// The headline acceptance test: an evicted-then-faulted-in user
    /// ranks **byte-identically** to an always-resident one, at every
    /// shard/thread combination. Capacity 1 per shard with interleaved
    /// users forces an eviction (dirty writeback) and a fault-in on
    /// nearly every turn; transcripts must still match the storeless
    /// serial engine exactly.
    #[test]
    fn evicted_user_replays_byte_identically_to_always_resident() {
        let queries = |u: u32| -> Vec<String> {
            vec![
                format!("seafood restaurant u{u}"),
                format!("restaurant u{u}"),
                format!("seafood restaurant u{u}"),
                format!("sushi restaurant u{u}"),
                format!("seafood restaurant u{u}"),
            ]
        };
        let log = session_log(&queries, 6);
        let serial = replay_serial(&log, EngineConfig::default());
        let idx = index();
        let w = world();
        for shards in [1usize, 3, 8] {
            for threads in [1usize, 4] {
                let dir = store_dir(&format!("replay-{shards}-{threads}"));
                let e = ServingEngine::new(
                    &idx,
                    &w,
                    EngineConfig::default(),
                    ServeConfig {
                        shards,
                        stats_refresh_every: 1,
                        store: Some(StoreTierConfig {
                            capacity_per_shard: 1,
                            ..StoreTierConfig::new(&dir)
                        }),
                        ..ServeConfig::default()
                    },
                );
                let replayed = replay_round_robin(&e, &log, threads);
                assert_equivalent(
                    &serial,
                    &replayed,
                    &format!("store tier, {shards} shards / {threads} threads"),
                );
                // Residency is bounded by capacity; identity is not.
                assert!(e.resident_count() <= shards, "capacity 1 per shard exceeded");
                assert_eq!(e.user_count(), 6, "evicted users still counted");
                drop(e);
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }

    /// Exact counter reconciliation under a deterministic single-thread
    /// round-robin: capacity 1, one shard, synchronous writeback. Every
    /// turn after the first evicts (and therefore writes back) the
    /// previous user; every turn on a previously-seen user faults its
    /// record in. T turns over U users ⇒ evict = writeback = T−1 and
    /// fault_in = T−U, exactly.
    #[test]
    fn store_counters_reconcile_exactly() {
        let _guard = pws_obs::test_lock();
        let idx = index();
        let w = world();
        pws_obs::reset();
        let dir = store_dir("counters");
        let users = 3u32;
        let rounds = 4usize;
        let e = ServingEngine::new(
            &idx,
            &w,
            EngineConfig::default(),
            ServeConfig {
                shards: 1,
                stats_refresh_every: 1,
                store: Some(StoreTierConfig {
                    capacity_per_shard: 1,
                    writeback: false,
                    ..StoreTierConfig::new(&dir)
                }),
                ..ServeConfig::default()
            },
        );
        let queries = |u: u32| -> Vec<String> {
            (0..rounds).map(|r| format!("restaurant u{u} r{r}")).collect()
        };
        let log = session_log(&queries, users);
        replay_round_robin(&e, &log, 1);
        let turns = (users as u64) * (rounds as u64);
        let snap = pws_obs::snapshot();
        let count = |name: &str| {
            snap.stages.iter().find(|s| s.name == name).map(|s| s.count).unwrap_or(0)
        };
        assert_eq!(count("serve.store.evict"), turns - 1);
        assert_eq!(count("serve.store.writeback"), turns - 1);
        assert_eq!(count("serve.store.fault_in"), turns - u64::from(users));
        assert_eq!(count("store.write"), turns - 1, "one disk write per writeback");
        assert_eq!(count("serve.state_io_error"), 0);
        drop(e);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Restarting the process (drop the engine, open a new one over the
    /// same directory) resumes replay byte-identically: the shutdown
    /// flush persists every dirty resident, and fault-in restores both
    /// the state and the per-query adaptive-β statistics.
    #[test]
    fn engine_restart_resumes_replay_byte_identically() {
        let queries = |u: u32| -> Vec<String> {
            vec![
                format!("seafood restaurant u{u}"),
                format!("restaurant u{u}"),
                format!("seafood restaurant u{u}"),
                format!("seafood restaurant u{u}"),
            ]
        };
        let log = session_log(&queries, 3);
        let uninterrupted = replay_serial(&log, EngineConfig::default());

        let idx = index();
        let w = world();
        let dir = store_dir("restart");
        let serve_cfg = || ServeConfig {
            shards: 2,
            stats_refresh_every: 1,
            store: Some(StoreTierConfig::new(&dir)),
            ..ServeConfig::default()
        };
        let first_half: Vec<(UserId, Vec<String>)> =
            log.iter().map(|(u, qs)| (*u, qs[..2].to_vec())).collect();
        let second_half: Vec<(UserId, Vec<String>)> =
            log.iter().map(|(u, qs)| (*u, qs[2..].to_vec())).collect();

        let e1 = ServingEngine::new(&idx, &w, EngineConfig::default(), serve_cfg());
        let mut transcripts = replay_round_robin(&e1, &first_half, 1);
        drop(e1); // shutdown guard joins the daemon and flushes dirty users

        let e2 = ServingEngine::new(&idx, &w, EngineConfig::default(), serve_cfg());
        assert_eq!(e2.user_count(), 3, "restart sees the stored users");
        assert_eq!(e2.resident_count(), 0, "nothing resident before the first query");
        for (user, turns) in replay_round_robin(&e2, &second_half, 1) {
            transcripts.entry(user).or_default().extend(turns);
        }
        assert_equivalent(&uninterrupted, &transcripts, "restart mid-replay");
        drop(e2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Regression for the export-stats bug: `export_user` must fold the
    /// user's per-query adaptive-β statistics into the envelope. A
    /// fresh process importing the export and resuming replay must be
    /// byte-identical to never having left — before the fix the
    /// statistics restarted cold and the β sequence diverged.
    #[test]
    fn export_import_into_fresh_process_resumes_adaptive_beta_exactly() {
        let user = UserId(9);
        let repeated = "seafood restaurant"; // repeated ⇒ stats-driven β moves
        let full: Vec<(UserId, Vec<String>)> =
            vec![(user, (0..6).map(|_| repeated.to_string()).collect())];
        let uninterrupted = replay_serial(&full, EngineConfig::default());

        let idx = index();
        let w = world();
        let cfg = || ServeConfig { shards: 1, stats_refresh_every: 1, ..ServeConfig::default() };
        let e1 = ServingEngine::new(&idx, &w, EngineConfig::default(), cfg());
        let first: Vec<(UserId, Vec<String>)> =
            vec![(user, (0..3).map(|_| repeated.to_string()).collect())];
        let mut transcripts = replay_round_robin(&e1, &first, 1);
        let json = e1.export_user(user).expect("serializable").expect("state exists");
        drop(e1);

        // A brand-new engine (fresh process: empty live statistics).
        let e2 = ServingEngine::new(&idx, &w, EngineConfig::default(), cfg());
        e2.import_user(user, &json).expect("import");
        let rest: Vec<(UserId, Vec<String>)> =
            vec![(user, (0..3).map(|_| repeated.to_string()).collect())];
        for (u, turns) in replay_round_robin(&e2, &rest, 1) {
            transcripts.entry(u).or_default().extend(turns);
        }
        assert_equivalent(&uninterrupted, &transcripts, "export/import process handoff");
    }

    /// Malformed or invalid imports are rejected with a typed error and
    /// counted in `serve.state_io_error`; nothing is partially applied.
    #[test]
    fn import_rejects_invalid_records_with_typed_errors() {
        let _guard = pws_obs::test_lock();
        let idx = index();
        let w = world();
        pws_obs::reset();
        let e = ServingEngine::new(&idx, &w, EngineConfig::default(), ServeConfig::default());
        let user = UserId(2);
        for _ in 0..2 {
            let turn = e.search(user, "seafood restaurant");
            let imp = impression_from(&turn, &click_rule(&turn));
            e.observe(&turn, &imp);
        }
        let json = e.export_user(user).expect("serializable").expect("state exists");

        // Wrong feature dimension: one extra model weight.
        let wrong_dim = json.replacen("\"weights\":[", "\"weights\":[0.125,", 1);
        assert_ne!(wrong_dim, json, "fixture must actually tamper the weights");
        match e.import_user(user, &wrong_dim) {
            Err(pws_core::ImportError::Invalid(pws_core::StateError::WrongDim { .. })) => {}
            other => panic!("expected WrongDim, got {other:?}"),
        }

        // Negative click mass in the exported query statistics.
        let negative = json.replacen("\"total_clicks\":", "\"total_clicks\":-", 1);
        assert_ne!(negative, json, "fixture must actually tamper the stats");
        assert!(e.import_user(user, &negative).is_err(), "negative counts must be rejected");

        // Garbage is a Json error.
        match e.import_user(user, "{not json") {
            Err(pws_core::ImportError::Json(_)) => {}
            other => panic!("expected Json error, got {other:?}"),
        }

        let snap = pws_obs::snapshot();
        let io_errors = snap
            .stages
            .iter()
            .find(|s| s.name == "serve.state_io_error")
            .map(|s| s.count)
            .unwrap_or(0);
        assert_eq!(io_errors, 3, "every rejected import is counted");
        // The resident state survived every rejected import.
        assert!(e.user_state(user).is_some());
    }

    /// Regression for the retry-after bug: a cache-hot shard must still
    /// hand out an actionable backoff. The lifetime-mean estimate was
    /// dragged toward the (near-zero) cache-hit latency by repeated
    /// identical queries; the EWMA tracks uncached turns only and is
    /// floored at 100µs per queued request.
    #[test]
    fn retry_after_stays_actionable_on_cache_hot_shard() {
        let idx = index();
        let w = world();
        let e = ServingEngine::new(
            &idx,
            &w,
            EngineConfig::default(),
            ServeConfig { shards: 1, ..ServeConfig::default() },
        );
        // Hammer one query: the first search misses the retrieval cache,
        // the next ~200 hit it and would poison a lifetime mean.
        for _ in 0..200 {
            let _ = e.search(UserId(1), "seafood restaurant");
        }
        let budget = SearchBudget { max_queue_depth: Some(0), ..SearchBudget::none() };
        let err = e
            .search_with(UserId(1), "seafood restaurant", budget)
            .expect_err("queue depth 0 sheds");
        assert!(
            err.retry_after >= Duration::from_micros(100),
            "cache-hot shard handed out a useless hint: {:?}",
            err.retry_after
        );
    }

    /// An injected panic during fault-in costs exactly that user a fresh
    /// profile — the request is still served, the shard still works, and
    /// the failure is counted in `serve.state_io_error`.
    #[test]
    fn fault_in_panic_serves_fresh_profile_and_counts_io_error() {
        let _guard = pws_obs::test_lock();
        quiet_injected_panics();
        let idx = index();
        let w = world();
        pws_obs::reset();
        let dir = store_dir("faultin-panic");
        let e = ServingEngine::new(
            &idx,
            &w,
            EngineConfig::default(),
            ServeConfig {
                shards: 1,
                stats_refresh_every: 1,
                store: Some(StoreTierConfig {
                    capacity_per_shard: 1,
                    ..StoreTierConfig::new(&dir)
                }),
                ..ServeConfig::default()
            },
        )
        .with_fault_plan(Arc::new(TargetedPlan {
            stage: FaultStage::FaultIn,
            action: FaultAction::Panic,
            query_contains: "poisoned-load",
        }));
        // Warm user 0 onto disk, then displace it with user 1.
        let turn = e.search(UserId(0), "seafood restaurant");
        let imp = impression_from(&turn, &click_rule(&turn));
        e.observe(&turn, &imp);
        let _ = e.search(UserId(1), "restaurant");
        // User 0's fault-in panics: served anyway, with a fresh profile.
        let turn = e.search(UserId(0), "restaurant poisoned-load");
        assert!(!turn.hits.is_empty(), "fault-in panic must not lose the query");
        let snap = pws_obs::snapshot();
        let io_errors = snap
            .stages
            .iter()
            .find(|s| s.name == "serve.state_io_error")
            .map(|s| s.count)
            .unwrap_or(0);
        assert_eq!(io_errors, 1);
        drop(e);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// An injected panic during eviction writeback must never lose user
    /// state: the write fails, the victim stays resident (and dirty), and
    /// its profile is byte-identical afterwards.
    #[test]
    fn writeback_panic_keeps_victim_resident_with_state_intact() {
        quiet_injected_panics();
        let idx = index();
        let w = world();
        let dir = store_dir("writeback-panic");
        let e = ServingEngine::new(
            &idx,
            &w,
            EngineConfig::default(),
            ServeConfig {
                shards: 1,
                stats_refresh_every: 1,
                store: Some(StoreTierConfig {
                    capacity_per_shard: 1,
                    writeback: false,
                    ..StoreTierConfig::new(&dir)
                }),
                ..ServeConfig::default()
            },
        )
        .with_fault_plan(Arc::new(TargetedPlan {
            stage: FaultStage::Writeback,
            action: FaultAction::Panic,
            query_contains: "displacer",
        }));
        // Dirty user 0, then try to displace it: the eviction writeback
        // panics, so user 0 must stay resident, state intact.
        let turn = e.search(UserId(0), "seafood restaurant");
        let imp = impression_from(&turn, &click_rule(&turn));
        e.observe(&turn, &imp);
        let weights_before = e.user_state(UserId(0)).expect("resident").model.weights.clone();
        let turn = e.search(UserId(1), "restaurant displacer");
        assert!(!turn.hits.is_empty(), "the displacing query is still served");
        assert_eq!(e.resident_count(), 2, "failed writeback must not evict the victim");
        assert_eq!(
            e.user_state(UserId(0)).expect("still resident").model.weights,
            weights_before,
            "victim state unchanged by the failed writeback"
        );
        drop(e);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `flush_store` persists every dirty resident on demand (the same
    /// path the shutdown guard takes), making cold restarts lossless
    /// even without eviction pressure.
    #[test]
    fn flush_store_persists_dirty_residents() {
        let idx = index();
        let w = world();
        let dir = store_dir("flush");
        let e = ServingEngine::new(
            &idx,
            &w,
            EngineConfig::default(),
            ServeConfig {
                shards: 2,
                stats_refresh_every: 1,
                store: Some(StoreTierConfig { writeback: false, ..StoreTierConfig::new(&dir) }),
                ..ServeConfig::default()
            },
        );
        for u in 0..4u32 {
            let turn = e.search(UserId(u), "seafood restaurant");
            let imp = impression_from(&turn, &click_rule(&turn));
            e.observe(&turn, &imp);
        }
        assert_eq!(e.flush_store(), 4, "all four users were dirty");
        assert_eq!(e.flush_store(), 0, "second flush has nothing to write");
        // A storeless engine reports 0 rather than panicking.
        let plain = ServingEngine::new(&idx, &w, EngineConfig::default(), ServeConfig::default());
        assert_eq!(plain.flush_store(), 0);
        drop(e);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `forget_user` erases both tiers: the resident entry and the
    /// stored record.
    #[test]
    fn forget_user_erases_resident_and_stored_tiers() {
        let idx = index();
        let w = world();
        let dir = store_dir("forget");
        let e = ServingEngine::new(
            &idx,
            &w,
            EngineConfig::default(),
            ServeConfig {
                shards: 1,
                stats_refresh_every: 1,
                store: Some(StoreTierConfig { writeback: false, ..StoreTierConfig::new(&dir) }),
                ..ServeConfig::default()
            },
        );
        let turn = e.search(UserId(3), "seafood restaurant");
        let imp = impression_from(&turn, &click_rule(&turn));
        e.observe(&turn, &imp);
        assert_eq!(e.flush_store(), 1);
        assert_eq!(e.user_count(), 1);
        e.forget_user(UserId(3));
        assert_eq!(e.user_count(), 0, "both tiers erased");
        assert!(e.user_state(UserId(3)).is_none());
        drop(e);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
