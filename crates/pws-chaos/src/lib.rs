//! # pws-chaos — deterministic fault injection for the serving layer
//!
//! The fault-tolerance contract of `pws-serve` ("every query returns a
//! ranked page; personalization is best-effort") is only worth stating
//! if it survives actual faults. This crate is the fault source: a
//! seeded, replay-stable implementation of [`pws_serve::FaultPlan`]
//! that decides — purely from a hash of `(seed, user, query, stage)` —
//! whether a request panics mid-personalization, stalls long enough to
//! blow its deadline budget, or finds its shard's lock poisoned.
//!
//! Determinism is the point. The same [`ChaosSpec`] against the same
//! request stream injects byte-for-byte the same faults, which makes
//! two properties testable that random chaos cannot pin:
//!
//! * **Exact accounting** — every injected fault is visible in the
//!   `serve.*` counter family; the injector's own counts must
//!   reconcile with the engine's.
//! * **Blast-radius isolation** — users the injector never touched
//!   must rank byte-identically to a fault-free run ([`SeededFaultPlan::faulted_users`]
//!   names the touched set).
//!
//! The chaos suite in `tests/chaos.rs` enforces both, plus the
//! headline invariant: 100% of queries return ranked results under
//! chaos — degraded where faulted, never an error, never a panic.
//!
//! `serve_bench --chaos "seed=42,panic=64,delay=16:200us,poison=512"`
//! drives the same injector under concurrent load (see `pws-bench`).

use pws_click::UserId;
use pws_serve::{FaultAction, FaultPlan, FaultStage};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Parsed chaos configuration: one 1-in-N rate per fault family.
/// A rate of `0` disables that family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosSpec {
    /// Seed folded into every injection roll; two runs with the same
    /// seed and request stream inject identical faults.
    pub seed: u64,
    /// Panic roughly 1 in this many engine-stage checkpoints
    /// (retrieval / concepts / features) and observe folds.
    pub panic_every: u64,
    /// Sleep [`Self::delay`] at roughly 1 in this many injection sites.
    pub delay_every: u64,
    /// The artificial latency injected by a delay fault.
    pub delay: Duration,
    /// Poison the user shard's lock at roughly 1 in this many
    /// admissions.
    pub poison_every: u64,
}

impl Default for ChaosSpec {
    /// Everything disabled — an inert plan.
    fn default() -> Self {
        ChaosSpec {
            seed: 0,
            panic_every: 0,
            delay_every: 0,
            delay: Duration::from_micros(200),
            poison_every: 0,
        }
    }
}

impl ChaosSpec {
    /// Parse the `serve_bench --chaos` plan syntax: comma-separated
    /// `key=value` fields, all optional.
    ///
    /// * `seed=42` — injection seed (default 0)
    /// * `panic=64` — panic 1-in-64 checkpoints (default off)
    /// * `delay=16:200us` — sleep 200µs at 1-in-16 sites; the duration
    ///   takes `us`, `ms`, or `s` suffixes and defaults to `200us` when
    ///   omitted (`delay=16`)
    /// * `poison=512` — poison the shard lock 1-in-512 admissions
    ///
    /// ```
    /// let spec = pws_chaos::ChaosSpec::parse("seed=42,panic=64,delay=16:1ms,poison=512")
    ///     .unwrap();
    /// assert_eq!(spec.seed, 42);
    /// assert_eq!(spec.panic_every, 64);
    /// assert_eq!(spec.delay, std::time::Duration::from_millis(1));
    /// assert_eq!(spec.poison_every, 512);
    /// ```
    pub fn parse(text: &str) -> Result<ChaosSpec, String> {
        let mut spec = ChaosSpec::default();
        for field in text.split(',').map(str::trim).filter(|f| !f.is_empty()) {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("chaos field {field:?} is not key=value"))?;
            let parse_rate = |v: &str| {
                v.parse::<u64>().map_err(|_| format!("chaos {key}={v:?}: not a number"))
            };
            match key {
                "seed" => spec.seed = parse_rate(value)?,
                "panic" => spec.panic_every = parse_rate(value)?,
                "poison" => spec.poison_every = parse_rate(value)?,
                "delay" => match value.split_once(':') {
                    Some((rate, dur)) => {
                        spec.delay_every = parse_rate(rate)?;
                        spec.delay = parse_duration(dur)?;
                    }
                    None => spec.delay_every = parse_rate(value)?,
                },
                _ => return Err(format!("unknown chaos field {key:?}")),
            }
        }
        Ok(spec)
    }

    /// Build the deterministic injector for this spec.
    pub fn build(self) -> SeededFaultPlan {
        SeededFaultPlan::new(self)
    }
}

/// Parse `200us` / `5ms` / `1s` (bare numbers are nanoseconds).
fn parse_duration(text: &str) -> Result<Duration, String> {
    let (digits, scale) = if let Some(d) = text.strip_suffix("us") {
        (d, 1_000u64)
    } else if let Some(d) = text.strip_suffix("ms") {
        (d, 1_000_000)
    } else if let Some(d) = text.strip_suffix('s') {
        (d, 1_000_000_000)
    } else {
        (text, 1)
    };
    digits
        .parse::<u64>()
        .map(|n| Duration::from_nanos(n.saturating_mul(scale)))
        .map_err(|_| format!("bad duration {text:?} (want e.g. 200us, 5ms, 1s)"))
}

/// Running totals of the faults a [`SeededFaultPlan`] actually emitted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosCounts {
    /// Panics emitted at search-path checkpoints.
    pub search_panics: u64,
    /// Panics emitted inside observe folds.
    pub observe_panics: u64,
    /// Panics emitted at store-tier sites (fault-in / writeback).
    pub store_panics: u64,
    /// Delay faults emitted (any stage).
    pub delays: u64,
    /// Lock poisonings emitted at admission.
    pub poisons: u64,
}

/// The deterministic injector: a pure function of
/// `(seed, user, query, stage)` deciding the fault at each site, plus
/// emission counters so tests can reconcile injected faults against
/// the engine's `serve.*` metrics.
pub struct SeededFaultPlan {
    spec: ChaosSpec,
    search_panics: AtomicU64,
    observe_panics: AtomicU64,
    store_panics: AtomicU64,
    delays: AtomicU64,
    poisons: AtomicU64,
    /// Every user that received at least one fault — the complement is
    /// the set whose results must be byte-identical to a fault-free
    /// run.
    faulted: Mutex<HashSet<u32>>,
}

/// FNV-1a offset basis / prime, folding arbitrary words.
fn fnv1a_words(words: &[u64], bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    };
    for w in words {
        for b in w.to_le_bytes() {
            eat(b);
        }
    }
    for &b in bytes {
        eat(b);
    }
    h
}

/// SplitMix64 finalizer: FNV alone mixes the low bits poorly for
/// modulo-style rolls; one finalizer round fixes that.
fn finalize(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Per-fault-family salts so the panic / delay / poison rolls at one
/// site are independent.
const SALT_PANIC: u64 = 0x70616e6963; // "panic"
const SALT_DELAY: u64 = 0x64656c6179; // "delay"
const SALT_POISON: u64 = 0x706f69736f6e; // "poison"

fn stage_tag(stage: FaultStage) -> u64 {
    match stage {
        FaultStage::Admission => 1,
        FaultStage::Retrieval => 2,
        FaultStage::Concepts => 3,
        FaultStage::Features => 4,
        FaultStage::Observe => 5,
        FaultStage::FaultIn => 6,
        FaultStage::Writeback => 7,
    }
}

impl SeededFaultPlan {
    /// Build an injector for `spec`.
    pub fn new(spec: ChaosSpec) -> Self {
        SeededFaultPlan {
            spec,
            search_panics: AtomicU64::new(0),
            observe_panics: AtomicU64::new(0),
            store_panics: AtomicU64::new(0),
            delays: AtomicU64::new(0),
            poisons: AtomicU64::new(0),
            faulted: Mutex::new(HashSet::new()),
        }
    }

    /// The spec this injector was built from.
    pub fn spec(&self) -> ChaosSpec {
        self.spec
    }

    /// Emission totals so far.
    pub fn counts(&self) -> ChaosCounts {
        ChaosCounts {
            search_panics: self.search_panics.load(Ordering::Relaxed),
            observe_panics: self.observe_panics.load(Ordering::Relaxed),
            store_panics: self.store_panics.load(Ordering::Relaxed),
            delays: self.delays.load(Ordering::Relaxed),
            poisons: self.poisons.load(Ordering::Relaxed),
        }
    }

    /// Users that received at least one fault so far.
    pub fn faulted_users(&self) -> HashSet<u32> {
        self.faulted.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// Does the 1-in-`every` roll for `salt` fire at this site?
    fn roll(&self, user: UserId, query: &str, stage: FaultStage, salt: u64, every: u64) -> bool {
        if every == 0 {
            return false;
        }
        let h = finalize(fnv1a_words(
            &[self.spec.seed, user.0 as u64, stage_tag(stage), salt],
            query.as_bytes(),
        ));
        h.is_multiple_of(every)
    }

    fn mark(&self, user: UserId, action: FaultAction, stage: FaultStage) -> Option<FaultAction> {
        self.faulted.lock().unwrap_or_else(|p| p.into_inner()).insert(user.0);
        match action {
            FaultAction::Panic => match stage {
                FaultStage::Observe => {
                    self.observe_panics.fetch_add(1, Ordering::Relaxed);
                }
                FaultStage::FaultIn | FaultStage::Writeback => {
                    self.store_panics.fetch_add(1, Ordering::Relaxed);
                }
                _ => {
                    self.search_panics.fetch_add(1, Ordering::Relaxed);
                }
            },
            FaultAction::Delay(_) => {
                self.delays.fetch_add(1, Ordering::Relaxed);
            }
            FaultAction::PoisonLock => {
                self.poisons.fetch_add(1, Ordering::Relaxed);
            }
        }
        Some(action)
    }
}

impl FaultPlan for SeededFaultPlan {
    /// Admission sites roll poison-then-delay; engine checkpoints and
    /// observe folds roll panic-then-delay. At most one fault fires per
    /// site, and the decision depends only on
    /// `(seed, user, query, stage)` — never on timing, thread
    /// interleaving, or how often the site was reached before.
    fn inject(&self, user: UserId, query_text: &str, stage: FaultStage) -> Option<FaultAction> {
        match stage {
            FaultStage::Admission => {
                if self.roll(user, query_text, stage, SALT_POISON, self.spec.poison_every) {
                    return self.mark(user, FaultAction::PoisonLock, stage);
                }
            }
            _ => {
                if self.roll(user, query_text, stage, SALT_PANIC, self.spec.panic_every) {
                    return self.mark(user, FaultAction::Panic, stage);
                }
            }
        }
        if self.roll(user, query_text, stage, SALT_DELAY, self.spec.delay_every) {
            return self.mark(user, FaultAction::Delay(self.spec.delay), stage);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec() {
        let spec = ChaosSpec::parse("seed=42, panic=64, delay=16:200us, poison=512").unwrap();
        assert_eq!(
            spec,
            ChaosSpec {
                seed: 42,
                panic_every: 64,
                delay_every: 16,
                delay: Duration::from_micros(200),
                poison_every: 512,
            }
        );
    }

    #[test]
    fn parse_partial_and_empty_specs() {
        assert_eq!(ChaosSpec::parse("").unwrap(), ChaosSpec::default());
        let spec = ChaosSpec::parse("panic=8").unwrap();
        assert_eq!(spec.panic_every, 8);
        assert_eq!(spec.poison_every, 0);
        // Bare delay rate keeps the default duration.
        let spec = ChaosSpec::parse("delay=4").unwrap();
        assert_eq!(spec.delay_every, 4);
        assert_eq!(spec.delay, Duration::from_micros(200));
        // Duration suffixes.
        assert_eq!(ChaosSpec::parse("delay=1:5ms").unwrap().delay, Duration::from_millis(5));
        assert_eq!(ChaosSpec::parse("delay=1:1s").unwrap().delay, Duration::from_secs(1));
        assert_eq!(ChaosSpec::parse("delay=1:750").unwrap().delay, Duration::from_nanos(750));
    }

    #[test]
    fn parse_rejects_malformed_fields() {
        assert!(ChaosSpec::parse("panic").is_err());
        assert!(ChaosSpec::parse("panic=abc").is_err());
        assert!(ChaosSpec::parse("warp=9").is_err());
        assert!(ChaosSpec::parse("delay=4:fast").is_err());
    }

    #[test]
    fn injection_is_deterministic_and_seed_sensitive() {
        let spec = ChaosSpec::parse("seed=7,panic=4,delay=4,poison=4").unwrap();
        let a = spec.build();
        let b = spec.build();
        let sites: Vec<(u32, &str, FaultStage)> = (0..64u32)
            .flat_map(|u| {
                [
                    (u, "seafood restaurant", FaultStage::Admission),
                    (u, "seafood restaurant", FaultStage::Retrieval),
                    (u, "pizza", FaultStage::Concepts),
                    (u, "pizza", FaultStage::Observe),
                ]
            })
            .collect();
        let run = |plan: &SeededFaultPlan| -> Vec<Option<FaultAction>> {
            sites.iter().map(|&(u, q, s)| plan.inject(UserId(u), q, s)).collect()
        };
        let first = run(&a);
        assert_eq!(first, run(&b), "same seed, same stream → same faults");
        assert!(first.iter().any(Option::is_some), "1-in-4 rates must fire somewhere");
        assert!(first.iter().any(Option::is_none), "…but not everywhere");
        let other = ChaosSpec { seed: 8, ..spec }.build();
        assert_ne!(first, run(&other), "different seed → different faults");
        // Emission counters agree between identical runs.
        assert_eq!(a.counts(), b.counts());
        assert_eq!(a.faulted_users(), b.faulted_users());
    }

    #[test]
    fn disabled_families_never_fire() {
        let plan = ChaosSpec { panic_every: 0, delay_every: 0, poison_every: 0, ..ChaosSpec::default() }
            .build();
        for u in 0..256u32 {
            for stage in [
                FaultStage::Admission,
                FaultStage::Retrieval,
                FaultStage::Concepts,
                FaultStage::Features,
                FaultStage::Observe,
            ] {
                assert_eq!(plan.inject(UserId(u), "any query", stage), None);
            }
        }
        assert_eq!(plan.counts(), ChaosCounts::default());
        assert!(plan.faulted_users().is_empty());
    }

    #[test]
    fn admission_only_poisons_and_checkpoints_only_panic() {
        let plan = ChaosSpec::parse("panic=1,poison=1").unwrap().build();
        assert_eq!(
            plan.inject(UserId(0), "q", FaultStage::Admission),
            Some(FaultAction::PoisonLock)
        );
        for stage in [FaultStage::Retrieval, FaultStage::Concepts, FaultStage::Features,
                      FaultStage::Observe] {
            assert_eq!(plan.inject(UserId(0), "q", stage), Some(FaultAction::Panic));
        }
        let counts = plan.counts();
        assert_eq!(counts.poisons, 1);
        assert_eq!(counts.search_panics, 3);
        assert_eq!(counts.observe_panics, 1);
    }
}
