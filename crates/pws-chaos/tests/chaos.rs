//! The chaos suite: drives `pws-serve` through `SeededFaultPlan` and
//! pins the serving layer's fault-tolerance contract:
//!
//! 1. **No query is ever lost** — under heavy concurrent chaos, every
//!    `search_with` returns a ranked page (degraded where faulted,
//!    never an error, never a panic).
//! 2. **Every injected fault is accounted** — the injector's emission
//!    counts reconcile exactly with the `serve.*` counter family.
//! 3. **Blast-radius isolation** — for any seed, users the injector
//!    never touched rank byte-identically to a fault-free run.
//! 4. **The fault layer is inert when disabled** — an all-zero plan
//!    compiled in and attached changes nothing, byte-for-byte.

use pws_chaos::ChaosSpec;
use pws_click::{Click, Impression, ShownResult, UserId};
use pws_core::{EngineConfig, SearchTurn};
use pws_corpus::query::QueryId;
use pws_geo::{LocId, LocationOntology};
use pws_index::{IndexBuilder, SearchEngine, StoredDoc};
use pws_serve::{
    quiet_injected_panics, DegradeReason, SearchBudget, ServeConfig, ServingEngine,
    StoreTierConfig,
};
use std::collections::HashMap;
use std::sync::Arc;

fn world() -> LocationOntology {
    let mut o = LocationOntology::new();
    let r = o.add(LocId::WORLD, "westland", vec![]);
    let c = o.add(r, "ardonia", vec![]);
    let s = o.add(c, "vale", vec![]);
    o.add(s, "alden", vec![]);
    o.add(s, "lakemoor", vec![]);
    o
}

fn index() -> SearchEngine {
    let mut b = IndexBuilder::new();
    b.add(StoredDoc::new(0, "http://a.test/0", "Seafood guide",
        "seafood restaurant guide with lobster in alden harbor area"));
    b.add(StoredDoc::new(1, "http://b.test/1", "Seafood lakemoor",
        "seafood restaurant in lakemoor with fresh oysters"));
    b.add(StoredDoc::new(2, "http://c.test/2", "Sushi place",
        "sushi restaurant downtown with omakase menu in alden"));
    b.add(StoredDoc::new(3, "http://d.test/3", "Steak house",
        "steak restaurant grill with ribeye specials"));
    b.add(StoredDoc::new(4, "http://e.test/4", "Pizza lakemoor",
        "pizza restaurant in lakemoor stone oven margherita"));
    b.add(StoredDoc::new(5, "http://f.test/5", "Noodle bar",
        "noodle restaurant with ramen and broth in alden"));
    b.build()
}

/// Click the highest doc id on the page (stable, exercises skip-above).
fn impression_from(turn: &SearchTurn) -> Impression {
    let clicked = turn.hits.iter().map(|h| h.doc).max();
    Impression {
        user: turn.user,
        query: QueryId(0),
        query_text: turn.query_text.clone(),
        results: turn
            .hits
            .iter()
            .map(|h| ShownResult {
                doc: h.doc,
                rank: h.rank,
                url: h.url.to_string(),
                title: h.title.to_string(),
                snippet: h.snippet.clone(),
            })
            .collect(),
        clicks: turn
            .hits
            .iter()
            .filter(|h| Some(h.doc) == clicked)
            .map(|h| Click { doc: h.doc, rank: h.rank, dwell: 600 })
            .collect(),
    }
}

fn queries_for(u: u32) -> Vec<String> {
    vec![
        format!("seafood restaurant u{u}"),
        format!("restaurant u{u}"),
        format!("seafood restaurant u{u}"),
        format!("sushi restaurant u{u}"),
    ]
}

/// Sequential replay: per-user transcripts (`{turn:?}`), observing
/// every turn. Fault injection (if the engine carries a plan) and the
/// `stats_refresh_every: 1` + disjoint-queries setup make this fully
/// deterministic.
fn replay(e: &ServingEngine<'_>, users: u32) -> HashMap<u32, Vec<String>> {
    let mut out: HashMap<u32, Vec<String>> = HashMap::new();
    for u in 0..users {
        for q in queries_for(u) {
            let resp = e
                .search_with(UserId(u), &q, SearchBudget::none())
                .expect("no admission limit configured");
            e.observe(&resp.turn, &impression_from(&resp.turn));
            out.entry(u).or_default().push(format!("{:?}", resp.turn));
        }
    }
    out
}

/// Contract 1: under heavy concurrent chaos (panics, delays, lock
/// poisoning), 100% of queries return ranked results — degraded where
/// faulted, never an error, never a lost query, never a wedged shard.
#[test]
fn chaos_never_loses_a_query() {
    quiet_injected_panics();
    let idx = index();
    let w = world();
    let plan = Arc::new(
        ChaosSpec::parse("seed=42,panic=4,delay=6:200us,poison=8").unwrap().build(),
    );
    let e = ServingEngine::new(
        &idx,
        &w,
        EngineConfig::default(),
        ServeConfig { shards: 4, stats_refresh_every: 1, ..ServeConfig::default() },
    )
    .with_fault_plan(plan.clone());
    let threads = 8u32;
    let per_thread_users = 8u32;
    let answered = std::sync::atomic::AtomicU64::new(0);
    let degraded = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let e = &e;
            let answered = &answered;
            let degraded = &degraded;
            scope.spawn(move || {
                for i in 0..per_thread_users {
                    let user = UserId(t * 1000 + i);
                    for q in queries_for(user.0) {
                        let resp = e
                            .search_with(user, &q, SearchBudget::none())
                            .expect("chaos degrades queries, never errors them");
                        assert!(
                            !resp.turn.hits.is_empty(),
                            "every query must come back ranked (user {user:?}, {q:?})"
                        );
                        if resp.is_degraded() {
                            degraded.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        e.observe(&resp.turn, &impression_from(&resp.turn));
                        answered.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let total = (threads * per_thread_users * 4) as u64;
    assert_eq!(answered.into_inner(), total, "no query may be lost");
    let counts = plan.counts();
    assert!(
        counts.search_panics + counts.poisons > 0,
        "the plan must actually have injected faults: {counts:?}"
    );
    assert!(degraded.into_inner() > 0, "injected faults must surface as degraded turns");
    assert!(
        e.queue_depths().iter().all(|&d| d == 0),
        "all shards drained — nothing wedged: {:?}",
        e.queue_depths()
    );
}

/// Contract 2: the injector's emission counts reconcile exactly with
/// the engine's `serve.*` counters — no fault is silently swallowed.
#[test]
fn every_injected_fault_is_visible_in_counters() {
    quiet_injected_panics();
    let _guard = pws_obs::test_lock();
    pws_obs::reset();
    let idx = index();
    let w = world();
    let plan = Arc::new(ChaosSpec::parse("seed=7,panic=3,poison=5").unwrap().build());
    let e = ServingEngine::new(
        &idx,
        &w,
        EngineConfig::default(),
        ServeConfig { shards: 4, stats_refresh_every: 1, ..ServeConfig::default() },
    )
    .with_fault_plan(plan.clone());
    // Sequential: each poisoning is recovered by its own request, so
    // the counter correspondence is exact, not merely a lower bound.
    let _ = replay(&e, 40);
    let counts = plan.counts();
    assert!(counts.search_panics > 0 && counts.observe_panics > 0 && counts.poisons > 0,
        "rates of 1-in-3 / 1-in-5 over 160 queries must fire every family: {counts:?}");
    let snap = pws_obs::snapshot();
    let count = |name: &str| {
        snap.stages.iter().find(|s| s.name == name).map(|s| s.count).unwrap_or(0)
    };
    assert_eq!(count("serve.degraded.panic"), counts.search_panics);
    assert_eq!(count("serve.state_restored"), counts.observe_panics);
    assert_eq!(count("serve.degraded.lock_poisoned"), counts.poisons);
    assert_eq!(count("serve.user_evicted"), counts.poisons);
    assert_eq!(count("serve.lock_recovered"), counts.poisons);
}

/// Contract 3 (the property test): for any seeded `FaultPlan`, queries
/// of users the injector never touched return byte-identical results
/// to a fault-free run — fault handling has zero blast radius beyond
/// the faulted requests themselves.
#[test]
fn healthy_users_rank_byte_identically_to_fault_free_run() {
    quiet_injected_panics();
    let idx = index();
    let w = world();
    let users = 24u32;
    let serve_cfg =
        || ServeConfig { shards: 4, stats_refresh_every: 1, ..ServeConfig::default() };
    let clean = ServingEngine::new(&idx, &w, EngineConfig::default(), serve_cfg());
    let baseline = replay(&clean, users);
    for seed in [1u64, 7, 42] {
        let plan = Arc::new(
            ChaosSpec::parse(&format!("seed={seed},panic=16,delay=24:100us,poison=32"))
                .unwrap()
                .build(),
        );
        let e = ServingEngine::new(&idx, &w, EngineConfig::default(), serve_cfg())
            .with_fault_plan(plan.clone());
        let chaotic = replay(&e, users);
        let faulted = plan.faulted_users();
        assert!(!faulted.is_empty(), "seed {seed}: plan must touch someone");
        let healthy: Vec<u32> = (0..users).filter(|u| !faulted.contains(u)).collect();
        assert!(!healthy.is_empty(), "seed {seed}: plan must leave someone untouched");
        for u in healthy {
            assert_eq!(
                baseline[&u], chaotic[&u],
                "seed {seed}: untouched user {u} diverged from the fault-free run"
            );
        }
    }
}

/// Contract 4: the fault layer compiled in but *disabled* — an all-zero
/// plan attached — is byte-for-byte invisible.
#[test]
fn inert_plan_is_byte_identical_to_no_plan() {
    let idx = index();
    let w = world();
    let users = 12u32;
    let serve_cfg =
        || ServeConfig { shards: 3, stats_refresh_every: 1, ..ServeConfig::default() };
    let without = ServingEngine::new(&idx, &w, EngineConfig::default(), serve_cfg());
    let inert = Arc::new(ChaosSpec::default().build());
    let with = ServingEngine::new(&idx, &w, EngineConfig::default(), serve_cfg())
        .with_fault_plan(inert.clone());
    assert_eq!(replay(&without, users), replay(&with, users));
    assert_eq!(inert.counts(), pws_chaos::ChaosCounts::default());
}

/// The chaos contract extended to the store tier: with a capacity-1
/// resident set (an eviction and a fault-in on nearly every turn) and
/// panics injected into fault-in and writeback, every query is still
/// answered, users the injector never touched rank byte-identically to
/// a chaos-free run over the same tier, and every store-stage panic is
/// visible in `serve.state_io_error`.
#[test]
fn chaos_with_store_tier_isolates_faults_and_accounts_them() {
    quiet_injected_panics();
    let _guard = pws_obs::test_lock();
    pws_obs::reset();
    let idx = index();
    let w = world();
    let users = 12u32;
    let tmp = |tag: &str| {
        let d =
            std::env::temp_dir().join(format!("pws-chaos-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    };
    let serve_cfg = |dir: &std::path::Path| ServeConfig {
        shards: 4,
        stats_refresh_every: 1,
        store: Some(StoreTierConfig {
            capacity_per_shard: 1,
            // Synchronous writeback: with no daemon racing evictions the
            // single-threaded replay is fully deterministic.
            writeback: false,
            ..StoreTierConfig::new(dir)
        }),
        ..ServeConfig::default()
    };
    // Round-robin turns, so users constantly displace each other.
    let replay_rr = |e: &ServingEngine<'_>| -> HashMap<u32, Vec<String>> {
        let mut out: HashMap<u32, Vec<String>> = HashMap::new();
        for round in 0..4usize {
            for u in 0..users {
                let q = &queries_for(u)[round];
                let resp = e
                    .search_with(UserId(u), q, SearchBudget::none())
                    .expect("chaos degrades queries, never errors them");
                assert!(!resp.turn.hits.is_empty(), "query answered under store chaos");
                e.observe(&resp.turn, &impression_from(&resp.turn));
                out.entry(u).or_default().push(format!("{:?}", resp.turn));
            }
        }
        out
    };

    let clean_dir = tmp("clean");
    let clean = ServingEngine::new(&idx, &w, EngineConfig::default(), serve_cfg(&clean_dir));
    let baseline = replay_rr(&clean);

    let chaos_dir = tmp("chaos");
    let plan = Arc::new(ChaosSpec::parse("seed=11,panic=24").unwrap().build());
    let e = ServingEngine::new(&idx, &w, EngineConfig::default(), serve_cfg(&chaos_dir))
        .with_fault_plan(plan.clone());
    let chaotic = replay_rr(&e);

    let counts = plan.counts();
    assert!(counts.store_panics > 0, "plan must hit fault-in/writeback: {counts:?}");
    let snap = pws_obs::snapshot();
    let io_errors = snap
        .stages
        .iter()
        .find(|s| s.name == "serve.state_io_error")
        .map(|s| s.count)
        .unwrap_or(0);
    assert_eq!(io_errors, counts.store_panics, "every store-stage panic is accounted");

    let faulted = plan.faulted_users();
    let healthy: Vec<u32> = (0..users).filter(|u| !faulted.contains(u)).collect();
    assert!(!healthy.is_empty(), "plan must leave someone untouched");
    for u in healthy {
        assert_eq!(
            baseline[&u], chaotic[&u],
            "untouched user {u} diverged under store chaos"
        );
    }
    drop(e);
    drop(clean);
    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&chaos_dir);
}

/// The same six documents as [`index`], as a two-segment on-disk index
/// (docs 0–2 / 3–5 — global ids identical, so transcripts compare).
fn segmented_index() -> pws_index::SegmentedIndex {
    let docs: [(&str, &str, &str); 6] = [
        ("http://a.test/0", "Seafood guide",
            "seafood restaurant guide with lobster in alden harbor area"),
        ("http://b.test/1", "Seafood lakemoor",
            "seafood restaurant in lakemoor with fresh oysters"),
        ("http://c.test/2", "Sushi place",
            "sushi restaurant downtown with omakase menu in alden"),
        ("http://d.test/3", "Steak house",
            "steak restaurant grill with ribeye specials"),
        ("http://e.test/4", "Pizza lakemoor",
            "pizza restaurant in lakemoor stone oven margherita"),
        ("http://f.test/5", "Noodle bar",
            "noodle restaurant with ramen and broth in alden"),
    ];
    let mut segments = Vec::new();
    for chunk in docs.chunks(3) {
        let mut b = pws_index::SegmentBuilder::new(Default::default());
        for (url, title, body) in chunk {
            b.add(url, title, body);
        }
        segments.push(b.finish_segment().expect("segment"));
    }
    pws_index::SegmentedIndex::from_segments(segments).expect("segmented index")
}

/// Enabling the segmented on-disk backend changes nothing the chaos
/// suite can observe: fault-free replays are byte-identical to the
/// in-memory backend's, and under an injected fault plan the healthy
/// users still rank byte-identically to the fault-free baseline.
#[test]
fn chaos_suite_is_byte_identical_on_segmented_backend() {
    quiet_injected_panics();
    let idx = index();
    let seg = segmented_index();
    let w = world();
    let users = 24u32;
    let serve_cfg =
        || ServeConfig { shards: 4, stats_refresh_every: 1, ..ServeConfig::default() };
    let mem = ServingEngine::new(&idx, &w, EngineConfig::default(), serve_cfg());
    let baseline = replay(&mem, users);
    let on_seg = ServingEngine::new(&seg, &w, EngineConfig::default(), serve_cfg());
    assert_eq!(
        baseline,
        replay(&on_seg, users),
        "fault-free replay must not depend on the backend"
    );
    let plan = Arc::new(
        ChaosSpec::parse("seed=42,panic=16,delay=24:100us,poison=32").unwrap().build(),
    );
    let chaotic = ServingEngine::new(&seg, &w, EngineConfig::default(), serve_cfg())
        .with_fault_plan(plan.clone());
    let chaotic = replay(&chaotic, users);
    let faulted = plan.faulted_users();
    assert!(!faulted.is_empty(), "plan must touch someone");
    for u in (0..users).filter(|u| !faulted.contains(u)) {
        assert_eq!(
            baseline[&u], chaotic[&u],
            "untouched user {u} diverged on the segmented backend"
        );
    }
}

/// Injected latency plus a deadline budget: every delayed query
/// degrades at a deadline checkpoint — deterministically, because the
/// injected delay (50ms) dwarfs the budget (5ms) — and still ranks.
#[test]
fn injected_latency_blows_deadlines_into_degraded_turns() {
    let idx = index();
    let w = world();
    let plan = Arc::new(ChaosSpec::parse("delay=1:50ms").unwrap().build());
    let e = ServingEngine::new(&idx, &w, EngineConfig::default(), ServeConfig::default())
        .with_fault_plan(plan);
    for u in 0..3u32 {
        let resp = e
            .search_with(
                UserId(u),
                &format!("seafood restaurant u{u}"),
                SearchBudget::with_deadline_in(std::time::Duration::from_millis(5)),
            )
            .expect("deadlines degrade, never shed");
        assert!(matches!(
            resp.degraded,
            Some(DegradeReason::DeadlineRetrieval
                | DegradeReason::DeadlineConcepts
                | DegradeReason::DeadlineFeatures)
        ), "expected a deadline degrade, got {:?}", resp.degraded);
        assert!(!resp.turn.hits.is_empty());
    }
}
