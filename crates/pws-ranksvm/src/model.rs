//! The linear ranking model.

use serde::{Deserialize, Serialize};

/// A linear scorer `f(x) = w · x`.
///
/// Dimensions beyond either vector's length are treated as zero, so a model
/// trained on `d` features scores shorter/longer vectors gracefully (useful
/// when a feature schema grows during an online run).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearRankModel {
    /// The weight vector.
    pub weights: Vec<f64>,
}

impl LinearRankModel {
    /// Zero-initialized model of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        LinearRankModel { weights: vec![0.0; dim] }
    }

    /// Model with explicit weights.
    pub fn from_weights(weights: Vec<f64>) -> Self {
        LinearRankModel { weights }
    }

    /// Number of weights.
    pub fn dim(&self) -> usize {
        self.weights.len()
    }

    /// Little-endian `f64::to_bits` byte view of the weights — the
    /// bit-exact vector serialization used by the user-state codec
    /// (`pws-store`). Round-trips NaN payloads and signed zeros exactly.
    pub fn weight_bits_le(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.weights.len() * 8);
        for w in &self.weights {
            out.extend_from_slice(&w.to_bits().to_le_bytes());
        }
        out
    }

    /// Inverse of [`Self::weight_bits_le`]. `None` when the byte length
    /// is not a multiple of 8.
    pub fn from_weight_bits_le(bytes: &[u8]) -> Option<Self> {
        if !bytes.len().is_multiple_of(8) {
            return None;
        }
        let weights = bytes
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
            .collect();
        Some(LinearRankModel { weights })
    }

    /// Score a feature vector: dot product over the common prefix.
    pub fn score(&self, x: &[f64]) -> f64 {
        self.weights.iter().zip(x).map(|(w, v)| w * v).sum()
    }

    /// Squared L2 norm of the weights.
    pub fn norm_sq(&self) -> f64 {
        self.weights.iter().map(|w| w * w).sum()
    }

    /// `w ← (1 − shrink)·w + step·x`, growing the model if `x` is longer.
    pub fn scale_and_add(&mut self, shrink: f64, step: f64, x: &[f64]) {
        if x.len() > self.weights.len() {
            self.weights.resize(x.len(), 0.0);
        }
        let factor = 1.0 - shrink;
        for w in &mut self.weights {
            *w *= factor;
        }
        for (w, v) in self.weights.iter_mut().zip(x) {
            *w += step * v;
        }
    }

    /// Rank a set of candidate vectors: returns indices sorted by
    /// descending score, ties by ascending index (deterministic).
    pub fn rank(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        idx.sort_by(|&a, &b| {
            self.score(&xs[b])
                .partial_cmp(&self.score(&xs[a]))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.cmp(&b))
        });
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_scores_zero() {
        let m = LinearRankModel::zeros(3);
        assert_eq!(m.score(&[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(m.dim(), 3);
    }

    #[test]
    fn score_is_dot_product() {
        let m = LinearRankModel::from_weights(vec![1.0, -2.0]);
        assert_eq!(m.score(&[3.0, 1.0]), 1.0);
    }

    #[test]
    fn length_mismatch_truncates() {
        let m = LinearRankModel::from_weights(vec![1.0, 1.0]);
        assert_eq!(m.score(&[5.0]), 5.0);
        assert_eq!(m.score(&[5.0, 1.0, 100.0]), 6.0);
    }

    #[test]
    fn scale_and_add_updates() {
        let mut m = LinearRankModel::from_weights(vec![2.0, 4.0]);
        m.scale_and_add(0.5, 1.0, &[1.0, 0.0]);
        assert_eq!(m.weights, vec![2.0, 2.0]);
    }

    #[test]
    fn scale_and_add_grows_dimension() {
        let mut m = LinearRankModel::from_weights(vec![1.0]);
        m.scale_and_add(0.0, 2.0, &[0.0, 3.0]);
        assert_eq!(m.weights, vec![1.0, 6.0]);
    }

    #[test]
    fn rank_orders_by_score_desc() {
        let m = LinearRankModel::from_weights(vec![1.0]);
        let xs = vec![vec![1.0], vec![3.0], vec![2.0]];
        assert_eq!(m.rank(&xs), vec![1, 2, 0]);
    }

    #[test]
    fn rank_tie_breaks_by_index() {
        let m = LinearRankModel::zeros(1);
        let xs = vec![vec![1.0], vec![2.0], vec![3.0]];
        assert_eq!(m.rank(&xs), vec![0, 1, 2]);
    }

    #[test]
    fn norm_sq() {
        let m = LinearRankModel::from_weights(vec![3.0, 4.0]);
        assert_eq!(m.norm_sq(), 25.0);
    }
}
