//! # pws-ranksvm — linear pairwise ranking SVM
//!
//! The paper trains a Ranking SVM (Joachims' RSVM) on preference pairs
//! mined from clickthrough data, separately for the content and location
//! feature spaces. This crate is that learner, implemented from scratch:
//!
//! * a linear scoring model `f(x) = w · x` ([`model::LinearRankModel`]);
//! * pairwise hinge-loss training with L2 regularization by seeded SGD
//!   ([`train::PairwiseTrainer`]) — the same objective RSVM optimizes,
//!   `Σ max(0, 1 − w·(x⁺ − x⁻)) + (λ/2)‖w‖²`, with SGD replacing the
//!   original dual decomposition (same model class, different optimizer);
//! * evaluation utilities (pairwise accuracy).
//!
//! ```
//! use pws_ranksvm::{PairwiseTrainer, PreferencePair, TrainConfig};
//!
//! // Prefer vectors with a larger first component.
//! let pairs: Vec<PreferencePair> = (0..50)
//!     .map(|i| {
//!         let a = 1.0 + (i % 5) as f64;
//!         PreferencePair::new(vec![a, 0.0], vec![a - 1.0, 1.0])
//!     })
//!     .collect();
//! let model = PairwiseTrainer::new(TrainConfig::default()).train(2, &pairs);
//! assert!(model.score(&[2.0, 0.0]) > model.score(&[1.0, 1.0]));
//! ```

pub mod model;
pub mod train;

pub use model::LinearRankModel;
pub use train::{pairwise_accuracy, PairwiseTrainer, PreferencePair, TrainConfig};
