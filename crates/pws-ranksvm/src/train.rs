//! Pairwise hinge-loss training (the RSVM objective) by seeded SGD.
//!
//! Objective over preference pairs `(x⁺ ≻ x⁻)`:
//!
//! ```text
//! L(w) = (1/m) Σ max(0, 1 − w·(x⁺ − x⁻)) + (λ/2)‖w‖²
//! ```
//!
//! SGD with the Pegasos-style step size `η_t = η₀ / (1 + λ η₀ t)`: on each
//! pair, shrink by `η_t λ` (the regularizer), and when the margin is
//! violated add `η_t (x⁺ − x⁻)`.

use crate::model::LinearRankModel;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One mined preference: `better` should outrank `worse`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreferencePair {
    /// Feature vector of the preferred item.
    pub better: Vec<f64>,
    /// Feature vector of the dispreferred item.
    pub worse: Vec<f64>,
}

impl PreferencePair {
    /// Convenience constructor.
    pub fn new(better: Vec<f64>, worse: Vec<f64>) -> Self {
        PreferencePair { better, worse }
    }

    /// The difference vector `x⁺ − x⁻` (padded to the longer length).
    pub fn diff(&self) -> Vec<f64> {
        let n = self.better.len().max(self.worse.len());
        (0..n)
            .map(|i| {
                self.better.get(i).copied().unwrap_or(0.0)
                    - self.worse.get(i).copied().unwrap_or(0.0)
            })
            .collect()
    }
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Initial learning rate η₀.
    pub eta0: f64,
    /// L2 regularization strength λ.
    pub lambda: f64,
    /// Passes over the pair set.
    pub epochs: usize,
    /// Shuffle seed.
    pub seed: u64,
    /// Bitmask of weight dimensions the trainer must not change (bit `i`
    /// set = dimension `i` frozen at its pre-training value).
    ///
    /// Needed when learning from clicks: skipped documents are, by
    /// construction, ranked above the click, so the pair differences are
    /// systematically negative in rank-derived features (baseline score,
    /// rank prior). Left free, SGD drives those weights negative — the
    /// model "learns" to distrust the baseline purely from position bias.
    /// Freezing them keeps the trusted prior while the preference features
    /// train normally.
    pub frozen_mask: u32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { eta0: 0.1, lambda: 1e-4, epochs: 20, seed: 7, frozen_mask: 0 }
    }
}

/// The trainer. Stateless apart from its config; every `train` call is
/// independent and deterministic.
#[derive(Debug, Clone)]
pub struct PairwiseTrainer {
    cfg: TrainConfig,
}

impl PairwiseTrainer {
    /// Build a trainer.
    pub fn new(cfg: TrainConfig) -> Self {
        PairwiseTrainer { cfg }
    }

    /// Train a fresh model of dimension `dim` on `pairs`.
    pub fn train(&self, dim: usize, pairs: &[PreferencePair]) -> LinearRankModel {
        let mut model = LinearRankModel::zeros(dim);
        self.train_into(&mut model, pairs);
        model
    }

    /// Continue training an existing model in place (used for periodic
    /// re-training as new clicks arrive). Regularizes towards **zero**.
    pub fn train_into(&self, model: &mut LinearRankModel, pairs: &[PreferencePair]) {
        let anchor = vec![0.0; model.dim()];
        self.train_anchored(model, &anchor, pairs);
    }

    /// Train with the L2 regularizer anchored at `anchor` instead of zero:
    /// the objective becomes
    /// `Σ hinge + (λ/2)‖w − anchor‖²`.
    ///
    /// This is how the engine trains per-user models online: `anchor` is
    /// the hand-tuned prior, so when click pairs are uninformative (or
    /// purely position-biased) the model *stays at the prior* rather than
    /// drifting to zero — without it, shrinkage erases the prior even when
    /// nothing useful was learned.
    pub fn train_anchored(
        &self,
        model: &mut LinearRankModel,
        anchor: &[f64],
        pairs: &[PreferencePair],
    ) {
        if pairs.is_empty() {
            return;
        }
        // Every optimization path funnels through here, so this one span
        // covers `train`, `train_into`, and online re-training alike.
        static STAGE: std::sync::OnceLock<std::sync::Arc<pws_obs::StageMetrics>> =
            std::sync::OnceLock::new();
        let _span = STAGE.get_or_init(|| pws_obs::stage("ranksvm.train")).span();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        let mut t: u64 = 0;
        // Snapshot frozen weights so each update can restore them.
        let frozen: Vec<(usize, f64)> = (0..model.dim())
            .filter(|i| *i < 32 && self.cfg.frozen_mask & (1 << i) != 0)
            .map(|i| (i, model.weights[i]))
            .collect();
        for _ in 0..self.cfg.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                t += 1;
                let eta = self.cfg.eta0 / (1.0 + self.cfg.lambda * self.cfg.eta0 * t as f64);
                let diff = pairs[i].diff();
                let margin = model.score(&diff);
                // Shrink towards the anchor: w ← w − ηλ(w − a) = (1−ηλ)w + ηλa.
                let shrink = eta * self.cfg.lambda;
                if margin < 1.0 {
                    model.scale_and_add(shrink, eta, &diff);
                } else {
                    model.scale_and_add(shrink, 0.0, &[]);
                }
                for (w, a) in model.weights.iter_mut().zip(anchor) {
                    *w += shrink * a;
                }
                for &(d, w) in &frozen {
                    model.weights[d] = w;
                }
            }
        }
    }

    /// Average hinge loss (without the regularizer) of `model` on `pairs`.
    pub fn hinge_loss(model: &LinearRankModel, pairs: &[PreferencePair]) -> f64 {
        if pairs.is_empty() {
            return 0.0;
        }
        pairs
            .iter()
            .map(|p| (1.0 - model.score(&p.diff())).max(0.0))
            .sum::<f64>()
            / pairs.len() as f64
    }
}

/// Fraction of pairs ranked correctly (strictly) by `model`.
pub fn pairwise_accuracy(model: &LinearRankModel, pairs: &[PreferencePair]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let correct = pairs
        .iter()
        .filter(|p| model.score(&p.better) > model.score(&p.worse))
        .count();
    correct as f64 / pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::Rng;

    /// Pairs separable by w* = (1, -1).
    fn separable_pairs(n: usize, seed: u64) -> Vec<PreferencePair> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let base: f64 = rng.gen_range(-1.0..1.0);
                // better has larger (x0 - x1).
                PreferencePair::new(
                    vec![base + rng.gen_range(0.2..1.0), base],
                    vec![base, base + rng.gen_range(0.2..1.0)],
                )
            })
            .collect()
    }

    #[test]
    fn learns_separable_data() {
        let pairs = separable_pairs(200, 1);
        let model = PairwiseTrainer::new(TrainConfig::default()).train(2, &pairs);
        assert!(pairwise_accuracy(&model, &pairs) > 0.95);
    }

    #[test]
    fn loss_decreases_with_training() {
        let pairs = separable_pairs(200, 2);
        let t = PairwiseTrainer::new(TrainConfig { epochs: 1, ..Default::default() });
        let m1 = t.train(2, &pairs);
        let t20 = PairwiseTrainer::new(TrainConfig { epochs: 20, ..Default::default() });
        let m20 = t20.train(2, &pairs);
        let l1 = PairwiseTrainer::hinge_loss(&m1, &pairs);
        let l20 = PairwiseTrainer::hinge_loss(&m20, &pairs);
        assert!(l20 <= l1, "loss went up: {l1} -> {l20}");
        let l0 = PairwiseTrainer::hinge_loss(&LinearRankModel::zeros(2), &pairs);
        assert!(l20 < l0, "training never beat the zero model");
    }

    #[test]
    fn deterministic_training() {
        let pairs = separable_pairs(50, 3);
        let t = PairwiseTrainer::new(TrainConfig::default());
        assert_eq!(t.train(2, &pairs).weights, t.train(2, &pairs).weights);
    }

    #[test]
    fn empty_pairs_noop() {
        let t = PairwiseTrainer::new(TrainConfig::default());
        let m = t.train(3, &[]);
        assert_eq!(m.weights, vec![0.0; 3]);
        assert_eq!(PairwiseTrainer::hinge_loss(&m, &[]), 0.0);
        assert_eq!(pairwise_accuracy(&m, &[]), 0.0);
    }

    #[test]
    fn regularization_bounds_weights() {
        let pairs = separable_pairs(100, 4);
        let strong = PairwiseTrainer::new(TrainConfig { lambda: 1.0, ..Default::default() })
            .train(2, &pairs);
        let weak = PairwiseTrainer::new(TrainConfig { lambda: 1e-6, ..Default::default() })
            .train(2, &pairs);
        assert!(strong.norm_sq() < weak.norm_sq());
    }

    #[test]
    fn train_into_continues_from_existing_weights() {
        let pairs = separable_pairs(100, 5);
        let t = PairwiseTrainer::new(TrainConfig { epochs: 5, ..Default::default() });
        let mut m = t.train(2, &pairs);
        let acc1 = pairwise_accuracy(&m, &pairs);
        t.train_into(&mut m, &pairs);
        let acc2 = pairwise_accuracy(&m, &pairs);
        assert!(acc2 >= acc1 - 0.05, "continued training degraded accuracy");
    }

    #[test]
    fn frozen_dimensions_keep_their_values() {
        let pairs = separable_pairs(100, 8);
        let cfg = TrainConfig { frozen_mask: 0b01, ..Default::default() };
        let mut model = LinearRankModel::from_weights(vec![0.7, 0.0]);
        PairwiseTrainer::new(cfg).train_into(&mut model, &pairs);
        assert_eq!(model.weights[0], 0.7, "frozen dim changed");
        assert_ne!(model.weights[1], 0.0, "free dim should train");
    }

    #[test]
    fn diff_pads_mismatched_lengths() {
        let p = PreferencePair::new(vec![1.0], vec![0.0, 2.0]);
        assert_eq!(p.diff(), vec![1.0, -2.0]);
    }

    #[test]
    fn noisy_data_still_learns_majority_direction() {
        let mut pairs = separable_pairs(180, 6);
        // 10% label noise: flip some pairs.
        let flipped: Vec<PreferencePair> = separable_pairs(20, 7)
            .into_iter()
            .map(|p| PreferencePair::new(p.worse, p.better))
            .collect();
        pairs.extend(flipped);
        let model = PairwiseTrainer::new(TrainConfig::default()).train(2, &pairs);
        assert!(pairwise_accuracy(&model, &pairs) > 0.8);
    }

    proptest! {
        #[test]
        fn accuracy_is_a_fraction(
            pairs in proptest::collection::vec(
                (proptest::collection::vec(-5.0f64..5.0, 3),
                 proptest::collection::vec(-5.0f64..5.0, 3)),
                1..30,
            )
        ) {
            let pairs: Vec<PreferencePair> =
                pairs.into_iter().map(|(b, w)| PreferencePair::new(b, w)).collect();
            let m = PairwiseTrainer::new(TrainConfig { epochs: 3, ..Default::default() })
                .train(3, &pairs);
            let acc = pairwise_accuracy(&m, &pairs);
            prop_assert!((0.0..=1.0).contains(&acc));
            let loss = PairwiseTrainer::hinge_loss(&m, &pairs);
            prop_assert!(loss >= 0.0 && loss.is_finite());
        }
    }
}
