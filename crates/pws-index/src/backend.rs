//! The retrieval abstraction the personalization layer builds on.
//!
//! [`RetrievalBackend`] is the exact surface `pws-core`'s `EngineCore`
//! consumes from base retrieval: analyze text the way the index does,
//! run a top-k query (raw or pre-analyzed), and re-score specific
//! documents against a query. Both the in-memory
//! [`crate::SearchEngine`] and the on-disk
//! [`crate::segmented::SegmentedIndex`] implement it with **identical
//! ranking semantics** (bit-identical scores, ordering, and snippets
//! over the same corpus), so the serving stack can swap the segmented
//! backend in without perturbing replay-equivalence or chaos suites.

use crate::search::{SearchEngine, SearchHit};
use crate::segmented::SegmentedIndex;

/// Base-retrieval operations required by the personalization layer.
///
/// Contract (shared by all implementations, and what the equivalence
/// suites assert): results are ranked by BM25 descending with ties
/// broken by ascending doc id; `search_tokens(analyze_text(q), k)`
/// equals `search(q, k)`; `score_docs` returns exactly 0.0 for docs
/// matching no query term and credits only the last occurrence of a
/// duplicated doc id.
pub trait RetrievalBackend: Send + Sync {
    /// Run the index's analyzer over arbitrary text.
    fn analyze_text(&self, text: &str) -> Vec<String>;

    /// Top-k query over raw query text.
    fn search(&self, query: &str, k: usize) -> Vec<SearchHit>;

    /// Top-k query over pre-analyzed tokens (callers that key caches on
    /// analyzed tokens analyze exactly once).
    fn search_tokens(&self, q_tokens: &[String], k: usize) -> Vec<SearchHit>;

    /// BM25 scores of `query` for specific doc ids (0.0 for docs
    /// matching no query term).
    fn score_docs(&self, query: &str, docs: &[u32]) -> Vec<f64>;
}

impl RetrievalBackend for SearchEngine {
    fn analyze_text(&self, text: &str) -> Vec<String> {
        SearchEngine::analyze_text(self, text)
    }

    fn search(&self, query: &str, k: usize) -> Vec<SearchHit> {
        SearchEngine::search(self, query, k)
    }

    fn search_tokens(&self, q_tokens: &[String], k: usize) -> Vec<SearchHit> {
        SearchEngine::search_tokens(self, q_tokens, k)
    }

    fn score_docs(&self, query: &str, docs: &[u32]) -> Vec<f64> {
        SearchEngine::score_docs(self, query, docs)
    }
}

impl RetrievalBackend for SegmentedIndex {
    fn analyze_text(&self, text: &str) -> Vec<String> {
        SegmentedIndex::analyze_text(self, text)
    }

    fn search(&self, query: &str, k: usize) -> Vec<SearchHit> {
        SegmentedIndex::search(self, query, k)
    }

    fn search_tokens(&self, q_tokens: &[String], k: usize) -> Vec<SearchHit> {
        SegmentedIndex::search_tokens(self, q_tokens, k)
    }

    fn score_docs(&self, query: &str, docs: &[u32]) -> Vec<f64> {
        SegmentedIndex::score_docs(self, query, docs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;
    use crate::search::StoredDoc;

    #[test]
    fn engine_usable_as_dyn_backend() {
        let mut b = IndexBuilder::new();
        b.add(StoredDoc::new(0, "u0", "Crab shack", "fresh seafood lobster daily"));
        let eng = b.build();
        let backend: &dyn RetrievalBackend = &eng;
        let hits = backend.search("seafood", 10);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits, backend.search_tokens(&backend.analyze_text("seafood"), 10));
        assert!(backend.score_docs("seafood", &[0])[0] > 0.0);
    }

    #[test]
    fn segmented_usable_as_dyn_backend() {
        let mut b = crate::segment::SegmentBuilder::new(Default::default());
        b.add("u0", "Crab shack", "fresh seafood lobster daily");
        let idx =
            SegmentedIndex::from_segments(vec![b.finish_segment().expect("seg")]).expect("idx");
        let backend: &dyn RetrievalBackend = &idx;
        let hits = backend.search("seafood", 10);
        assert_eq!(hits.len(), 1);
        assert!(backend.score_docs("seafood", &[0])[0] > 0.0);
    }
}
