//! Posting lists.
//!
//! Per term, the index stores an encoded block of `(doc_id, tf, positions)`
//! triples. Doc ids are delta-encoded across postings; positions are
//! delta-encoded within a posting. Decoding yields [`Posting`]s.

use crate::codec::{decode_deltas, encode_deltas, read_varint, write_varint};

/// One decoded posting: a document and the term's occurrences in it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Posting {
    /// Document id (dense, index-local).
    pub doc: u32,
    /// Term frequency (equals `positions.len()`).
    pub tf: u32,
    /// Ascending token positions of the term in the document.
    pub positions: Vec<u32>,
}

/// Encoded posting list for one term.
#[derive(Debug, Clone, Default)]
pub struct PostingList {
    /// Number of documents containing the term.
    doc_count: u32,
    /// Total occurrences across all documents.
    total_tf: u64,
    /// Encoded payload.
    bytes: Vec<u8>,
    /// Last doc id written (for delta encoding during building).
    last_doc: u32,
}

impl PostingList {
    /// Empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Document frequency (df) of the term.
    pub fn doc_count(&self) -> u32 {
        self.doc_count
    }

    /// Collection frequency (cf) of the term.
    pub fn total_tf(&self) -> u64 {
        self.total_tf
    }

    /// Size of the encoded payload in bytes.
    pub fn encoded_len(&self) -> usize {
        self.bytes.len()
    }

    /// Append a posting. Documents must be appended in ascending id order
    /// (the builder guarantees this); positions must be ascending.
    ///
    /// # Panics
    /// Panics if `doc` is not greater than the last appended doc, or if
    /// `positions` is empty.
    pub fn push(&mut self, doc: u32, positions: &[u32]) {
        assert!(!positions.is_empty(), "posting with no positions");
        assert!(
            self.doc_count == 0 || doc > self.last_doc,
            "postings must be appended in ascending doc order ({doc} after {})",
            self.last_doc
        );
        let delta = if self.doc_count == 0 { doc } else { doc - self.last_doc };
        write_varint(&mut self.bytes, delta);
        write_varint(&mut self.bytes, positions.len() as u32);
        encode_deltas(positions, &mut self.bytes);
        self.last_doc = doc;
        self.doc_count += 1;
        self.total_tf += positions.len() as u64;
    }

    /// Decode the whole list.
    pub fn decode(&self) -> Vec<Posting> {
        self.iter().collect()
    }

    /// Serialize the list (header + encoded payload) into `out`.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        crate::codec::write_varint(out, self.doc_count);
        crate::codec::write_varint(out, self.last_doc);
        // total_tf fits u64; write as two u32 halves via varint.
        crate::codec::write_varint(out, (self.total_tf >> 32) as u32);
        crate::codec::write_varint(out, (self.total_tf & 0xFFFF_FFFF) as u32);
        crate::codec::write_varint(out, self.bytes.len() as u32);
        out.extend_from_slice(&self.bytes);
    }

    /// Deserialize a list previously written with [`PostingList::write_to`],
    /// advancing `buf`. Returns `None` on malformed input.
    pub fn read_from(buf: &mut &[u8]) -> Option<PostingList> {
        let doc_count = crate::codec::read_varint(buf)?;
        let last_doc = crate::codec::read_varint(buf)?;
        let hi = crate::codec::read_varint(buf)?;
        let lo = crate::codec::read_varint(buf)?;
        let len = crate::codec::read_varint(buf)? as usize;
        if buf.len() < len {
            return None;
        }
        let bytes = buf[..len].to_vec();
        *buf = &buf[len..];
        Some(PostingList {
            doc_count,
            total_tf: (u64::from(hi) << 32) | u64::from(lo),
            bytes,
            last_doc,
        })
    }

    /// Iterate postings lazily.
    pub fn iter(&self) -> PostingIter<'_> {
        PostingIter { buf: &self.bytes, remaining: self.doc_count, prev_doc: 0, first: true }
    }

    /// Iterate `(doc, tf)` pairs lazily, skipping position payloads without
    /// allocating. This is the scoring hot path: BM25 needs only tf, and
    /// decoding positions into a `Vec` per posting dominates decode cost.
    pub fn iter_doc_tf(&self) -> DocTfIter<'_> {
        DocTfIter { buf: &self.bytes, remaining: self.doc_count, prev_doc: 0, first: true }
    }
}

/// Lazy decoder over an encoded posting list.
#[derive(Debug)]
pub struct PostingIter<'a> {
    buf: &'a [u8],
    remaining: u32,
    prev_doc: u32,
    first: bool,
}

impl Iterator for PostingIter<'_> {
    type Item = Posting;

    fn next(&mut self) -> Option<Posting> {
        if self.remaining == 0 {
            return None;
        }
        let delta = read_varint(&mut self.buf)?;
        let doc = if self.first { delta } else { self.prev_doc + delta };
        self.first = false;
        self.prev_doc = doc;
        let tf = read_varint(&mut self.buf)?;
        let positions = decode_deltas(&mut self.buf, tf as usize)?;
        self.remaining -= 1;
        Some(Posting { doc, tf, positions })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

/// Lazy `(doc, tf)` decoder that skips position payloads (no allocation).
#[derive(Debug)]
pub struct DocTfIter<'a> {
    buf: &'a [u8],
    remaining: u32,
    prev_doc: u32,
    first: bool,
}

impl Iterator for DocTfIter<'_> {
    type Item = (u32, u32);

    fn next(&mut self) -> Option<(u32, u32)> {
        if self.remaining == 0 {
            return None;
        }
        let delta = read_varint(&mut self.buf)?;
        let doc = if self.first { delta } else { self.prev_doc + delta };
        self.first = false;
        self.prev_doc = doc;
        let tf = read_varint(&mut self.buf)?;
        crate::codec::skip_deltas(&mut self.buf, tf as usize)?;
        self.remaining -= 1;
        Some((doc, tf))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_list() {
        let l = PostingList::new();
        assert_eq!(l.doc_count(), 0);
        assert_eq!(l.total_tf(), 0);
        assert!(l.decode().is_empty());
    }

    #[test]
    fn push_and_decode() {
        let mut l = PostingList::new();
        l.push(2, &[0, 5, 9]);
        l.push(7, &[3]);
        l.push(100, &[1, 2]);
        let ps = l.decode();
        assert_eq!(ps.len(), 3);
        assert_eq!(ps[0], Posting { doc: 2, tf: 3, positions: vec![0, 5, 9] });
        assert_eq!(ps[1], Posting { doc: 7, tf: 1, positions: vec![3] });
        assert_eq!(ps[2], Posting { doc: 100, tf: 2, positions: vec![1, 2] });
        assert_eq!(l.doc_count(), 3);
        assert_eq!(l.total_tf(), 6);
    }

    #[test]
    fn doc_zero_is_representable() {
        let mut l = PostingList::new();
        l.push(0, &[4]);
        assert_eq!(l.decode()[0].doc, 0);
    }

    #[test]
    #[should_panic]
    fn out_of_order_docs_panic() {
        let mut l = PostingList::new();
        l.push(5, &[0]);
        l.push(5, &[1]);
    }

    #[test]
    #[should_panic]
    fn empty_positions_panic() {
        let mut l = PostingList::new();
        l.push(1, &[]);
    }

    #[test]
    fn iter_size_hint_matches() {
        let mut l = PostingList::new();
        l.push(1, &[0]);
        l.push(2, &[0]);
        let it = l.iter();
        assert_eq!(it.size_hint(), (2, Some(2)));
        assert_eq!(it.count(), 2);
    }

    proptest! {
        #[test]
        fn round_trip_random_lists(
            entries in proptest::collection::btree_map(
                0u32..100_000,
                proptest::collection::btree_set(0u32..5_000, 1..20),
                1..50,
            )
        ) {
            let mut l = PostingList::new();
            for (doc, pos_set) in &entries {
                let positions: Vec<u32> = pos_set.iter().copied().collect();
                l.push(*doc, &positions);
            }
            let decoded = l.decode();
            prop_assert_eq!(decoded.len(), entries.len());
            for (p, (doc, pos_set)) in decoded.iter().zip(entries.iter()) {
                prop_assert_eq!(p.doc, *doc);
                let positions: Vec<u32> = pos_set.iter().copied().collect();
                prop_assert_eq!(&p.positions, &positions);
                prop_assert_eq!(p.tf as usize, positions.len());
            }
        }
    }
}
