//! # pws-index — in-memory search-engine substrate
//!
//! The paper's personalization layer sits *on top of* a conventional search
//! engine: it takes the engine's top-K results (with snippets) and re-ranks
//! them. Offline we have no commercial backend, so this crate is that
//! backend: a compact but complete in-memory search engine —
//!
//! * [`builder::IndexBuilder`] — tokenizes documents (via [`pws_text`]) and
//!   builds an inverted index;
//! * [`postings`] + [`codec`] — delta- and varint-encoded posting lists with
//!   term frequencies and positions (positions feed snippet extraction);
//! * [`score`] — Okapi BM25;
//! * [`search::SearchEngine`] — top-K query execution over the index, with
//!   [`snippet`] extraction, producing exactly the `(url, title, snippet)`
//!   result lists the personalization layer consumes.
//!
//! ```
//! use pws_index::{IndexBuilder, StoredDoc};
//!
//! let mut b = IndexBuilder::new();
//! b.add(StoredDoc::new(0, "http://a.test/1", "Crab shack", "fresh seafood and lobster daily"));
//! b.add(StoredDoc::new(1, "http://b.test/2", "Phone store", "unlocked android smartphone deals"));
//! let engine = b.build();
//! let hits = engine.search("seafood lobster", 10);
//! assert_eq!(hits[0].doc, 0);
//! ```

pub mod builder;
pub mod codec;
pub mod persist;
pub mod postings;
pub mod query;
pub mod score;
pub mod search;
pub mod snippet;

pub use builder::IndexBuilder;
pub use postings::{DocTfIter, Posting, PostingList};
pub use persist::PersistError;
pub use query::{parse_query, ParseError, QueryExpr};
pub use score::Bm25Params;
pub use search::{SearchEngine, SearchHit, StoredDoc};
pub use snippet::extract_snippet;
