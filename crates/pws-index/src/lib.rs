//! # pws-index — search-engine substrate (in-memory and segmented on-disk)
//!
//! The paper's personalization layer sits *on top of* a conventional search
//! engine: it takes the engine's top-K results (with snippets) and re-ranks
//! them. Offline we have no commercial backend, so this crate is that
//! backend — two interchangeable implementations behind one
//! [`backend::RetrievalBackend`] trait:
//!
//! * [`search::SearchEngine`] — the original fully in-memory engine:
//!   [`builder::IndexBuilder`] tokenizes documents (via [`pws_text`]) and
//!   builds an inverted index; [`postings`] + [`codec`] hold delta- and
//!   varint-encoded posting lists with term frequencies and positions
//!   (positions feed snippet extraction); [`score`] is Okapi BM25; queries
//!   run document-at-a-time with MaxScore pruning.
//! * [`segmented::SegmentedIndex`] — the scale path: immutable on-disk
//!   [`segment::Segment`]s in the checksummed, versioned file format of
//!   [`segfile`] (spec: `docs/INDEX_FORMAT.md`), block-compressed postings
//!   with per-block maxima, and **Block-Max WAND** top-k pruning that is
//!   bit-identical to exhaustive scoring.
//!
//! Both produce exactly the `(url, title, snippet)` result lists the
//! personalization layer consumes, with identical ranking semantics.
//!
//! ```
//! use pws_index::{IndexBuilder, StoredDoc};
//!
//! let mut b = IndexBuilder::new();
//! b.add(StoredDoc::new(0, "http://a.test/1", "Crab shack", "fresh seafood and lobster daily"));
//! b.add(StoredDoc::new(1, "http://b.test/2", "Phone store", "unlocked android smartphone deals"));
//! let engine = b.build();
//! let hits = engine.search("seafood lobster", 10);
//! assert_eq!(hits[0].doc, 0);
//! ```

pub mod backend;
pub mod builder;
pub mod codec;
pub mod persist;
pub mod postings;
pub mod query;
pub mod score;
pub mod search;
pub mod segfile;
pub mod segment;
pub mod segmented;
pub mod snippet;

pub use backend::RetrievalBackend;
pub use pws_text::Analyzer;
pub use builder::IndexBuilder;
pub use postings::{DocTfIter, Posting, PostingList};
pub use persist::PersistError;
pub use query::{parse_query, ParseError, QueryExpr};
pub use score::Bm25Params;
pub use search::{SearchEngine, SearchHit, StoredDoc};
pub use segfile::{SectionId, SegmentError, FORMAT_VERSION, SEGMENT_MAGIC};
pub use segment::{Segment, SegmentBuilder, BLOCK_SIZE};
pub use segmented::SegmentedIndex;
pub use snippet::extract_snippet;
