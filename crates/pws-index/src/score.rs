//! Okapi BM25 scoring.

/// BM25 free parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bm25Params {
    /// Term-frequency saturation. Typical range 1.2–2.0.
    pub k1: f64,
    /// Length normalization strength in [0, 1].
    pub b: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Bm25Params { k1: 1.2, b: 0.75 }
    }
}

/// Robertson–Sparck Jones idf with the +1 floor that keeps it positive:
/// `ln(1 + (N - df + 0.5) / (df + 0.5))`.
#[inline]
pub fn idf(doc_count: u32, df: u32) -> f64 {
    let n = f64::from(doc_count);
    let df = f64::from(df);
    (1.0 + (n - df + 0.5) / (df + 0.5)).ln()
}

/// BM25 contribution of one term in one document.
///
/// `tf` — term frequency in the doc; `doc_len` — the doc's token count;
/// `avg_doc_len` — collection average.
#[inline]
pub fn bm25_term(params: Bm25Params, idf: f64, tf: u32, doc_len: u32, avg_doc_len: f64) -> f64 {
    let tf = f64::from(tf);
    let norm = if avg_doc_len > 0.0 {
        1.0 - params.b + params.b * f64::from(doc_len) / avg_doc_len
    } else {
        1.0
    };
    idf * (tf * (params.k1 + 1.0)) / (tf + params.k1 * norm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idf_decreases_with_df() {
        let n = 1000;
        assert!(idf(n, 1) > idf(n, 10));
        assert!(idf(n, 10) > idf(n, 500));
    }

    #[test]
    fn idf_always_positive() {
        // Even ubiquitous terms get positive idf with the +1 floor.
        assert!(idf(10, 10) > 0.0);
        assert!(idf(1, 1) > 0.0);
    }

    #[test]
    fn score_increases_with_tf_but_saturates() {
        let p = Bm25Params::default();
        let i = idf(1000, 10);
        let s1 = bm25_term(p, i, 1, 100, 100.0);
        let s2 = bm25_term(p, i, 2, 100, 100.0);
        let s10 = bm25_term(p, i, 10, 100, 100.0);
        let s20 = bm25_term(p, i, 20, 100, 100.0);
        assert!(s2 > s1);
        assert!(s10 > s2);
        // Saturation: the 10→20 gain is smaller than the 1→2 gain.
        assert!(s20 - s10 < s2 - s1);
    }

    #[test]
    fn longer_docs_score_lower_at_same_tf() {
        let p = Bm25Params::default();
        let i = idf(1000, 10);
        let short = bm25_term(p, i, 3, 50, 100.0);
        let long = bm25_term(p, i, 3, 400, 100.0);
        assert!(short > long);
    }

    #[test]
    fn b_zero_disables_length_normalization() {
        let p = Bm25Params { k1: 1.2, b: 0.0 };
        let i = idf(1000, 10);
        let a = bm25_term(p, i, 3, 50, 100.0);
        let b = bm25_term(p, i, 3, 5000, 100.0);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn zero_avg_len_is_safe() {
        let p = Bm25Params::default();
        let s = bm25_term(p, 1.0, 1, 0, 0.0);
        assert!(s.is_finite() && s > 0.0);
    }
}
