//! Index construction.
//!
//! Documents must be added in ascending id order (posting lists are
//! append-only delta chains). The builder tokenizes with the workspace
//! [`pws_text::Analyzer`], records positions for snippet extraction, and
//! produces an immutable [`SearchEngine`].

use crate::postings::PostingList;
use crate::search::{SearchEngine, StoredDoc};
use pws_text::{Analyzer, Interner, Sym};
use std::collections::HashMap;

/// Builder for [`SearchEngine`].
#[derive(Debug)]
pub struct IndexBuilder {
    analyzer: Analyzer,
    interner: Interner,
    postings: Vec<PostingList>,
    docs: Vec<StoredDoc>,
    doc_lens: Vec<u32>,
    total_len: u64,
}

impl Default for IndexBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl IndexBuilder {
    /// Builder with the default analyzer (stopword removal + stemming).
    pub fn new() -> Self {
        Self::with_analyzer(Analyzer::default())
    }

    /// Builder with a custom analyzer.
    pub fn with_analyzer(analyzer: Analyzer) -> Self {
        IndexBuilder {
            analyzer,
            interner: Interner::new(),
            postings: Vec::new(),
            docs: Vec::new(),
            doc_lens: Vec::new(),
            total_len: 0,
        }
    }

    /// Number of documents added so far.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True before the first `add`.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Add one document. `doc.id` must equal the current document count
    /// (dense ascending ids).
    ///
    /// # Panics
    /// Panics on out-of-order ids — an indexing-pipeline bug.
    pub fn add(&mut self, doc: StoredDoc) {
        assert_eq!(
            doc.id as usize,
            self.docs.len(),
            "documents must be added with dense ascending ids"
        );
        let tokens = self.analyzer.analyze(&doc.indexable_text());
        let doc_len = tokens.len() as u32;

        // Collect positions per term first; postings require one push per
        // (term, doc) pair.
        let mut term_positions: HashMap<Sym, Vec<u32>> = HashMap::new();
        for (pos, tok) in tokens.iter().enumerate() {
            let sym = self.interner.intern(tok);
            term_positions.entry(sym).or_default().push(pos as u32);
        }
        // Grow the postings table to cover any new symbols.
        if self.interner.len() > self.postings.len() {
            self.postings.resize_with(self.interner.len(), PostingList::new);
        }
        // Deterministic order: sort by symbol id.
        let mut entries: Vec<(Sym, Vec<u32>)> = term_positions.into_iter().collect();
        entries.sort_unstable_by_key(|(s, _)| *s);
        for (sym, positions) in entries {
            self.postings[sym.index()].push(doc.id, &positions);
        }

        self.doc_lens.push(doc_len);
        self.total_len += u64::from(doc_len);
        self.docs.push(doc);
    }

    /// Finish building. Consumes the builder.
    pub fn build(self) -> SearchEngine {
        SearchEngine::from_parts(
            self.analyzer,
            self.interner,
            self.postings,
            self.docs,
            self.doc_lens,
            self.total_len,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_empty_engine() {
        let e = IndexBuilder::new().build();
        assert_eq!(e.doc_count(), 0);
        assert!(e.search("anything", 10).is_empty());
    }

    #[test]
    fn doc_lengths_tracked() {
        let mut b = IndexBuilder::with_analyzer(Analyzer::verbatim());
        b.add(StoredDoc::new(0, "u0", "t", "one two three"));
        b.add(StoredDoc::new(1, "u1", "t", "four five"));
        let e = b.build();
        // verbatim analyzer: title ("t") + body tokens all count.
        assert_eq!(e.doc_count(), 2);
        assert!(e.avg_doc_len() > 0.0);
    }

    #[test]
    #[should_panic]
    fn out_of_order_ids_panic() {
        let mut b = IndexBuilder::new();
        b.add(StoredDoc::new(1, "u", "t", "body"));
    }

    #[test]
    fn repeated_terms_accumulate_tf() {
        let mut b = IndexBuilder::with_analyzer(Analyzer::verbatim());
        b.add(StoredDoc::new(0, "u", "x", "fish fish fish chips"));
        let e = b.build();
        let hits = e.search("fish", 10);
        assert_eq!(hits.len(), 1);
        // tf info is internal; verify via df accessor instead.
        assert_eq!(e.doc_frequency("fish"), 1);
    }
}
