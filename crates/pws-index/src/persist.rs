//! Index persistence: a compact, versioned binary format.
//!
//! A production engine must survive restarts without re-indexing; this
//! module serializes the full [`SearchEngine`] — analyzer configuration,
//! term dictionary, encoded postings, document store, and length
//! statistics — to a byte buffer (and therefore to a file).
//!
//! Layout (all integers varint unless noted):
//!
//! ```text
//! magic "PWSIDX1\0" (8 raw bytes)
//! analyzer: remove_stopwords u8 · stem u8 · min_len · max_len
//! doc_count · total_len (two u32 halves)
//! interner: n · n × (len · utf8 bytes)
//! postings: n × PostingList::write_to
//! docs: n × (id · url · title · body — each len-prefixed utf8)
//! doc_lens: n × varint
//! ```

use crate::codec::{read_varint, write_varint};
use crate::postings::PostingList;
use crate::search::{SearchEngine, StoredDoc};
use pws_text::{Analyzer, Interner};

/// Error type for deserialization failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistError(pub String);

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "index deserialization error: {}", self.0)
    }
}

impl std::error::Error for PersistError {}

const MAGIC: &[u8; 8] = b"PWSIDX1\0";

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_varint(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn read_str(buf: &mut &[u8]) -> Result<String, PersistError> {
    let len = read_varint(buf).ok_or_else(|| PersistError("truncated length".into()))? as usize;
    if buf.len() < len {
        return Err(PersistError("truncated string".into()));
    }
    let s = std::str::from_utf8(&buf[..len])
        .map_err(|_| PersistError("invalid utf8".into()))?
        .to_string();
    *buf = &buf[len..];
    Ok(s)
}

impl SearchEngine {
    /// Serialize the engine to a byte buffer.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);

        let a = self.analyzer_config();
        out.push(u8::from(a.remove_stopwords));
        out.push(u8::from(a.stem));
        write_varint(&mut out, a.min_token_len as u32);
        write_varint(&mut out, a.max_token_len as u32);

        let (interner, postings, docs, doc_lens, total_len) = self.parts();
        write_varint(&mut out, docs.len() as u32);
        write_varint(&mut out, (total_len >> 32) as u32);
        write_varint(&mut out, (total_len & 0xFFFF_FFFF) as u32);

        write_varint(&mut out, interner.len() as u32);
        for (_, s) in interner.iter() {
            write_str(&mut out, s);
        }

        write_varint(&mut out, postings.len() as u32);
        for p in postings {
            p.write_to(&mut out);
        }

        for d in docs {
            write_varint(&mut out, d.id);
            write_str(&mut out, &d.url);
            write_str(&mut out, &d.title);
            write_str(&mut out, &d.body);
        }
        for &l in doc_lens {
            write_varint(&mut out, l);
        }
        out
    }

    /// Reconstruct an engine from bytes produced by
    /// [`SearchEngine::serialize`].
    pub fn deserialize(bytes: &[u8]) -> Result<SearchEngine, PersistError> {
        let mut buf = bytes;
        if buf.len() < MAGIC.len() || &buf[..MAGIC.len()] != MAGIC {
            return Err(PersistError("bad magic".into()));
        }
        buf = &buf[MAGIC.len()..];

        let take_u8 = |buf: &mut &[u8]| -> Result<u8, PersistError> {
            if buf.is_empty() {
                return Err(PersistError("truncated header".into()));
            }
            let b = buf[0];
            *buf = &buf[1..];
            Ok(b)
        };
        let remove_stopwords = take_u8(&mut buf)? != 0;
        let stem = take_u8(&mut buf)? != 0;
        let min_len =
            read_varint(&mut buf).ok_or_else(|| PersistError("truncated".into()))? as usize;
        let max_len =
            read_varint(&mut buf).ok_or_else(|| PersistError("truncated".into()))? as usize;
        let analyzer = Analyzer {
            remove_stopwords,
            stem,
            min_token_len: min_len,
            max_token_len: max_len,
        };

        let doc_count =
            read_varint(&mut buf).ok_or_else(|| PersistError("truncated".into()))? as usize;
        let hi = read_varint(&mut buf).ok_or_else(|| PersistError("truncated".into()))?;
        let lo = read_varint(&mut buf).ok_or_else(|| PersistError("truncated".into()))?;
        let total_len = (u64::from(hi) << 32) | u64::from(lo);

        let n_terms =
            read_varint(&mut buf).ok_or_else(|| PersistError("truncated".into()))? as usize;
        let mut interner = Interner::with_capacity(n_terms);
        for _ in 0..n_terms {
            let s = read_str(&mut buf)?;
            interner.intern(&s);
        }
        if interner.len() != n_terms {
            return Err(PersistError("duplicate terms in dictionary".into()));
        }

        let n_lists =
            read_varint(&mut buf).ok_or_else(|| PersistError("truncated".into()))? as usize;
        if n_lists != n_terms {
            return Err(PersistError("postings/dictionary mismatch".into()));
        }
        let mut postings = Vec::with_capacity(n_lists);
        for _ in 0..n_lists {
            postings.push(
                PostingList::read_from(&mut buf)
                    .ok_or_else(|| PersistError("bad posting list".into()))?,
            );
        }

        let mut docs = Vec::with_capacity(doc_count);
        for i in 0..doc_count {
            let id = read_varint(&mut buf).ok_or_else(|| PersistError("truncated".into()))?;
            if id as usize != i {
                return Err(PersistError("non-dense doc ids".into()));
            }
            let url = read_str(&mut buf)?;
            let title = read_str(&mut buf)?;
            let body = read_str(&mut buf)?;
            docs.push(StoredDoc { id, url: url.into(), title: title.into(), body });
        }
        let mut doc_lens = Vec::with_capacity(doc_count);
        for _ in 0..doc_count {
            doc_lens
                .push(read_varint(&mut buf).ok_or_else(|| PersistError("truncated".into()))?);
        }
        if !buf.is_empty() {
            return Err(PersistError("trailing bytes".into()));
        }

        Ok(SearchEngine::from_parts(analyzer, interner, postings, docs, doc_lens, total_len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;

    fn engine() -> SearchEngine {
        let mut b = IndexBuilder::new();
        b.add(StoredDoc::new(0, "http://a.test/0", "Crab shack",
            "fresh seafood lobster daily near the harbor"));
        b.add(StoredDoc::new(1, "http://b.test/1", "Phones",
            "unlocked android smartphone with battery"));
        b.add(StoredDoc::new(2, "http://c.test/2", "Guide",
            "the seafood guide covers lobster rolls and sushi"));
        b.build()
    }

    #[test]
    fn round_trip_preserves_search_results() {
        let e = engine();
        let bytes = e.serialize();
        let e2 = SearchEngine::deserialize(&bytes).expect("deserialize");
        for q in ["seafood lobster", "android", "sushi guide", "missing"] {
            let a = e.search(q, 10);
            let b = e2.search(q, 10);
            assert_eq!(a.len(), b.len(), "query {q}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.doc, y.doc);
                assert!((x.score - y.score).abs() < 1e-12);
                assert_eq!(x.snippet, y.snippet);
                assert_eq!(x.url, y.url);
            }
        }
        assert_eq!(e.doc_count(), e2.doc_count());
        assert_eq!(e.vocab_size(), e2.vocab_size());
        assert!((e.avg_doc_len() - e2.avg_doc_len()).abs() < 1e-12);
    }

    #[test]
    fn empty_engine_round_trips() {
        let e = IndexBuilder::new().build();
        let e2 = SearchEngine::deserialize(&e.serialize()).expect("deserialize");
        assert_eq!(e2.doc_count(), 0);
        assert!(e2.search("anything", 5).is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(SearchEngine::deserialize(b"NOTANIDX").is_err());
        assert!(SearchEngine::deserialize(b"").is_err());
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = engine().serialize();
        // Chop the buffer at a sweep of positions; every prefix must fail
        // cleanly (no panic, no Ok).
        for cut in (0..bytes.len()).step_by(7) {
            assert!(
                SearchEngine::deserialize(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes unexpectedly parsed"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = engine().serialize();
        bytes.extend_from_slice(b"junk");
        assert!(SearchEngine::deserialize(&bytes).is_err());
    }

    #[test]
    fn corrupted_interior_never_panics() {
        let bytes = engine().serialize();
        for i in (8..bytes.len()).step_by(11) {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0xFF;
            // Any result is fine as long as it does not panic; most flips
            // must error out.
            let _ = SearchEngine::deserialize(&corrupt);
        }
    }
}
