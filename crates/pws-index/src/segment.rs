//! Immutable index segments: offline build, lazy load, merge.
//!
//! A [`Segment`] is the unit of on-disk index storage: an inverted index
//! over a contiguous slice of the corpus, written once by
//! [`SegmentBuilder`] and never mutated. Postings are stored as
//! **block-compressed** runs of up to [`BLOCK_SIZE`] `(doc, tf)` pairs;
//! each block carries its last doc id, its maximum term frequency, and
//! the minimum document length among its docs. Those three numbers are
//! collection-statistics-independent, so a loader can derive a correct
//! BM25 **block-max impact bound** under *any* global statistics (which
//! change when segments are added or merged) without touching payloads —
//! the foundation of the Block-Max WAND pruning in
//! [`crate::segmented::SegmentedIndex`].
//!
//! Loading parses and checksums the section table ([`crate::segfile`]),
//! decodes the term dictionary, the block tables, and the doc lengths,
//! and leaves postings payloads and the document store **encoded in
//! place** — a load is O(dictionary + block table), not O(index).
//!
//! A segment is cheaply cloneable (`Arc` inside), so live publication
//! can snapshot segment sets without copying index data.

use crate::codec::{read_varint, write_varint};
use crate::search::StoredDoc;
use crate::segfile::{parse_sections, read_u64le, SectionId, SectionWriter, SegmentError};
use pws_text::{Analyzer, Interner};
use std::collections::HashMap;
use std::sync::Arc;

/// Maximum `(doc, tf)` pairs per postings block. 128 keeps block decode
/// cheap (fits a cache line budget) while making block skipping
/// worthwhile on million-doc posting lists.
pub const BLOCK_SIZE: usize = 128;

/// One postings block's table entry (decoded from the `BlockMax`
/// section). `payload_off` is derived at load time from the running sum
/// of payload lengths — blocks are laid out contiguously in `(term,
/// block)` order inside the `Postings` section.
#[derive(Debug, Clone, Copy)]
pub struct BlockMeta {
    /// Last (largest) doc id in the block — the block-skip key.
    pub last_doc: u32,
    /// Number of postings in the block (1..=BLOCK_SIZE).
    pub doc_count: u32,
    /// Maximum term frequency within the block.
    pub max_tf: u32,
    /// Minimum document length among the block's docs. Together with
    /// `max_tf` this upper-bounds the block's BM25 impact under any
    /// global statistics (BM25 is increasing in tf, decreasing in len).
    pub min_dlen: u32,
    /// Payload byte offset within the `Postings` section.
    pub payload_off: usize,
    /// Payload byte length.
    pub payload_len: usize,
}

/// Per-term metadata: document frequency plus the term's block range and
/// segment-wide tf/len extremes (for whole-term impact bounds).
#[derive(Debug, Clone)]
pub(crate) struct TermMeta {
    /// Document frequency within this segment.
    pub df: u32,
    /// Range into the segment's flat block table.
    pub blocks: std::ops::Range<usize>,
    /// Max `max_tf` over the term's blocks.
    pub max_tf: u32,
    /// Min `min_dlen` over the term's blocks.
    pub min_dlen: u32,
}

#[derive(Debug)]
struct SegmentInner {
    bytes: Arc<[u8]>,
    analyzer: Analyzer,
    dict: HashMap<String, u32>,
    /// Term strings in ord order (dictionary order of the builder).
    terms: Vec<String>,
    term_meta: Vec<TermMeta>,
    blocks: Vec<BlockMeta>,
    doc_lens: Vec<u32>,
    doc_count: u32,
    total_len: u64,
    /// Absolute offset of the `Postings` section payload.
    postings_off: usize,
    /// Absolute offset + length of the `DocIndex` section.
    doc_index_off: usize,
    /// Absolute offset + length of the `Docs` section.
    docs_off: usize,
    docs_len: usize,
}

/// An immutable, on-disk-backed index segment. Cloning shares the
/// underlying file bytes and decoded tables (`Arc`).
#[derive(Debug, Clone)]
pub struct Segment {
    inner: Arc<SegmentInner>,
}

impl Segment {
    /// Load a segment from an in-memory copy of its file bytes,
    /// validating magic, version, section table, and checksums. Postings
    /// payloads and document records stay encoded (lazy).
    pub fn load_bytes(bytes: impl Into<Arc<[u8]>>) -> Result<Segment, SegmentError> {
        let _span = metrics_load().span();
        let bytes: Arc<[u8]> = bytes.into();
        let sections = parse_sections(&bytes)?;
        let [meta_s, terms_s, blockmax_s, postings_s, doc_index_s, docs_s, doc_lens_s] =
            sections[..]
        else {
            return Err(SegmentError::Malformed("section count"));
        };

        // ── Meta ─────────────────────────────────────────────────────
        let mut m = meta_s.slice(&bytes);
        let doc_count =
            read_varint(&mut m).ok_or(SegmentError::Truncated("Meta.doc_count"))?;
        let hi = read_varint(&mut m).ok_or(SegmentError::Truncated("Meta.total_len"))?;
        let lo = read_varint(&mut m).ok_or(SegmentError::Truncated("Meta.total_len"))?;
        let total_len = (u64::from(hi) << 32) | u64::from(lo);
        if m.len() < 2 {
            return Err(SegmentError::Truncated("Meta.analyzer"));
        }
        let (remove_stopwords, stem) = (m[0] != 0, m[1] != 0);
        m = &m[2..];
        let min_token_len =
            read_varint(&mut m).ok_or(SegmentError::Truncated("Meta.analyzer"))? as usize;
        let max_token_len =
            read_varint(&mut m).ok_or(SegmentError::Truncated("Meta.analyzer"))? as usize;
        if !m.is_empty() {
            return Err(SegmentError::Malformed("trailing bytes in Meta"));
        }
        let analyzer = Analyzer { remove_stopwords, stem, min_token_len, max_token_len };

        // ── Terms ────────────────────────────────────────────────────
        let mut t = terms_s.slice(&bytes);
        let n_terms =
            read_varint(&mut t).ok_or(SegmentError::Truncated("Terms.count"))? as usize;
        let mut dict = HashMap::with_capacity(n_terms);
        let mut terms = Vec::with_capacity(n_terms);
        for ord in 0..n_terms {
            let len =
                read_varint(&mut t).ok_or(SegmentError::Truncated("Terms.len"))? as usize;
            if t.len() < len {
                return Err(SegmentError::Truncated("Terms.bytes"));
            }
            let s = std::str::from_utf8(&t[..len])
                .map_err(|_| SegmentError::Malformed("non-utf8 term"))?;
            t = &t[len..];
            if dict.insert(s.to_string(), ord as u32).is_some() {
                return Err(SegmentError::Malformed("duplicate term"));
            }
            terms.push(s.to_string());
        }
        if !t.is_empty() {
            return Err(SegmentError::Malformed("trailing bytes in Terms"));
        }

        // ── BlockMax table ───────────────────────────────────────────
        let mut b = blockmax_s.slice(&bytes);
        let mut term_meta = Vec::with_capacity(n_terms);
        let mut blocks: Vec<BlockMeta> = Vec::new();
        let mut payload_off = 0usize;
        for _ in 0..n_terms {
            let n_blocks =
                read_varint(&mut b).ok_or(SegmentError::Truncated("BlockMax.count"))?;
            let start = blocks.len();
            let (mut df, mut t_max_tf, mut t_min_dlen) = (0u64, 0u32, u32::MAX);
            let mut prev_last = None::<u32>;
            for _ in 0..n_blocks {
                let last_doc =
                    read_varint(&mut b).ok_or(SegmentError::Truncated("BlockMax.entry"))?;
                let bdc =
                    read_varint(&mut b).ok_or(SegmentError::Truncated("BlockMax.entry"))?;
                let max_tf =
                    read_varint(&mut b).ok_or(SegmentError::Truncated("BlockMax.entry"))?;
                let min_dlen =
                    read_varint(&mut b).ok_or(SegmentError::Truncated("BlockMax.entry"))?;
                let payload_len =
                    read_varint(&mut b).ok_or(SegmentError::Truncated("BlockMax.entry"))?
                        as usize;
                if bdc == 0 || bdc as usize > BLOCK_SIZE {
                    return Err(SegmentError::Malformed("block doc_count out of range"));
                }
                if last_doc >= doc_count {
                    return Err(SegmentError::Malformed("block last_doc out of range"));
                }
                if prev_last.is_some_and(|p| last_doc <= p) {
                    return Err(SegmentError::Malformed("blocks not ascending"));
                }
                prev_last = Some(last_doc);
                df += u64::from(bdc);
                t_max_tf = t_max_tf.max(max_tf);
                t_min_dlen = t_min_dlen.min(min_dlen);
                blocks.push(BlockMeta {
                    last_doc,
                    doc_count: bdc,
                    max_tf,
                    min_dlen,
                    payload_off,
                    payload_len,
                });
                payload_off = payload_off
                    .checked_add(payload_len)
                    .ok_or(SegmentError::Malformed("postings offset overflow"))?;
            }
            let df = u32::try_from(df).map_err(|_| SegmentError::Malformed("df overflow"))?;
            term_meta.push(TermMeta {
                df,
                blocks: start..blocks.len(),
                max_tf: t_max_tf,
                min_dlen: if t_min_dlen == u32::MAX { 0 } else { t_min_dlen },
            });
        }
        if !b.is_empty() {
            return Err(SegmentError::Malformed("trailing bytes in BlockMax"));
        }
        if payload_off != postings_s.len {
            return Err(SegmentError::Malformed("postings length mismatch"));
        }

        // ── DocIndex: monotone offsets into Docs ─────────────────────
        let di = doc_index_s.slice(&bytes);
        if di.len() != doc_count as usize * 8 {
            return Err(SegmentError::Malformed("doc index length mismatch"));
        }
        let mut prev = 0u64;
        for i in 0..doc_count as usize {
            let off = read_u64le(&di[i * 8..]);
            if off > docs_s.len as u64 || (i > 0 && off < prev) {
                return Err(SegmentError::Malformed("doc index offsets out of range"));
            }
            prev = off;
        }

        // ── DocLens ──────────────────────────────────────────────────
        let mut dl = doc_lens_s.slice(&bytes);
        let mut doc_lens = Vec::with_capacity(doc_count as usize);
        for _ in 0..doc_count {
            doc_lens.push(read_varint(&mut dl).ok_or(SegmentError::Truncated("DocLens"))?);
        }
        if !dl.is_empty() {
            return Err(SegmentError::Malformed("trailing bytes in DocLens"));
        }

        Ok(Segment {
            inner: Arc::new(SegmentInner {
                analyzer,
                dict,
                terms,
                term_meta,
                blocks,
                doc_lens,
                doc_count,
                total_len,
                postings_off: postings_s.offset,
                doc_index_off: doc_index_s.offset,
                docs_off: docs_s.offset,
                docs_len: docs_s.len,
                bytes,
            }),
        })
    }

    /// Read and load a segment file from disk.
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<Segment, SegmentError> {
        let bytes =
            std::fs::read(path.as_ref()).map_err(|e| SegmentError::Io(e.to_string()))?;
        Segment::load_bytes(bytes)
    }

    /// Write this segment's exact file bytes to disk.
    pub fn write_file(&self, path: impl AsRef<std::path::Path>) -> Result<(), SegmentError> {
        std::fs::write(path.as_ref(), &self.inner.bytes)
            .map_err(|e| SegmentError::Io(e.to_string()))
    }

    /// The segment's complete file bytes.
    pub fn file_bytes(&self) -> &[u8] {
        &self.inner.bytes
    }

    /// Number of documents in the segment.
    pub fn doc_count(&self) -> u32 {
        self.inner.doc_count
    }

    /// Total indexed token count (for global average doc length).
    pub fn total_len(&self) -> u64 {
        self.inner.total_len
    }

    /// The analyzer the segment was built with.
    pub fn analyzer(&self) -> &Analyzer {
        &self.inner.analyzer
    }

    /// Terms in ord order, with their document frequencies.
    pub fn term_dfs(&self) -> impl Iterator<Item = (&str, u32)> {
        self.inner
            .terms
            .iter()
            .zip(&self.inner.term_meta)
            .map(|(t, m)| (t.as_str(), m.df))
    }

    /// Segment-local ord of `term` (already analyzed), if present.
    pub fn term_ord(&self, term: &str) -> Option<u32> {
        self.inner.dict.get(term).copied()
    }

    /// Per-term metadata (crate-internal: query execution).
    pub(crate) fn term_meta(&self, ord: u32) -> &TermMeta {
        &self.inner.term_meta[ord as usize]
    }

    /// The term's block table slice.
    pub(crate) fn term_blocks(&self, ord: u32) -> &[BlockMeta] {
        &self.inner.blocks[self.inner.term_meta[ord as usize].blocks.clone()]
    }

    /// Document lengths (segment-local ids).
    pub(crate) fn doc_lens(&self) -> &[u32] {
        &self.inner.doc_lens
    }

    /// Decode one postings block into `out` as absolute `(doc, tf)`
    /// pairs. Returns `false` (leaving `out` truncated) on a payload
    /// inconsistency — unreachable after a checksummed load, but the
    /// query path degrades to "skip block" rather than panicking.
    pub(crate) fn decode_block(&self, b: &BlockMeta, out: &mut Vec<(u32, u32)>) -> bool {
        out.clear();
        let inner = &self.inner;
        let start = inner.postings_off + b.payload_off;
        let Some(payload) = inner.bytes.get(start..start + b.payload_len) else {
            return false;
        };
        let mut p = payload;
        let mut doc = 0u32;
        for i in 0..b.doc_count {
            let Some(delta) = read_varint(&mut p) else { return false };
            doc = if i == 0 { delta } else { doc.wrapping_add(delta) };
            out.push((doc, 0));
        }
        for entry in out.iter_mut().take(b.doc_count as usize) {
            let Some(tf) = read_varint(&mut p) else { return false };
            entry.1 = tf;
        }
        p.is_empty()
    }

    /// Materialize one stored document (segment-local id) from the doc
    /// store. Decoding is on demand; a load never touches doc payloads.
    ///
    /// # Panics
    /// Panics if `local_id >= doc_count()` — an engine-level id-mapping
    /// bug, not a file-format condition (file structure was validated at
    /// load).
    pub fn doc(&self, local_id: u32) -> StoredDoc {
        let inner = &self.inner;
        assert!(local_id < inner.doc_count, "doc id {local_id} out of range");
        let di = &inner.bytes[inner.doc_index_off..];
        let start = read_u64le(&di[local_id as usize * 8..]) as usize;
        let mut rec = &inner.bytes[inner.docs_off + start..inner.docs_off + inner.docs_len];
        let mut read_str = || -> String {
            let len = read_varint(&mut rec).map_or(0, |l| l as usize).min(rec.len());
            let s = String::from_utf8_lossy(&rec[..len]).into_owned();
            rec = &rec[len..];
            s
        };
        let url = read_str();
        let title = read_str();
        let body = read_str();
        StoredDoc { id: local_id, url: url.into(), title: title.into(), body }
    }

    /// Raw byte range of one doc record in the `Docs` section
    /// (crate-internal: merge copies records without decoding them).
    pub(crate) fn doc_record_bytes(&self, local_id: u32) -> &[u8] {
        let inner = &self.inner;
        let di = &inner.bytes[inner.doc_index_off..];
        let start = read_u64le(&di[local_id as usize * 8..]) as usize;
        let end = if local_id + 1 < inner.doc_count {
            read_u64le(&di[(local_id as usize + 1) * 8..]) as usize
        } else {
            inner.docs_len
        };
        &inner.bytes[inner.docs_off + start..inner.docs_off + end]
    }

    /// Merge segments into one. Documents are renumbered contiguously in
    /// segment order (the same global ids a [`crate::SegmentedIndex`]
    /// over the inputs would expose), doc records are copied byte-wise
    /// without decoding, and postings are re-blocked at [`BLOCK_SIZE`].
    ///
    /// All inputs must share one analyzer configuration.
    pub fn merge(segments: &[&Segment]) -> Result<Segment, SegmentError> {
        if segments.is_empty() {
            return SegmentBuilder::new(Analyzer::default()).finish_segment();
        }
        let analyzer = segments[0].analyzer().clone();
        if segments.iter().any(|s| *s.analyzer() != analyzer) {
            return Err(SegmentError::Mismatch("analyzer config"));
        }

        // Union term list: first-appearance order across segments.
        let mut interner = Interner::new();
        for s in segments {
            for term in &s.inner.terms {
                interner.intern(term);
            }
        }

        // Doc id bases per input segment.
        let mut bases = Vec::with_capacity(segments.len());
        let mut base = 0u64;
        for s in segments {
            bases.push(base as u32);
            base += u64::from(s.doc_count());
        }
        let doc_count = u32::try_from(base)
            .map_err(|_| SegmentError::Malformed("merged doc count overflows u32"))?;

        // Re-emit postings per union term, re-blocked.
        let mut postings_by_term: Vec<Vec<(u32, u32)>> = vec![Vec::new(); interner.len()];
        let mut buf = Vec::with_capacity(BLOCK_SIZE);
        for (s, &b) in segments.iter().zip(&bases) {
            for (ord, term) in s.inner.terms.iter().enumerate() {
                let sym = interner.get(term).expect("interned above");
                let dst = &mut postings_by_term[sym.index()];
                for blk in s.term_blocks(ord as u32) {
                    if s.decode_block(blk, &mut buf) {
                        dst.extend(buf.iter().map(|&(d, tf)| (d + b, tf)));
                    }
                }
            }
        }

        let mut out = SegmentBuilder::new(analyzer);
        out.interner = interner;
        out.postings = postings_by_term;
        for (s, _) in segments.iter().zip(&bases) {
            for local in 0..s.doc_count() {
                out.doc_offsets.push(out.doc_payload.len() as u64);
                out.doc_payload.extend_from_slice(s.doc_record_bytes(local));
            }
            out.doc_lens.extend_from_slice(s.doc_lens());
            out.total_len += s.total_len();
        }
        debug_assert_eq!(out.doc_lens.len(), doc_count as usize);
        out.finish_segment()
    }
}

/// Process-wide `segment.load` stage handle.
fn metrics_load() -> &'static pws_obs::StageMetrics {
    static STAGE: std::sync::OnceLock<std::sync::Arc<pws_obs::StageMetrics>> =
        std::sync::OnceLock::new();
    STAGE.get_or_init(|| pws_obs::stage("segment.load"))
}

/// Builds one immutable segment: feed documents in order, then
/// [`SegmentBuilder::finish`] to produce the on-disk bytes (or
/// [`SegmentBuilder::finish_segment`] to get a loaded [`Segment`] —
/// build always round-trips through the file format, so every segment
/// in existence is proof the format decodes).
#[derive(Debug)]
pub struct SegmentBuilder {
    analyzer: Analyzer,
    interner: Interner,
    /// Per-term uncompressed `(local doc, tf)` pairs, ascending by doc.
    postings: Vec<Vec<(u32, u32)>>,
    doc_lens: Vec<u32>,
    total_len: u64,
    /// Encoded doc records (url/title/body, varint-length-prefixed).
    doc_payload: Vec<u8>,
    /// Byte offset of each record within `doc_payload`.
    doc_offsets: Vec<u64>,
}

impl SegmentBuilder {
    /// Empty builder over `analyzer`.
    pub fn new(analyzer: Analyzer) -> Self {
        SegmentBuilder {
            analyzer,
            interner: Interner::new(),
            postings: Vec::new(),
            doc_lens: Vec::new(),
            total_len: 0,
            doc_payload: Vec::new(),
            doc_offsets: Vec::new(),
        }
    }

    /// Number of documents added so far (== the next local doc id).
    pub fn len(&self) -> usize {
        self.doc_offsets.len()
    }

    /// True before the first [`SegmentBuilder::add`].
    pub fn is_empty(&self) -> bool {
        self.doc_offsets.is_empty()
    }

    /// Add one document; returns its segment-local id. Indexes
    /// `title + body` (titles count toward BM25, as in
    /// [`StoredDoc::indexable_text`]).
    pub fn add(&mut self, url: &str, title: &str, body: &str) -> u32 {
        let local = self.doc_offsets.len() as u32;
        let tokens = self.analyzer.analyze(&format!("{title} {body}"));
        self.doc_lens.push(tokens.len() as u32);
        self.total_len += tokens.len() as u64;

        // tf per term for this doc.
        let mut tfs: HashMap<pws_text::Sym, u32> = HashMap::new();
        for tok in &tokens {
            *tfs.entry(self.interner.intern(tok)).or_insert(0) += 1;
        }
        if self.interner.len() > self.postings.len() {
            self.postings.resize_with(self.interner.len(), Vec::new);
        }
        let mut entries: Vec<(pws_text::Sym, u32)> = tfs.into_iter().collect();
        entries.sort_unstable_by_key(|(s, _)| *s);
        for (sym, tf) in entries {
            self.postings[sym.index()].push((local, tf));
        }

        self.doc_offsets.push(self.doc_payload.len() as u64);
        write_str(&mut self.doc_payload, url);
        write_str(&mut self.doc_payload, title);
        write_str(&mut self.doc_payload, body);
        local
    }

    /// Emit the segment file bytes.
    pub fn finish(self) -> Vec<u8> {
        let _span = metrics_build().span();
        let mut meta = Vec::new();
        write_varint(&mut meta, self.doc_offsets.len() as u32);
        write_varint(&mut meta, (self.total_len >> 32) as u32);
        write_varint(&mut meta, (self.total_len & 0xFFFF_FFFF) as u32);
        meta.push(u8::from(self.analyzer.remove_stopwords));
        meta.push(u8::from(self.analyzer.stem));
        write_varint(&mut meta, self.analyzer.min_token_len as u32);
        write_varint(&mut meta, self.analyzer.max_token_len as u32);

        let mut terms = Vec::new();
        write_varint(&mut terms, self.interner.len() as u32);
        for (_, s) in self.interner.iter() {
            write_str(&mut terms, s);
        }

        // Block tables + payloads, in term-ord order.
        let mut blockmax = Vec::new();
        let mut payloads = Vec::new();
        for pairs in &self.postings {
            let n_blocks = pairs.chunks(BLOCK_SIZE).count();
            write_varint(&mut blockmax, n_blocks as u32);
            for chunk in pairs.chunks(BLOCK_SIZE) {
                let last_doc = chunk.last().expect("nonempty chunk").0;
                let max_tf = chunk.iter().map(|&(_, tf)| tf).max().unwrap_or(0);
                let min_dlen = chunk
                    .iter()
                    .map(|&(d, _)| self.doc_lens[d as usize])
                    .min()
                    .unwrap_or(0);
                let start = payloads.len();
                let mut prev = 0u32;
                for (i, &(d, _)) in chunk.iter().enumerate() {
                    write_varint(&mut payloads, if i == 0 { d } else { d - prev });
                    prev = d;
                }
                for &(_, tf) in chunk {
                    write_varint(&mut payloads, tf);
                }
                write_varint(&mut blockmax, last_doc);
                write_varint(&mut blockmax, chunk.len() as u32);
                write_varint(&mut blockmax, max_tf);
                write_varint(&mut blockmax, min_dlen);
                write_varint(&mut blockmax, (payloads.len() - start) as u32);
            }
        }
        let mut doc_index = Vec::with_capacity(self.doc_offsets.len() * 8);
        for off in &self.doc_offsets {
            doc_index.extend_from_slice(&off.to_le_bytes());
        }

        let mut doc_lens = Vec::new();
        for &l in &self.doc_lens {
            write_varint(&mut doc_lens, l);
        }

        let mut w = SectionWriter::new();
        w.add(SectionId::Meta, meta);
        w.add(SectionId::Terms, terms);
        w.add(SectionId::BlockMax, blockmax);
        w.add(SectionId::Postings, payloads);
        w.add(SectionId::DocIndex, doc_index);
        w.add(SectionId::Docs, self.doc_payload);
        w.add(SectionId::DocLens, doc_lens);
        w.finish()
    }

    /// [`SegmentBuilder::finish`] followed by [`Segment::load_bytes`].
    pub fn finish_segment(self) -> Result<Segment, SegmentError> {
        Segment::load_bytes(self.finish())
    }
}

/// Process-wide `segment.build` stage handle.
fn metrics_build() -> &'static pws_obs::StageMetrics {
    static STAGE: std::sync::OnceLock<std::sync::Arc<pws_obs::StageMetrics>> =
        std::sync::OnceLock::new();
    STAGE.get_or_init(|| pws_obs::stage("segment.build"))
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_varint(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_small() -> Segment {
        let mut b = SegmentBuilder::new(Analyzer::default());
        b.add("http://a.test/0", "Crab shack menu",
            "fresh seafood lobster and crab daily specials near the harbor");
        b.add("http://b.test/1", "Phone deals",
            "unlocked android smartphone with great battery and camera");
        b.add("http://c.test/2", "Seafood city guide",
            "the seafood guide covers lobster rolls oyster bars and sushi");
        b.finish_segment().expect("round trip")
    }

    #[test]
    fn build_load_round_trip() {
        let s = build_small();
        assert_eq!(s.doc_count(), 3);
        assert!(s.total_len() > 0);
        let d = s.doc(0);
        assert_eq!(&*d.url, "http://a.test/0");
        assert_eq!(&*d.title, "Crab shack menu");
        assert!(d.body.contains("lobster"));
        // Term present with the right df.
        let ord = s.term_ord("seafood").expect("indexed");
        assert_eq!(s.term_meta(ord).df, 2);
    }

    #[test]
    fn blocks_cover_all_postings() {
        let mut b = SegmentBuilder::new(Analyzer::verbatim());
        for i in 0..500u32 {
            b.add(&format!("u{i}"), "t", &format!("common word{}", i % 7));
        }
        let s = b.finish_segment().expect("round trip");
        let ord = s.term_ord("common").expect("present");
        let blocks = s.term_blocks(ord);
        assert!(blocks.len() > 1, "500 docs must span multiple blocks");
        let mut decoded = Vec::new();
        let mut buf = Vec::new();
        for blk in blocks {
            assert!(s.decode_block(blk, &mut buf));
            assert_eq!(buf.last().map(|&(d, _)| d), Some(blk.last_doc));
            assert!(buf.iter().all(|&(_, tf)| tf <= blk.max_tf));
            decoded.extend_from_slice(&buf);
        }
        assert_eq!(decoded.len() as u32, s.term_meta(ord).df);
        assert!(decoded.windows(2).all(|w| w[0].0 < w[1].0), "ascending doc ids");
    }

    #[test]
    fn block_min_dlen_bounds_doc_lens() {
        let s = build_small();
        for ord in 0..s.inner.terms.len() as u32 {
            for blk in s.term_blocks(ord) {
                let mut buf = Vec::new();
                assert!(s.decode_block(blk, &mut buf));
                for &(d, _) in &buf {
                    assert!(s.doc_lens()[d as usize] >= blk.min_dlen);
                }
            }
        }
    }

    #[test]
    fn open_write_file_round_trip() {
        let s = build_small();
        let dir = std::env::temp_dir().join("pws_segment_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("seg0.pws");
        s.write_file(&path).expect("write");
        let loaded = Segment::open(&path).expect("open");
        assert_eq!(loaded.file_bytes(), s.file_bytes());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_missing_file_is_io_error() {
        match Segment::open("/nonexistent/definitely/missing.pws") {
            Err(SegmentError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn merge_two_segments() {
        let mut a = SegmentBuilder::new(Analyzer::default());
        a.add("u0", "Crab shack", "fresh seafood lobster daily");
        a.add("u1", "Phones", "unlocked android smartphone");
        let a = a.finish_segment().expect("a");
        let mut b = SegmentBuilder::new(Analyzer::default());
        b.add("u2", "Guide", "seafood guide covers lobster rolls");
        let b = b.finish_segment().expect("b");

        let m = Segment::merge(&[&a, &b]).expect("merge");
        assert_eq!(m.doc_count(), 3);
        assert_eq!(m.total_len(), a.total_len() + b.total_len());
        assert_eq!(&*m.doc(2).url, "u2");
        let ord = m.term_ord("seafood").expect("merged term");
        assert_eq!(m.term_meta(ord).df, 2);
        // Postings renumbered: seafood in global docs 0 and 2.
        let mut buf = Vec::new();
        let mut docs = Vec::new();
        for blk in m.term_blocks(ord) {
            assert!(m.decode_block(blk, &mut buf));
            docs.extend(buf.iter().map(|&(d, _)| d));
        }
        assert_eq!(docs, vec![0, 2]);
    }

    #[test]
    fn merge_rejects_mismatched_analyzers() {
        let a = SegmentBuilder::new(Analyzer::default()).finish_segment().expect("a");
        let b = SegmentBuilder::new(Analyzer::verbatim()).finish_segment().expect("b");
        assert_eq!(
            Segment::merge(&[&a, &b]).unwrap_err(),
            SegmentError::Mismatch("analyzer config")
        );
    }

    #[test]
    fn empty_segment_round_trips() {
        let s = SegmentBuilder::new(Analyzer::default()).finish_segment().expect("empty");
        assert_eq!(s.doc_count(), 0);
        assert_eq!(s.term_ord("anything"), None);
    }
}
