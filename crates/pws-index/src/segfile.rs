//! On-disk segment file format: header, section table, checksums.
//!
//! A segment file is the unit of index persistence (see
//! `docs/INDEX_FORMAT.md` for the byte-level specification and a worked
//! hexdump example — check.sh keeps the section list there in sync with
//! [`SectionId`]). The layout is designed so a reader can locate and
//! validate every section **without decoding postings or documents**:
//!
//! ```text
//! magic "PWSSEG1\0" (8 raw bytes)
//! format_version  u32 LE        (currently 1)
//! section_count   u32 LE
//! section table   section_count × 28 bytes:
//!     id        u16 LE          (SectionId)
//!     flags     u16 LE          (reserved, must be 0)
//!     offset    u64 LE          (from file start)
//!     len       u64 LE
//!     checksum  u64 LE          (FNV-1a 64 of the section payload)
//! section payloads (contiguous, in table order)
//! ```
//!
//! Every load failure is a typed [`SegmentError`] — corrupted, truncated,
//! or wrong-version files must never panic the loader.

/// File magic: identifies a pws segment file, independent of version.
pub const SEGMENT_MAGIC: &[u8; 8] = b"PWSSEG1\0";

/// Current (and only) format version.
pub const FORMAT_VERSION: u32 = 1;

/// Bytes per section-table entry: id u16 + flags u16 + offset u64 +
/// len u64 + checksum u64.
pub const SECTION_ENTRY_LEN: usize = 28;

/// Byte offset of the section table (magic + version + count).
pub const TABLE_OFFSET: usize = 8 + 4 + 4;

/// Section identifiers.
///
/// The variant list is mirrored byte-for-byte in `docs/INDEX_FORMAT.md`;
/// `scripts/check.sh` fails if the two drift apart. Ids 8+ are reserved
/// for future sections (e.g. positions) — unknown ids are rejected by
/// version-1 readers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u16)]
pub enum SectionId {
    /// Corpus statistics + analyzer configuration.
    Meta = 1,
    /// Term dictionary (term ord = position).
    Terms = 2,
    /// Per-term block table: doc ranges, max tf, min doc length, payload
    /// lengths. Everything Block-Max WAND needs without touching payloads.
    BlockMax = 3,
    /// Concatenated block payloads (delta-varint doc ids + tfs).
    Postings = 4,
    /// Fixed-width (u64 LE) byte offsets of each document record.
    DocIndex = 5,
    /// Document store: per-doc url/title/body records.
    Docs = 6,
    /// Per-document token counts (varint).
    DocLens = 7,
}

impl SectionId {
    /// All sections a version-1 segment must contain, in payload order.
    pub const ALL: [SectionId; 7] = [
        SectionId::Meta,
        SectionId::Terms,
        SectionId::BlockMax,
        SectionId::Postings,
        SectionId::DocIndex,
        SectionId::Docs,
        SectionId::DocLens,
    ];

    /// Human-readable name (used in error messages and docs).
    pub fn name(self) -> &'static str {
        match self {
            SectionId::Meta => "Meta",
            SectionId::Terms => "Terms",
            SectionId::BlockMax => "BlockMax",
            SectionId::Postings => "Postings",
            SectionId::DocIndex => "DocIndex",
            SectionId::Docs => "Docs",
            SectionId::DocLens => "DocLens",
        }
    }

    fn from_u16(v: u16) -> Option<SectionId> {
        Some(match v {
            1 => SectionId::Meta,
            2 => SectionId::Terms,
            3 => SectionId::BlockMax,
            4 => SectionId::Postings,
            5 => SectionId::DocIndex,
            6 => SectionId::Docs,
            7 => SectionId::DocLens,
            _ => return None,
        })
    }
}

/// Typed segment-load error. Loading a corrupted, truncated, or
/// wrong-version file returns one of these — never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentError {
    /// File I/O failed (open/read/write).
    Io(String),
    /// The first 8 bytes are not [`SEGMENT_MAGIC`].
    BadMagic,
    /// The file's format version is not supported by this reader.
    UnsupportedVersion(u32),
    /// The file ends before the named structure is complete.
    Truncated(&'static str),
    /// A section's FNV-1a checksum does not match its payload.
    ChecksumMismatch(&'static str),
    /// A required section is absent from the section table.
    MissingSection(&'static str),
    /// The section table references an unknown section id.
    UnknownSection(u16),
    /// A section payload is structurally invalid (named reason).
    Malformed(&'static str),
    /// Segments being combined disagree (analyzer config, statistics).
    Mismatch(&'static str),
}

impl std::fmt::Display for SegmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegmentError::Io(e) => write!(f, "segment i/o error: {e}"),
            SegmentError::BadMagic => write!(f, "not a segment file (bad magic)"),
            SegmentError::UnsupportedVersion(v) => {
                write!(f, "unsupported segment format version {v} (reader supports {FORMAT_VERSION})")
            }
            SegmentError::Truncated(what) => write!(f, "truncated segment file at {what}"),
            SegmentError::ChecksumMismatch(s) => {
                write!(f, "checksum mismatch in section {s}")
            }
            SegmentError::MissingSection(s) => write!(f, "missing section {s}"),
            SegmentError::UnknownSection(id) => write!(f, "unknown section id {id}"),
            SegmentError::Malformed(what) => write!(f, "malformed segment: {what}"),
            SegmentError::Mismatch(what) => write!(f, "segment mismatch: {what}"),
        }
    }
}

impl std::error::Error for SegmentError {}

/// FNV-1a 64-bit checksum (the same hash family the serving layer uses
/// for cache fingerprints; collision-resistant enough for bit-rot
/// detection, zero dependencies).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One parsed section-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionEntry {
    /// Which section this is.
    pub id: SectionId,
    /// Payload byte range start (from file start).
    pub offset: usize,
    /// Payload length in bytes.
    pub len: usize,
}

impl SectionEntry {
    /// The payload slice within `file`.
    pub fn slice<'a>(&self, file: &'a [u8]) -> &'a [u8] {
        &file[self.offset..self.offset + self.len]
    }
}

fn read_u16le(b: &[u8]) -> u16 {
    u16::from_le_bytes([b[0], b[1]])
}

fn read_u32le(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

/// Read a u64 LE from the front of `b` (caller guarantees length).
pub fn read_u64le(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

/// Parse and fully validate a segment file's header and section table:
/// magic, version, table bounds, known + unique section ids, payload
/// ranges in bounds, and per-section checksums. Returns the seven
/// required sections in [`SectionId::ALL`] order.
///
/// This is the *only* full-file pass a load performs; payload contents
/// (postings blocks, documents) are left encoded.
pub fn parse_sections(file: &[u8]) -> Result<Vec<SectionEntry>, SegmentError> {
    if file.len() < 8 {
        return Err(SegmentError::Truncated("magic"));
    }
    if &file[..8] != SEGMENT_MAGIC {
        return Err(SegmentError::BadMagic);
    }
    if file.len() < TABLE_OFFSET {
        return Err(SegmentError::Truncated("header"));
    }
    let version = read_u32le(&file[8..12]);
    if version != FORMAT_VERSION {
        return Err(SegmentError::UnsupportedVersion(version));
    }
    let count = read_u32le(&file[12..16]) as usize;
    let table_end = TABLE_OFFSET
        .checked_add(count.checked_mul(SECTION_ENTRY_LEN).ok_or(SegmentError::Malformed(
            "section count overflows",
        ))?)
        .ok_or(SegmentError::Malformed("section table overflows"))?;
    if file.len() < table_end {
        return Err(SegmentError::Truncated("section table"));
    }

    let mut entries: Vec<SectionEntry> = Vec::with_capacity(count);
    for i in 0..count {
        let e = &file[TABLE_OFFSET + i * SECTION_ENTRY_LEN..];
        let raw_id = read_u16le(&e[0..2]);
        let id = SectionId::from_u16(raw_id).ok_or(SegmentError::UnknownSection(raw_id))?;
        if read_u16le(&e[2..4]) != 0 {
            return Err(SegmentError::Malformed("nonzero section flags"));
        }
        let offset = read_u64le(&e[4..12]);
        let len = read_u64le(&e[12..20]);
        let checksum = read_u64le(&e[20..28]);
        let (offset, len) = (offset as usize, len as usize);
        let end = offset
            .checked_add(len)
            .ok_or(SegmentError::Malformed("section range overflows"))?;
        if offset < table_end || end > file.len() {
            return Err(SegmentError::Truncated(id.name()));
        }
        if entries.iter().any(|p| p.id == id) {
            return Err(SegmentError::Malformed("duplicate section id"));
        }
        if fnv1a64(&file[offset..end]) != checksum {
            return Err(SegmentError::ChecksumMismatch(id.name()));
        }
        entries.push(SectionEntry { id, offset, len });
    }

    // All required sections present, returned in canonical order.
    let mut ordered = Vec::with_capacity(SectionId::ALL.len());
    for want in SectionId::ALL {
        match entries.iter().find(|e| e.id == want) {
            Some(&e) => ordered.push(e),
            None => return Err(SegmentError::MissingSection(want.name())),
        }
    }
    Ok(ordered)
}

/// Incremental segment-file writer: collect section payloads, then emit
/// header + table + payloads with checksums in one buffer.
#[derive(Debug, Default)]
pub struct SectionWriter {
    sections: Vec<(SectionId, Vec<u8>)>,
}

impl SectionWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one section's payload. Sections are written in insertion order.
    pub fn add(&mut self, id: SectionId, payload: Vec<u8>) {
        debug_assert!(
            !self.sections.iter().any(|(s, _)| *s == id),
            "duplicate section {id:?}"
        );
        self.sections.push((id, payload));
    }

    /// Emit the complete segment file.
    pub fn finish(self) -> Vec<u8> {
        let table_end = TABLE_OFFSET + self.sections.len() * SECTION_ENTRY_LEN;
        let total: usize =
            table_end + self.sections.iter().map(|(_, p)| p.len()).sum::<usize>();
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(SEGMENT_MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        let mut offset = table_end;
        for (id, payload) in &self.sections {
            out.extend_from_slice(&(*id as u16).to_le_bytes());
            out.extend_from_slice(&0u16.to_le_bytes());
            out.extend_from_slice(&(offset as u64).to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
            offset += payload.len();
        }
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        debug_assert_eq!(out.len(), total);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_file() -> Vec<u8> {
        let mut w = SectionWriter::new();
        for id in SectionId::ALL {
            w.add(id, vec![id as u8; (id as usize) * 3]);
        }
        w.finish()
    }

    #[test]
    fn write_parse_round_trip() {
        let f = tiny_file();
        let sections = parse_sections(&f).expect("parse");
        assert_eq!(sections.len(), SectionId::ALL.len());
        for (e, want) in sections.iter().zip(SectionId::ALL) {
            assert_eq!(e.id, want);
            assert_eq!(e.slice(&f), vec![want as u8; (want as usize) * 3]);
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut f = tiny_file();
        f[0] ^= 0xFF;
        assert_eq!(parse_sections(&f), Err(SegmentError::BadMagic));
        assert_eq!(parse_sections(b"PW"), Err(SegmentError::Truncated("magic")));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut f = tiny_file();
        f[8] = 99;
        assert_eq!(parse_sections(&f), Err(SegmentError::UnsupportedVersion(99)));
    }

    #[test]
    fn every_truncation_errors_not_panics() {
        let f = tiny_file();
        for cut in 0..f.len() {
            assert!(parse_sections(&f[..cut]).is_err(), "prefix {cut} parsed");
        }
    }

    #[test]
    fn payload_corruption_is_checksum_mismatch() {
        let f = tiny_file();
        let sections = parse_sections(&f).expect("parse");
        let meta = sections[0];
        let mut corrupt = f.clone();
        corrupt[meta.offset] ^= 0xFF;
        assert_eq!(
            parse_sections(&corrupt),
            Err(SegmentError::ChecksumMismatch("Meta"))
        );
    }

    #[test]
    fn missing_section_detected() {
        let mut w = SectionWriter::new();
        for id in SectionId::ALL.iter().skip(1) {
            w.add(*id, Vec::new());
        }
        assert_eq!(
            parse_sections(&w.finish()),
            Err(SegmentError::MissingSection("Meta"))
        );
    }

    #[test]
    fn unknown_section_id_rejected() {
        let f = tiny_file();
        let mut bad = f.clone();
        // First table entry's id → 42.
        bad[TABLE_OFFSET] = 42;
        bad[TABLE_OFFSET + 1] = 0;
        assert_eq!(parse_sections(&bad), Err(SegmentError::UnknownSection(42)));
    }

    #[test]
    fn errors_display() {
        for e in [
            SegmentError::Io("x".into()),
            SegmentError::BadMagic,
            SegmentError::UnsupportedVersion(9),
            SegmentError::Truncated("Meta"),
            SegmentError::ChecksumMismatch("Docs"),
            SegmentError::MissingSection("Terms"),
            SegmentError::UnknownSection(8),
            SegmentError::Malformed("x"),
            SegmentError::Mismatch("analyzer"),
        ] {
            assert!(!format!("{e}").is_empty());
        }
    }
}
