//! Variable-length integer codec for posting lists.
//!
//! Standard LEB128-style varint: 7 payload bits per byte, high bit set on
//! continuation. Combined with delta-encoding of ascending doc ids and
//! positions this keeps the in-memory index several times smaller than raw
//! `Vec<u32>` postings — which matters once the synthetic corpus is scaled
//! up for the efficiency table (T4).

/// Append `v` to `out` as a varint. At most 5 bytes for a `u32`.
#[inline]
pub fn write_varint(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read one varint from the front of `buf`, advancing it.
///
/// Returns `None` on truncated or over-long (>5 byte) input.
#[inline]
pub fn read_varint(buf: &mut &[u8]) -> Option<u32> {
    let mut v: u32 = 0;
    let mut shift = 0;
    for _ in 0..5 {
        let (&byte, rest) = buf.split_first()?;
        *buf = rest;
        v |= u32::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
    None
}

/// Delta-encode an ascending sequence into varints.
///
/// # Panics
/// Debug-asserts that the sequence is non-decreasing.
pub fn encode_deltas(values: &[u32], out: &mut Vec<u8>) {
    let mut prev = 0u32;
    for &v in values {
        debug_assert!(v >= prev, "sequence must be ascending: {v} after {prev}");
        write_varint(out, v - prev);
        prev = v;
    }
}

/// Skip `count` delta-encoded varints without materializing them.
///
/// Used by the tf-only posting decoder: positions must still be parsed to
/// find the next posting, but no `Vec` is allocated for them.
#[inline]
pub fn skip_deltas(buf: &mut &[u8], count: usize) -> Option<()> {
    for _ in 0..count {
        read_varint(buf)?;
    }
    Some(())
}

/// Decode `count` delta-encoded varints back into absolute values.
pub fn decode_deltas(buf: &mut &[u8], count: usize) -> Option<Vec<u32>> {
    let mut out = Vec::with_capacity(count);
    let mut prev = 0u32;
    for _ in 0..count {
        let d = read_varint(buf)?;
        prev = prev.checked_add(d)?;
        out.push(prev);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_byte_values() {
        for v in [0u32, 1, 127] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert_eq!(buf.len(), 1);
            let mut s = buf.as_slice();
            assert_eq!(read_varint(&mut s), Some(v));
            assert!(s.is_empty());
        }
    }

    #[test]
    fn multi_byte_boundaries() {
        for v in [128u32, 16_383, 16_384, u32::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut s = buf.as_slice();
            assert_eq!(read_varint(&mut s), Some(v), "value {v}");
        }
    }

    #[test]
    fn truncated_input_is_none() {
        let mut buf = Vec::new();
        write_varint(&mut buf, u32::MAX);
        let mut s = &buf[..buf.len() - 1];
        assert_eq!(read_varint(&mut s), None);
        let mut empty: &[u8] = &[];
        assert_eq!(read_varint(&mut empty), None);
    }

    #[test]
    fn overlong_input_is_none() {
        let bytes = [0x80u8, 0x80, 0x80, 0x80, 0x80, 0x01];
        let mut s = bytes.as_slice();
        assert_eq!(read_varint(&mut s), None);
    }

    #[test]
    fn delta_round_trip_small() {
        let vals = vec![3u32, 3, 7, 100, 100, 4000];
        let mut buf = Vec::new();
        encode_deltas(&vals, &mut buf);
        let mut s = buf.as_slice();
        assert_eq!(decode_deltas(&mut s, vals.len()), Some(vals));
        assert!(s.is_empty());
    }

    #[test]
    fn decode_with_wrong_count_fails_or_leaves_rest() {
        let vals = vec![1u32, 2, 3];
        let mut buf = Vec::new();
        encode_deltas(&vals, &mut buf);
        let mut s = buf.as_slice();
        // Asking for more values than exist hits truncation.
        assert_eq!(decode_deltas(&mut s, 4), None);
    }

    proptest! {
        #[test]
        fn varint_round_trips(v: u32) {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut s = buf.as_slice();
            prop_assert_eq!(read_varint(&mut s), Some(v));
            prop_assert!(s.is_empty());
        }

        #[test]
        fn deltas_round_trip(mut vals in proptest::collection::vec(0u32..1_000_000, 0..200)) {
            vals.sort_unstable();
            let mut buf = Vec::new();
            encode_deltas(&vals, &mut buf);
            let mut s = buf.as_slice();
            prop_assert_eq!(decode_deltas(&mut s, vals.len()), Some(vals));
        }

        #[test]
        fn encoding_is_compact(mut vals in proptest::collection::vec(0u32..10_000, 1..100)) {
            vals.sort_unstable();
            let mut buf = Vec::new();
            encode_deltas(&vals, &mut buf);
            // Dense ascending u32 sequences under 10k: deltas fit in ≤2 bytes.
            prop_assert!(buf.len() <= vals.len() * 2);
        }
    }
}
