//! Query execution.
//!
//! The default `search()` path is document-at-a-time BM25 scoring with a
//! bounded top-k min-heap and MaxScore-style early termination driven by
//! per-term max impacts computed at build time (see [`SearchEngine::search`]).
//! The original exhaustive term-at-a-time scorer is retained as
//! [`SearchEngine::search_naive`] — it is the correctness reference the fast
//! path is gated against (property tests, `retrieval_bench --smoke`).
//!
//! The result carries everything the personalization layer needs downstream:
//! the doc id, the BM25 score, and a snippet built from the document's
//! stored text.

use crate::postings::PostingList;
use crate::score::{bm25_term, idf, Bm25Params};
use crate::snippet::extract_snippet;
use pws_text::{Analyzer, Interner};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// A document as stored by the engine (what a web index would keep: URL,
/// title, and enough text to render snippets).
///
/// `url` and `title` are shared `Arc<str>`s: every [`SearchHit`] that
/// materializes this document clones the handle, not the bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredDoc {
    /// Dense id assigned by the caller; must match insertion order.
    pub id: u32,
    /// URL shown on the result page.
    pub url: Arc<str>,
    /// Title shown on the result page.
    pub title: Arc<str>,
    /// Body text; snippets are windows of this.
    pub body: String,
}

impl StoredDoc {
    /// Convenience constructor.
    pub fn new(id: u32, url: &str, title: &str, body: &str) -> Self {
        StoredDoc { id, url: url.into(), title: title.into(), body: body.into() }
    }

    /// The text that gets indexed: title + body (title terms therefore count
    /// towards BM25, as in real engines).
    pub fn indexable_text(&self) -> String {
        format!("{} {}", self.title, self.body)
    }
}

/// One search result.
///
/// `url`/`title` share the stored document's `Arc<str>`s, so cloning a hit
/// (pool normalization, pool merging, retrieval caching) bumps two refcounts
/// instead of copying strings.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// Document id.
    pub doc: u32,
    /// BM25 score (higher is better).
    pub score: f64,
    /// Rank in the returned list, 1-based (rank 1 = best).
    pub rank: usize,
    /// Result URL.
    pub url: Arc<str>,
    /// Result title.
    pub title: Arc<str>,
    /// Query-biased snippet.
    pub snippet: String,
}

/// Relative slack applied to upper bounds before pruning against the heap
/// threshold. Float sums accumulated in different orders can differ by a few
/// ulps (relative error ≤ ~m·ε ≈ 1e-14 for realistic query lengths m), so a
/// bound computed as a sum of per-term maxima could round *below* a doc's
/// actual accumulated score. Inflating bounds by 1e-9 ≫ m·ε before the
/// `≤ θ` comparison makes a false prune impossible; the cost is only that a
/// vanishingly thin band of docs gets scored unnecessarily.
pub(crate) const UB_SLACK: f64 = 1.0 + 1e-9;

/// Min-heap entry for bounded top-k selection. Ordered so that the heap's
/// maximum (`peek`) is the *worst* kept hit: lower score is "greater", and
/// on score ties the larger doc id is "greater" (final ranking prefers
/// ascending doc ids). Shared with the segmented Block-Max WAND executor
/// ([`crate::segmented`]), which must select the identical top-k.
#[derive(Debug)]
pub(crate) struct HeapEntry {
    pub(crate) score: f64,
    pub(crate) doc: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.doc == other.doc && self.score == other.score
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BM25 scores are always finite; partial_cmp cannot fail here.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.doc.cmp(&other.doc))
    }
}

/// Per-term scoring cursor for document-at-a-time traversal. Borrows the
/// engine's build-time decoded postings — a query allocates no posting
/// storage and decodes no varints.
struct TermCursor<'a> {
    /// Decoded `(doc, tf)` pairs, ascending by doc.
    postings: &'a [(u32, u32)],
    /// Current position in `postings`.
    pos: usize,
    /// Hoisted idf for this term.
    idf: f64,
    /// Upper bound on this term's total contribution to any single doc:
    /// build-time max impact × query multiplicity.
    ub: f64,
}

impl TermCursor<'_> {
    #[inline]
    fn current(&self) -> Option<u32> {
        self.postings.get(self.pos).map(|&(d, _)| d)
    }
}

/// Immutable inverted index + document store.
#[derive(Debug)]
pub struct SearchEngine {
    analyzer: Analyzer,
    interner: Interner,
    postings: Vec<PostingList>,
    docs: Vec<StoredDoc>,
    doc_lens: Vec<u32>,
    total_len: u64,
    params: Bm25Params,
    /// Average doc length, cached at build time (satellite: previously
    /// recomputed per posting in every scoring loop).
    avg_len: f64,
    /// Per-term max impact: the largest BM25 contribution the term makes to
    /// any document under the current `params`. Indexed by `Sym::index()`,
    /// parallel to `postings`. Derived data — recomputed on load and on
    /// `set_params`, never persisted.
    max_impacts: Vec<f64>,
    /// Per-term decoded `(doc, tf)` pairs, ascending by doc id — the
    /// postings with positions stripped, materialized once at build/load
    /// so the scoring paths never decode varints per query. Indexed by
    /// `Sym::index()`, parallel to `postings`. Derived data, never
    /// persisted (the compressed lists stay the storage format; this
    /// trades memory for query speed in the serving process).
    doc_tfs: Vec<Vec<(u32, u32)>>,
}

impl SearchEngine {
    pub(crate) fn from_parts(
        analyzer: Analyzer,
        interner: Interner,
        postings: Vec<PostingList>,
        docs: Vec<StoredDoc>,
        doc_lens: Vec<u32>,
        total_len: u64,
    ) -> Self {
        let mut e = SearchEngine {
            analyzer,
            interner,
            postings,
            docs,
            doc_lens,
            total_len,
            params: Bm25Params::default(),
            avg_len: 0.0,
            max_impacts: Vec::new(),
            doc_tfs: Vec::new(),
        };
        e.recompute_derived();
        e
    }

    /// Recompute `avg_len`, the decoded `(doc, tf)` lists, and the
    /// per-term max impacts. Called from `from_parts` (covers both build
    /// and deserialize) and `set_params` (which skips re-decoding — the
    /// postings themselves haven't changed).
    fn recompute_derived(&mut self) {
        self.avg_len = if self.docs.is_empty() {
            0.0
        } else {
            self.total_len as f64 / self.docs.len() as f64
        };
        if self.doc_tfs.len() != self.postings.len() {
            self.doc_tfs =
                self.postings.iter().map(|list| list.iter_doc_tf().collect()).collect();
        }
        let n = self.docs.len() as u32;
        let (params, avg_len, doc_lens) = (self.params, self.avg_len, &self.doc_lens);
        self.max_impacts = self
            .postings
            .iter()
            .zip(&self.doc_tfs)
            .map(|(list, pairs)| {
                if list.doc_count() == 0 {
                    return 0.0;
                }
                let term_idf = idf(n, list.doc_count());
                let mut max = 0.0f64;
                for &(doc, tf) in pairs {
                    let s = bm25_term(params, term_idf, tf, doc_lens[doc as usize], avg_len);
                    if s > max {
                        max = s;
                    }
                }
                max
            })
            .collect();
    }

    /// Override the BM25 parameters. Per-term max impacts depend on the
    /// parameters, so they are recomputed here.
    pub fn set_params(&mut self, params: Bm25Params) {
        self.params = params;
        self.recompute_derived();
    }

    /// Number of indexed documents.
    pub fn doc_count(&self) -> u32 {
        self.docs.len() as u32
    }

    /// Average indexed document length in tokens (cached at build time).
    pub fn avg_doc_len(&self) -> f64 {
        self.avg_len
    }

    /// Document frequency of an (analyzed) term. The input is analyzed with
    /// the engine's analyzer first, so `doc_frequency("Running")` and
    /// `doc_frequency("run")` agree.
    pub fn doc_frequency(&self, term: &str) -> u32 {
        let toks = self.analyzer.analyze(term);
        let Some(tok) = toks.first() else { return 0 };
        match self.interner.get(tok) {
            Some(sym) => self.postings[sym.index()].doc_count(),
            None => 0,
        }
    }

    /// Borrow a stored document.
    pub fn doc(&self, id: u32) -> &StoredDoc {
        &self.docs[id as usize]
    }

    /// Number of distinct terms in the index.
    pub fn vocab_size(&self) -> usize {
        self.interner.len()
    }

    /// Total encoded postings bytes (for the efficiency table).
    pub fn postings_bytes(&self) -> usize {
        self.postings.iter().map(|p| p.encoded_len()).sum()
    }

    /// The analyzer configuration (for persistence).
    pub(crate) fn analyzer_config(&self) -> &Analyzer {
        &self.analyzer
    }

    /// Borrow the engine's internals for persistence:
    /// `(interner, postings, docs, doc_lens, total_len)`.
    pub(crate) fn parts(
        &self,
    ) -> (&Interner, &[PostingList], &[StoredDoc], &[u32], u64) {
        (&self.interner, &self.postings, &self.docs, &self.doc_lens, self.total_len)
    }

    /// Run the engine's analyzer over arbitrary text (exposed for the
    /// structured-query parser so terms and phrases match index terms).
    pub fn analyze_text(&self, text: &str) -> Vec<String> {
        self.analyzer.analyze(text)
    }

    /// Docs matching one analyzed term, with their BM25 contribution.
    pub(crate) fn term_docs(&self, term: &str) -> std::collections::HashMap<u32, f64> {
        let mut out = std::collections::HashMap::new();
        let Some(sym) = self.interner.get(term) else { return out };
        let list = &self.postings[sym.index()];
        if list.doc_count() == 0 {
            return out;
        }
        let term_idf = idf(self.doc_count(), list.doc_count());
        for (doc, tf) in list.iter_doc_tf() {
            let len = self.doc_lens[doc as usize];
            out.insert(doc, bm25_term(self.params, term_idf, tf, len, self.avg_len));
        }
        out
    }

    /// Docs containing the analyzed terms *adjacently in order*, scored as
    /// the sum of the member terms' BM25 contributions.
    pub(crate) fn phrase_docs(&self, terms: &[String]) -> std::collections::HashMap<u32, f64> {
        let mut out = std::collections::HashMap::new();
        if terms.is_empty() {
            return out;
        }
        // Resolve all symbols up front; any unknown term kills the phrase.
        let mut lists = Vec::with_capacity(terms.len());
        for t in terms {
            match self.interner.get(t) {
                Some(sym) if self.postings[sym.index()].doc_count() > 0 => {
                    lists.push(&self.postings[sym.index()])
                }
                _ => return out,
            }
        }
        // Iterate the rarest list's docs and verify the phrase by positions.
        let (anchor_i, anchor) = lists
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.doc_count())
            .expect("nonempty");
        let idfs: Vec<f64> =
            lists.iter().map(|l| idf(self.doc_count(), l.doc_count())).collect();
        'docs: for p in anchor.iter() {
            let doc = p.doc;
            // Collect this doc's positions per phrase slot.
            let mut slot_positions: Vec<Vec<u32>> = vec![Vec::new(); lists.len()];
            slot_positions[anchor_i] = p.positions.clone();
            for (i, l) in lists.iter().enumerate() {
                if i == anchor_i {
                    continue;
                }
                match l.iter().find(|q| q.doc == doc) {
                    Some(q) => slot_positions[i] = q.positions,
                    None => continue 'docs,
                }
            }
            // Phrase check: some position p0 of slot 0 with p0+i in slot i.
            let found = slot_positions[0].iter().any(|&p0| {
                slot_positions
                    .iter()
                    .enumerate()
                    .all(|(i, ps)| ps.binary_search(&(p0 + i as u32)).is_ok())
            });
            if found {
                let len = self.doc_lens[doc as usize];
                let score: f64 = lists
                    .iter()
                    .zip(&idfs)
                    .map(|(l, &term_idf)| {
                        let tf = l.iter().find(|q| q.doc == doc).map(|q| q.tf).unwrap_or(1);
                        bm25_term(self.params, term_idf, tf, len, self.avg_len)
                    })
                    .sum();
                out.insert(doc, score);
            }
        }
        out
    }

    /// Materialize hits (with snippets) from scored doc candidates.
    pub(crate) fn hits_from_scored(
        &self,
        cands: &[(u32, f64)],
        q_tokens: &[String],
    ) -> Vec<SearchHit> {
        cands
            .iter()
            .enumerate()
            .map(|(i, &(doc, score))| {
                let d = &self.docs[doc as usize];
                SearchHit {
                    doc,
                    score,
                    rank: i + 1,
                    url: d.url.clone(),
                    title: d.title.clone(),
                    snippet: extract_snippet(&d.body, q_tokens, 24),
                }
            })
            .collect()
    }

    /// BM25 scores of `query` for a specific set of documents (0.0 for a
    /// doc matching no query term). Used by the personalization layer to
    /// re-score externally sourced candidates (e.g. from an augmented
    /// query) against the *original* query, so pools stay comparable.
    ///
    /// Implemented as a sorted-slice two-pointer merge against each posting
    /// list (both sides ascend by doc id) — no per-call `HashMap`.
    pub fn score_docs(&self, query: &str, docs: &[u32]) -> Vec<f64> {
        let q_tokens = self.analyzer.analyze(query);
        let mut scores = vec![0.0; docs.len()];
        if q_tokens.is_empty() || self.docs.is_empty() || docs.is_empty() {
            return scores;
        }
        // Sorted (doc, original index). A duplicated doc id credits only its
        // last occurrence (the historical HashMap behaviour): sort ties by
        // descending index, keep the first of each run.
        let mut wanted: Vec<(u32, usize)> =
            docs.iter().enumerate().map(|(i, &d)| (d, i)).collect();
        wanted.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        wanted.dedup_by_key(|e| e.0);
        let n = self.doc_count();
        for tok in &q_tokens {
            let Some(sym) = self.interner.get(tok) else { continue };
            let list = &self.postings[sym.index()];
            if list.doc_count() == 0 {
                continue;
            }
            let term_idf = idf(n, list.doc_count());
            let mut w = 0;
            for &(doc, tf) in &self.doc_tfs[sym.index()] {
                while w < wanted.len() && wanted[w].0 < doc {
                    w += 1;
                }
                if w == wanted.len() {
                    break;
                }
                if wanted[w].0 == doc {
                    let len = self.doc_lens[doc as usize];
                    scores[wanted[w].1] +=
                        bm25_term(self.params, term_idf, tf, len, self.avg_len);
                }
            }
        }
        scores
    }

    /// Process-wide handle to the `index.search` stage, resolved once.
    pub(crate) fn metrics_search(&self) -> &pws_obs::StageMetrics {
        static STAGE: std::sync::OnceLock<std::sync::Arc<pws_obs::StageMetrics>> =
            std::sync::OnceLock::new();
        STAGE.get_or_init(|| pws_obs::stage("index.search"))
    }

    /// Execute `query`, returning the top `k` hits ranked by BM25
    /// descending, ties broken by ascending doc id (deterministic).
    ///
    /// This is the fast path: document-at-a-time traversal with a bounded
    /// top-k min-heap and MaxScore pruning (see [`SearchEngine::search_tokens`]).
    /// It returns byte-identical results to [`SearchEngine::search_naive`].
    ///
    /// Each call records its latency under the `index.search` stage in
    /// the global [`pws_obs`] registry.
    pub fn search(&self, query: &str, k: usize) -> Vec<SearchHit> {
        let _span = self.metrics_search().span();
        self.search_tokens_inner(&self.analyzer.analyze(query), k)
    }

    /// [`SearchEngine::search`] over pre-analyzed query tokens. Exposed so
    /// callers that key caches on analyzed tokens (the serving layer's
    /// base-retrieval cache) analyze exactly once.
    ///
    /// Records the same `index.search` stage as [`SearchEngine::search`].
    pub fn search_tokens(&self, q_tokens: &[String], k: usize) -> Vec<SearchHit> {
        let _span = self.metrics_search().span();
        self.search_tokens_inner(q_tokens, k)
    }

    fn search_tokens_inner(&self, q_tokens: &[String], k: usize) -> Vec<SearchHit> {
        if k == 0 || self.docs.is_empty() || q_tokens.is_empty() {
            return Vec::new();
        }
        let cands = self.top_k_daat(q_tokens, k);
        self.hits_from_scored(&cands, q_tokens)
    }

    /// Document-at-a-time top-k scoring with MaxScore early termination.
    ///
    /// Pruning invariant: a doc is skipped (or never surfaced) only when an
    /// upper bound on its total score — the sum of the matching terms' max
    /// impacts, inflated by [`UB_SLACK`] — cannot strictly beat the heap
    /// threshold θ. Since the final order breaks score ties by ascending doc
    /// id and docs are visited in ascending id order, a doc tying θ can
    /// never displace an incumbent, so `bound ≤ θ ⇒ skip` is exact.
    ///
    /// Determinism invariant: a surviving doc's score is accumulated in
    /// query-token order (duplicates included; non-matching terms add an
    /// exact `+0.0`), reproducing the naive scorer's f64 sums bit for bit.
    fn top_k_daat(&self, q_tokens: &[String], k: usize) -> Vec<(u32, f64)> {
        // Resolve tokens to unique terms, preserving first-appearance order.
        // `slots[i]` maps the i-th *resolvable* token occurrence to its
        // unique-term index — the accumulation order of the naive scorer.
        let mut term_postings: Vec<usize> = Vec::new();
        let mut slots: Vec<usize> = Vec::new();
        for tok in q_tokens {
            if let Some(sym) = self.interner.get(tok) {
                let pi = sym.index();
                if self.postings[pi].doc_count() == 0 {
                    continue;
                }
                let t = match term_postings.iter().position(|&p| p == pi) {
                    Some(t) => t,
                    None => {
                        term_postings.push(pi);
                        term_postings.len() - 1
                    }
                };
                slots.push(t);
            }
        }
        let m = term_postings.len();
        if m == 0 {
            return Vec::new();
        }
        let n = self.doc_count();
        let mut mult = vec![0u32; m];
        for &t in &slots {
            mult[t] += 1;
        }
        let mut cursors: Vec<TermCursor<'_>> = term_postings
            .iter()
            .zip(&mult)
            .map(|(&pi, &mu)| TermCursor {
                postings: &self.doc_tfs[pi],
                pos: 0,
                idf: idf(n, self.postings[pi].doc_count()),
                ub: self.max_impacts[pi] * f64::from(mu),
            })
            .collect();

        // Terms ordered by ascending upper bound; prefix[j] = Σ ub of the j
        // cheapest terms. The first `boundary` terms are "non-essential":
        // a doc matching only those cannot beat θ.
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by(|&a, &b| {
            cursors[a]
                .ub
                .partial_cmp(&cursors[b].ub)
                .unwrap_or(Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut prefix = vec![0.0f64; m + 1];
        for (j, &t) in order.iter().enumerate() {
            prefix[j + 1] = prefix[j] + cursors[t].ub;
        }

        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
        let mut theta = f64::NEG_INFINITY;
        let mut contrib = vec![0.0f64; m];

        loop {
            // Non-essential boundary under the current θ.
            let mut boundary = 0;
            while boundary < m && prefix[boundary + 1] * UB_SLACK <= theta {
                boundary += 1;
            }
            if boundary == m {
                break; // even all terms together cannot beat θ
            }
            // Next candidate: the smallest current doc among essential terms.
            let mut next: Option<u32> = None;
            for &t in &order[boundary..] {
                if let Some(doc) = cursors[t].current() {
                    next = Some(match next {
                        Some(d) => d.min(doc),
                        None => doc,
                    });
                }
            }
            let Some(d) = next else { break };
            if theta > f64::NEG_INFINITY {
                // Cheap bound: matching essential terms + every non-essential.
                let mut ub = prefix[boundary];
                for &t in &order[boundary..] {
                    if cursors[t].current() == Some(d) {
                        ub += cursors[t].ub;
                    }
                }
                if ub * UB_SLACK <= theta {
                    for &t in &order[boundary..] {
                        let c = &mut cursors[t];
                        if c.current() == Some(d) {
                            c.pos += 1;
                        }
                    }
                    continue;
                }
            }
            // Full score: seek every cursor to ≥ d, then accumulate in
            // query-token order (bitwise-identical to the naive scorer).
            let len = self.doc_lens[d as usize];
            for (t, c) in cursors.iter_mut().enumerate() {
                while c.pos < c.postings.len() && c.postings[c.pos].0 < d {
                    c.pos += 1;
                }
                contrib[t] = match c.postings.get(c.pos) {
                    Some(&(doc, tf)) if doc == d => {
                        bm25_term(self.params, c.idf, tf, len, self.avg_len)
                    }
                    _ => 0.0,
                };
            }
            let mut score = 0.0f64;
            for &t in &slots {
                score += contrib[t];
            }
            for c in cursors.iter_mut() {
                if c.current() == Some(d) {
                    c.pos += 1;
                }
            }
            if heap.len() < k {
                heap.push(HeapEntry { score, doc: d });
                if heap.len() == k {
                    theta = heap.peek().expect("nonempty heap").score;
                }
            } else if score > theta {
                heap.pop();
                heap.push(HeapEntry { score, doc: d });
                theta = heap.peek().expect("nonempty heap").score;
            }
        }

        let mut cands: Vec<(u32, f64)> =
            heap.into_iter().map(|e| (e.doc, e.score)).collect();
        cands.sort_unstable_by(|a, b| {
            match b.1.partial_cmp(&a.1).unwrap_or(Ordering::Equal) {
                Ordering::Equal => a.0.cmp(&b.0),
                o => o,
            }
        });
        cands
    }

    /// The original exhaustive scorer: term-at-a-time `HashMap` accumulation
    /// over the full candidate union, then a full sort. Kept as the
    /// correctness reference for the fast path (`retrieval_bench` compares
    /// the two and `--smoke` mode fails on any disagreement) and as the
    /// "naive" baseline in `results/BENCH_retrieval.json`.
    ///
    /// Does not record `index.search` metrics — it never serves traffic.
    pub fn search_naive(&self, query: &str, k: usize) -> Vec<SearchHit> {
        if k == 0 || self.docs.is_empty() {
            return Vec::new();
        }
        let q_tokens = self.analyzer.analyze(query);
        if q_tokens.is_empty() {
            return Vec::new();
        }

        // Term-at-a-time accumulation. Duplicate query terms contribute
        // once per occurrence (standard bag-of-words query semantics).
        let mut acc: HashMap<u32, f64> = HashMap::new();
        let n = self.doc_count();
        for tok in &q_tokens {
            let Some(sym) = self.interner.get(tok) else { continue };
            let list = &self.postings[sym.index()];
            if list.doc_count() == 0 {
                continue;
            }
            let term_idf = idf(n, list.doc_count());
            for (doc, tf) in list.iter_doc_tf() {
                let len = self.doc_lens[doc as usize];
                let s = bm25_term(self.params, term_idf, tf, len, self.avg_len);
                *acc.entry(doc).or_insert(0.0) += s;
            }
        }
        if acc.is_empty() {
            return Vec::new();
        }

        let mut cands: Vec<(u32, f64)> = acc.into_iter().collect();
        cands.sort_unstable_by(|a, b| {
            match b.1.partial_cmp(&a.1).unwrap_or(Ordering::Equal) {
                Ordering::Equal => a.0.cmp(&b.0),
                o => o,
            }
        });
        cands.truncate(k);
        self.hits_from_scored(&cands, &q_tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;

    fn engine() -> SearchEngine {
        let mut b = IndexBuilder::new();
        b.add(StoredDoc::new(0, "http://a.test/0", "Crab shack menu",
            "fresh seafood lobster and crab daily specials near the harbor"));
        b.add(StoredDoc::new(1, "http://b.test/1", "Phone deals",
            "unlocked android smartphone with great battery and camera"));
        b.add(StoredDoc::new(2, "http://c.test/2", "Seafood city guide",
            "the seafood guide covers lobster rolls oyster bars and sushi"));
        b.add(StoredDoc::new(3, "http://d.test/3", "Hotel by the sea",
            "oceanview suite booking with seafood restaurant downstairs"));
        b.build()
    }

    #[test]
    fn relevant_docs_rank_first() {
        let e = engine();
        let hits = e.search("seafood lobster", 10);
        assert!(!hits.is_empty());
        // Docs 0 and 2 mention both terms; doc 1 mentions neither.
        let top2: Vec<u32> = hits.iter().take(2).map(|h| h.doc).collect();
        assert!(top2.contains(&0) && top2.contains(&2), "top2 = {top2:?}");
        assert!(hits.iter().all(|h| h.doc != 1));
    }

    #[test]
    fn ranks_are_one_based_and_scores_descend() {
        let e = engine();
        let hits = e.search("seafood", 10);
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.rank, i + 1);
        }
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn k_limits_results() {
        let e = engine();
        assert_eq!(e.search("seafood", 1).len(), 1);
        assert!(e.search("seafood", 0).is_empty());
    }

    #[test]
    fn unknown_terms_yield_empty() {
        let e = engine();
        assert!(e.search("zzzqqq", 10).is_empty());
        assert!(e.search("", 10).is_empty());
        assert!(e.search("the of and", 10).is_empty(), "stopword-only query");
    }

    #[test]
    fn stemming_unifies_query_and_doc_forms() {
        let e = engine();
        // "bookings" stems to the same term as "booking" in doc 3.
        let hits = e.search("bookings", 10);
        assert!(hits.iter().any(|h| h.doc == 3));
    }

    #[test]
    fn title_terms_are_indexed() {
        let e = engine();
        let hits = e.search("shack", 10);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc, 0);
    }

    #[test]
    fn snippet_contains_query_term() {
        let e = engine();
        let hits = e.search("lobster", 10);
        assert!(hits[0].snippet.to_lowercase().contains("lobster"));
    }

    #[test]
    fn tie_break_is_doc_id_ascending() {
        let mut b = IndexBuilder::new();
        // Identical docs → identical scores.
        b.add(StoredDoc::new(0, "u0", "same", "identical content here"));
        b.add(StoredDoc::new(1, "u1", "same", "identical content here"));
        let e = b.build();
        let hits = e.search("identical", 10);
        assert_eq!(hits[0].doc, 0);
        assert_eq!(hits[1].doc, 1);
    }

    #[test]
    fn tie_break_with_bounded_k_keeps_smallest_ids() {
        let mut b = IndexBuilder::new();
        for id in 0..6 {
            b.add(StoredDoc::new(id, "u", "same", "identical content here"));
        }
        let e = b.build();
        // All six docs tie; the heap must keep (and order) the lowest ids.
        let hits = e.search("identical", 3);
        let ids: Vec<u32> = hits.iter().map(|h| h.doc).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        let naive = e.search_naive("identical", 3);
        assert_eq!(hits, naive);
    }

    #[test]
    fn fast_path_matches_naive_on_fixture() {
        let e = engine();
        for q in ["seafood lobster", "seafood", "hotel booking", "camera",
                  "seafood seafood lobster", "crab harbor sushi phone"] {
            for k in [1, 2, 3, 10] {
                assert_eq!(e.search(q, k), e.search_naive(q, k), "q={q:?} k={k}");
            }
        }
    }

    #[test]
    fn search_tokens_matches_search() {
        let e = engine();
        let toks = e.analyze_text("seafood lobster");
        assert_eq!(e.search_tokens(&toks, 10), e.search("seafood lobster", 10));
    }

    #[test]
    fn df_accessor() {
        let e = engine();
        assert_eq!(e.doc_frequency("seafood"), 3);
        assert_eq!(e.doc_frequency("android"), 1);
        assert_eq!(e.doc_frequency("missingterm"), 0);
    }

    #[test]
    fn score_docs_matches_search_scores() {
        let e = engine();
        let hits = e.search("seafood lobster", 10);
        let docs: Vec<u32> = hits.iter().map(|h| h.doc).collect();
        let scores = e.score_docs("seafood lobster", &docs);
        for (h, s) in hits.iter().zip(&scores) {
            assert!((h.score - s).abs() < 1e-9, "doc {}: {} vs {}", h.doc, h.score, s);
        }
    }

    #[test]
    fn score_docs_zero_for_non_matching() {
        let e = engine();
        // Doc 1 mentions neither term.
        let scores = e.score_docs("seafood lobster", &[1]);
        assert_eq!(scores, vec![0.0]);
        assert_eq!(e.score_docs("", &[0, 1]), vec![0.0, 0.0]);
        assert!(e.score_docs("seafood", &[]).is_empty());
    }

    #[test]
    fn score_docs_unsorted_input_and_duplicates() {
        let e = engine();
        // Unsorted doc ids score the same as sorted ones.
        let unsorted = e.score_docs("seafood lobster", &[3, 0, 2]);
        let sorted = e.score_docs("seafood lobster", &[0, 2, 3]);
        assert_eq!(unsorted[0], sorted[2]);
        assert_eq!(unsorted[1], sorted[0]);
        assert_eq!(unsorted[2], sorted[1]);
        // A duplicated doc id credits only its last occurrence (historical
        // HashMap behaviour, pinned).
        let dup = e.score_docs("seafood", &[0, 0]);
        assert_eq!(dup[0], 0.0);
        assert!(dup[1] > 0.0);
    }

    #[test]
    fn max_impacts_bound_every_posting() {
        let e = engine();
        let n = e.doc_count();
        for (pi, list) in e.postings.iter().enumerate() {
            if list.doc_count() == 0 {
                continue;
            }
            let term_idf = idf(n, list.doc_count());
            for (doc, tf) in list.iter_doc_tf() {
                let s = bm25_term(e.params, term_idf, tf, e.doc_lens[doc as usize], e.avg_len);
                assert!(s <= e.max_impacts[pi], "impact above stored max");
            }
        }
    }

    #[test]
    fn set_params_recomputes_max_impacts() {
        let mut e = engine();
        let before = e.max_impacts.clone();
        e.set_params(Bm25Params { k1: 2.0, b: 0.1 });
        assert_ne!(before, e.max_impacts);
        // Fast path still agrees with the naive scorer under the new params.
        assert_eq!(e.search("seafood lobster", 3), e.search_naive("seafood lobster", 3));
    }

    #[test]
    fn stats_accessors() {
        let e = engine();
        assert_eq!(e.doc_count(), 4);
        assert!(e.avg_doc_len() > 5.0);
        assert!(e.vocab_size() > 10);
        assert!(e.postings_bytes() > 0);
    }
}
