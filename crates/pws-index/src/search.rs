//! Query execution.
//!
//! Term-at-a-time BM25 accumulation with a bounded top-K heap. The result
//! carries everything the personalization layer needs downstream: the doc
//! id, the BM25 score, and a snippet built from the document's stored text.

use crate::postings::PostingList;
use crate::score::{bm25_term, idf, Bm25Params};
use crate::snippet::extract_snippet;
use pws_text::{Analyzer, Interner};
use std::cmp::Ordering;
use std::collections::HashMap;

/// A document as stored by the engine (what a web index would keep: URL,
/// title, and enough text to render snippets).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredDoc {
    /// Dense id assigned by the caller; must match insertion order.
    pub id: u32,
    /// URL shown on the result page.
    pub url: String,
    /// Title shown on the result page.
    pub title: String,
    /// Body text; snippets are windows of this.
    pub body: String,
}

impl StoredDoc {
    /// Convenience constructor.
    pub fn new(id: u32, url: &str, title: &str, body: &str) -> Self {
        StoredDoc { id, url: url.into(), title: title.into(), body: body.into() }
    }

    /// The text that gets indexed: title + body (title terms therefore count
    /// towards BM25, as in real engines).
    pub fn indexable_text(&self) -> String {
        format!("{} {}", self.title, self.body)
    }
}

/// One search result.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// Document id.
    pub doc: u32,
    /// BM25 score (higher is better).
    pub score: f64,
    /// Rank in the returned list, 1-based (rank 1 = best).
    pub rank: usize,
    /// Result URL.
    pub url: String,
    /// Result title.
    pub title: String,
    /// Query-biased snippet.
    pub snippet: String,
}

/// Immutable inverted index + document store.
#[derive(Debug)]
pub struct SearchEngine {
    analyzer: Analyzer,
    interner: Interner,
    postings: Vec<PostingList>,
    docs: Vec<StoredDoc>,
    doc_lens: Vec<u32>,
    total_len: u64,
    params: Bm25Params,
}

impl SearchEngine {
    pub(crate) fn from_parts(
        analyzer: Analyzer,
        interner: Interner,
        postings: Vec<PostingList>,
        docs: Vec<StoredDoc>,
        doc_lens: Vec<u32>,
        total_len: u64,
    ) -> Self {
        SearchEngine {
            analyzer,
            interner,
            postings,
            docs,
            doc_lens,
            total_len,
            params: Bm25Params::default(),
        }
    }

    /// Override the BM25 parameters.
    pub fn set_params(&mut self, params: Bm25Params) {
        self.params = params;
    }

    /// Number of indexed documents.
    pub fn doc_count(&self) -> u32 {
        self.docs.len() as u32
    }

    /// Average indexed document length in tokens.
    pub fn avg_doc_len(&self) -> f64 {
        if self.docs.is_empty() {
            0.0
        } else {
            self.total_len as f64 / self.docs.len() as f64
        }
    }

    /// Document frequency of an (analyzed) term. The input is analyzed with
    /// the engine's analyzer first, so `doc_frequency("Running")` and
    /// `doc_frequency("run")` agree.
    pub fn doc_frequency(&self, term: &str) -> u32 {
        let toks = self.analyzer.analyze(term);
        let Some(tok) = toks.first() else { return 0 };
        match self.interner.get(tok) {
            Some(sym) => self.postings[sym.index()].doc_count(),
            None => 0,
        }
    }

    /// Borrow a stored document.
    pub fn doc(&self, id: u32) -> &StoredDoc {
        &self.docs[id as usize]
    }

    /// Number of distinct terms in the index.
    pub fn vocab_size(&self) -> usize {
        self.interner.len()
    }

    /// Total encoded postings bytes (for the efficiency table).
    pub fn postings_bytes(&self) -> usize {
        self.postings.iter().map(|p| p.encoded_len()).sum()
    }

    /// The analyzer configuration (for persistence).
    pub(crate) fn analyzer_config(&self) -> &Analyzer {
        &self.analyzer
    }

    /// Borrow the engine's internals for persistence:
    /// `(interner, postings, docs, doc_lens, total_len)`.
    pub(crate) fn parts(
        &self,
    ) -> (&Interner, &[PostingList], &[StoredDoc], &[u32], u64) {
        (&self.interner, &self.postings, &self.docs, &self.doc_lens, self.total_len)
    }

    /// Run the engine's analyzer over arbitrary text (exposed for the
    /// structured-query parser so terms and phrases match index terms).
    pub fn analyze_text(&self, text: &str) -> Vec<String> {
        self.analyzer.analyze(text)
    }

    /// Docs matching one analyzed term, with their BM25 contribution.
    pub(crate) fn term_docs(&self, term: &str) -> std::collections::HashMap<u32, f64> {
        let mut out = std::collections::HashMap::new();
        let Some(sym) = self.interner.get(term) else { return out };
        let list = &self.postings[sym.index()];
        if list.doc_count() == 0 {
            return out;
        }
        let term_idf = idf(self.doc_count(), list.doc_count());
        for p in list.iter() {
            let len = self.doc_lens[p.doc as usize];
            out.insert(p.doc, bm25_term(self.params, term_idf, p.tf, len, self.avg_doc_len()));
        }
        out
    }

    /// Docs containing the analyzed terms *adjacently in order*, scored as
    /// the sum of the member terms' BM25 contributions.
    pub(crate) fn phrase_docs(&self, terms: &[String]) -> std::collections::HashMap<u32, f64> {
        let mut out = std::collections::HashMap::new();
        if terms.is_empty() {
            return out;
        }
        // Resolve all symbols up front; any unknown term kills the phrase.
        let mut lists = Vec::with_capacity(terms.len());
        for t in terms {
            match self.interner.get(t) {
                Some(sym) if self.postings[sym.index()].doc_count() > 0 => {
                    lists.push(&self.postings[sym.index()])
                }
                _ => return out,
            }
        }
        // Iterate the rarest list's docs and verify the phrase by positions.
        let (anchor_i, anchor) = lists
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.doc_count())
            .expect("nonempty");
        let idfs: Vec<f64> =
            lists.iter().map(|l| idf(self.doc_count(), l.doc_count())).collect();
        'docs: for p in anchor.iter() {
            let doc = p.doc;
            // Collect this doc's positions per phrase slot.
            let mut slot_positions: Vec<Vec<u32>> = vec![Vec::new(); lists.len()];
            slot_positions[anchor_i] = p.positions.clone();
            for (i, l) in lists.iter().enumerate() {
                if i == anchor_i {
                    continue;
                }
                match l.iter().find(|q| q.doc == doc) {
                    Some(q) => slot_positions[i] = q.positions,
                    None => continue 'docs,
                }
            }
            // Phrase check: some position p0 of slot 0 with p0+i in slot i.
            let found = slot_positions[0].iter().any(|&p0| {
                slot_positions
                    .iter()
                    .enumerate()
                    .all(|(i, ps)| ps.binary_search(&(p0 + i as u32)).is_ok())
            });
            if found {
                let len = self.doc_lens[doc as usize];
                let score: f64 = lists
                    .iter()
                    .zip(&idfs)
                    .map(|(l, &term_idf)| {
                        let tf = l.iter().find(|q| q.doc == doc).map(|q| q.tf).unwrap_or(1);
                        bm25_term(self.params, term_idf, tf, len, self.avg_doc_len())
                    })
                    .sum();
                out.insert(doc, score);
            }
        }
        out
    }

    /// Materialize hits (with snippets) from scored doc candidates.
    pub(crate) fn hits_from_scored(
        &self,
        cands: &[(u32, f64)],
        q_tokens: &[String],
    ) -> Vec<SearchHit> {
        cands
            .iter()
            .enumerate()
            .map(|(i, &(doc, score))| {
                let d = &self.docs[doc as usize];
                SearchHit {
                    doc,
                    score,
                    rank: i + 1,
                    url: d.url.clone(),
                    title: d.title.clone(),
                    snippet: extract_snippet(&d.body, q_tokens, 24),
                }
            })
            .collect()
    }

    /// BM25 scores of `query` for a specific set of documents (0.0 for a
    /// doc matching no query term). Used by the personalization layer to
    /// re-score externally sourced candidates (e.g. from an augmented
    /// query) against the *original* query, so pools stay comparable.
    pub fn score_docs(&self, query: &str, docs: &[u32]) -> Vec<f64> {
        let q_tokens = self.analyzer.analyze(query);
        let wanted: HashMap<u32, usize> =
            docs.iter().enumerate().map(|(i, &d)| (d, i)).collect();
        let mut scores = vec![0.0; docs.len()];
        if q_tokens.is_empty() || self.docs.is_empty() {
            return scores;
        }
        let n = self.doc_count();
        for tok in &q_tokens {
            let Some(sym) = self.interner.get(tok) else { continue };
            let list = &self.postings[sym.index()];
            if list.doc_count() == 0 {
                continue;
            }
            let term_idf = idf(n, list.doc_count());
            for p in list.iter() {
                if let Some(&i) = wanted.get(&p.doc) {
                    let len = self.doc_lens[p.doc as usize];
                    scores[i] += bm25_term(self.params, term_idf, p.tf, len, self.avg_doc_len());
                }
            }
        }
        scores
    }

    /// Process-wide handle to the `index.search` stage, resolved once.
    fn metrics_search(&self) -> &pws_obs::StageMetrics {
        static STAGE: std::sync::OnceLock<std::sync::Arc<pws_obs::StageMetrics>> =
            std::sync::OnceLock::new();
        STAGE.get_or_init(|| pws_obs::stage("index.search"))
    }

    /// Execute `query`, returning the top `k` hits ranked by BM25
    /// descending, ties broken by ascending doc id (deterministic).
    ///
    /// Each call records its latency under the `index.search` stage in
    /// the global [`pws_obs`] registry.
    pub fn search(&self, query: &str, k: usize) -> Vec<SearchHit> {
        let _span = self.metrics_search().span();
        if k == 0 || self.docs.is_empty() {
            return Vec::new();
        }
        let q_tokens = self.analyzer.analyze(query);
        if q_tokens.is_empty() {
            return Vec::new();
        }

        // Term-at-a-time accumulation. Duplicate query terms contribute
        // once per occurrence (standard bag-of-words query semantics).
        let mut acc: HashMap<u32, f64> = HashMap::new();
        let n = self.doc_count();
        for tok in &q_tokens {
            let Some(sym) = self.interner.get(tok) else { continue };
            let list = &self.postings[sym.index()];
            if list.doc_count() == 0 {
                continue;
            }
            let term_idf = idf(n, list.doc_count());
            for p in list.iter() {
                let len = self.doc_lens[p.doc as usize];
                let s = bm25_term(self.params, term_idf, p.tf, len, self.avg_doc_len());
                *acc.entry(p.doc).or_insert(0.0) += s;
            }
        }
        if acc.is_empty() {
            return Vec::new();
        }

        // Top-k selection: collect and partially sort. For the corpus sizes
        // here a full sort of the candidate set is both simple and fast; the
        // candidate set is bounded by the union of posting lists.
        let mut cands: Vec<(u32, f64)> = acc.into_iter().collect();
        cands.sort_unstable_by(|a, b| match b.1.partial_cmp(&a.1).unwrap_or(Ordering::Equal) {
            Ordering::Equal => a.0.cmp(&b.0),
            o => o,
        });
        cands.truncate(k);

        cands
            .into_iter()
            .enumerate()
            .map(|(i, (doc, score))| {
                let d = &self.docs[doc as usize];
                let snippet = extract_snippet(&d.body, &q_tokens, 24);
                SearchHit {
                    doc,
                    score,
                    rank: i + 1,
                    url: d.url.clone(),
                    title: d.title.clone(),
                    snippet,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;

    fn engine() -> SearchEngine {
        let mut b = IndexBuilder::new();
        b.add(StoredDoc::new(0, "http://a.test/0", "Crab shack menu",
            "fresh seafood lobster and crab daily specials near the harbor"));
        b.add(StoredDoc::new(1, "http://b.test/1", "Phone deals",
            "unlocked android smartphone with great battery and camera"));
        b.add(StoredDoc::new(2, "http://c.test/2", "Seafood city guide",
            "the seafood guide covers lobster rolls oyster bars and sushi"));
        b.add(StoredDoc::new(3, "http://d.test/3", "Hotel by the sea",
            "oceanview suite booking with seafood restaurant downstairs"));
        b.build()
    }

    #[test]
    fn relevant_docs_rank_first() {
        let e = engine();
        let hits = e.search("seafood lobster", 10);
        assert!(!hits.is_empty());
        // Docs 0 and 2 mention both terms; doc 1 mentions neither.
        let top2: Vec<u32> = hits.iter().take(2).map(|h| h.doc).collect();
        assert!(top2.contains(&0) && top2.contains(&2), "top2 = {top2:?}");
        assert!(hits.iter().all(|h| h.doc != 1));
    }

    #[test]
    fn ranks_are_one_based_and_scores_descend() {
        let e = engine();
        let hits = e.search("seafood", 10);
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.rank, i + 1);
        }
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn k_limits_results() {
        let e = engine();
        assert_eq!(e.search("seafood", 1).len(), 1);
        assert!(e.search("seafood", 0).is_empty());
    }

    #[test]
    fn unknown_terms_yield_empty() {
        let e = engine();
        assert!(e.search("zzzqqq", 10).is_empty());
        assert!(e.search("", 10).is_empty());
        assert!(e.search("the of and", 10).is_empty(), "stopword-only query");
    }

    #[test]
    fn stemming_unifies_query_and_doc_forms() {
        let e = engine();
        // "bookings" stems to the same term as "booking" in doc 3.
        let hits = e.search("bookings", 10);
        assert!(hits.iter().any(|h| h.doc == 3));
    }

    #[test]
    fn title_terms_are_indexed() {
        let e = engine();
        let hits = e.search("shack", 10);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc, 0);
    }

    #[test]
    fn snippet_contains_query_term() {
        let e = engine();
        let hits = e.search("lobster", 10);
        assert!(hits[0].snippet.to_lowercase().contains("lobster"));
    }

    #[test]
    fn tie_break_is_doc_id_ascending() {
        let mut b = IndexBuilder::new();
        // Identical docs → identical scores.
        b.add(StoredDoc::new(0, "u0", "same", "identical content here"));
        b.add(StoredDoc::new(1, "u1", "same", "identical content here"));
        let e = b.build();
        let hits = e.search("identical", 10);
        assert_eq!(hits[0].doc, 0);
        assert_eq!(hits[1].doc, 1);
    }

    #[test]
    fn df_accessor() {
        let e = engine();
        assert_eq!(e.doc_frequency("seafood"), 3);
        assert_eq!(e.doc_frequency("android"), 1);
        assert_eq!(e.doc_frequency("missingterm"), 0);
    }

    #[test]
    fn score_docs_matches_search_scores() {
        let e = engine();
        let hits = e.search("seafood lobster", 10);
        let docs: Vec<u32> = hits.iter().map(|h| h.doc).collect();
        let scores = e.score_docs("seafood lobster", &docs);
        for (h, s) in hits.iter().zip(&scores) {
            assert!((h.score - s).abs() < 1e-9, "doc {}: {} vs {}", h.doc, h.score, s);
        }
    }

    #[test]
    fn score_docs_zero_for_non_matching() {
        let e = engine();
        // Doc 1 mentions neither term.
        let scores = e.score_docs("seafood lobster", &[1]);
        assert_eq!(scores, vec![0.0]);
        assert_eq!(e.score_docs("", &[0, 1]), vec![0.0, 0.0]);
        assert!(e.score_docs("seafood", &[]).is_empty());
    }

    #[test]
    fn stats_accessors() {
        let e = engine();
        assert_eq!(e.doc_count(), 4);
        assert!(e.avg_doc_len() > 5.0);
        assert!(e.vocab_size() > 10);
        assert!(e.postings_bytes() > 0);
    }
}
