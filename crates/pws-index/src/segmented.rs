//! Multi-segment index with Block-Max WAND top-k execution.
//!
//! A [`SegmentedIndex`] serves queries over a set of immutable
//! [`Segment`]s (see [`crate::segment`]) under **global** collection
//! statistics: document count, average document length, and per-term
//! document frequency are aggregated across segments, so the BM25 score
//! of any document is *bit-identical* to what one monolithic
//! [`crate::SearchEngine`] over the concatenated corpus would compute.
//! That identity is the correctness contract: the Block-Max WAND pruned
//! top-k is property-tested against the exhaustive reference (and the
//! in-memory engine) on arbitrary corpora, and `retrieval_bench`
//! re-verifies it on every fixture query as a CI gate.
//!
//! ## Pruning
//!
//! Query execution refines the PR 5 MaxScore fast path to **block**
//! granularity (the Block-Max WAND family, in the essential-list /
//! MaxScore formulation sometimes called Block-Max MaxScore):
//!
//! * each term carries a whole-term upper bound (from the segment-wide
//!   `max_tf` / `min_dlen` extremes) — terms whose bounds cannot reach
//!   the heap threshold θ become *non-essential* and stop driving
//!   candidate generation;
//! * each candidate is re-bounded from the **per-block** `max_tf` /
//!   `min_dlen` of the blocks that could contain it, reached by shallow
//!   moves over the block table — payloads are only varint-decoded when
//!   a block's bound actually beats θ;
//! * bounds are inflated by the same `UB_SLACK` slack as the in-memory
//!   fast path, so floating-point rounding can never cause a false
//!   prune; ties on score break by ascending global doc id, making
//!   `bound ≤ θ ⇒ skip` exact.
//!
//! Because `max_tf`/`min_dlen` are statistics-independent, the bounds
//! stay valid when segments are added or merged and the global average
//! length or idf shifts — no stored impact ever has to be rebuilt.

use crate::score::{bm25_term, idf, Bm25Params};
use crate::search::{HeapEntry, SearchHit, UB_SLACK};
use crate::segment::{BlockMeta, Segment, SegmentBuilder};
use crate::segfile::SegmentError;
use crate::snippet::extract_snippet;
use pws_text::Analyzer;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// An immutable set of segments served as one logical index.
///
/// Global doc ids are segment-order concatenation: segment `s` covers
/// `[base(s), base(s) + s.doc_count())`. Cloning is cheap (segments are
/// `Arc`-backed); the global df map is rebuilt only by
/// [`SegmentedIndex::add_segment`].
#[derive(Debug, Clone)]
pub struct SegmentedIndex {
    analyzer: Analyzer,
    params: Bm25Params,
    segments: Vec<Segment>,
    /// `bases[s]` = first global doc id of segment `s`.
    bases: Vec<u32>,
    doc_count: u32,
    total_len: u64,
    avg_len: f64,
    /// Per-term global document frequency (sum across segments).
    global_df: HashMap<String, u32>,
}

impl SegmentedIndex {
    /// An empty index over `analyzer` (segments can be added later).
    pub fn empty(analyzer: Analyzer) -> Self {
        SegmentedIndex {
            analyzer,
            params: Bm25Params::default(),
            segments: Vec::new(),
            bases: Vec::new(),
            doc_count: 0,
            total_len: 0,
            avg_len: 0.0,
            global_df: HashMap::new(),
        }
    }

    /// Assemble an index from already-loaded segments. All segments must
    /// share one analyzer configuration.
    pub fn from_segments(segments: Vec<Segment>) -> Result<Self, SegmentError> {
        let analyzer = segments
            .first()
            .map(|s| s.analyzer().clone())
            .unwrap_or_default();
        let mut idx = SegmentedIndex::empty(analyzer);
        for s in segments {
            idx.add_segment(s)?;
        }
        Ok(idx)
    }

    /// Override the BM25 parameters (block-max bounds are derived at
    /// query time, so no stored data needs recomputation).
    pub fn with_params(mut self, params: Bm25Params) -> Self {
        self.params = params;
        self
    }

    /// Append one segment, updating global statistics. This is the
    /// live-ingestion entry point: the serving layer pairs it with an
    /// epoch bump of the retrieval cache (see `pws-serve`'s
    /// `LiveIndex`).
    pub fn add_segment(&mut self, seg: Segment) -> Result<(), SegmentError> {
        if seg.analyzer() != &self.analyzer {
            if self.segments.is_empty() && self.doc_count == 0 {
                self.analyzer = seg.analyzer().clone();
            } else {
                return Err(SegmentError::Mismatch("analyzer config"));
            }
        }
        let new_total = u64::from(self.doc_count) + u64::from(seg.doc_count());
        let doc_count = u32::try_from(new_total)
            .map_err(|_| SegmentError::Malformed("global doc count overflows u32"))?;
        self.bases.push(self.doc_count);
        self.doc_count = doc_count;
        self.total_len += seg.total_len();
        self.avg_len = if self.doc_count == 0 {
            0.0
        } else {
            self.total_len as f64 / f64::from(self.doc_count)
        };
        for (term, df) in seg.term_dfs() {
            *self.global_df.entry(term.to_string()).or_insert(0) += df;
        }
        self.segments.push(seg);
        Ok(())
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// The segments, in global doc id order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total documents across all segments.
    pub fn doc_count(&self) -> u32 {
        self.doc_count
    }

    /// Global average document length in tokens.
    pub fn avg_doc_len(&self) -> f64 {
        self.avg_len
    }

    /// Number of distinct terms across all segments.
    pub fn vocab_size(&self) -> usize {
        self.global_df.len()
    }

    /// Total on-disk bytes across all segment files.
    pub fn index_bytes(&self) -> usize {
        self.segments.iter().map(|s| s.file_bytes().len()).sum()
    }

    /// The analyzer shared by every segment.
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// Run the shared analyzer over arbitrary text.
    pub fn analyze_text(&self, text: &str) -> Vec<String> {
        self.analyzer.analyze(text)
    }

    /// Global document frequency of an (unanalyzed) term.
    pub fn doc_frequency(&self, term: &str) -> u32 {
        let toks = self.analyzer.analyze(term);
        toks.first()
            .and_then(|t| self.global_df.get(t))
            .copied()
            .unwrap_or(0)
    }

    /// Materialize a stored document by global id (lazy doc-store
    /// decode in the owning segment).
    ///
    /// # Panics
    /// Panics if `global` is out of range.
    pub fn doc(&self, global: u32) -> crate::StoredDoc {
        let s = self.segment_of(global);
        let mut d = self.segments[s].doc(global - self.bases[s]);
        d.id = global;
        d
    }

    /// Index of the segment owning `global` (binary search over bases).
    fn segment_of(&self, global: u32) -> usize {
        debug_assert!(global < self.doc_count, "doc {global} out of range");
        match self.bases.binary_search(&global) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    }

    /// Process-wide handle to the `segment.search` stage.
    fn metrics_search(&self) -> &pws_obs::StageMetrics {
        static STAGE: std::sync::OnceLock<std::sync::Arc<pws_obs::StageMetrics>> =
            std::sync::OnceLock::new();
        STAGE.get_or_init(|| pws_obs::stage("segment.search"))
    }

    /// Execute `query`, returning the top `k` hits ranked by BM25
    /// descending, ties by ascending global doc id — bit-identical to
    /// [`crate::SearchEngine::search`] over the concatenated corpus.
    ///
    /// Latency is recorded under the `segment.search` stage.
    pub fn search(&self, query: &str, k: usize) -> Vec<SearchHit> {
        let _span = self.metrics_search().span();
        self.search_tokens_inner(&self.analyzer.analyze(query), k)
    }

    /// [`SegmentedIndex::search`] over pre-analyzed tokens (the serving
    /// layer analyzes exactly once and keys its cache on the tokens).
    pub fn search_tokens(&self, q_tokens: &[String], k: usize) -> Vec<SearchHit> {
        let _span = self.metrics_search().span();
        self.search_tokens_inner(q_tokens, k)
    }

    fn search_tokens_inner(&self, q_tokens: &[String], k: usize) -> Vec<SearchHit> {
        if k == 0 || self.doc_count == 0 || q_tokens.is_empty() {
            return Vec::new();
        }
        let Some(q) = self.resolve(q_tokens) else { return Vec::new() };
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
        let mut theta = f64::NEG_INFINITY;
        for (si, seg) in self.segments.iter().enumerate() {
            self.bmw_segment(seg, self.bases[si], &q, k, &mut heap, &mut theta);
        }
        let cands = drain_heap(heap);
        self.materialize(&cands, q_tokens)
    }

    /// The exhaustive reference: term-at-a-time accumulation over every
    /// posting of every query term in every segment, then a full sort.
    /// Bit-identical to [`crate::SearchEngine::search_naive`] over the
    /// concatenated corpus; the pruned path is gated against it.
    pub fn search_exhaustive(&self, query: &str, k: usize) -> Vec<SearchHit> {
        self.search_exhaustive_tokens(&self.analyzer.analyze(query), k)
    }

    /// [`SegmentedIndex::search_exhaustive`] over pre-analyzed tokens.
    pub fn search_exhaustive_tokens(&self, q_tokens: &[String], k: usize) -> Vec<SearchHit> {
        if k == 0 || self.doc_count == 0 || q_tokens.is_empty() {
            return Vec::new();
        }
        let mut acc: HashMap<u32, f64> = HashMap::new();
        let mut buf = Vec::new();
        for tok in q_tokens {
            let Some(&df) = self.global_df.get(tok) else { continue };
            let term_idf = idf(self.doc_count, df);
            for (si, seg) in self.segments.iter().enumerate() {
                let Some(ord) = seg.term_ord(tok) else { continue };
                let base = self.bases[si];
                let lens = seg.doc_lens();
                for blk in seg.term_blocks(ord) {
                    if !seg.decode_block(blk, &mut buf) {
                        continue;
                    }
                    for &(d, tf) in &buf {
                        let s =
                            bm25_term(self.params, term_idf, tf, lens[d as usize], self.avg_len);
                        *acc.entry(base + d).or_insert(0.0) += s;
                    }
                }
            }
        }
        if acc.is_empty() {
            return Vec::new();
        }
        let mut cands: Vec<(u32, f64)> = acc.into_iter().collect();
        cands.sort_unstable_by(|a, b| {
            match b.1.partial_cmp(&a.1).unwrap_or(Ordering::Equal) {
                Ordering::Equal => a.0.cmp(&b.0),
                o => o,
            }
        });
        cands.truncate(k);
        self.materialize(&cands, q_tokens)
    }

    /// BM25 scores of `query` for specific global doc ids (0.0 for docs
    /// matching no query term) — bit-identical to
    /// [`crate::SearchEngine::score_docs`], including the pinned
    /// "duplicate ids credit the last occurrence" semantics.
    pub fn score_docs(&self, query: &str, docs: &[u32]) -> Vec<f64> {
        let q_tokens = self.analyzer.analyze(query);
        let mut scores = vec![0.0; docs.len()];
        if q_tokens.is_empty() || self.doc_count == 0 || docs.is_empty() {
            return scores;
        }
        let mut wanted: Vec<(u32, usize)> =
            docs.iter().enumerate().map(|(i, &d)| (d, i)).collect();
        wanted.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        wanted.dedup_by_key(|e| e.0);
        let mut buf = Vec::new();
        for tok in &q_tokens {
            let Some(&df) = self.global_df.get(tok) else { continue };
            let term_idf = idf(self.doc_count, df);
            for &(doc, out_i) in &wanted {
                let si = self.segment_of(doc);
                let seg = &self.segments[si];
                let Some(ord) = seg.term_ord(tok) else { continue };
                let local = doc - self.bases[si];
                let blocks = seg.term_blocks(ord);
                // Find the block that could contain `local`.
                let bi = blocks.partition_point(|b| b.last_doc < local);
                if bi == blocks.len() {
                    continue;
                }
                if !seg.decode_block(&blocks[bi], &mut buf) {
                    continue;
                }
                if let Ok(p) = buf.binary_search_by_key(&local, |&(d, _)| d) {
                    let len = seg.doc_lens()[local as usize];
                    scores[out_i] +=
                        bm25_term(self.params, term_idf, buf[p].1, len, self.avg_len);
                }
            }
        }
        scores
    }

    /// Resolve query tokens into unique present terms + occurrence slots
    /// (mirrors the in-memory fast path's resolution exactly).
    fn resolve(&self, q_tokens: &[String]) -> Option<ResolvedQuery> {
        let mut terms: Vec<QueryTerm> = Vec::new();
        let mut slots: Vec<usize> = Vec::new();
        for tok in q_tokens {
            let Some(&df) = self.global_df.get(tok) else { continue };
            if df == 0 {
                continue;
            }
            let t = match terms.iter().position(|u| &u.term == tok) {
                Some(t) => t,
                None => {
                    terms.push(QueryTerm {
                        term: tok.clone(),
                        idf: idf(self.doc_count, df),
                        mult: 0,
                    });
                    terms.len() - 1
                }
            };
            slots.push(t);
        }
        if terms.is_empty() {
            return None;
        }
        for &t in &slots {
            terms[t].mult += 1;
        }
        Some(ResolvedQuery { terms, slots })
    }

    /// Run Block-Max WAND over one segment, folding results into the
    /// shared global top-k heap (θ carries across segments, so later
    /// segments prune against everything already found).
    fn bmw_segment(
        &self,
        seg: &Segment,
        base: u32,
        q: &ResolvedQuery,
        k: usize,
        heap: &mut BinaryHeap<HeapEntry>,
        theta: &mut f64,
    ) {
        // Cursors for the query terms present in this segment.
        let mut cursors: Vec<BmwCursor<'_>> = Vec::with_capacity(q.terms.len());
        for (t, qt) in q.terms.iter().enumerate() {
            let Some(ord) = seg.term_ord(&qt.term) else { continue };
            let tm = seg.term_meta(ord);
            if tm.df == 0 {
                continue;
            }
            let mult = f64::from(qt.mult);
            let ub =
                bm25_term(self.params, qt.idf, tm.max_tf, tm.min_dlen, self.avg_len) * mult;
            cursors.push(BmwCursor {
                blocks: seg.term_blocks(ord),
                bi: 0,
                decoded: Vec::with_capacity(crate::segment::BLOCK_SIZE),
                decoded_bi: usize::MAX,
                pos: 0,
                idf: qt.idf,
                mult,
                ub,
                slot_term: t,
            });
        }
        let m = cursors.len();
        if m == 0 {
            return;
        }
        let lens = seg.doc_lens();

        // Terms by ascending whole-term upper bound; prefix sums give
        // the non-essential boundary under the current θ.
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by(|&a, &b| {
            cursors[a]
                .ub
                .partial_cmp(&cursors[b].ub)
                .unwrap_or(Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut prefix = vec![0.0f64; m + 1];
        for (j, &t) in order.iter().enumerate() {
            prefix[j + 1] = prefix[j] + cursors[t].ub;
        }

        let mut contrib = vec![0.0f64; q.terms.len()];
        loop {
            let mut boundary = 0;
            while boundary < m && prefix[boundary + 1] * UB_SLACK <= *theta {
                boundary += 1;
            }
            if boundary == m {
                return; // no doc in this segment can beat θ
            }
            // Candidate: smallest current doc among essential cursors.
            let mut next: Option<u32> = None;
            for &t in &order[boundary..] {
                if let Some(doc) = cursors[t].current_doc(seg) {
                    next = Some(match next {
                        Some(d) => d.min(doc),
                        None => doc,
                    });
                }
            }
            let Some(d) = next else { return };

            if *theta > f64::NEG_INFINITY {
                // Block-refined bound: per-block maxima for everything.
                // Non-essential terms move shallowly (block table only).
                let mut ub = 0.0f64;
                for &t in &order[..boundary] {
                    ub += cursors[t].block_ub_at(self.params, self.avg_len, d);
                }
                for &t in &order[boundary..] {
                    let c = &mut cursors[t];
                    if c.current_doc(seg) == Some(d) {
                        ub += c.block_ub(self.params, self.avg_len);
                    }
                }
                if ub * UB_SLACK <= *theta {
                    for &t in &order[boundary..] {
                        let c = &mut cursors[t];
                        if c.current_doc(seg) == Some(d) {
                            c.advance(seg);
                        }
                    }
                    continue;
                }
            }

            // Full score: seek every cursor to ≥ d and accumulate the
            // matching contributions in query-token slot order (exact
            // +0.0 for non-matching terms) — bitwise-identical to the
            // naive scorer's accumulation.
            let dlen = lens[d as usize];
            for c in cursors.iter_mut() {
                contrib[c.slot_term] = match c.seek(seg, d) {
                    Some((doc, tf)) if doc == d => {
                        bm25_term(self.params, c.idf, tf, dlen, self.avg_len)
                    }
                    _ => 0.0,
                };
            }
            let mut score = 0.0f64;
            for &t in &q.slots {
                score += contrib[t];
            }
            for c in cursors.iter_mut() {
                if c.current_doc(seg) == Some(d) {
                    c.advance(seg);
                }
            }

            let global = base + d;
            if heap.len() < k {
                heap.push(HeapEntry { score, doc: global });
                if heap.len() == k {
                    *theta = heap.peek().expect("nonempty heap").score;
                }
            } else if score > *theta {
                heap.pop();
                heap.push(HeapEntry { score, doc: global });
                *theta = heap.peek().expect("nonempty heap").score;
            }
        }
    }

    /// Build hits (with snippets) from globally-id'd scored candidates.
    fn materialize(&self, cands: &[(u32, f64)], q_tokens: &[String]) -> Vec<SearchHit> {
        cands
            .iter()
            .enumerate()
            .map(|(i, &(doc, score))| {
                let d = self.doc(doc);
                let snippet = extract_snippet(&d.body, q_tokens, 24);
                SearchHit { doc, score, rank: i + 1, url: d.url, title: d.title, snippet }
            })
            .collect()
    }

    /// Build a segmented index over `num_docs` documents produced by
    /// `doc(i) -> (url, title, body)`, split into consecutive segments
    /// of `docs_per_segment`, built by `threads` worker threads.
    ///
    /// The output is **independent of `threads`**: each segment is built
    /// from its own document range in isolation, so parallelism is pure
    /// execution strategy. Every built segment round-trips through the
    /// on-disk format ([`SegmentBuilder::finish_segment`]).
    pub fn build_parallel<F>(
        analyzer: Analyzer,
        num_docs: usize,
        docs_per_segment: usize,
        threads: usize,
        doc: F,
    ) -> Result<SegmentedIndex, SegmentError>
    where
        F: Fn(usize) -> (String, String, String) + Sync,
    {
        assert!(docs_per_segment > 0, "docs_per_segment must be positive");
        let num_segments = num_docs.div_ceil(docs_per_segment).max(1);
        let next = std::sync::atomic::AtomicUsize::new(0);
        let slots: Vec<std::sync::Mutex<Option<Result<Segment, SegmentError>>>> =
            (0..num_segments).map(|_| std::sync::Mutex::new(None)).collect();
        let workers = threads.clamp(1, num_segments);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let s = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if s >= num_segments {
                        return;
                    }
                    let lo = s * docs_per_segment;
                    let hi = (lo + docs_per_segment).min(num_docs);
                    let mut b = SegmentBuilder::new(analyzer.clone());
                    for i in lo..hi {
                        let (url, title, body) = doc(i);
                        b.add(&url, &title, &body);
                    }
                    let built = b.finish_segment();
                    if let Ok(mut slot) =
                        slots[s].lock().or_else(|p| Ok::<_, ()>(p.into_inner()))
                    {
                        *slot = Some(built);
                    }
                });
            }
        });
        let mut segments = Vec::with_capacity(num_segments);
        for slot in slots {
            let built = slot
                .into_inner()
                .unwrap_or_else(|p| p.into_inner())
                .unwrap_or(Err(SegmentError::Malformed("segment build worker died")));
            segments.push(built?);
        }
        SegmentedIndex::from_segments(segments)
    }
}

/// One resolved unique query term.
#[derive(Debug)]
struct QueryTerm {
    term: String,
    idf: f64,
    /// Occurrence count in the query (duplicate tokens score multiply).
    mult: u32,
}

/// A resolved query: unique terms + the occurrence → term mapping that
/// fixes score accumulation order.
#[derive(Debug)]
struct ResolvedQuery {
    terms: Vec<QueryTerm>,
    slots: Vec<usize>,
}

/// Per-term Block-Max WAND cursor over one segment's block table.
///
/// Two movement granularities: *shallow* moves walk the block table by
/// `last_doc` without touching payloads; *deep* moves decode the current
/// block and walk its postings. Pruned candidates only ever cost shallow
/// moves on non-essential terms.
struct BmwCursor<'a> {
    blocks: &'a [BlockMeta],
    /// Current block index (may be past the decoded one after a shallow
    /// move; `decoded_bi` tracks what `decoded` actually holds).
    bi: usize,
    decoded: Vec<(u32, u32)>,
    decoded_bi: usize,
    pos: usize,
    idf: f64,
    mult: f64,
    /// Whole-term upper bound × query multiplicity (this segment).
    ub: f64,
    /// Index into the query's unique-term table (accumulation slot).
    slot_term: usize,
}

impl BmwCursor<'_> {
    /// Decode the current block if it isn't already.
    /// Returns `false` once the cursor is exhausted.
    fn ensure_decoded(&mut self, seg: &Segment) -> bool {
        loop {
            if self.bi >= self.blocks.len() {
                return false;
            }
            if self.decoded_bi == self.bi {
                if self.pos < self.decoded.len() {
                    return true;
                }
                self.bi += 1;
                continue;
            }
            let ok = seg.decode_block(&self.blocks[self.bi], &mut self.decoded);
            self.decoded_bi = self.bi;
            self.pos = 0;
            if ok && !self.decoded.is_empty() {
                return true;
            }
            // Undecodable block (unreachable post-checksum): skip it.
            self.bi += 1;
        }
    }

    /// The current posting's doc id, if any.
    fn current_doc(&mut self, seg: &Segment) -> Option<u32> {
        if self.ensure_decoded(seg) {
            Some(self.decoded[self.pos].0)
        } else {
            None
        }
    }

    /// Advance one posting.
    fn advance(&mut self, seg: &Segment) {
        if self.ensure_decoded(seg) {
            self.pos += 1;
        }
    }

    /// Shallow-skip whole blocks whose `last_doc < d` (no decode).
    fn shallow_seek(&mut self, d: u32) {
        while self.bi < self.blocks.len() && self.blocks[self.bi].last_doc < d {
            self.bi += 1;
        }
    }

    /// Upper bound of this term's contribution from its current block.
    fn block_ub(&self, params: Bm25Params, avg_len: f64) -> f64 {
        let b = &self.blocks[self.bi.min(self.decoded_bi)];
        bm25_term(params, self.idf, b.max_tf, b.min_dlen, avg_len) * self.mult
    }

    /// Upper bound of this term's contribution to doc `d`, moving only
    /// through the block table (payloads untouched). 0.0 once exhausted.
    fn block_ub_at(&mut self, params: Bm25Params, avg_len: f64, d: u32) -> f64 {
        self.shallow_seek(d);
        if self.bi >= self.blocks.len() {
            return 0.0;
        }
        let b = &self.blocks[self.bi];
        bm25_term(params, self.idf, b.max_tf, b.min_dlen, avg_len) * self.mult
    }

    /// Deep-seek to the first posting with doc ≥ `d`; returns it.
    fn seek(&mut self, seg: &Segment, d: u32) -> Option<(u32, u32)> {
        self.shallow_seek(d);
        loop {
            if !self.ensure_decoded(seg) {
                return None;
            }
            // The match, if any, is in this block (last_doc ≥ d).
            while self.pos < self.decoded.len() && self.decoded[self.pos].0 < d {
                self.pos += 1;
            }
            if self.pos < self.decoded.len() {
                return Some(self.decoded[self.pos]);
            }
            // Block exhausted below d (possible when bi was already
            // decoded and positioned past earlier docs): next block.
            self.bi = self.decoded_bi + 1;
        }
    }
}

/// Drain the shared heap into `(global doc, score)` candidates in final
/// rank order: score descending, ties by ascending doc id.
fn drain_heap(heap: BinaryHeap<HeapEntry>) -> Vec<(u32, f64)> {
    let mut cands: Vec<(u32, f64)> = heap.into_iter().map(|e| (e.doc, e.score)).collect();
    cands.sort_unstable_by(|a, b| match b.1.partial_cmp(&a.1).unwrap_or(Ordering::Equal) {
        Ordering::Equal => a.0.cmp(&b.0),
        o => o,
    });
    cands
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;
    use crate::search::StoredDoc;

    const DOCS: &[(&str, &str, &str)] = &[
        ("http://a.test/0", "Crab shack menu",
         "fresh seafood lobster and crab daily specials near the harbor"),
        ("http://b.test/1", "Phone deals",
         "unlocked android smartphone with great battery and camera"),
        ("http://c.test/2", "Seafood city guide",
         "the seafood guide covers lobster rolls oyster bars and sushi"),
        ("http://d.test/3", "Hotel by the sea",
         "oceanview suite booking with seafood restaurant downstairs"),
        ("http://e.test/4", "Harbor festival",
         "the annual harbor festival has lobster stands and live music"),
    ];

    /// The reference: one in-memory engine over all docs.
    fn reference() -> crate::SearchEngine {
        let mut b = IndexBuilder::new();
        for (i, (u, t, body)) in DOCS.iter().enumerate() {
            b.add(StoredDoc::new(i as u32, u, t, body));
        }
        b.build()
    }

    /// The same corpus split into segments of `per` docs.
    fn segmented(per: usize) -> SegmentedIndex {
        SegmentedIndex::build_parallel(Analyzer::default(), DOCS.len(), per, 2, |i| {
            let (u, t, b) = DOCS[i];
            (u.to_string(), t.to_string(), b.to_string())
        })
        .expect("build")
    }

    fn assert_hits_identical(a: &[SearchHit], b: &[SearchHit], ctx: &str) {
        assert_eq!(a.len(), b.len(), "{ctx}: length");
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.doc, y.doc, "{ctx}: doc order");
            assert_eq!(x.score.to_bits(), y.score.to_bits(), "{ctx}: score bits");
            assert_eq!(x.rank, y.rank, "{ctx}");
            assert_eq!(x.url, y.url, "{ctx}");
            assert_eq!(x.title, y.title, "{ctx}");
            assert_eq!(x.snippet, y.snippet, "{ctx}");
        }
    }

    #[test]
    fn matches_in_memory_engine_bitwise() {
        let eng = reference();
        for per in [1, 2, 3, 5] {
            let idx = segmented(per);
            assert_eq!(idx.doc_count(), eng.doc_count());
            assert!((idx.avg_doc_len() - eng.avg_doc_len()).abs() == 0.0);
            for q in ["seafood lobster", "harbor", "hotel booking camera",
                      "seafood seafood lobster", "missing terms only"] {
                for k in [1, 2, 3, 10] {
                    let a = idx.search(q, k);
                    let b = eng.search(q, k);
                    assert_hits_identical(&a, &b, &format!("per={per} q={q:?} k={k}"));
                    let c = eng.search_naive(q, k);
                    assert_hits_identical(&a, &c, &format!("naive per={per} q={q:?} k={k}"));
                }
            }
        }
    }

    #[test]
    fn bmw_matches_exhaustive() {
        let idx = segmented(2);
        for q in ["seafood lobster", "harbor festival", "camera", "the of and"] {
            for k in [1, 3, 10] {
                assert_hits_identical(
                    &idx.search(q, k),
                    &idx.search_exhaustive(q, k),
                    &format!("q={q:?} k={k}"),
                );
            }
        }
    }

    #[test]
    fn score_docs_matches_engine_bitwise() {
        let eng = reference();
        let idx = segmented(2);
        let docs = [3, 0, 2, 4, 1, 2];
        for q in ["seafood lobster", "harbor", "zzz"] {
            let a = idx.score_docs(q, &docs);
            let b = eng.score_docs(q, &docs);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits(), "q={q:?}");
            }
        }
    }

    #[test]
    fn add_segment_updates_global_stats() {
        let mut idx = segmented(5); // one segment
        assert_eq!(idx.num_segments(), 1);
        let mut b = SegmentBuilder::new(Analyzer::default());
        b.add("http://f.test/5", "New seafood place", "seafood tapas with harbor views");
        idx.add_segment(b.finish_segment().expect("seg")).expect("add");
        assert_eq!(idx.num_segments(), 2);
        assert_eq!(idx.doc_count(), 6);
        assert_eq!(idx.doc_frequency("seafood"), 4);
        // New doc retrievable under global ids.
        let hits = idx.search("tapas", 10);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc, 5);
        // And scores still agree with a monolithic engine over all 6.
        let mut eb = IndexBuilder::new();
        for (i, (u, t, body)) in DOCS.iter().enumerate() {
            eb.add(StoredDoc::new(i as u32, u, t, body));
        }
        eb.add(StoredDoc::new(5, "http://f.test/5", "New seafood place",
            "seafood tapas with harbor views"));
        let eng = eb.build();
        for q in ["seafood", "harbor lobster"] {
            assert_hits_identical(&idx.search(q, 10), &eng.search(q, 10), q);
        }
    }

    #[test]
    fn merge_preserves_results_bitwise() {
        let idx = segmented(2); // 3 segments
        let segs: Vec<&Segment> = idx.segments().iter().collect();
        let merged = Segment::merge(&segs).expect("merge");
        let midx = SegmentedIndex::from_segments(vec![merged]).expect("from");
        for q in ["seafood lobster", "harbor festival", "camera"] {
            assert_hits_identical(&idx.search(q, 10), &midx.search(q, 10), q);
        }
    }

    #[test]
    fn build_parallel_is_thread_count_invariant() {
        let a = segmented(2);
        let b = SegmentedIndex::build_parallel(Analyzer::default(), DOCS.len(), 2, 1, |i| {
            let (u, t, body) = DOCS[i];
            (u.to_string(), t.to_string(), body.to_string())
        })
        .expect("build");
        assert_eq!(a.num_segments(), b.num_segments());
        for (x, y) in a.segments().iter().zip(b.segments()) {
            assert_eq!(x.file_bytes(), y.file_bytes(), "segment bytes differ by threads");
        }
    }

    #[test]
    fn empty_and_edge_queries() {
        let idx = segmented(2);
        assert!(idx.search("", 10).is_empty());
        assert!(idx.search("seafood", 0).is_empty());
        assert!(idx.search("zzzqqq", 10).is_empty());
        let empty = SegmentedIndex::empty(Analyzer::default());
        assert!(empty.search("seafood", 10).is_empty());
        assert_eq!(empty.doc_count(), 0);
    }

    #[test]
    fn doc_accessor_rewrites_global_id() {
        let idx = segmented(2);
        for g in 0..5u32 {
            let d = idx.doc(g);
            assert_eq!(d.id, g);
            assert_eq!(&*d.url, DOCS[g as usize].0);
        }
    }
}
