//! Query-biased snippet extraction.
//!
//! The personalization layer mines concepts from *snippets*, exactly as the
//! paper does, so snippet quality directly shapes what concepts exist.
//! We use the classic best-window heuristic: slide a fixed-size window over
//! the body tokens and pick the window covering the most *distinct* query
//! terms (ties: more total query-term occurrences, then earliest).

use pws_text::{porter_stem, tokenize};

/// Extract a snippet of (about) `window` tokens from `body`, biased towards
/// the analyzed query tokens `q_tokens` (already stemmed/lowercased).
///
/// Falls back to the leading `window` tokens when no query term occurs.
pub fn extract_snippet(body: &str, q_tokens: &[String], window: usize) -> String {
    let raw_tokens = tokenize(body);
    if raw_tokens.is_empty() {
        return String::new();
    }
    let window = window.max(1).min(raw_tokens.len());

    // Match on stemmed forms so the snippet window aligns with BM25's view
    // of the document.
    let is_query_term: Vec<Option<usize>> = raw_tokens
        .iter()
        .map(|t| {
            let s = porter_stem(t);
            q_tokens.iter().position(|q| q == &s)
        })
        .collect();

    // Incremental sliding window: per-term occurrence counts, with
    // `distinct`/`total` maintained as tokens enter and leave. Windows are
    // visited in the same order with the same strict-`>` comparisons as
    // the quadratic rescan this replaces, so the selected window (and the
    // snippet bytes) are identical.
    let mut counts = vec![0usize; q_tokens.len()];
    let mut distinct = 0usize;
    let mut total = 0usize;
    for qi in is_query_term[..window].iter().flatten() {
        if counts[*qi] == 0 {
            distinct += 1;
        }
        counts[*qi] += 1;
        total += 1;
    }
    let mut best_start = 0usize;
    let mut best_distinct = distinct;
    let mut best_total = total;
    for start in 1..=(raw_tokens.len() - window) {
        if let Some(qi) = is_query_term[start - 1] {
            counts[qi] -= 1;
            if counts[qi] == 0 {
                distinct -= 1;
            }
            total -= 1;
        }
        if let Some(qi) = is_query_term[start + window - 1] {
            if counts[qi] == 0 {
                distinct += 1;
            }
            counts[qi] += 1;
            total += 1;
        }
        if distinct > best_distinct || (distinct == best_distinct && total > best_total) {
            best_distinct = distinct;
            best_total = total;
            best_start = start;
        }
    }

    raw_tokens[best_start..best_start + window].join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(terms: &[&str]) -> Vec<String> {
        terms.iter().map(|t| porter_stem(t)).collect()
    }

    #[test]
    fn empty_body_gives_empty_snippet() {
        assert_eq!(extract_snippet("", &q(&["x"]), 10), "");
    }

    #[test]
    fn no_match_falls_back_to_leading_window() {
        let s = extract_snippet("alpha beta gamma delta", &q(&["zzz"]), 2);
        assert_eq!(s, "alpha beta");
    }

    #[test]
    fn window_centers_on_match_region() {
        let body = "filler filler filler filler filler lobster rolls daily filler filler";
        let s = extract_snippet(body, &q(&["lobster"]), 3);
        assert!(s.contains("lobster"), "snippet = {s}");
    }

    #[test]
    fn prefers_window_with_more_distinct_terms() {
        let body = "seafood seafood seafood x x x x x x x seafood lobster x";
        let s = extract_snippet(body, &q(&["seafood", "lobster"]), 3);
        assert!(s.contains("lobster") && s.contains("seafood"), "snippet = {s}");
    }

    #[test]
    fn window_larger_than_body_returns_whole_body() {
        let s = extract_snippet("only three tokens", &q(&["three"]), 50);
        assert_eq!(s, "only three tokens");
    }

    #[test]
    fn stemmed_matching_finds_inflected_forms() {
        let body = "x x x x x x booking a room tonight x x";
        let s = extract_snippet(body, &q(&["bookings"]), 3);
        assert!(s.contains("booking"), "snippet = {s}");
    }

    #[test]
    fn snippet_is_lowercased_tokens() {
        let s = extract_snippet("The QUICK Fox", &q(&["fox"]), 3);
        assert_eq!(s, "the quick fox");
    }
}
