//! Structured queries: phrases and boolean operators.
//!
//! The bag-of-words [`crate::SearchEngine::search`] covers the
//! personalization pipeline; this module adds the query forms a real
//! engine's power users expect — and that location names need
//! (`"port alden"` as a phrase avoids matching the unrelated "port of
//! lakemoor alden street"):
//!
//! * `"lobster roll"` — phrase: terms must be adjacent, in order
//!   (verified against token positions in the postings);
//! * `a AND b` — both required; `a OR b` — either; `NOT a` — excluded;
//! * parentheses group; `AND` binds tighter than `OR`; bare juxtaposition
//!   (`seafood lobster`) means `OR` (bag-of-words, like `search`).
//!
//! Scoring: a document's score is the sum of BM25 contributions of every
//! positive term/phrase it matches (phrases score each member term).
//! `NOT` arms contribute filtering only.

use crate::search::{SearchEngine, SearchHit};
use std::collections::HashMap;

/// Parsed query expression.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryExpr {
    /// One analyzed term.
    Term(String),
    /// Adjacent-terms phrase (analyzed).
    Phrase(Vec<String>),
    /// All children must match.
    And(Vec<QueryExpr>),
    /// At least one child must match.
    Or(Vec<QueryExpr>),
    /// Child must not match (only meaningful inside `And`).
    Not(Box<QueryExpr>),
}

/// Parse error with a human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Lexer token.
#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(String),
    Quoted(String),
    And,
    Or,
    Not,
    LParen,
    RParen,
}

fn lex(input: &str) -> Result<Vec<Tok>, ParseError> {
    let mut toks = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '(' => {
                chars.next();
                toks.push(Tok::LParen);
            }
            ')' => {
                chars.next();
                toks.push(Tok::RParen);
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some(ch) => s.push(ch),
                        None => return Err(ParseError("unterminated quote".into())),
                    }
                }
                toks.push(Tok::Quoted(s));
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            _ => {
                let mut w = String::new();
                while let Some(&ch) = chars.peek() {
                    if ch.is_whitespace() || ch == '(' || ch == ')' || ch == '"' {
                        break;
                    }
                    w.push(ch);
                    chars.next();
                }
                match w.as_str() {
                    "AND" => toks.push(Tok::And),
                    "OR" => toks.push(Tok::Or),
                    "NOT" => toks.push(Tok::Not),
                    _ => toks.push(Tok::Word(w)),
                }
            }
        }
    }
    Ok(toks)
}

/// Recursive-descent parser.
///
/// Grammar: `or := and (OR and)*`; `and := unary ((AND)? unary)*` — but a
/// *bare* juxtaposition is OR (bag-of-words), so: `and := unary (AND unary)*`
/// and juxtaposition is handled at the `or` level.
struct Parser<'a> {
    toks: &'a [Tok],
    pos: usize,
    analyze: &'a dyn Fn(&str) -> Vec<String>,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<&Tok> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn parse_or(&mut self) -> Result<QueryExpr, ParseError> {
        let mut arms = vec![self.parse_and()?];
        loop {
            match self.peek() {
                Some(Tok::Or) => {
                    self.next();
                    arms.push(self.parse_and()?);
                }
                // Bare juxtaposition = OR.
                Some(Tok::Word(_)) | Some(Tok::Quoted(_)) | Some(Tok::LParen) | Some(Tok::Not) => {
                    arms.push(self.parse_and()?);
                }
                _ => break,
            }
        }
        Ok(if arms.len() == 1 { arms.pop().expect("one arm") } else { QueryExpr::Or(arms) })
    }

    fn parse_and(&mut self) -> Result<QueryExpr, ParseError> {
        let mut arms = vec![self.parse_unary()?];
        while matches!(self.peek(), Some(Tok::And)) {
            self.next();
            arms.push(self.parse_unary()?);
        }
        Ok(if arms.len() == 1 { arms.pop().expect("one arm") } else { QueryExpr::And(arms) })
    }

    fn parse_unary(&mut self) -> Result<QueryExpr, ParseError> {
        match self.next().cloned() {
            Some(Tok::Not) => Ok(QueryExpr::Not(Box::new(self.parse_unary()?))),
            Some(Tok::LParen) => {
                let inner = self.parse_or()?;
                match self.next() {
                    Some(Tok::RParen) => Ok(inner),
                    _ => Err(ParseError("expected ')'".into())),
                }
            }
            Some(Tok::Word(w)) => {
                let terms = (self.analyze)(&w);
                match terms.len() {
                    0 => Err(ParseError(format!("term {w:?} analyzes to nothing"))),
                    1 => Ok(QueryExpr::Term(terms.into_iter().next().expect("one"))),
                    _ => Ok(QueryExpr::Phrase(terms)),
                }
            }
            Some(Tok::Quoted(s)) => {
                let terms = (self.analyze)(&s);
                match terms.len() {
                    0 => Err(ParseError(format!("phrase {s:?} analyzes to nothing"))),
                    1 => Ok(QueryExpr::Term(terms.into_iter().next().expect("one"))),
                    _ => Ok(QueryExpr::Phrase(terms)),
                }
            }
            Some(Tok::And) | Some(Tok::Or) => Err(ParseError("operator needs operands".into())),
            Some(Tok::RParen) => Err(ParseError("unexpected ')'".into())),
            None => Err(ParseError("empty (sub)query".into())),
        }
    }
}

/// Parse `input` with the engine's analyzer applied to terms and phrases.
pub fn parse_query(
    input: &str,
    analyze: impl Fn(&str) -> Vec<String>,
) -> Result<QueryExpr, ParseError> {
    let toks = lex(input)?;
    if toks.is_empty() {
        return Err(ParseError("empty query".into()));
    }
    let mut p = Parser { toks: &toks, pos: 0, analyze: &analyze };
    let expr = p.parse_or()?;
    if p.pos != toks.len() {
        return Err(ParseError("trailing tokens".into()));
    }
    Ok(expr)
}

/// Matching documents of an expression: doc → positive BM25 mass.
pub(crate) type DocScores = HashMap<u32, f64>;

impl SearchEngine {
    /// Evaluate a structured query and return the top `k` hits.
    ///
    /// Returns `Err` on malformed query strings.
    ///
    /// Records the `index.search` stage, like [`SearchEngine::search`], so
    /// both entry points report consistently.
    pub fn search_expr(&self, query: &str, k: usize) -> Result<Vec<SearchHit>, ParseError> {
        let _span = self.metrics_search().span();
        let expr = parse_query(query, |s| self.analyze_text(s))?;
        let scores = self.eval_expr(&expr);
        let mut cands: Vec<(u32, f64)> = scores.into_iter().collect();
        cands.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        cands.truncate(k);
        // Use the raw (pre-structure) analyzed terms for snippets.
        let q_tokens = self.analyze_text(query);
        Ok(self.hits_from_scored(&cands, &q_tokens))
    }

    /// Recursively evaluate an expression to scored matching docs.
    pub(crate) fn eval_expr(&self, expr: &QueryExpr) -> DocScores {
        match expr {
            QueryExpr::Term(t) => self.term_docs(t),
            QueryExpr::Phrase(terms) => self.phrase_docs(terms),
            QueryExpr::Or(arms) => {
                let mut acc = DocScores::new();
                for arm in arms {
                    for (d, s) in self.eval_expr(arm) {
                        *acc.entry(d).or_insert(0.0) += s;
                    }
                }
                acc
            }
            QueryExpr::And(arms) => {
                // Positive arms intersect; Not arms subtract.
                let mut pos: Option<DocScores> = None;
                let mut negs: Vec<DocScores> = Vec::new();
                for arm in arms {
                    match arm {
                        QueryExpr::Not(inner) => negs.push(self.eval_expr(inner)),
                        _ => {
                            let m = self.eval_expr(arm);
                            pos = Some(match pos {
                                None => m,
                                Some(prev) => {
                                    let mut out = DocScores::new();
                                    for (d, s) in prev {
                                        if let Some(s2) = m.get(&d) {
                                            out.insert(d, s + s2);
                                        }
                                    }
                                    out
                                }
                            });
                        }
                    }
                }
                let mut out = pos.unwrap_or_default();
                for neg in negs {
                    out.retain(|d, _| !neg.contains_key(d));
                }
                out
            }
            // A bare NOT matches nothing on its own (we refuse to
            // materialize "every other document").
            QueryExpr::Not(_) => DocScores::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;
    use crate::search::StoredDoc;

    fn engine() -> SearchEngine {
        let mut b = IndexBuilder::new();
        b.add(StoredDoc::new(0, "u0", "Crab shack", "fresh lobster roll and seafood daily"));
        b.add(StoredDoc::new(1, "u1", "Roll call", "drum roll and lobster bisque tonight"));
        b.add(StoredDoc::new(2, "u2", "Phones", "android battery and screen repair"));
        b.add(StoredDoc::new(3, "u3", "Mixed", "seafood platter with android app ordering"));
        b.build()
    }

    #[test]
    fn parses_terms_and_operators() {
        let e = parse_query("a AND bb OR cc", |s| vec![s.to_string()]).unwrap();
        assert_eq!(
            e,
            QueryExpr::Or(vec![
                QueryExpr::And(vec![QueryExpr::Term("a".into()), QueryExpr::Term("bb".into())]),
                QueryExpr::Term("cc".into()),
            ])
        );
    }

    #[test]
    fn juxtaposition_is_or() {
        let e = parse_query("aa bb", |s| vec![s.to_string()]).unwrap();
        assert_eq!(e, QueryExpr::Or(vec![QueryExpr::Term("aa".into()), QueryExpr::Term("bb".into())]));
    }

    #[test]
    fn quoted_phrase_parses() {
        let e = parse_query("\"lobster roll\"", |s| {
            s.split(' ').map(|x| x.to_string()).collect()
        })
        .unwrap();
        assert_eq!(e, QueryExpr::Phrase(vec!["lobster".into(), "roll".into()]));
    }

    #[test]
    fn parse_errors() {
        let id = |s: &str| vec![s.to_string()];
        assert!(parse_query("", id).is_err());
        assert!(parse_query("\"unterminated", id).is_err());
        assert!(parse_query("(a", id).is_err());
        assert!(parse_query("a )", id).is_err());
        assert!(parse_query("AND", id).is_err());
    }

    #[test]
    fn phrase_requires_adjacency_in_order() {
        let e = engine();
        // "lobster roll" is adjacent in doc 0 only; doc 1 has "roll … lobster".
        let hits = e.search_expr("\"lobster roll\"", 10).unwrap();
        let docs: Vec<u32> = hits.iter().map(|h| h.doc).collect();
        assert_eq!(docs, vec![0]);
    }

    #[test]
    fn and_intersects() {
        let e = engine();
        let hits = e.search_expr("seafood AND android", 10).unwrap();
        let docs: Vec<u32> = hits.iter().map(|h| h.doc).collect();
        assert_eq!(docs, vec![3]);
    }

    #[test]
    fn or_unions() {
        let e = engine();
        let hits = e.search_expr("lobster OR android", 10).unwrap();
        let docs: Vec<u32> = hits.iter().map(|h| h.doc).collect();
        assert_eq!(docs.len(), 4);
    }

    #[test]
    fn not_excludes() {
        let e = engine();
        let hits = e.search_expr("seafood AND NOT android", 10).unwrap();
        let docs: Vec<u32> = hits.iter().map(|h| h.doc).collect();
        assert_eq!(docs, vec![0]);
    }

    #[test]
    fn bare_not_matches_nothing() {
        let e = engine();
        assert!(e.search_expr("NOT seafood", 10).unwrap().is_empty());
    }

    #[test]
    fn parens_group() {
        let e = engine();
        let hits = e.search_expr("(lobster OR android) AND seafood", 10).unwrap();
        let mut docs: Vec<u32> = hits.iter().map(|h| h.doc).collect();
        docs.sort_unstable();
        assert_eq!(docs, vec![0, 3]);
    }

    #[test]
    fn bag_of_words_expr_matches_plain_search_docs() {
        let e = engine();
        let expr_hits = e.search_expr("seafood lobster", 10).unwrap();
        let plain_hits = e.search("seafood lobster", 10);
        let a: std::collections::HashSet<u32> = expr_hits.iter().map(|h| h.doc).collect();
        let b: std::collections::HashSet<u32> = plain_hits.iter().map(|h| h.doc).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn multiword_bare_token_with_stemming() {
        // A bare word that analyzes to one token goes through Term.
        let e = engine();
        let hits = e.search_expr("rolls", 10).unwrap();
        assert!(!hits.is_empty(), "stemmed 'rolls' should match 'roll'");
    }
}
