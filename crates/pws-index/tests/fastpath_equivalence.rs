//! Property tests gating the retrieval fast paths.
//!
//! `SearchEngine::search` (document-at-a-time, bounded top-k heap, MaxScore
//! pruning) must return *exactly* what the exhaustive reference scorer
//! `SearchEngine::search_naive` returns on any corpus and query: same docs,
//! same order, same ranks, bitwise-equal scores. This includes score ties
//! (broken by ascending doc id) interacting with the heap bound `k`.
//!
//! The same gate applies to the segmented on-disk backend:
//! `SegmentedIndex::search` (Block-Max WAND over block-compressed
//! postings) must be bit-identical to `search_naive` on the same corpus,
//! for every way of splitting the corpus into segments.

use proptest::prelude::*;
use pws_index::{IndexBuilder, SearchEngine, SegmentBuilder, SegmentedIndex, StoredDoc};
use std::collections::HashMap;

/// Non-stopword vocabulary; stems are distinct so analysis keeps them apart.
const VOCAB: &[&str] = &[
    "lobster", "seafood", "harbor", "android", "battery", "camera", "hotel",
    "booking", "oyster", "sushi", "guide", "menu", "special", "fresh",
    "downtown", "airport", "museum", "garden", "bridge", "festival",
    "market", "station", "library", "castle", "river",
];

/// Tiny vocabulary: with few distinct words and short docs, duplicate
/// documents — and therefore exact BM25 score ties — are common.
const TIE_VOCAB: &[&str] = &["lobster", "seafood", "harbor", "android"];

fn build(doc_words: &[Vec<&str>]) -> SearchEngine {
    let mut b = IndexBuilder::new();
    for (i, words) in doc_words.iter().enumerate() {
        let body = words.join(" ");
        b.add(StoredDoc::new(i as u32, &format!("http://t.test/{i}"), "doc", &body));
    }
    b.build()
}

fn assert_fast_matches_naive(e: &SearchEngine, query: &str, k: usize) {
    let fast = e.search(query, k);
    let naive = e.search_naive(query, k);
    assert_eq!(fast.len(), naive.len(), "length mismatch for {query:?} k={k}");
    for (f, n) in fast.iter().zip(&naive) {
        assert_eq!(f.doc, n.doc, "doc order mismatch for {query:?} k={k}");
        assert_eq!(
            f.score.to_bits(),
            n.score.to_bits(),
            "score not bitwise equal for {query:?} k={k} doc={}",
            f.doc
        );
        assert_eq!(f.rank, n.rank);
        assert_eq!(f.url, n.url);
        assert_eq!(f.title, n.title);
        assert_eq!(f.snippet, n.snippet);
    }
}

/// Build a segmented index over the same docs as [`build`], split into
/// `num_segments` contiguous chunks.
fn build_segmented(doc_words: &[Vec<&str>], num_segments: usize) -> SegmentedIndex {
    let per = doc_words.len().div_ceil(num_segments.max(1)).max(1);
    let mut built = Vec::new();
    let mut next_id = 0usize;
    for chunk in doc_words.chunks(per) {
        let mut b = SegmentBuilder::new(Default::default());
        for words in chunk {
            b.add(&format!("http://t.test/{next_id}"), "doc", &words.join(" "));
            next_id += 1;
        }
        built.push(b.finish_segment().expect("segment build"));
    }
    SegmentedIndex::from_segments(built).expect("segmented index")
}

fn assert_bmw_matches_naive(
    e: &SearchEngine,
    seg: &SegmentedIndex,
    query: &str,
    k: usize,
) -> Result<(), TestCaseError> {
    let bmw = seg.search(query, k);
    let naive = e.search_naive(query, k);
    prop_assert_eq!(bmw.len(), naive.len(), "length mismatch for {:?} k={}", query, k);
    for (b, n) in bmw.iter().zip(&naive) {
        prop_assert_eq!(b.doc, n.doc, "doc order mismatch for {:?} k={}", query, k);
        prop_assert_eq!(
            b.score.to_bits(),
            n.score.to_bits(),
            "score not bitwise equal for {:?} k={} doc={}",
            query,
            k,
            b.doc
        );
        prop_assert_eq!(b.rank, n.rank);
        prop_assert_eq!(&b.url, &n.url);
        prop_assert_eq!(&b.title, &n.title);
        prop_assert_eq!(&b.snippet, &n.snippet);
    }
    Ok(())
}

fn vocab_strategy(
    vocab: &'static [&'static str],
    max_doc_words: usize,
    max_docs: usize,
) -> impl Strategy<Value = Vec<Vec<&'static str>>> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::sample::select(vocab.to_vec()), 1..max_doc_words),
        1..max_docs,
    )
}

proptest! {
    #[test]
    fn heap_topk_equals_exhaustive_topk(
        doc_words in vocab_strategy(VOCAB, 30, 50),
        query_words in proptest::collection::vec(proptest::sample::select(VOCAB.to_vec()), 1..6),
        k in 1usize..20,
    ) {
        let e = build(&doc_words);
        let query = query_words.join(" ");
        assert_fast_matches_naive(&e, &query, k);
        // Also at k = 1 and an effectively unbounded k (no pruning).
        assert_fast_matches_naive(&e, &query, 1);
        assert_fast_matches_naive(&e, &query, doc_words.len() + 5);
    }

    #[test]
    fn heap_topk_handles_ties_on_score(
        doc_words in vocab_strategy(TIE_VOCAB, 4, 40),
        query_words in proptest::collection::vec(proptest::sample::select(TIE_VOCAB.to_vec()), 1..4),
        k in 1usize..8,
    ) {
        // Many duplicate docs → many exact ties; the heap must keep the
        // ascending-doc-id prefix of each tied group exactly like the
        // exhaustive sort does.
        let e = build(&doc_words);
        let query = query_words.join(" ");
        assert_fast_matches_naive(&e, &query, k);
    }

    #[test]
    fn duplicate_query_terms_and_unknowns_match(
        doc_words in vocab_strategy(VOCAB, 20, 30),
        base in proptest::sample::select(VOCAB.to_vec()),
        extra in proptest::sample::select(VOCAB.to_vec()),
        k in 1usize..12,
    ) {
        let e = build(&doc_words);
        // Duplicated terms (each occurrence contributes) and an unindexed
        // term (must be ignored identically by both paths).
        let query = format!("{base} {extra} {base} zzzunknownzzz {base}");
        assert_fast_matches_naive(&e, &query, k);
    }

    #[test]
    fn block_max_wand_equals_exhaustive_topk(
        doc_words in vocab_strategy(VOCAB, 30, 50),
        query_words in proptest::collection::vec(proptest::sample::select(VOCAB.to_vec()), 1..6),
        k in 1usize..20,
        num_segments in 1usize..5,
    ) {
        // The segmented backend's Block-Max WAND must reproduce the
        // exhaustive scorer exactly, however the corpus is segmented.
        let e = build(&doc_words);
        let seg = build_segmented(&doc_words, num_segments);
        let query = query_words.join(" ");
        assert_bmw_matches_naive(&e, &seg, &query, k)?;
        assert_bmw_matches_naive(&e, &seg, &query, 1)?;
        assert_bmw_matches_naive(&e, &seg, &query, doc_words.len() + 5)?;
    }

    #[test]
    fn block_max_wand_handles_ties_on_score(
        doc_words in vocab_strategy(TIE_VOCAB, 4, 40),
        query_words in proptest::collection::vec(proptest::sample::select(TIE_VOCAB.to_vec()), 1..4),
        k in 1usize..8,
        num_segments in 1usize..4,
    ) {
        // Duplicate docs → exact BM25 ties; BMW's θ-pruning (`bound ≤ θ`
        // skips) must keep the ascending-doc-id prefix of each tied group
        // exactly like the exhaustive sort, across segment boundaries.
        let e = build(&doc_words);
        let seg = build_segmented(&doc_words, num_segments);
        let query = query_words.join(" ");
        assert_bmw_matches_naive(&e, &seg, &query, k)?;
    }

    #[test]
    fn score_docs_merge_matches_naive_accumulation(
        doc_words in vocab_strategy(VOCAB, 20, 30),
        query_words in proptest::collection::vec(proptest::sample::select(VOCAB.to_vec()), 1..5),
        k in 1usize..12,
    ) {
        let e = build(&doc_words);
        let query = query_words.join(" ");
        // Reference: per-doc scores from the exhaustive scorer's full result.
        let all = e.search_naive(&query, doc_words.len() + 5);
        let by_doc: HashMap<u32, f64> = all.iter().map(|h| (h.doc, h.score)).collect();
        let asked: Vec<u32> = (0..doc_words.len() as u32).rev().take(k).collect();
        let scores = e.score_docs(&query, &asked);
        for (d, s) in asked.iter().zip(&scores) {
            let expect = by_doc.get(d).copied().unwrap_or(0.0);
            prop_assert_eq!(
                s.to_bits(),
                expect.to_bits(),
                "score_docs mismatch for doc {} on {:?}", d, &query
            );
        }
    }
}
