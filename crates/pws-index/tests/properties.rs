//! Property tests for the search engine: retrieval correctness against a
//! brute-force oracle, persistence round-trips, and structured-query laws.

use proptest::prelude::*;
use pws_index::{IndexBuilder, SearchEngine, StoredDoc};

/// A tiny controlled vocabulary so collisions (shared terms) are common.
fn word() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec![
        "seafood", "lobster", "sushi", "hotel", "booking", "android", "battery", "stadium",
        "coach", "clinic", "rental", "campus", "guitar", "sedan", "savings", "forecast",
    ])
}

fn body() -> impl Strategy<Value = String> {
    prop::collection::vec(word(), 3..25).prop_map(|ws| ws.join(" "))
}

fn corpus() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(body(), 1..25)
}

fn build(bodies: &[String]) -> SearchEngine {
    let mut b = IndexBuilder::new();
    for (i, body) in bodies.iter().enumerate() {
        b.add(StoredDoc::new(i as u32, &format!("http://d{i}.test/"), "title", body));
    }
    b.build()
}

/// Brute-force: docs containing at least one query term.
fn oracle_matches(bodies: &[String], terms: &[&str]) -> std::collections::HashSet<u32> {
    bodies
        .iter()
        .enumerate()
        .filter(|(_, b)| {
            let toks: Vec<&str> = b.split(' ').collect();
            terms.iter().any(|t| toks.contains(t))
        })
        .map(|(i, _)| i as u32)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The engine returns exactly the docs containing ≥1 query term
    /// (no stemming surprises: the vocabulary is fixed and stem-stable
    /// modulo known transformations, so we compare through the engine's
    /// own analyzed view via document frequency).
    #[test]
    fn retrieval_matches_brute_force(bodies in corpus(), q1 in word(), q2 in word()) {
        let e = build(&bodies);
        let query = format!("{q1} {q2}");
        let hits = e.search(&query, bodies.len() + 5);
        let got: std::collections::HashSet<u32> = hits.iter().map(|h| h.doc).collect();

        // Build the oracle through the same stemmer by matching stems.
        let s1 = pws_text::porter_stem(q1);
        let s2 = pws_text::porter_stem(q2);
        let stemmed_bodies: Vec<String> = bodies
            .iter()
            .map(|b| {
                b.split(' ')
                    .map(pws_text::porter_stem)
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        let want = oracle_matches(&stemmed_bodies, &[&s1, &s2]);
        prop_assert_eq!(got, want);
    }

    /// Scores are positive, finite, and descending; ranks are dense.
    #[test]
    fn hit_list_is_well_formed(bodies in corpus(), q in word()) {
        let e = build(&bodies);
        let hits = e.search(q, 10);
        for (i, h) in hits.iter().enumerate() {
            prop_assert_eq!(h.rank, i + 1);
            prop_assert!(h.score.is_finite() && h.score > 0.0);
        }
        for w in hits.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
    }

    /// Persistence: serialize ∘ deserialize is the identity on behaviour.
    #[test]
    fn persistence_round_trip(bodies in corpus(), q in word()) {
        let e = build(&bodies);
        let e2 = SearchEngine::deserialize(&e.serialize()).expect("round trip");
        let a = e.search(q, 10);
        let b = e2.search(q, 10);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.doc, y.doc);
            prop_assert!((x.score - y.score).abs() < 1e-12);
        }
    }

    /// Structured queries: `a AND b` ⊆ `a` ∩ `b`-matches; `a OR b` equals
    /// the union of singleton matches.
    #[test]
    fn boolean_query_set_laws(bodies in corpus(), a in word(), b in word()) {
        let e = build(&bodies);
        let k = bodies.len() + 5;
        let docs = |hits: Vec<pws_index::SearchHit>| -> std::collections::HashSet<u32> {
            hits.into_iter().map(|h| h.doc).collect()
        };
        let da = docs(e.search_expr(a, k).unwrap());
        let db = docs(e.search_expr(b, k).unwrap());
        let dand = docs(e.search_expr(&format!("{a} AND {b}"), k).unwrap());
        let dor = docs(e.search_expr(&format!("{a} OR {b}"), k).unwrap());
        let dnot = docs(e.search_expr(&format!("{a} AND NOT {b}"), k).unwrap());

        prop_assert_eq!(dand.clone(), da.intersection(&db).copied().collect());
        prop_assert_eq!(dor, da.union(&db).copied().collect());
        prop_assert_eq!(dnot, da.difference(&db).copied().collect());
    }

    /// A phrase query is always a subset of the AND of its terms.
    #[test]
    fn phrase_subset_of_and(bodies in corpus(), a in word(), b in word()) {
        let e = build(&bodies);
        let k = bodies.len() + 5;
        let phrase: std::collections::HashSet<u32> = e
            .search_expr(&format!("\"{a} {b}\""), k)
            .unwrap()
            .into_iter()
            .map(|h| h.doc)
            .collect();
        let conj: std::collections::HashSet<u32> = e
            .search_expr(&format!("{a} AND {b}"), k)
            .unwrap()
            .into_iter()
            .map(|h| h.doc)
            .collect();
        prop_assert!(phrase.is_subset(&conj), "{phrase:?} ⊄ {conj:?}");
        // Oracle: the phrase must appear verbatim in matched bodies (the
        // fixed vocabulary is stem-stable only per-word; compare stems).
        let sa = pws_text::porter_stem(a);
        let sb = pws_text::porter_stem(b);
        for &d in &phrase {
            let stemmed: Vec<String> =
                bodies[d as usize].split(' ').map(pws_text::porter_stem).collect();
            let adjacent = stemmed.windows(2).any(|w| w[0] == sa && w[1] == sb);
            prop_assert!(adjacent, "doc {d} lacks adjacent {sa} {sb}");
        }
    }

    /// score_docs agrees with search on every returned hit.
    #[test]
    fn score_docs_consistent(bodies in corpus(), q in word()) {
        let e = build(&bodies);
        let hits = e.search(q, bodies.len() + 5);
        let ids: Vec<u32> = hits.iter().map(|h| h.doc).collect();
        let scores = e.score_docs(q, &ids);
        for (h, s) in hits.iter().zip(&scores) {
            prop_assert!((h.score - s).abs() < 1e-9);
        }
    }
}
