//! Property tests for segment persistence (task: storage durability).
//!
//! Three guarantees, for *arbitrary* corpora:
//!
//! 1. **Round trip** — build → serialize → load → search is bit-identical
//!    to the in-memory [`SearchEngine`] over the same documents: same
//!    docs, order, ranks, urls, titles, snippets, and bitwise-equal
//!    scores, for any segmentation of the corpus.
//! 2. **Durability** — corrupted (any single byte flipped), truncated
//!    (any prefix), or wrong-version files fail to load with a typed
//!    [`SegmentError`], never a panic.
//! 3. **Merge** — merging segments preserves search results bit-for-bit.

use proptest::prelude::*;
use pws_index::{
    IndexBuilder, SearchEngine, Segment, SegmentBuilder, SegmentError, SegmentedIndex, StoredDoc,
    FORMAT_VERSION,
};

const VOCAB: &[&str] = &[
    "lobster", "seafood", "harbor", "android", "battery", "camera", "hotel", "booking", "oyster",
    "sushi", "guide", "menu", "special", "fresh", "downtown", "airport", "museum", "garden",
];

fn build_engine(doc_words: &[Vec<&str>]) -> SearchEngine {
    let mut b = IndexBuilder::new();
    for (i, words) in doc_words.iter().enumerate() {
        b.add(StoredDoc::new(i as u32, &format!("http://t.test/{i}"), "doc", &words.join(" ")));
    }
    b.build()
}

/// Serialize each chunk with [`SegmentBuilder::finish`], reload the raw
/// bytes with [`Segment::load_bytes`], and assemble a [`SegmentedIndex`]
/// — the full persistence round trip minus the filesystem.
fn round_trip_segmented(doc_words: &[Vec<&str>], num_segments: usize) -> SegmentedIndex {
    let per = doc_words.len().div_ceil(num_segments.max(1)).max(1);
    let mut segments = Vec::new();
    let mut next_id = 0usize;
    for chunk in doc_words.chunks(per) {
        let mut b = SegmentBuilder::new(Default::default());
        for words in chunk {
            b.add(&format!("http://t.test/{next_id}"), "doc", &words.join(" "));
            next_id += 1;
        }
        let bytes = b.finish();
        segments.push(Segment::load_bytes(bytes).expect("reload serialized segment"));
    }
    SegmentedIndex::from_segments(segments).expect("assemble segmented index")
}

fn one_segment_bytes(doc_words: &[Vec<&str>]) -> Vec<u8> {
    let mut b = SegmentBuilder::new(Default::default());
    for (i, words) in doc_words.iter().enumerate() {
        b.add(&format!("http://t.test/{i}"), "doc", &words.join(" "));
    }
    b.finish()
}

fn assert_hits_identical(
    got: &[pws_index::SearchHit],
    want: &[pws_index::SearchHit],
    ctx: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.len(), want.len(), "length mismatch: {}", ctx);
    for (g, w) in got.iter().zip(want) {
        prop_assert_eq!(g.doc, w.doc, "doc mismatch: {}", ctx);
        prop_assert_eq!(
            g.score.to_bits(),
            w.score.to_bits(),
            "score not bitwise equal: {} doc={}",
            ctx,
            g.doc
        );
        prop_assert_eq!(g.rank, w.rank);
        prop_assert_eq!(&g.url, &w.url);
        prop_assert_eq!(&g.title, &w.title);
        prop_assert_eq!(&g.snippet, &w.snippet);
    }
    Ok(())
}

fn docs_strategy() -> impl Strategy<Value = Vec<Vec<&'static str>>> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::sample::select(VOCAB.to_vec()), 1..25),
        1..40,
    )
}

proptest! {
    /// Round trip: serialized-and-reloaded segments answer queries
    /// bit-identically to the in-memory engine, under any segmentation.
    #[test]
    fn round_trip_search_is_bit_identical(
        doc_words in docs_strategy(),
        query_words in proptest::collection::vec(proptest::sample::select(VOCAB.to_vec()), 1..5),
        k in 1usize..15,
        num_segments in 1usize..5,
    ) {
        let engine = build_engine(&doc_words);
        let seg = round_trip_segmented(&doc_words, num_segments);
        let query = query_words.join(" ");
        let ctx = format!("{query:?} k={k} segs={num_segments}");
        assert_hits_identical(&seg.search(&query, k), &engine.search_naive(&query, k), &ctx)?;
        // Pre-analyzed entry point and per-doc rescoring agree too.
        let toks = engine.analyze_text(&query);
        assert_hits_identical(&seg.search_tokens(&toks, k), &engine.search_tokens(&toks, k), &ctx)?;
        let asked: Vec<u32> = (0..doc_words.len() as u32).collect();
        let got = seg.score_docs(&query, &asked);
        let want = engine.score_docs(&query, &asked);
        for (d, (g, w)) in asked.iter().zip(got.iter().zip(&want)) {
            prop_assert_eq!(g.to_bits(), w.to_bits(), "score_docs mismatch doc {} ({})", d, &ctx);
        }
    }

    /// Merging all segments into one preserves results bit-for-bit.
    #[test]
    fn merge_preserves_search_results(
        doc_words in docs_strategy(),
        query_words in proptest::collection::vec(proptest::sample::select(VOCAB.to_vec()), 1..4),
        k in 1usize..12,
        num_segments in 2usize..5,
    ) {
        let multi = round_trip_segmented(&doc_words, num_segments);
        let merged = Segment::merge(&multi.segments().iter().collect::<Vec<_>>())
            .expect("merge");
        // The merged segment survives its own serialize→load round trip.
        let merged = Segment::load_bytes(merged.file_bytes().to_vec()).expect("reload merged");
        let single = SegmentedIndex::from_segments(vec![merged]).expect("single-segment index");
        let query = query_words.join(" ");
        let ctx = format!("{query:?} k={k} segs={num_segments} (merged)");
        assert_hits_identical(&single.search(&query, k), &multi.search(&query, k), &ctx)?;
    }

    /// Any prefix of a valid segment file fails to load with a typed
    /// error — and never panics.
    #[test]
    fn truncated_files_fail_with_typed_error(
        doc_words in docs_strategy(),
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = one_segment_bytes(&doc_words);
        let cut = ((bytes.len() as f64) * cut_frac) as usize; // < len since cut_frac < 1
        let got = Segment::load_bytes(bytes[..cut].to_vec());
        prop_assert!(got.is_err(), "truncated prefix {} of {} loaded", cut, bytes.len());
    }

    /// Any single flipped byte fails to load with a typed error — every
    /// byte of the file is covered by field validation or a section
    /// checksum — and never panics.
    #[test]
    fn corrupted_files_fail_with_typed_error(
        doc_words in docs_strategy(),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut bytes = one_segment_bytes(&doc_words);
        let pos = ((bytes.len() as f64) * pos_frac) as usize % bytes.len();
        bytes[pos] ^= flip;
        let got = Segment::load_bytes(bytes);
        prop_assert!(got.is_err(), "flip {:#04x} at byte {} loaded", flip, pos);
    }
}

/// Exhaustive single-byte corruption sweep on one small fixture segment:
/// every position, the strongest form of the property above.
#[test]
fn every_single_byte_flip_is_detected() {
    let doc_words: Vec<Vec<&str>> =
        vec![vec!["lobster", "seafood"], vec!["harbor", "lobster", "menu"], vec!["sushi"]];
    let bytes = one_segment_bytes(&doc_words);
    for pos in 0..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0xA5;
        assert!(
            Segment::load_bytes(corrupt).is_err(),
            "byte flip at {pos}/{} loaded successfully",
            bytes.len()
        );
    }
}

/// A file claiming a future format version is rejected up front with
/// [`SegmentError::UnsupportedVersion`] — not misparsed.
#[test]
fn future_version_is_rejected_with_typed_error() {
    let mut bytes = one_segment_bytes(&[vec!["lobster"]]);
    let future = FORMAT_VERSION + 1;
    bytes[8..12].copy_from_slice(&future.to_le_bytes());
    assert_eq!(
        Segment::load_bytes(bytes).err(),
        Some(SegmentError::UnsupportedVersion(future))
    );
}

/// A non-segment file is rejected with [`SegmentError::BadMagic`].
#[test]
fn non_segment_file_is_rejected() {
    assert_eq!(
        Segment::load_bytes(b"definitely not a segment".to_vec()).err(),
        Some(SegmentError::BadMagic)
    );
}

/// Full filesystem round trip: write_file → open → identical results.
#[test]
fn write_file_open_round_trip() {
    let doc_words: Vec<Vec<&str>> =
        vec![vec!["lobster", "seafood", "menu"], vec!["harbor", "hotel"], vec!["sushi", "fresh"]];
    let engine = build_engine(&doc_words);
    let mut b = SegmentBuilder::new(Default::default());
    for (i, words) in doc_words.iter().enumerate() {
        b.add(&format!("http://t.test/{i}"), "doc", &words.join(" "));
    }
    let seg = b.finish_segment().expect("build");
    let dir = std::env::temp_dir().join(format!("pws-roundtrip-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("seg-0.pws");
    seg.write_file(&path).expect("write");
    let reopened = Segment::open(&path).expect("open");
    let idx = SegmentedIndex::from_segments(vec![reopened]).expect("index");
    for (query, k) in [("lobster seafood", 3), ("sushi", 1), ("harbor hotel fresh", 5)] {
        let got = idx.search(query, k);
        let want = engine.search_naive(query, k);
        assert_eq!(got.len(), want.len(), "{query}");
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.doc, w.doc, "{query}");
            assert_eq!(g.score.to_bits(), w.score.to_bits(), "{query}");
            assert_eq!(g.snippet, w.snippet, "{query}");
        }
    }
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}

/// Opening a missing path is a typed I/O error, not a panic.
#[test]
fn open_missing_path_is_io_error() {
    let err = Segment::open("/nonexistent/pws-segment-xyz.pws").unwrap_err();
    assert!(matches!(err, SegmentError::Io(_)), "got {err:?}");
}
