//! Cross-thread-count determinism of the experiment pipeline.
//!
//! The `experiments` binary's `--threads N` flag must never change the
//! bytes of `results/f*.json` / `results/t*.json`. These tests exercise
//! the same code path the binary uses (experiment function → serde_json)
//! at small scale and assert the serialized reports are byte-identical
//! with 1 and 4 worker threads.

use pws_eval::experiments::{self as exp, Protocol};
use pws_eval::{set_eval_threads, ExperimentSpec, ExperimentWorld};
use serde::Serialize;

fn json<T: Serialize>(v: &T) -> String {
    serde_json::to_string_pretty(v).expect("report serializes")
}

/// Render a report with 1 thread, then with 4, and compare bytes.
fn assert_thread_invariant<T: Serialize>(label: &str, mut run: impl FnMut() -> T) {
    set_eval_threads(1);
    let serial = json(&run());
    set_eval_threads(4);
    let parallel = json(&run());
    set_eval_threads(1);
    assert_eq!(serial, parallel, "{label}: thread count changed report bytes");
}

#[test]
fn t3_method_comparison_is_thread_invariant() {
    let world = ExperimentWorld::build(ExperimentSpec::small());
    let proto = Protocol::quick();
    assert_thread_invariant("t3", || exp::t3_method_comparison(&world, &proto));
}

#[test]
fn f4_entropy_analysis_is_thread_invariant() {
    // F4 is the interesting one: it merges per-user QueryStats shards and
    // tercile-buckets queries by entropy (ties broken by QueryId).
    let world = ExperimentWorld::build(ExperimentSpec::small());
    let proto = Protocol::quick();
    assert_thread_invariant("f4", || exp::f4_entropy_analysis(&world, &proto));
}

#[test]
fn f6_cold_start_is_thread_invariant() {
    let world = ExperimentWorld::build(ExperimentSpec::small());
    let proto = Protocol::quick();
    assert_thread_invariant("f6", || exp::f6_cold_start(&world, &proto, 4));
}

#[test]
fn f10_session_adaptation_is_thread_invariant() {
    let world = ExperimentWorld::build(ExperimentSpec::small());
    let proto = Protocol::quick();
    assert_thread_invariant("f10", || exp::f10_session_adaptation(&world, &proto, 2));
}
