//! Experiment-world construction: one spec → world + corpus + users +
//! queries + baseline index, all seeded.

use pws_click::{UserGen, UserPopulation, UserSpec};
use pws_corpus::{Corpus, CorpusGen, CorpusSpec, Query, QueryGen, QuerySpec};
use pws_geo::{LocationOntology, WorldGen, WorldSpec};
use pws_index::{IndexBuilder, SearchEngine, StoredDoc};

/// Everything that defines an experimental universe.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Master seed; sub-seeds are derived deterministically.
    pub seed: u64,
    /// Gazetteer shape.
    pub world: WorldSpec,
    /// Corpus shape.
    pub corpus: CorpusSpec,
    /// User population shape.
    pub users: UserSpec,
    /// Query workload shape.
    pub queries: QuerySpec,
}

impl ExperimentSpec {
    /// The paper-default setup (T1): 144 cities, 8k docs, 60 users,
    /// 120 query templates over 12 topics.
    pub fn default_paper() -> Self {
        ExperimentSpec {
            seed: 42,
            world: WorldSpec::default_world(),
            corpus: CorpusSpec::default_corpus(),
            users: UserSpec::default_population(),
            queries: QuerySpec::default_workload(),
        }
    }

    /// A small setup for tests and doc examples (fast in debug builds).
    pub fn small() -> Self {
        ExperimentSpec {
            seed: 42,
            world: WorldSpec::small(),
            corpus: CorpusSpec::small(),
            users: UserSpec::small(),
            queries: QuerySpec::small(),
        }
    }

    /// Same spec, different master seed (for repetition studies).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The fully built universe.
pub struct ExperimentWorld {
    /// The spec this world was built from.
    pub spec: ExperimentSpec,
    /// Location ontology.
    pub world: LocationOntology,
    /// Document corpus.
    pub corpus: Corpus,
    /// User population.
    pub population: UserPopulation,
    /// Query workload templates.
    pub queries: Vec<Query>,
    /// Baseline search engine over the corpus.
    pub engine: SearchEngine,
}

impl ExperimentWorld {
    /// Build the universe. Deterministic in `spec`.
    pub fn build(spec: ExperimentSpec) -> Self {
        let world = WorldGen::new(spec.seed).generate(&spec.world);
        let corpus = CorpusGen::new(spec.seed.wrapping_add(1)).generate(&spec.corpus, &world);
        let population =
            UserGen::new(spec.seed.wrapping_add(2)).generate(&spec.users, &world);
        let queries = QueryGen::new(spec.seed.wrapping_add(3)).generate(&spec.queries);

        let mut builder = IndexBuilder::new();
        for d in &corpus.docs {
            builder.add(StoredDoc::new(d.id.0, &d.url, &d.title, &d.body));
        }
        let engine = builder.build();

        ExperimentWorld { spec, world, corpus, population, queries, engine }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_world_builds_consistently() {
        let w = ExperimentWorld::build(ExperimentSpec::small());
        assert_eq!(w.engine.doc_count() as usize, w.corpus.len());
        assert_eq!(w.population.len(), w.spec.users.num_users);
        assert_eq!(w.queries.len(), w.spec.queries.num_queries);
        assert!(w.world.cities().count() > 0);
    }

    #[test]
    fn deterministic_build() {
        let a = ExperimentWorld::build(ExperimentSpec::small());
        let b = ExperimentWorld::build(ExperimentSpec::small());
        assert_eq!(a.corpus.docs.len(), b.corpus.docs.len());
        assert_eq!(a.corpus.docs[0].body, b.corpus.docs[0].body);
        assert_eq!(a.queries[0].text, b.queries[0].text);
    }

    #[test]
    fn with_seed_changes_universe() {
        let a = ExperimentWorld::build(ExperimentSpec::small());
        let b = ExperimentWorld::build(ExperimentSpec::small().with_seed(7));
        assert_ne!(a.corpus.docs[0].body, b.corpus.docs[0].body);
    }

    #[test]
    fn baseline_engine_answers_workload_queries() {
        let w = ExperimentWorld::build(ExperimentSpec::small());
        let answered = w
            .queries
            .iter()
            .filter(|q| !w.engine.search(&q.text, 10).is_empty())
            .count();
        // Every template is built from corpus topic vocabulary, so nearly
        // all should retrieve something.
        assert!(answered * 10 >= w.queries.len() * 9, "{answered}/{}", w.queries.len());
    }
}
