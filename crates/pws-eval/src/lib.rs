//! # pws-eval — metrics, experiment harness, and the paper's evaluation
//!
//! Reproduces every table and figure of the evaluation (see DESIGN.md §5):
//!
//! | Id | Function | What it shows |
//! |----|----------|---------------|
//! | T1 | [`experiments::t1_dataset_stats`] | dataset & ontology statistics |
//! | T2 | [`experiments::t2_sample_concepts`] | extracted concepts for sample queries |
//! | T3 | [`experiments::t3_method_comparison`] | baseline vs content vs location vs combined |
//! | F1 | [`experiments::f1_learning_curve`] | quality vs training interactions |
//! | F2 | [`experiments::f2_topn_precision`] | P@1/3/5/10 per method |
//! | F3 | [`experiments::f3_support_threshold_sweep`] | concept support threshold sweep |
//! | F4 | [`experiments::f4_entropy_analysis`] | gain vs location click-entropy bucket |
//! | F5 | [`experiments::f5_blend_sweep`] | fixed β sweep vs adaptive β |
//! | F6 | [`experiments::f6_cold_start`] | per-interaction quality for new users |
//! | F7 | [`experiments::f7_ablations`] | GCS / rollup / augmentation / skip / SpyNB ablations |
//! | T5 | [`experiments::t5_class_breakdown`] | gains per query class |
//! | F8 | [`experiments::f8_noise_robustness`] | gains vs click-noise level |
//! | F9 | [`experiments::f9_click_model_robustness`] | gains under 3 click models |
//! | F10 | [`experiments::f10_session_adaptation`] | quality by refinement step within sessions |
//!
//! The shared machinery:
//!
//! * [`setup::ExperimentWorld`] — builds world, corpus, users, queries, and
//!   the baseline index from one seeded [`setup::ExperimentSpec`];
//! * [`harness::run_method`] — the train-then-evaluate protocol for one
//!   engine configuration;
//! * [`metrics`] — average rank, P@N, MRR, nDCG over latent grades.

pub mod experiments;
pub mod harness;
pub mod metrics;
pub mod setup;

pub use harness::{
    eval_backend, eval_threads, replay_users, run_method, run_methods_parallel, set_eval_backend,
    set_eval_threads, user_seed, ClickModelKind, EvalBackend, MethodResult, RunConfig,
};
pub use metrics::{ndcg_at, precision_at, IssueMetrics, MetricAccumulator};
pub use setup::{ExperimentSpec, ExperimentWorld};
