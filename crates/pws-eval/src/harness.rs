//! The train-then-evaluate protocol.
//!
//! For each user: `train_per_user` interactions in which the engine serves
//! a (personalized) page, the simulated user clicks, and the engine
//! observes; then `eval_per_user` interactions whose pages are scored
//! against the latent grades. This mirrors the paper's protocol of
//! collecting clickthrough for a training period and judging the re-ranked
//! results afterwards.
//!
//! # Sharded replay
//!
//! Users are replayed independently: each user gets a fresh engine and a
//! fresh simulator seeded from [`user_seed`]`(cfg.seed, user_idx)`, so no
//! state (engine profiles, RNG stream) crosses user boundaries. That makes
//! the per-user replays embarrassingly parallel — [`run_method`] shards
//! them across [`eval_threads`] scoped threads and merges results in
//! ascending user order, so the output is **bit-identical for every thread
//! count** (including 1). See `EXPERIMENTS.md` for the determinism
//! argument.

use crate::metrics::{IssueMetrics, MetricAccumulator};
use crate::setup::ExperimentWorld;
use pws_click::{CascadeModel, ClickModel, DbnModel, PositionBiasModel, SessionSimulator, SimConfig, UserId};
use pws_core::{EngineConfig, PersonalizedSearchEngine};
use pws_corpus::query::QueryId;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker-thread count used by [`replay_users`] (and thus every
/// experiment). Global rather than a `RunConfig`/`Protocol` field so the
/// many existing struct literals stay valid; results never depend on it.
static EVAL_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Set the number of worker threads used to replay users. Values are
/// clamped to at least 1. Thread count never changes results — only
/// wall-clock time.
pub fn set_eval_threads(n: usize) {
    EVAL_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// Current worker-thread count for user replay.
pub fn eval_threads() -> usize {
    EVAL_THREADS.load(Ordering::Relaxed).max(1)
}

/// Which engine frontend replays each user.
///
/// Results are backend-invariant: both frontends drive the same
/// `EngineCore`, and a per-user `ServingEngine` with
/// `stats_refresh_every = 1` sees exactly the statistics a serial
/// engine would (pinned by `pws-serve`'s replay-equivalence tests and
/// this module's `backends_produce_identical_results` test). The sharded backend
/// exists to exercise the production serving path under the full
/// evaluation workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalBackend {
    /// The serial `PersonalizedSearchEngine` (default).
    #[default]
    Serial,
    /// The concurrent `pws-serve::ServingEngine` with this many user
    /// shards (clamped to ≥ 1).
    Sharded {
        /// User-shard count for the serving engine.
        shards: usize,
    },
}

/// Backend used by [`replay_users`]' per-user engines. Encoded in one
/// atomic (0 = serial, n > 0 = sharded with n shards) for the same
/// reason [`EVAL_THREADS`] is global: the many existing `RunConfig`
/// literals stay valid, and results never depend on it.
static EVAL_BACKEND: AtomicUsize = AtomicUsize::new(0);

/// Select the engine frontend for subsequent runs.
pub fn set_eval_backend(backend: EvalBackend) {
    let encoded = match backend {
        EvalBackend::Serial => 0,
        EvalBackend::Sharded { shards } => shards.max(1),
    };
    EVAL_BACKEND.store(encoded, Ordering::Relaxed);
}

/// Currently selected engine frontend.
pub fn eval_backend() -> EvalBackend {
    match EVAL_BACKEND.load(Ordering::Relaxed) {
        0 => EvalBackend::Serial,
        n => EvalBackend::Sharded { shards: n },
    }
}

/// Deterministic per-user RNG seed: a SplitMix64 finalizer over the
/// harness seed and the user index. Each user's simulator draws from its
/// own stream, so replay order (and thread interleaving) cannot perturb
/// any user's trajectory.
pub fn user_seed(seed: u64, user_idx: usize) -> u64 {
    let mut z = seed ^ (user_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map every user index through `f`, sharded across [`eval_threads`]
/// scoped threads, returning results in ascending user order.
///
/// `f` must be a pure function of the user index (all experiment closures
/// are: they build a fresh engine + simulator seeded by [`user_seed`]), so
/// the result is identical for every thread count; only the wall-clock
/// time changes. Threads take users round-robin (`t, t+T, t+2T, …`) to
/// balance load, and the main thread re-assembles the slots in index
/// order so floating-point merges downstream happen in a canonical order.
pub fn replay_users<T, F>(n_users: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = eval_threads().min(n_users.max(1));
    if threads <= 1 {
        return (0..n_users).map(f).collect();
    }
    let mut slots: Vec<Option<T>> = (0..n_users).map(|_| None).collect();
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    (t..n_users).step_by(threads).map(|i| (i, f(i))).collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            for (i, v) in h.join().expect("user replay panicked") {
                slots[i] = Some(v);
            }
        }
    });
    slots.into_iter().map(|s| s.expect("every user index replayed")).collect()
}

/// Which click model the simulated users follow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClickModelKind {
    /// Examination hypothesis with geometric position decay (default).
    #[default]
    PositionBias,
    /// Cascade: top-down scan, stop after a satisfying click.
    Cascade,
    /// Dynamic Bayesian Network: attractiveness/satisfaction split.
    Dbn,
}

impl ClickModelKind {
    /// Instantiate the model with its default parameters.
    pub fn build(self) -> Box<dyn ClickModel> {
        match self {
            ClickModelKind::PositionBias => Box::new(PositionBiasModel::default()),
            ClickModelKind::Cascade => Box::new(CascadeModel::default()),
            ClickModelKind::Dbn => Box::new(DbnModel::default()),
        }
    }

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            ClickModelKind::PositionBias => "position-bias",
            ClickModelKind::Cascade => "cascade",
            ClickModelKind::Dbn => "dbn",
        }
    }
}

/// Harness configuration for one method run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Engine (method) configuration.
    pub engine: EngineConfig,
    /// Training interactions per user.
    pub train_per_user: usize,
    /// Evaluation interactions per user.
    pub eval_per_user: usize,
    /// Keep learning during evaluation (online protocol, used by F6).
    pub observe_during_eval: bool,
    /// Harness RNG seed (query scheduling, clicks).
    pub seed: u64,
    /// Label override for the result row (defaults to the mode label).
    pub label: Option<String>,
    /// Click model the simulated users follow.
    pub click_model: ClickModelKind,
}

impl RunConfig {
    /// The default protocol: 40 train + 20 eval interactions per user.
    pub fn standard(engine: EngineConfig) -> Self {
        RunConfig {
            engine,
            train_per_user: 40,
            eval_per_user: 20,
            observe_during_eval: false,
            seed: 99,
            label: None,
            click_model: ClickModelKind::PositionBias,
        }
    }

    /// A fast protocol for tests.
    pub fn quick(engine: EngineConfig) -> Self {
        RunConfig { train_per_user: 8, eval_per_user: 4, ..Self::standard(engine) }
    }

    /// Same run with a custom result label.
    pub fn labeled(mut self, label: &str) -> Self {
        self.label = Some(label.to_string());
        self
    }
}

/// Per-issue detail retained for entropy bucketing (F4).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct IssueDetail {
    /// Query template of the issue.
    pub query: QueryId,
    /// The issue's metrics.
    pub metrics: IssueMetrics,
}

/// Aggregate result of one method run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodResult {
    /// Method label (mode label unless overridden).
    pub label: String,
    /// Aggregated evaluation metrics.
    pub metrics: MetricAccumulator,
    /// Per-issue detail (evaluation phase only).
    pub detail: Vec<IssueDetail>,
}

impl MethodResult {
    /// Relative improvement of this result's nDCG over a baseline's, in %.
    pub fn ndcg_gain_over(&self, baseline: &MethodResult) -> f64 {
        let b = baseline.metrics.ndcg10();
        if b <= 0.0 {
            0.0
        } else {
            (self.metrics.ndcg10() - b) / b * 100.0
        }
    }
}

/// Run one method over the experiment world.
///
/// Each user is replayed independently (fresh engine, fresh simulator,
/// per-user seed) and the per-user results are merged in user order, so
/// the outcome does not depend on [`eval_threads`].
pub fn run_method(world: &ExperimentWorld, cfg: &RunConfig) -> MethodResult {
    let label = cfg.label.clone().unwrap_or_else(|| cfg.engine.mode.label().to_string());
    let per_user = replay_users(world.population.len(), |idx| replay_user(world, cfg, idx));

    let mut acc = MetricAccumulator::new();
    let mut detail = Vec::new();
    for user_details in per_user {
        for d in user_details {
            acc.push(&d.metrics);
            detail.push(d);
        }
    }
    MethodResult { label, metrics: acc, detail }
}

/// Replay one user's full train + eval trajectory against a fresh engine.
///
/// Engine personalization state is per-user anyway (profiles, history,
/// per-user models), so giving each user a private engine only localizes
/// the per-query click statistics feeding adaptive β — which the paper
/// also derives from the user's own clickthrough.
fn replay_user(world: &ExperimentWorld, cfg: &RunConfig, user_idx: usize) -> Vec<IssueDetail> {
    let top_k = cfg.engine.top_k;
    let mut engine = match eval_backend() {
        EvalBackend::Serial => UserEngine::Serial(PersonalizedSearchEngine::new(
            &world.engine,
            &world.world,
            cfg.engine.clone(),
        )),
        EvalBackend::Sharded { shards } => UserEngine::Sharded(pws_serve::ServingEngine::new(
            &world.engine,
            &world.world,
            cfg.engine.clone(),
            // Refresh after every observe: a single-caller sharded engine
            // then replays byte-identically to the serial one, keeping
            // experiment outputs backend-invariant.
            pws_serve::ServeConfig {
                shards,
                stats_refresh_every: 1,
                ..pws_serve::ServeConfig::default()
            },
        )),
    };
    let mut sim = SessionSimulator::with_model(
        &world.engine,
        &world.corpus,
        &world.world,
        &world.population,
        &world.queries,
        SimConfig { top_k, seed: user_seed(cfg.seed, user_idx) },
        cfg.click_model.build(),
    );
    let user = UserId(user_idx as u32);

    // ── Training phase ────────────────────────────────────────────────────
    for _ in 0..cfg.train_per_user {
        let qid = sim.sample_query(user);
        let (turn, outcome) = one_issue(&mut engine, &mut sim, user, qid);
        engine.observe(&turn, &outcome.impression);
    }

    // ── Evaluation phase ──────────────────────────────────────────────────
    let mut out = Vec::with_capacity(cfg.eval_per_user);
    for _ in 0..cfg.eval_per_user {
        let qid = sim.sample_query(user);
        let (turn, outcome) = one_issue(&mut engine, &mut sim, user, qid);
        let clicked_at_1 = outcome.impression.clicks.iter().any(|c| c.rank == 1);
        let m = IssueMetrics::from_page(&outcome.grades, clicked_at_1);
        out.push(IssueDetail { query: qid, metrics: m });
        if cfg.observe_during_eval {
            engine.observe(&turn, &outcome.impression);
        }
    }
    out
}

/// Run several method configurations concurrently (one OS thread each).
///
/// The experiment world is immutable and shared; each run owns its engine
/// and simulator, so runs are independent and results are identical to
/// sequential execution (every run is internally seeded).
pub fn run_methods_parallel(world: &ExperimentWorld, cfgs: &[RunConfig]) -> Vec<MethodResult> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = cfgs
            .iter()
            .map(|cfg| scope.spawn(move || run_method(world, cfg)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("run_method panicked")).collect()
    })
}

/// A per-user engine behind either frontend — the harness drives both
/// through the same two calls.
enum UserEngine<'w> {
    /// The paper's serial middleware shape.
    Serial(PersonalizedSearchEngine<'w>),
    /// The concurrent serving layer (driven single-threaded here; the
    /// point is to run the production code path, not to add parallelism
    /// inside one user's replay).
    Sharded(pws_serve::ServingEngine<'w>),
}

impl UserEngine<'_> {
    fn search(&mut self, user: UserId, query_text: &str) -> pws_core::SearchTurn {
        match self {
            UserEngine::Serial(e) => e.search(user, query_text),
            UserEngine::Sharded(e) => e.search(user, query_text),
        }
    }

    fn observe(&mut self, turn: &pws_core::SearchTurn, impression: &pws_click::Impression) {
        match self {
            UserEngine::Serial(e) => e.observe(turn, impression),
            UserEngine::Sharded(e) => e.observe(turn, impression),
        }
    }
}

/// One issue through the personalized engine + the click simulator.
fn one_issue<'a>(
    engine: &mut UserEngine<'_>,
    sim: &mut SessionSimulator<'a>,
    user: UserId,
    qid: QueryId,
) -> (pws_core::SearchTurn, pws_click::session::IssueOutcome) {
    let intent = sim.sample_intent_city(user);
    let query = &sim_queries(sim)[qid.index()];
    let text = sim.render_query(query, intent);
    let turn = engine.search(user, &text);
    let outcome = sim.issue_on_hits(user, qid, intent, &text, &turn.hits);
    (turn, outcome)
}

/// Accessor shim: the simulator owns a borrow of the workload; reach it
/// through a small helper to keep `one_issue` readable.
fn sim_queries<'a>(sim: &SessionSimulator<'a>) -> &'a [pws_corpus::Query] {
    sim.queries()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::ExperimentSpec;
    use pws_core::PersonalizationMode;

    fn world() -> ExperimentWorld {
        ExperimentWorld::build(ExperimentSpec::small())
    }

    #[test]
    fn baseline_run_produces_metrics() {
        let w = world();
        let r = run_method(
            &w,
            &RunConfig::quick(EngineConfig::for_mode(PersonalizationMode::Baseline)),
        );
        assert_eq!(r.label, "baseline");
        let expected = w.population.len() * 4;
        assert_eq!(r.metrics.issues() as usize, expected);
        assert_eq!(r.detail.len(), expected);
        assert!(r.metrics.ndcg10() > 0.0, "some pages must have relevant results");
    }

    #[test]
    fn runs_are_deterministic() {
        let w = world();
        let cfg = RunConfig::quick(EngineConfig::for_mode(PersonalizationMode::Combined));
        let a = run_method(&w, &cfg);
        let b = run_method(&w, &cfg);
        assert_eq!(a.metrics.ndcg10(), b.metrics.ndcg10());
        assert_eq!(a.metrics.avg_rank_high(), b.metrics.avg_rank_high());
    }

    #[test]
    fn combined_beats_baseline_on_high_relevance() {
        // The headline sanity check, at small scale: after training,
        // personalization should rank highly-relevant (user-specific)
        // results better than the static baseline.
        let w = world();
        let base = run_method(
            &w,
            &RunConfig::quick(EngineConfig::for_mode(PersonalizationMode::Baseline)),
        );
        let mut cfg = RunConfig::quick(EngineConfig::for_mode(PersonalizationMode::Combined));
        cfg.train_per_user = 16;
        let comb = run_method(&w, &cfg);
        assert!(
            comb.metrics.p_high()[0] >= base.metrics.p_high()[0],
            "combined P@1(high) {} < baseline {}",
            comb.metrics.p_high()[0],
            base.metrics.p_high()[0]
        );
    }

    #[test]
    fn sharded_replay_is_thread_count_invariant() {
        // Byte-identical serialized results with 1 and 4 worker threads —
        // the core determinism claim of the sharded harness.
        let w = world();
        let cfg = RunConfig::quick(EngineConfig::for_mode(PersonalizationMode::Combined));
        let serial = {
            set_eval_threads(1);
            run_method(&w, &cfg)
        };
        set_eval_threads(4);
        let parallel = run_method(&w, &cfg);
        set_eval_threads(1);
        let a = serde_json::to_string(&serial).expect("serialize serial");
        let b = serde_json::to_string(&parallel).expect("serialize parallel");
        assert_eq!(a, b, "thread count changed the result bytes");
    }

    #[test]
    fn backends_produce_identical_results() {
        // The sharded serving backend must not change any experiment
        // number: same engine core, per-user engines, fresh stats every
        // observe → byte-identical serialized results.
        let w = world();
        let cfg = RunConfig::quick(EngineConfig::for_mode(PersonalizationMode::Combined));
        set_eval_backend(EvalBackend::Serial);
        let serial = run_method(&w, &cfg);
        set_eval_backend(EvalBackend::Sharded { shards: 4 });
        let sharded = run_method(&w, &cfg);
        set_eval_backend(EvalBackend::Serial);
        assert_eq!(
            serde_json::to_string(&serial).expect("serialize serial"),
            serde_json::to_string(&sharded).expect("serialize sharded"),
            "eval backend changed the result bytes"
        );
    }

    #[test]
    fn user_seed_is_spread_out() {
        // Adjacent users must not get adjacent (or equal) RNG streams.
        let s: Vec<u64> = (0..16).map(|i| user_seed(99, i)).collect();
        for i in 0..s.len() {
            for j in i + 1..s.len() {
                assert_ne!(s[i], s[j], "collision between users {i} and {j}");
            }
        }
        assert_ne!(user_seed(99, 0), user_seed(100, 0), "seed must matter");
    }

    #[test]
    fn ndcg_gain_helper() {
        let w = world();
        let base = run_method(
            &w,
            &RunConfig::quick(EngineConfig::for_mode(PersonalizationMode::Baseline)),
        );
        let gain = base.ndcg_gain_over(&base);
        assert!(gain.abs() < 1e-9);
    }
}
