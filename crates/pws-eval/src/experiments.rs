//! The paper's evaluation, experiment by experiment.
//!
//! Every function takes a pre-built [`ExperimentWorld`] plus a [`Protocol`]
//! (interaction budgets) and returns a serializable report with a
//! `render()` method producing the human-readable table. The
//! `pws-bench` `experiments` binary drives these at paper scale; the
//! integration tests drive them at small scale.

use crate::harness::{run_method, run_methods_parallel, MethodResult, RunConfig};
use crate::metrics::MetricAccumulator;
use crate::setup::ExperimentWorld;
use pws_click::{SessionSimulator, SimConfig, UserId};
use pws_concepts::{extract_content, ConceptConfig, LocationConceptConfig, QueryConceptOntology};
use pws_core::{BlendStrategy, EngineConfig, PersonalizationMode, PersonalizedSearchEngine};
use pws_corpus::query::{QueryClass, QueryId};
use pws_entropy::QueryStats;
use pws_geo::LocationMatcher;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Interaction budgets shared by the method-comparison experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Protocol {
    /// Training interactions per user.
    pub train_per_user: usize,
    /// Evaluation interactions per user.
    pub eval_per_user: usize,
    /// Harness seed.
    pub seed: u64,
}

impl Protocol {
    /// Paper-scale protocol.
    pub fn standard() -> Self {
        Protocol { train_per_user: 40, eval_per_user: 20, seed: 99 }
    }

    /// Small protocol for tests.
    pub fn quick() -> Self {
        Protocol { train_per_user: 8, eval_per_user: 4, seed: 99 }
    }

    fn run_cfg(&self, engine: EngineConfig) -> RunConfig {
        RunConfig {
            engine,
            train_per_user: self.train_per_user,
            eval_per_user: self.eval_per_user,
            observe_during_eval: false,
            seed: self.seed,
            label: None,
            click_model: crate::harness::ClickModelKind::PositionBias,
        }
    }
}

/// Simple fixed-width table renderer shared by the reports.
fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

fn fmt3(x: f64) -> String {
    format!("{x:.3}")
}

/// Summary row extracted from a [`MethodResult`].
fn metric_row(label: &str, m: &MetricAccumulator) -> Vec<String> {
    vec![
        label.to_string(),
        fmt3(m.avg_rank_rel()),
        fmt3(m.avg_rank_high()),
        fmt3(m.p_rel()[0]),
        fmt3(m.p_high()[0]),
        fmt3(m.p_high()[2]),
        fmt3(m.mrr_high()),
        fmt3(m.ndcg10()),
        fmt3(m.ctr_at_1()),
    ]
}

const METRIC_HEADERS: [&str; 9] =
    ["method", "avgrank", "avgrank2", "P@1", "P@1:2", "P@5:2", "MRR:2", "nDCG@10", "CTR@1"];

// ───────────────────────────────── T1 ─────────────────────────────────────

/// T1 — dataset & ontology statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct T1Report {
    pub docs: usize,
    pub localized_fraction: f64,
    pub cities: usize,
    pub ontology_nodes: usize,
    pub users: usize,
    pub query_templates: usize,
    pub content_queries: usize,
    pub location_sensitive_queries: usize,
    pub explicit_location_queries: usize,
    pub vocab_size: usize,
    pub avg_doc_len: f64,
    pub postings_bytes: usize,
}

/// Compute T1.
pub fn t1_dataset_stats(world: &ExperimentWorld) -> T1Report {
    let class_count = |c: QueryClass| world.queries.iter().filter(|q| q.class == c).count();
    T1Report {
        docs: world.corpus.len(),
        localized_fraction: world.corpus.localized_fraction(),
        cities: world.world.cities().count(),
        ontology_nodes: world.world.len(),
        users: world.population.len(),
        query_templates: world.queries.len(),
        content_queries: class_count(QueryClass::Content),
        location_sensitive_queries: class_count(QueryClass::LocationSensitive),
        explicit_location_queries: class_count(QueryClass::ExplicitLocation),
        vocab_size: world.engine.vocab_size(),
        avg_doc_len: world.engine.avg_doc_len(),
        postings_bytes: world.engine.postings_bytes(),
    }
}

impl T1Report {
    /// Render as a table.
    pub fn render(&self) -> String {
        let rows = vec![
            vec!["documents".into(), self.docs.to_string()],
            vec!["localized fraction".into(), fmt3(self.localized_fraction)],
            vec!["cities".into(), self.cities.to_string()],
            vec!["ontology nodes".into(), self.ontology_nodes.to_string()],
            vec!["users".into(), self.users.to_string()],
            vec!["query templates".into(), self.query_templates.to_string()],
            vec!["  content".into(), self.content_queries.to_string()],
            vec!["  location-sensitive".into(), self.location_sensitive_queries.to_string()],
            vec!["  explicit-location".into(), self.explicit_location_queries.to_string()],
            vec!["index vocabulary".into(), self.vocab_size.to_string()],
            vec!["avg doc length (tokens)".into(), format!("{:.1}", self.avg_doc_len)],
            vec!["postings bytes".into(), self.postings_bytes.to_string()],
        ];
        format!("T1 — dataset statistics\n{}", table(&["stat", "value"], &rows))
    }
}

// ───────────────────────────────── T2 ─────────────────────────────────────

/// Concepts extracted for one sample query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct T2Query {
    pub query: String,
    pub class: String,
    pub content_concepts: Vec<(String, f64)>,
    pub location_concepts: Vec<(String, f64)>,
}

/// T2 — example concept extraction for three sample queries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct T2Report {
    pub queries: Vec<T2Query>,
}

/// Compute T2: one sample query of each class.
pub fn t2_sample_concepts(world: &ExperimentWorld) -> T2Report {
    let matcher = LocationMatcher::build(&world.world);
    let mut samples = Vec::new();
    for class in [QueryClass::Content, QueryClass::LocationSensitive, QueryClass::ExplicitLocation]
    {
        let Some(q) = world.queries.iter().find(|q| q.class == class) else { continue };
        let hits = world.engine.search(&q.text, 20);
        let snippets: Vec<String> = hits.iter().map(|h| h.snippet.clone()).collect();
        let onto = QueryConceptOntology::extract(
            &q.text,
            &snippets,
            &matcher,
            &world.world,
            &ConceptConfig::default(),
            &LocationConceptConfig::default(),
        );
        samples.push(T2Query {
            query: q.text.clone(),
            class: format!("{class:?}"),
            content_concepts: onto
                .content
                .iter()
                .take(8)
                .map(|c| (c.term.clone(), c.support))
                .collect(),
            location_concepts: onto
                .locations
                .iter()
                .take(5)
                .map(|l| (world.world.name(l.loc).to_string(), l.support))
                .collect(),
        });
    }
    T2Report { queries: samples }
}

impl T2Report {
    /// Render as a table.
    pub fn render(&self) -> String {
        let mut out = String::from("T2 — sample extracted concepts\n");
        for q in &self.queries {
            out.push_str(&format!("\nquery: {:?} ({})\n", q.query, q.class));
            let content: Vec<String> = q
                .content_concepts
                .iter()
                .map(|(t, s)| format!("{t} ({s:.2})"))
                .collect();
            let locs: Vec<String> =
                q.location_concepts.iter().map(|(t, s)| format!("{t} ({s:.2})")).collect();
            out.push_str(&format!("  content : {}\n", content.join(", ")));
            out.push_str(&format!("  location: {}\n", locs.join(", ")));
        }
        out
    }
}

// ───────────────────────────────── T3 / F2 ────────────────────────────────

/// T3 — the four-method comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct T3Report {
    pub methods: Vec<MethodResult>,
}

/// Compute T3: run baseline / content / location / combined.
pub fn t3_method_comparison(world: &ExperimentWorld, proto: &Protocol) -> T3Report {
    let cfgs: Vec<RunConfig> = [
        PersonalizationMode::Baseline,
        PersonalizationMode::ContentOnly,
        PersonalizationMode::LocationOnly,
        PersonalizationMode::Combined,
    ]
    .into_iter()
    .map(|mode| proto.run_cfg(EngineConfig::for_mode(mode)))
    .collect();
    T3Report { methods: run_methods_parallel(world, &cfgs) }
}

impl T3Report {
    /// Render as a table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> =
            self.methods.iter().map(|m| metric_row(&m.label, &m.metrics)).collect();
        format!("T3 — method comparison\n{}", table(&METRIC_HEADERS, &rows))
    }

    /// The baseline row (first by construction).
    pub fn baseline(&self) -> &MethodResult {
        &self.methods[0]
    }

    /// The combined row (last by construction).
    pub fn combined(&self) -> &MethodResult {
        self.methods.last().expect("nonempty")
    }
}

/// F2 — Top-N precision per method (re-renders T3's runs at all cutoffs).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct F2Report {
    pub methods: Vec<(String, [f64; 4], [f64; 4])>,
}

/// Compute F2 from a T3 report (no re-run needed).
pub fn f2_topn_precision(t3: &T3Report) -> F2Report {
    F2Report {
        methods: t3
            .methods
            .iter()
            .map(|m| (m.label.clone(), m.metrics.p_rel(), m.metrics.p_high()))
            .collect(),
    }
}

impl F2Report {
    /// Render as a table.
    pub fn render(&self) -> String {
        let headers = ["method", "P@1", "P@3", "P@5", "P@10", "P@1:2", "P@3:2", "P@5:2", "P@10:2"];
        let rows: Vec<Vec<String>> = self
            .methods
            .iter()
            .map(|(label, p_rel, p_high)| {
                let mut row = vec![label.clone()];
                row.extend(p_rel.iter().map(|p| fmt3(*p)));
                row.extend(p_high.iter().map(|p| fmt3(*p)));
                row
            })
            .collect();
        format!("F2 — top-N precision\n{}", table(&headers, &rows))
    }
}

// ───────────────────────────────── F1 ─────────────────────────────────────

/// One method's point on the learning curve: (label, nDCG@10, P@1:2).
pub type F1Point = (String, f64, f64);

/// F1 — learning curve: quality vs training budget.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct F1Report {
    /// (train budget, per-method points).
    pub points: Vec<(usize, Vec<F1Point>)>,
}

/// Compute F1 over the given training budgets.
pub fn f1_learning_curve(
    world: &ExperimentWorld,
    proto: &Protocol,
    budgets: &[usize],
) -> F1Report {
    let modes = [
        PersonalizationMode::Baseline,
        PersonalizationMode::ContentOnly,
        PersonalizationMode::LocationOnly,
        PersonalizationMode::Combined,
    ];
    let points = budgets
        .iter()
        .map(|&budget| {
            let cfgs: Vec<RunConfig> = modes
                .into_iter()
                .map(|mode| {
                    let mut cfg = proto.run_cfg(EngineConfig::for_mode(mode));
                    cfg.train_per_user = budget;
                    cfg
                })
                .collect();
            let series = run_methods_parallel(world, &cfgs)
                .into_iter()
                .map(|r| (r.label.clone(), r.metrics.ndcg10(), r.metrics.p_high()[0]))
                .collect();
            (budget, series)
        })
        .collect();
    F1Report { points }
}

impl F1Report {
    /// Render as a table.
    pub fn render(&self) -> String {
        let mut headers = vec!["train".to_string()];
        if let Some((_, series)) = self.points.first() {
            for (label, ..) in series {
                headers.push(format!("{label}:ndcg"));
                headers.push(format!("{label}:P@1:2"));
            }
        }
        let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|(budget, series)| {
                let mut row = vec![budget.to_string()];
                for (_, ndcg, p1) in series {
                    row.push(fmt3(*ndcg));
                    row.push(fmt3(*p1));
                }
                row
            })
            .collect();
        format!("F1 — learning curve (quality vs training interactions)\n{}", table(&header_refs, &rows))
    }
}

// ───────────────────────────────── F3 ─────────────────────────────────────

/// F3 — concept support-threshold sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct F3Report {
    /// (threshold s, mean content concepts per query, combined nDCG@10,
    /// combined P@1:2).
    pub points: Vec<(f64, f64, f64, f64)>,
}

/// Compute F3.
pub fn f3_support_threshold_sweep(
    world: &ExperimentWorld,
    proto: &Protocol,
    thresholds: &[f64],
) -> F3Report {
    let points = thresholds
        .iter()
        .map(|&s| {
            // Mean concepts/query at this threshold over the workload
            // (uncapped, so the count reflects the threshold, not the cap).
            let cfg = ConceptConfig {
                min_support: s,
                max_concepts: usize::MAX,
                ..ConceptConfig::default()
            };
            let mut total = 0usize;
            for q in &world.queries {
                let hits = world.engine.search(&q.text, 30);
                let snippets: Vec<String> = hits.iter().map(|h| h.snippet.clone()).collect();
                total += extract_content(&q.text, &snippets, &cfg).len();
            }
            let mean_concepts = total as f64 / world.queries.len().max(1) as f64;

            // Quality with this threshold.
            let mut run_cfg =
                proto.run_cfg(EngineConfig::for_mode(PersonalizationMode::Combined));
            run_cfg.engine.concept_cfg.min_support = s;
            let r = run_method(world, &run_cfg);
            (s, mean_concepts, r.metrics.ndcg10(), r.metrics.p_high()[0])
        })
        .collect();
    F3Report { points }
}

impl F3Report {
    /// Render as a table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|(s, n, ndcg, p1)| {
                vec![format!("{s:.2}"), format!("{n:.1}"), fmt3(*ndcg), fmt3(*p1)]
            })
            .collect();
        format!(
            "F3 — support-threshold sweep\n{}",
            table(&["s", "concepts/query", "combined nDCG@10", "combined P@1:2"], &rows)
        )
    }
}

// ───────────────────────────────── F4 ─────────────────────────────────────

/// F4 — per-entropy-bucket gain of location personalization.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct F4Report {
    /// (bucket label, #queries, baseline P@1:2, location P@1:2, gain %).
    pub buckets: Vec<(String, usize, f64, f64, f64)>,
}

/// Compute F4: bucket queries by location click-entropy measured on a
/// baseline pass, then compare per-bucket baseline vs location-only
/// quality. Explicit-location templates are excluded: their city is in the
/// query text, the baseline already resolves them (T5 shows a ~0.75 P@1:2
/// ceiling), so they would mask the implicit-intent effect this analysis
/// is about.
pub fn f4_entropy_analysis(world: &ExperimentWorld, proto: &Protocol) -> F4Report {
    // Pass 1: collect per-query location entropy under the baseline.
    let stats = collect_query_stats(world, proto);
    let mut entropies: Vec<(QueryId, f64)> = stats
        .iter()
        .filter(|(qid, _)| {
            world.queries[qid.index()].class != QueryClass::ExplicitLocation
        })
        .map(|(qid, s)| (*qid, s.location_entropy()))
        .collect();
    // Total order with a QueryId tie-break: `stats` is a HashMap, so
    // without it queries with equal entropy (ties at 0.0 are common) would
    // land in terciles in random per-process iteration order.
    entropies.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.index().cmp(&b.0.index()))
    });

    // Terciles.
    let n = entropies.len();
    let bucket_of: HashMap<QueryId, usize> = entropies
        .iter()
        .enumerate()
        .map(|(i, (qid, _))| (*qid, (i * 3 / n.max(1)).min(2)))
        .collect();

    // Pass 2: per-query metrics under baseline and location-only.
    let mut runs = run_methods_parallel(
        world,
        &[
            proto.run_cfg(EngineConfig::for_mode(PersonalizationMode::Baseline)),
            proto.run_cfg(EngineConfig::for_mode(PersonalizationMode::LocationOnly)),
        ],
    );
    let loc = runs.pop().expect("two runs");
    let base = runs.pop().expect("two runs");

    let mut per_bucket: Vec<(MetricAccumulator, MetricAccumulator, usize)> =
        vec![(MetricAccumulator::new(), MetricAccumulator::new(), 0); 3];
    for d in &base.detail {
        if let Some(&b) = bucket_of.get(&d.query) {
            per_bucket[b].0.push(&d.metrics);
        }
    }
    for d in &loc.detail {
        if let Some(&b) = bucket_of.get(&d.query) {
            per_bucket[b].1.push(&d.metrics);
        }
    }
    for (qid, _) in &entropies {
        if let Some(&b) = bucket_of.get(qid) {
            per_bucket[b].2 += 1;
        }
    }

    let labels = ["low entropy", "mid entropy", "high entropy"];
    let buckets = per_bucket
        .into_iter()
        .enumerate()
        .map(|(i, (b, l, count))| {
            let bn = b.p_high()[0];
            let ln = l.p_high()[0];
            let gain = if bn > 0.0 { (ln - bn) / bn * 100.0 } else { 0.0 };
            (labels[i].to_string(), count, bn, ln, gain)
        })
        .collect();
    F4Report { buckets }
}

/// Run a baseline pass and accumulate [`QueryStats`] per query template.
///
/// Sharded per user: each user replays `train_per_user` baseline issues
/// against a private engine/simulator pair, and the per-user stat maps are
/// merged in user order (every [`QueryStats`] field is a sum, so shard
/// merge order only fixes the floating-point accumulation order).
fn collect_query_stats(world: &ExperimentWorld, proto: &Protocol) -> HashMap<QueryId, QueryStats> {
    let per_user = crate::harness::replay_users(world.population.len(), |user_idx| {
        let engine_cfg = EngineConfig::for_mode(PersonalizationMode::Baseline);
        let top_k = engine_cfg.top_k;
        let mut engine = PersonalizedSearchEngine::new(&world.engine, &world.world, engine_cfg);
        let mut sim = SessionSimulator::new(
            &world.engine,
            &world.corpus,
            &world.world,
            &world.population,
            &world.queries,
            SimConfig { top_k, seed: crate::harness::user_seed(proto.seed, user_idx) },
        );
        let user = UserId(user_idx as u32);
        let mut stats: Vec<(QueryId, QueryStats)> = Vec::new();
        for _ in 0..proto.train_per_user.max(1) {
            let qid = sim.sample_query(user);
            let intent = sim.sample_intent_city(user);
            let q = &world.queries[qid.index()];
            let text = sim.render_query(q, intent);
            let turn = engine.search(user, &text);
            let outcome = sim.issue_on_hits(user, qid, intent, &text, &turn.hits);
            match stats.iter_mut().find(|(id, _)| *id == qid) {
                Some((_, s)) => s.observe(&turn.ontology, &outcome.impression),
                None => {
                    let mut s = QueryStats::new();
                    s.observe(&turn.ontology, &outcome.impression);
                    stats.push((qid, s));
                }
            }
            engine.observe(&turn, &outcome.impression);
        }
        stats
    });

    let mut stats: HashMap<QueryId, QueryStats> = HashMap::new();
    for user_stats in per_user {
        for (qid, s) in user_stats {
            stats.entry(qid).or_default().merge(&s);
        }
    }
    stats
}

impl F4Report {
    /// Render as a table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .buckets
            .iter()
            .map(|(label, n, b, l, g)| {
                vec![label.clone(), n.to_string(), fmt3(*b), fmt3(*l), format!("{g:+.1}%")]
            })
            .collect();
        format!(
            "F4 — location personalization gain by location click-entropy bucket\n{}",
            table(&["bucket", "queries", "baseline P@1:2", "location P@1:2", "gain"], &rows)
        )
    }
}

// ───────────────────────────────── F5 ─────────────────────────────────────

/// F5 — blend-weight sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct F5Report {
    /// (strategy label, nDCG@10, P@1 at grade 2).
    pub points: Vec<(String, f64, f64)>,
}

/// Compute F5: fixed β ∈ given values, plus adaptive.
pub fn f5_blend_sweep(world: &ExperimentWorld, proto: &Protocol, betas: &[f64]) -> F5Report {
    let mut cfgs: Vec<RunConfig> = betas
        .iter()
        .map(|&b| {
            let mut cfg = proto
                .run_cfg(EngineConfig::for_mode(PersonalizationMode::Combined))
                .labeled(&format!("fixed {b:.2}"));
            cfg.engine.blend = BlendStrategy::Fixed(b);
            cfg
        })
        .collect();
    cfgs.push(
        proto
            .run_cfg(EngineConfig::for_mode(PersonalizationMode::Combined))
            .labeled("adaptive"),
    );
    let points = run_methods_parallel(world, &cfgs)
        .into_iter()
        .map(|r| (r.label.clone(), r.metrics.ndcg10(), r.metrics.p_high()[0]))
        .collect();
    F5Report { points }
}

impl F5Report {
    /// Render as a table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|(l, ndcg, p1)| vec![l.clone(), fmt3(*ndcg), fmt3(*p1)])
            .collect();
        format!("F5 — content/location blend sweep\n{}", table(&["β strategy", "nDCG@10", "P@1:2"], &rows))
    }
}

// ───────────────────────────────── F6 ─────────────────────────────────────

/// F6 — cold start: per-interaction quality for fresh users.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct F6Report {
    /// (interaction index 1-based, combined P@1:2, baseline P@1:2) —
    /// per-interaction means over users.
    pub points: Vec<(usize, f64, f64)>,
    /// Means over blocks of [`F6Report::BLOCK`] interactions (same series,
    /// less per-interaction noise).
    pub blocks: Vec<(String, f64, f64)>,
}

/// Compute F6 over the first `horizon` interactions of every user.
pub fn f6_cold_start(world: &ExperimentWorld, proto: &Protocol, horizon: usize) -> F6Report {
    let run_one = |mode: PersonalizationMode| -> Vec<f64> {
        // Per-user sharded replay: each user's cold-start trajectory is
        // independent, so users run in parallel and their per-step
        // precision series are summed in user order.
        let per_user = crate::harness::replay_users(world.population.len(), |user_idx| {
            let engine_cfg = EngineConfig::for_mode(mode);
            let top_k = engine_cfg.top_k;
            let mut engine =
                PersonalizedSearchEngine::new(&world.engine, &world.world, engine_cfg);
            let mut sim = SessionSimulator::new(
                &world.engine,
                &world.corpus,
                &world.world,
                &world.population,
                &world.queries,
                SimConfig { top_k, seed: crate::harness::user_seed(proto.seed, user_idx) },
            );
            let user = UserId(user_idx as u32);
            let mut series = Vec::with_capacity(horizon);
            for _ in 0..horizon {
                let qid = sim.sample_query(user);
                let intent = sim.sample_intent_city(user);
                let q = &world.queries[qid.index()];
                let text = sim.render_query(q, intent);
                let turn = engine.search(user, &text);
                let outcome = sim.issue_on_hits(user, qid, intent, &text, &turn.hits);
                series.push(crate::metrics::precision_at(
                    &outcome.grades,
                    1,
                    pws_click::relevance::Grade::HighlyRelevant,
                ));
                engine.observe(&turn, &outcome.impression);
            }
            series
        });
        let mut sums = vec![0.0; horizon];
        for series in per_user {
            for (sum, p) in sums.iter_mut().zip(series) {
                *sum += p;
            }
        }
        sums.into_iter().map(|s| s / world.population.len().max(1) as f64).collect()
    };

    let combined = run_one(PersonalizationMode::Combined);
    let baseline = run_one(PersonalizationMode::Baseline);
    let points: Vec<(usize, f64, f64)> =
        (0..horizon).map(|t| (t + 1, combined[t], baseline[t])).collect();
    let blocks = points
        .chunks(F6Report::BLOCK)
        .map(|chunk| {
            let lo = chunk.first().expect("nonempty chunk").0;
            let hi = chunk.last().expect("nonempty chunk").0;
            let n = chunk.len() as f64;
            let c = chunk.iter().map(|(_, c, _)| c).sum::<f64>() / n;
            let b = chunk.iter().map(|(_, _, b)| b).sum::<f64>() / n;
            (format!("{lo}–{hi}"), c, b)
        })
        .collect();
    F6Report { points, blocks }
}

impl F6Report {
    /// Interactions per rendering block.
    pub const BLOCK: usize = 5;

    /// Render as a table (blocked means; the raw per-interaction series is
    /// in the JSON).
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .blocks
            .iter()
            .map(|(label, c, b)| vec![label.clone(), fmt3(*c), fmt3(*b)])
            .collect();
        format!(
            "F6 — cold start (P@1:2 per interaction block, mean over users)\n{}",
            table(&["interactions", "combined", "baseline"], &rows)
        )
    }
}

// ───────────────────────────────── F7 ─────────────────────────────────────

/// F7 — design ablations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct F7Report {
    /// (variant label, nDCG@10, P@1 at grade 2, avg rank of grade-2).
    pub variants: Vec<(String, f64, f64, f64)>,
}

/// Compute F7: the full method against single-mechanism removals.
pub fn f7_ablations(world: &ExperimentWorld, proto: &Protocol) -> F7Report {
    let full = EngineConfig::for_mode(PersonalizationMode::Combined);

    let mut no_graph = full.clone();
    no_graph.content_profile_cfg.graph_damping = 0.0;

    let mut no_rollup = full.clone();
    no_rollup.location_cfg.rollup = false;
    no_rollup.location_profile_cfg.ancestor_decay = 0.0;

    let mut no_augment = full.clone();
    no_augment.query_augmentation = false;

    let mut no_skip = full.clone();
    no_skip.content_profile_cfg.skip_penalty = 0.0;
    no_skip.location_profile_cfg.skip_penalty = 0.0;

    let mut no_training = full.clone();
    no_training.retrain_every = 0;

    let mut spynb = full.clone();
    spynb.pair_source = pws_core::PairSource::SpyNb(pws_profile::SpyNbConfig::default());

    let cfgs: Vec<RunConfig> = [
        ("full", full),
        ("no concept graph (GCS off)", no_graph),
        ("no ontology rollup", no_rollup),
        ("no query augmentation", no_augment),
        ("no skip penalty", no_skip),
        ("no RankSVM (prior only)", no_training),
        ("SpyNB pairs (vs skip-above)", spynb),
    ]
    .into_iter()
    .map(|(label, engine)| proto.run_cfg(engine).labeled(label))
    .collect();
    let variants = run_methods_parallel(world, &cfgs)
        .into_iter()
        .map(|r| {
            (
                r.label.clone(),
                r.metrics.ndcg10(),
                r.metrics.p_high()[0],
                r.metrics.avg_rank_high(),
            )
        })
        .collect();
    F7Report { variants }
}

impl F7Report {
    /// Render as a table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .variants
            .iter()
            .map(|(l, ndcg, p1, ar)| vec![l.clone(), fmt3(*ndcg), fmt3(*p1), fmt3(*ar)])
            .collect();
        format!(
            "F7 — ablations\n{}",
            table(&["variant", "nDCG@10", "P@1:2", "avgrank:2"], &rows)
        )
    }
}


// ───────────────────────────────── T5 ─────────────────────────────────────

/// T5 — per-query-class breakdown of the personalization gain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct T5Report {
    /// (class label, issues, baseline nDCG, combined nDCG,
    /// baseline P@1:2, combined P@1:2).
    pub classes: Vec<(String, usize, f64, f64, f64, f64)>,
}

/// Compute T5: where does the gain come from? Location-sensitive queries
/// should gain most from the full method; pure content queries gain from
/// the content dimension only; explicit-location queries (the city is in
/// the text) should gain least — the baseline engine already handles them.
pub fn t5_class_breakdown(world: &ExperimentWorld, proto: &Protocol) -> T5Report {
    let runs = run_methods_parallel(
        world,
        &[
            proto.run_cfg(EngineConfig::for_mode(PersonalizationMode::Baseline)),
            proto.run_cfg(EngineConfig::for_mode(PersonalizationMode::Combined)),
        ],
    );
    let (base, comb) = (&runs[0], &runs[1]);

    let classes = [
        ("content", QueryClass::Content),
        ("location-sensitive", QueryClass::LocationSensitive),
        ("explicit-location", QueryClass::ExplicitLocation),
    ];
    let rows = classes
        .into_iter()
        .map(|(label, class)| {
            let mut b_acc = MetricAccumulator::new();
            let mut c_acc = MetricAccumulator::new();
            for d in &base.detail {
                if world.queries[d.query.index()].class == class {
                    b_acc.push(&d.metrics);
                }
            }
            for d in &comb.detail {
                if world.queries[d.query.index()].class == class {
                    c_acc.push(&d.metrics);
                }
            }
            (
                label.to_string(),
                b_acc.issues() as usize,
                b_acc.ndcg10(),
                c_acc.ndcg10(),
                b_acc.p_high()[0],
                c_acc.p_high()[0],
            )
        })
        .collect();
    T5Report { classes: rows }
}

impl T5Report {
    /// Render as a table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .classes
            .iter()
            .map(|(l, n, bn, cn, bp, cp)| {
                vec![l.clone(), n.to_string(), fmt3(*bn), fmt3(*cn), fmt3(*bp), fmt3(*cp)]
            })
            .collect();
        format!(
            "T5 — per-class gains (baseline vs combined)\n{}",
            table(
                &["class", "issues", "base nDCG", "comb nDCG", "base P@1:2", "comb P@1:2"],
                &rows
            )
        )
    }
}

// ───────────────────────────────── F8 ─────────────────────────────────────

/// F8 — robustness to click noise.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct F8Report {
    /// (noise level, baseline P@1:2, combined P@1:2, gain %).
    pub points: Vec<(f64, f64, f64, f64)>,
}

/// Compute F8: rebuild the population at each noise level and compare.
/// Personalization gains should degrade gracefully — profiles average over
/// many interactions, so moderate noise dilutes but does not reverse them.
pub fn f8_noise_robustness(
    spec: &crate::setup::ExperimentSpec,
    proto: &Protocol,
    noise_levels: &[f64],
) -> F8Report {
    let points = noise_levels
        .iter()
        .map(|&eps| {
            let mut s = spec.clone();
            s.users.noise = (eps, (eps + 0.001).min(1.0));
            let world = ExperimentWorld::build(s);
            let runs = run_methods_parallel(
                &world,
                &[
                    proto.run_cfg(EngineConfig::for_mode(PersonalizationMode::Baseline)),
                    proto.run_cfg(EngineConfig::for_mode(PersonalizationMode::Combined)),
                ],
            );
            let b = runs[0].metrics.p_high()[0];
            let c = runs[1].metrics.p_high()[0];
            let gain = if b > 0.0 { (c - b) / b * 100.0 } else { 0.0 };
            (eps, b, c, gain)
        })
        .collect();
    F8Report { points }
}

impl F8Report {
    /// Render as a table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|(e, b, c, g)| {
                vec![format!("{e:.2}"), fmt3(*b), fmt3(*c), format!("{g:+.1}%")]
            })
            .collect();
        format!(
            "F8 — click-noise robustness (P@1:2)\n{}",
            table(&["noise", "baseline", "combined", "gain"], &rows)
        )
    }
}

// ───────────────────────────────── F9 ─────────────────────────────────────

/// F9 — robustness to the click-model assumption.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct F9Report {
    /// (click model, baseline P@1:2, combined P@1:2, gain %).
    pub points: Vec<(String, f64, f64, f64)>,
}

/// Compute F9: the conclusion (combined > baseline) must not depend on
/// which behavioural model generated the clicks.
pub fn f9_click_model_robustness(world: &ExperimentWorld, proto: &Protocol) -> F9Report {
    use crate::harness::ClickModelKind;
    let kinds =
        [ClickModelKind::PositionBias, ClickModelKind::Cascade, ClickModelKind::Dbn];
    let points = kinds
        .into_iter()
        .map(|kind| {
            let mut base = proto.run_cfg(EngineConfig::for_mode(PersonalizationMode::Baseline));
            base.click_model = kind;
            let mut comb = proto.run_cfg(EngineConfig::for_mode(PersonalizationMode::Combined));
            comb.click_model = kind;
            let runs = run_methods_parallel(world, &[base, comb]);
            let b = runs[0].metrics.p_high()[0];
            let c = runs[1].metrics.p_high()[0];
            let gain = if b > 0.0 { (c - b) / b * 100.0 } else { 0.0 };
            (kind.label().to_string(), b, c, gain)
        })
        .collect();
    F9Report { points }
}

impl F9Report {
    /// Render as a table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|(l, b, c, g)| vec![l.clone(), fmt3(*b), fmt3(*c), format!("{g:+.1}%")])
            .collect();
        format!(
            "F9 — click-model robustness (P@1:2)\n{}",
            table(&["click model", "baseline", "combined", "gain"], &rows)
        )
    }
}


// ───────────────────────────────── F10 ────────────────────────────────────

/// F10 — within-session adaptation: quality per refinement step.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct F10Report {
    /// (step index 1-based, combined P@1:2, baseline P@1:2, issues).
    pub steps: Vec<(usize, f64, f64, usize)>,
}

/// Compute F10: replay refinement sessions (specialize / generalize /
/// peer-shift chains over a template) through warm engines, observing
/// after every step. Short-term adaptation should make later steps of a
/// session better for the personalized engine, while the baseline's
/// per-step quality stays flat.
pub fn f10_session_adaptation(
    world: &ExperimentWorld,
    proto: &Protocol,
    sessions_per_user: usize,
) -> F10Report {
    use pws_corpus::session::{generate_session, SessionSpec};
    use pws_corpus::vocab::Topics;

    let topics = Topics::first(world.spec.corpus.num_topics);
    let max_steps = SessionSpec::default().steps.1;

    let run_one = |mode: PersonalizationMode| -> (Vec<f64>, Vec<usize>) {
        // Per-user sharded replay; per-step sums merge in user order.
        let per_user = crate::harness::replay_users(world.population.len(), |user_idx| {
            let engine_cfg = EngineConfig::for_mode(mode);
            let top_k = engine_cfg.top_k;
            let mut engine =
                PersonalizedSearchEngine::new(&world.engine, &world.world, engine_cfg);
            let mut sim = SessionSimulator::new(
                &world.engine,
                &world.corpus,
                &world.world,
                &world.population,
                &world.queries,
                SimConfig { top_k, seed: crate::harness::user_seed(proto.seed, user_idx) },
            );
            let user = UserId(user_idx as u32);
            let mut sums = vec![0.0; max_steps];
            let mut counts = vec![0usize; max_steps];
            // Warm-up traffic so profiles exist before sessions start.
            for _ in 0..proto.train_per_user / 2 {
                let qid = sim.sample_query(user);
                let intent = sim.sample_intent_city(user);
                let q = &world.queries[qid.index()];
                let text = sim.render_query(q, intent);
                let turn = engine.search(user, &text);
                let outcome = sim.issue_on_hits(user, qid, intent, &text, &turn.hits);
                engine.observe(&turn, &outcome.impression);
            }
            // Refinement sessions.
            for si in 0..sessions_per_user {
                let qid = sim.sample_query(user);
                let q = &world.queries[qid.index()];
                let steps = generate_session(
                    q,
                    &topics,
                    &SessionSpec::default(),
                    proto.seed ^ (user_idx as u64) << 8 ^ si as u64,
                );
                // One intent city per session: the session has one goal.
                let intent = sim.sample_intent_city(user);
                for (t, step) in steps.iter().enumerate() {
                    let turn = engine.search(user, &step.text);
                    let outcome =
                        sim.issue_on_hits(user, qid, intent, &step.text, &turn.hits);
                    sums[t] += crate::metrics::precision_at(
                        &outcome.grades,
                        1,
                        pws_click::relevance::Grade::HighlyRelevant,
                    );
                    counts[t] += 1;
                    engine.observe(&turn, &outcome.impression);
                }
            }
            (sums, counts)
        });
        let mut sums = vec![0.0; max_steps];
        let mut counts = vec![0usize; max_steps];
        for (s, c) in per_user {
            for (acc, v) in sums.iter_mut().zip(s) {
                *acc += v;
            }
            for (acc, v) in counts.iter_mut().zip(c) {
                *acc += v;
            }
        }
        (sums, counts)
    };

    let (c_sum, c_cnt) = run_one(PersonalizationMode::Combined);
    let (b_sum, b_cnt) = run_one(PersonalizationMode::Baseline);
    let steps = (0..max_steps)
        .filter(|&t| c_cnt[t] > 0 && b_cnt[t] > 0)
        .map(|t| {
            (
                t + 1,
                c_sum[t] / c_cnt[t] as f64,
                b_sum[t] / b_cnt[t] as f64,
                c_cnt[t],
            )
        })
        .collect();
    F10Report { steps }
}

impl F10Report {
    /// Render as a table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .steps
            .iter()
            .map(|(t, c, b, n)| vec![t.to_string(), fmt3(*c), fmt3(*b), n.to_string()])
            .collect();
        format!(
            "F10 — within-session adaptation (P@1:2 by refinement step)\n{}",
            table(&["step", "combined", "baseline", "issues"], &rows)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::ExperimentSpec;

    fn world() -> ExperimentWorld {
        ExperimentWorld::build(ExperimentSpec::small())
    }

    #[test]
    fn t1_stats_match_world() {
        let w = world();
        let t1 = t1_dataset_stats(&w);
        assert_eq!(t1.docs, w.corpus.len());
        assert_eq!(t1.users, w.population.len());
        assert_eq!(
            t1.content_queries + t1.location_sensitive_queries + t1.explicit_location_queries,
            t1.query_templates
        );
        assert!(t1.render().contains("documents"));
    }

    #[test]
    fn t2_extracts_sample_concepts() {
        let w = world();
        let t2 = t2_sample_concepts(&w);
        assert!(!t2.queries.is_empty());
        assert!(t2.render().contains("query:"));
    }

    #[test]
    fn t3_runs_all_four_methods() {
        let w = world();
        let t3 = t3_method_comparison(&w, &Protocol::quick());
        assert_eq!(t3.methods.len(), 4);
        assert_eq!(t3.baseline().label, "baseline");
        assert_eq!(t3.combined().label, "combined");
        let rendered = t3.render();
        for label in ["baseline", "content", "location", "combined"] {
            assert!(rendered.contains(label), "{label} missing from\n{rendered}");
        }
        let f2 = f2_topn_precision(&t3);
        assert_eq!(f2.methods.len(), 4);
        assert!(f2.render().contains("P@10"));
    }

    #[test]
    fn f5_includes_adaptive_row() {
        let w = world();
        let f5 = f5_blend_sweep(&w, &Protocol { train_per_user: 4, eval_per_user: 2, seed: 9 }, &[0.0, 1.0]);
        assert_eq!(f5.points.len(), 3);
        assert_eq!(f5.points.last().unwrap().0, "adaptive");
    }

    #[test]
    fn f6_produces_horizon_points() {
        let w = world();
        let f6 = f6_cold_start(&w, &Protocol::quick(), 5);
        assert_eq!(f6.points.len(), 5);
        for (t, c, b) in &f6.points {
            assert!(*t >= 1 && *t <= 5);
            assert!((0.0..=1.0).contains(c));
            assert!((0.0..=1.0).contains(b));
        }
    }

    #[test]
    fn t5_splits_by_class() {
        let w = world();
        let t5 = t5_class_breakdown(&w, &Protocol::quick());
        assert_eq!(t5.classes.len(), 3);
        let total: usize = t5.classes.iter().map(|(_, n, ..)| n).sum();
        assert_eq!(total, w.population.len() * Protocol::quick().eval_per_user);
        assert!(t5.render().contains("location-sensitive"));
    }

    #[test]
    fn f8_sweeps_noise_levels() {
        let spec = ExperimentSpec::small();
        let proto = Protocol { train_per_user: 4, eval_per_user: 2, seed: 1 };
        let f8 = f8_noise_robustness(&spec, &proto, &[0.02, 0.3]);
        assert_eq!(f8.points.len(), 2);
        for (_, b, c, _) in &f8.points {
            assert!((0.0..=1.0).contains(b));
            assert!((0.0..=1.0).contains(c));
        }
    }

    #[test]
    fn f9_covers_all_click_models() {
        let w = world();
        let proto = Protocol { train_per_user: 4, eval_per_user: 2, seed: 1 };
        let f9 = f9_click_model_robustness(&w, &proto);
        assert_eq!(f9.points.len(), 3);
        let labels: Vec<&str> = f9.points.iter().map(|(l, ..)| l.as_str()).collect();
        assert!(labels.contains(&"position-bias"));
        assert!(labels.contains(&"cascade"));
        assert!(labels.contains(&"dbn"));
    }

    #[test]
    fn f10_produces_step_series() {
        let w = world();
        let proto = Protocol { train_per_user: 6, eval_per_user: 2, seed: 3 };
        let f10 = f10_session_adaptation(&w, &proto, 2);
        assert!(!f10.steps.is_empty());
        for (t, c, b, n) in &f10.steps {
            assert!(*t >= 1);
            assert!((0.0..=1.0).contains(c));
            assert!((0.0..=1.0).contains(b));
            assert!(*n > 0);
        }
        assert!(f10.render().contains("refinement step"));
    }

    #[test]
    fn table_renderer_aligns() {
        let s = table(&["a", "bb"], &[vec!["1".into(), "2".into()]]);
        assert!(s.contains("a"));
        assert!(s.contains("--"));
    }
}
