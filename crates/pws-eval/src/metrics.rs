//! Ranking-quality metrics over latent relevance grades.
//!
//! All metrics are computed against the *latent* grades the simulator
//! exposes — the ground truth human-subject studies approximate with
//! questionnaires. Two relevance cuts matter:
//!
//! * **relevant** (grade ≥ 1): topically right — the baseline engine can
//!   already find these;
//! * **highly relevant** (grade 2): matches the user's personal content or
//!   location preference — only personalization can systematically put
//!   these on top. The paper's headline numbers live here.

use pws_click::relevance::Grade;
use serde::{Deserialize, Serialize};

/// Precision@N over a grade cut.
///
/// `grades` are page-ordered (index 0 = rank 1).
pub fn precision_at(grades: &[Grade], n: usize, min_grade: Grade) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let hits = grades.iter().take(n).filter(|g| **g >= min_grade).count();
    hits as f64 / n as f64
}

/// Reciprocal rank of the first result meeting the grade cut (0 if none).
pub fn reciprocal_rank(grades: &[Grade], min_grade: Grade) -> f64 {
    grades
        .iter()
        .position(|g| *g >= min_grade)
        .map(|i| 1.0 / (i + 1) as f64)
        .unwrap_or(0.0)
}

/// Mean rank of results meeting the grade cut (`None` if none on the page).
pub fn avg_rank(grades: &[Grade], min_grade: Grade) -> Option<f64> {
    let ranks: Vec<f64> = grades
        .iter()
        .enumerate()
        .filter(|(_, g)| **g >= min_grade)
        .map(|(i, _)| (i + 1) as f64)
        .collect();
    if ranks.is_empty() {
        None
    } else {
        Some(ranks.iter().sum::<f64>() / ranks.len() as f64)
    }
}

/// nDCG@n with gains `2^grade − 1`, normalized by the ideal ordering of the
/// *page's own* grades (standard evaluation practice when the full corpus
/// judgment set is the page).
pub fn ndcg_at(grades: &[Grade], n: usize) -> f64 {
    fn dcg(gains: impl Iterator<Item = u32>) -> f64 {
        gains
            .enumerate()
            .map(|(i, g)| (f64::from((1u32 << g) - 1)) / ((i + 2) as f64).log2())
            .sum()
    }
    let actual = dcg(grades.iter().take(n).map(|g| g.gain()));
    let mut ideal_grades: Vec<u32> = grades.iter().map(|g| g.gain()).collect();
    ideal_grades.sort_unstable_by(|a, b| b.cmp(a));
    let ideal = dcg(ideal_grades.into_iter().take(n));
    if ideal <= 0.0 {
        0.0
    } else {
        (actual / ideal).clamp(0.0, 1.0)
    }
}

/// All metrics of one evaluated issue.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct IssueMetrics {
    /// Mean rank of relevant (grade ≥ 1) results, if any.
    pub avg_rank_rel: Option<f64>,
    /// Mean rank of highly relevant results, if any.
    pub avg_rank_high: Option<f64>,
    /// P@1 / P@3 / P@5 / P@10 at grade ≥ 1.
    pub p_rel: [f64; 4],
    /// P@1 / P@3 / P@5 / P@10 at grade 2.
    pub p_high: [f64; 4],
    /// MRR at grade ≥ 1.
    pub mrr_rel: f64,
    /// MRR at grade 2.
    pub mrr_high: f64,
    /// nDCG@10 (graded).
    pub ndcg10: f64,
    /// Whether the rank-1 result was clicked.
    pub clicked_at_1: bool,
}

impl IssueMetrics {
    /// Compute from one page's grades and the click on rank 1 (if known).
    pub fn from_page(grades: &[Grade], clicked_at_1: bool) -> Self {
        let cuts = [1, 3, 5, 10];
        let p = |min: Grade| cuts.map(|n| precision_at(grades, n, min));
        IssueMetrics {
            avg_rank_rel: avg_rank(grades, Grade::Relevant),
            avg_rank_high: avg_rank(grades, Grade::HighlyRelevant),
            p_rel: p(Grade::Relevant),
            p_high: p(Grade::HighlyRelevant),
            mrr_rel: reciprocal_rank(grades, Grade::Relevant),
            mrr_high: reciprocal_rank(grades, Grade::HighlyRelevant),
            ndcg10: ndcg_at(grades, 10),
            clicked_at_1,
        }
    }
}

/// Streaming mean aggregator over many issues.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricAccumulator {
    issues: u64,
    sum_avg_rank_rel: f64,
    n_avg_rank_rel: u64,
    sum_avg_rank_high: f64,
    n_avg_rank_high: u64,
    sum_p_rel: [f64; 4],
    sum_p_high: [f64; 4],
    sum_mrr_rel: f64,
    sum_mrr_high: f64,
    sum_ndcg: f64,
    clicks_at_1: u64,
}

impl MetricAccumulator {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of issues folded in.
    pub fn issues(&self) -> u64 {
        self.issues
    }

    /// Fold one issue in.
    pub fn push(&mut self, m: &IssueMetrics) {
        self.issues += 1;
        if let Some(r) = m.avg_rank_rel {
            self.sum_avg_rank_rel += r;
            self.n_avg_rank_rel += 1;
        }
        if let Some(r) = m.avg_rank_high {
            self.sum_avg_rank_high += r;
            self.n_avg_rank_high += 1;
        }
        for i in 0..4 {
            self.sum_p_rel[i] += m.p_rel[i];
            self.sum_p_high[i] += m.p_high[i];
        }
        self.sum_mrr_rel += m.mrr_rel;
        self.sum_mrr_high += m.mrr_high;
        self.sum_ndcg += m.ndcg10;
        if m.clicked_at_1 {
            self.clicks_at_1 += 1;
        }
    }

    fn mean(sum: f64, n: u64) -> f64 {
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Mean rank of relevant results (issues with none are excluded).
    pub fn avg_rank_rel(&self) -> f64 {
        Self::mean(self.sum_avg_rank_rel, self.n_avg_rank_rel)
    }

    /// Mean rank of highly relevant results.
    pub fn avg_rank_high(&self) -> f64 {
        Self::mean(self.sum_avg_rank_high, self.n_avg_rank_high)
    }

    /// Mean P@{1,3,5,10} at grade ≥ 1.
    pub fn p_rel(&self) -> [f64; 4] {
        self.sum_p_rel.map(|s| Self::mean(s, self.issues))
    }

    /// Mean P@{1,3,5,10} at grade 2.
    pub fn p_high(&self) -> [f64; 4] {
        self.sum_p_high.map(|s| Self::mean(s, self.issues))
    }

    /// Mean MRR at grade ≥ 1.
    pub fn mrr_rel(&self) -> f64 {
        Self::mean(self.sum_mrr_rel, self.issues)
    }

    /// Mean MRR at grade 2.
    pub fn mrr_high(&self) -> f64 {
        Self::mean(self.sum_mrr_high, self.issues)
    }

    /// Mean nDCG@10.
    pub fn ndcg10(&self) -> f64 {
        Self::mean(self.sum_ndcg, self.issues)
    }

    /// Fraction of issues whose rank-1 result was clicked.
    pub fn ctr_at_1(&self) -> f64 {
        Self::mean(self.clicks_at_1 as f64, self.issues)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn g(levels: &[u32]) -> Vec<Grade> {
        levels.iter().map(|&l| Grade::from_level(l)).collect()
    }

    #[test]
    fn precision_basics() {
        let grades = g(&[2, 0, 1, 0]);
        assert_eq!(precision_at(&grades, 1, Grade::Relevant), 1.0);
        assert_eq!(precision_at(&grades, 2, Grade::Relevant), 0.5);
        assert_eq!(precision_at(&grades, 4, Grade::Relevant), 0.5);
        assert_eq!(precision_at(&grades, 1, Grade::HighlyRelevant), 1.0);
        assert_eq!(precision_at(&grades, 4, Grade::HighlyRelevant), 0.25);
        assert_eq!(precision_at(&grades, 0, Grade::Relevant), 0.0);
    }

    #[test]
    fn precision_beyond_page_counts_misses() {
        // P@10 with a 4-result page: absent results are misses.
        let grades = g(&[2, 2, 2, 2]);
        assert_eq!(precision_at(&grades, 10, Grade::Relevant), 0.4);
    }

    #[test]
    fn reciprocal_rank_basics() {
        assert_eq!(reciprocal_rank(&g(&[0, 0, 1]), Grade::Relevant), 1.0 / 3.0);
        assert_eq!(reciprocal_rank(&g(&[2]), Grade::HighlyRelevant), 1.0);
        assert_eq!(reciprocal_rank(&g(&[0, 0]), Grade::Relevant), 0.0);
        assert_eq!(reciprocal_rank(&[], Grade::Relevant), 0.0);
    }

    #[test]
    fn avg_rank_basics() {
        assert_eq!(avg_rank(&g(&[1, 0, 1]), Grade::Relevant), Some(2.0));
        assert_eq!(avg_rank(&g(&[0, 0]), Grade::Relevant), None);
        assert_eq!(avg_rank(&g(&[0, 2]), Grade::HighlyRelevant), Some(2.0));
    }

    #[test]
    fn ndcg_perfect_ordering_is_one() {
        assert!((ndcg_at(&g(&[2, 1, 0]), 10) - 1.0).abs() < 1e-12);
        assert_eq!(ndcg_at(&g(&[0, 0, 0]), 10), 0.0);
    }

    #[test]
    fn ndcg_penalizes_inversions() {
        let good = ndcg_at(&g(&[2, 1, 0]), 10);
        let bad = ndcg_at(&g(&[0, 1, 2]), 10);
        assert!(good > bad);
        assert!(bad > 0.0);
    }

    #[test]
    fn issue_metrics_and_accumulator() {
        let m1 = IssueMetrics::from_page(&g(&[2, 0, 1]), true);
        let m2 = IssueMetrics::from_page(&g(&[0, 0, 0]), false);
        let mut acc = MetricAccumulator::new();
        acc.push(&m1);
        acc.push(&m2);
        assert_eq!(acc.issues(), 2);
        assert_eq!(acc.ctr_at_1(), 0.5);
        // avg_rank_rel only counts the issue that had relevant results.
        assert_eq!(acc.avg_rank_rel(), 2.0); // ranks 1 and 3 → mean 2
        assert_eq!(acc.p_rel()[0], 0.5); // P@1 means over both issues
        assert!(acc.ndcg10() > 0.0 && acc.ndcg10() < 1.0);
    }

    #[test]
    fn empty_accumulator_is_zero() {
        let acc = MetricAccumulator::new();
        assert_eq!(acc.avg_rank_rel(), 0.0);
        assert_eq!(acc.ndcg10(), 0.0);
        assert_eq!(acc.ctr_at_1(), 0.0);
    }

    proptest! {
        #[test]
        fn metric_ranges(levels in proptest::collection::vec(0u32..3, 0..15)) {
            let grades: Vec<Grade> = levels.iter().map(|&l| Grade::from_level(l)).collect();
            let m = IssueMetrics::from_page(&grades, false);
            for p in m.p_rel.iter().chain(m.p_high.iter()) {
                prop_assert!((0.0..=1.0).contains(p));
            }
            prop_assert!((0.0..=1.0).contains(&m.mrr_rel));
            prop_assert!((0.0..=1.0).contains(&m.ndcg10));
            if let Some(r) = m.avg_rank_rel {
                prop_assert!(r >= 1.0 && r <= grades.len() as f64);
            }
        }

        #[test]
        fn ndcg_of_sorted_page_is_maximal(levels in proptest::collection::vec(0u32..3, 1..12)) {
            let grades: Vec<Grade> = levels.iter().map(|&l| Grade::from_level(l)).collect();
            let mut sorted = grades.clone();
            sorted.sort_by(|a, b| b.cmp(a));
            prop_assert!(ndcg_at(&sorted, 10) >= ndcg_at(&grades, 10) - 1e-9);
        }
    }
}
