//! Base-retrieval caching.
//!
//! Base retrieval — BM25 over the shared index — is *user-independent*:
//! every user issuing the same (analyzed) query gets the same candidate
//! pool, and personalization happens strictly downstream of it. That makes
//! the pool safely shareable across users and turns. [`RetrievalCache`] is
//! the hook [`crate::EngineCore`] consults before touching the index; the
//! serving layer provides the production implementation (sharded, bounded
//! LRU with epoch invalidation — see `pws-serve`).
//!
//! The key is the **analyzed token sequence** plus the pool size `k`:
//! surface forms that analyze identically ("Seafood  Restaurant!" vs
//! "seafood restaurant") share one entry, and tokens are produced once per
//! request via [`pws_index::SearchEngine::analyze_text`] /
//! [`pws_index::SearchEngine::search_tokens`].
//!
//! Correctness contract: `get` must return exactly what `put` stored for
//! the same `(tokens, k)` under the current index epoch — hits are cheap
//! to clone (`Arc<str>` url/title), so implementations store them
//! directly. Budget checkpoints, degraded paths, and chaos faults all
//! still apply to cached turns: the cache only replaces the index scan,
//! never the rest of the pipeline.

use pws_index::SearchHit;

/// A shared cache for base-retrieval results, keyed on analyzed query
/// tokens and the requested pool size.
///
/// Implementations must be `Send + Sync`; `get`/`put` take `&self`.
pub trait RetrievalCache: Send + Sync {
    /// Cached hits for `(tokens, k)`, or `None` on a miss.
    fn get(&self, tokens: &[String], k: usize) -> Option<Vec<SearchHit>>;

    /// Store the hits computed for `(tokens, k)`.
    fn put(&self, tokens: &[String], k: usize, hits: &[SearchHit]);
}
