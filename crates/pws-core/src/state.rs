//! Per-user engine state.

use pws_entropy::QueryStats;
use pws_profile::{ContentProfile, LocationProfile, UserHistory, FEATURE_DIM};
use pws_ranksvm::{LinearRankModel, PreferencePair};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Everything the engine remembers about one user.
///
/// Serializable: a deployment persists user states across restarts (and a
/// user can export/inspect their own profile — see
/// [`crate::PersonalizedSearchEngine::export_user`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UserState {
    /// Content-concept preference weights.
    pub content: ContentProfile,
    /// Location-ontology preference weights.
    pub location: LocationProfile,
    /// URL/domain revisit history.
    pub history: UserHistory,
    /// The user's personalized ranking model.
    pub model: LinearRankModel,
    /// Sliding window of mined preference pairs (training set).
    pub pairs: Vec<PreferencePair>,
    /// Observations folded in (drives the retraining schedule).
    pub observations: u64,
    /// Normalized query keys this user has clicked on, sorted ascending.
    ///
    /// The adaptive-β query statistics live *outside* the user state (they
    /// are cross-user accumulators — `ShardedStats` in `pws-serve`, the
    /// `query_stats` map in the serial engine), but a user's *contribution*
    /// must travel with the user record or export→import→replay diverges.
    /// This list names which stats entries belong in the user's export.
    pub seen_queries: Vec<String>,
}

impl UserState {
    /// The hand-tuned prior weight vector every user starts from — and the
    /// anchor the online RankSVM regularizes towards (see
    /// `TrainConfig::frozen_mask` and `PairwiseTrainer::train_anchored`
    /// for why anchoring matters when learning from position-biased
    /// clicks). Feature order matches [`pws_profile::FEATURE_NAMES`].
    pub fn prior_weights() -> Vec<f64> {
        vec![
            1.0,  // base_score_norm: trust the baseline ranker
            1.5,  // content_pref
            1.5,  // location_pref
            0.2,  // rank_prior
            0.15, // title_match
            0.15, // url_revisit: modest — one noise click must not pin a URL
            0.1,  // domain_affinity
        ]
    }

    /// Fresh state with the *prior* ranking model.
    ///
    /// The prior puts positive weight on the base score and both preference
    /// dimensions, so personalization acts from the first profile update —
    /// before the first RankSVM training round — which is exactly the
    /// cold-start behaviour measured in F6.
    pub fn new() -> Self {
        let prior = Self::prior_weights();
        debug_assert_eq!(prior.len(), FEATURE_DIM);
        UserState {
            content: ContentProfile::new(),
            location: LocationProfile::new(),
            history: UserHistory::new(),
            model: LinearRankModel::from_weights(prior),
            pairs: Vec::new(),
            observations: 0,
            seen_queries: Vec::new(),
        }
    }

    /// Is the user still cold (no clicks observed)?
    pub fn is_cold(&self) -> bool {
        self.observations == 0
    }

    /// Record that this user contributed to the stats of `query_key`
    /// (insertion keeps the list sorted and deduplicated).
    pub fn note_query(&mut self, query_key: &str) {
        if let Err(pos) = self.seen_queries.binary_search_by(|q| q.as_str().cmp(query_key)) {
            self.seen_queries.insert(pos, query_key.to_string());
        }
    }

    /// Structural validation: dimensions and finiteness.
    ///
    /// Serialization formats (JSON export, the `pws-store` binary codec)
    /// can express states the scoring path cannot survive — weight vectors
    /// of the wrong [`FEATURE_DIM`], NaN/∞ weights that poison every dot
    /// product downstream. Importers must call this before inserting the
    /// state and surface rejects as typed errors, never accept-and-crash.
    pub fn validate(&self) -> Result<(), StateError> {
        if self.model.dim() != FEATURE_DIM {
            return Err(StateError::WrongDim { what: "model weights", got: self.model.dim() });
        }
        if !self.model.weights.iter().all(|w| w.is_finite()) {
            return Err(StateError::NonFinite("model weights"));
        }
        if !self.content.weight_entries().iter().all(|(_, w)| w.is_finite()) {
            return Err(StateError::NonFinite("content profile weights"));
        }
        if !self.location.weight_entries().iter().all(|(_, w)| w.is_finite()) {
            return Err(StateError::NonFinite("location profile weights"));
        }
        for p in &self.pairs {
            if p.better.len() != FEATURE_DIM {
                return Err(StateError::WrongDim { what: "pair better", got: p.better.len() });
            }
            if p.worse.len() != FEATURE_DIM {
                return Err(StateError::WrongDim { what: "pair worse", got: p.worse.len() });
            }
            if !p.better.iter().chain(&p.worse).all(|v| v.is_finite()) {
                return Err(StateError::NonFinite("preference pair features"));
            }
        }
        Ok(())
    }
}

/// Why an imported user state (or its query stats) was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// A vector has the wrong dimension for the feature schema.
    WrongDim {
        /// Which vector.
        what: &'static str,
        /// The length found.
        got: usize,
    },
    /// A weight or click mass is NaN or infinite.
    NonFinite(&'static str),
    /// A click mass or counter is negative.
    Negative(&'static str),
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::WrongDim { what, got } => {
                write!(f, "{what}: dimension {got}, expected {FEATURE_DIM}")
            }
            StateError::NonFinite(what) => write!(f, "{what}: non-finite value"),
            StateError::Negative(what) => write!(f, "{what}: negative value"),
        }
    }
}

impl std::error::Error for StateError {}

/// Validate a query-stats accumulator for import: click masses must be
/// finite and non-negative (they are counts, however fractional weighting
/// schemes may make them non-integral).
pub fn validate_query_stats(stats: &QueryStats) -> Result<(), StateError> {
    let check = |entries: &[(String, f64)], what: &'static str| -> Result<(), StateError> {
        for (_, n) in entries {
            if !n.is_finite() {
                return Err(StateError::NonFinite(what));
            }
            if *n < 0.0 {
                return Err(StateError::Negative(what));
            }
        }
        Ok(())
    };
    check(&stats.url_click_entries(), "query-stats url clicks")?;
    check(&stats.concept_click_entries(), "query-stats concept clicks")?;
    for (_, n) in stats.location_click_entries() {
        if !n.is_finite() {
            return Err(StateError::NonFinite("query-stats location clicks"));
        }
        if n < 0.0 {
            return Err(StateError::Negative("query-stats location clicks"));
        }
    }
    Ok(())
}

/// The portable user record: the user's state plus their contribution to
/// the per-query adaptive-β statistics, keyed by normalized query key.
///
/// [`UserState`] alone is *not* replay-complete — `choose_beta()` reads
/// per-query click entropies, and losing them across an export/import
/// boundary silently changes β decisions (the exact bug the store tier
/// must not inherit). Export therefore carries both.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UserExport {
    /// The user's learned state.
    pub state: UserState,
    /// Per-query statistics for every key in `state.seen_queries`.
    pub query_stats: BTreeMap<String, QueryStats>,
}

impl UserExport {
    /// Validate the state and every stats entry.
    pub fn validate(&self) -> Result<(), StateError> {
        self.state.validate()?;
        for stats in self.query_stats.values() {
            validate_query_stats(stats)?;
        }
        Ok(())
    }
}

impl Default for UserState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_is_cold_with_prior_model() {
        let s = UserState::new();
        assert!(s.is_cold());
        assert_eq!(s.model.dim(), FEATURE_DIM);
        assert!(s.model.weights[0] > 0.0);
        assert!(s.pairs.is_empty());
    }

    #[test]
    fn prior_prefers_higher_base_score() {
        let s = UserState::new();
        let better = vec![1.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0];
        let worse = vec![0.5, 0.0, 0.0, 0.5, 0.0, 0.0, 0.0];
        assert!(s.model.score(&better) > s.model.score(&worse));
    }
}
