//! Per-user engine state.

use pws_profile::{ContentProfile, LocationProfile, UserHistory, FEATURE_DIM};
use pws_ranksvm::{LinearRankModel, PreferencePair};
use serde::{Deserialize, Serialize};

/// Everything the engine remembers about one user.
///
/// Serializable: a deployment persists user states across restarts (and a
/// user can export/inspect their own profile — see
/// [`crate::PersonalizedSearchEngine::export_user`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UserState {
    /// Content-concept preference weights.
    pub content: ContentProfile,
    /// Location-ontology preference weights.
    pub location: LocationProfile,
    /// URL/domain revisit history.
    pub history: UserHistory,
    /// The user's personalized ranking model.
    pub model: LinearRankModel,
    /// Sliding window of mined preference pairs (training set).
    pub pairs: Vec<PreferencePair>,
    /// Observations folded in (drives the retraining schedule).
    pub observations: u64,
}

impl UserState {
    /// The hand-tuned prior weight vector every user starts from — and the
    /// anchor the online RankSVM regularizes towards (see
    /// `TrainConfig::frozen_mask` and `PairwiseTrainer::train_anchored`
    /// for why anchoring matters when learning from position-biased
    /// clicks). Feature order matches [`pws_profile::FEATURE_NAMES`].
    pub fn prior_weights() -> Vec<f64> {
        vec![
            1.0,  // base_score_norm: trust the baseline ranker
            1.5,  // content_pref
            1.5,  // location_pref
            0.2,  // rank_prior
            0.15, // title_match
            0.15, // url_revisit: modest — one noise click must not pin a URL
            0.1,  // domain_affinity
        ]
    }

    /// Fresh state with the *prior* ranking model.
    ///
    /// The prior puts positive weight on the base score and both preference
    /// dimensions, so personalization acts from the first profile update —
    /// before the first RankSVM training round — which is exactly the
    /// cold-start behaviour measured in F6.
    pub fn new() -> Self {
        let prior = Self::prior_weights();
        debug_assert_eq!(prior.len(), FEATURE_DIM);
        UserState {
            content: ContentProfile::new(),
            location: LocationProfile::new(),
            history: UserHistory::new(),
            model: LinearRankModel::from_weights(prior),
            pairs: Vec::new(),
            observations: 0,
        }
    }

    /// Is the user still cold (no clicks observed)?
    pub fn is_cold(&self) -> bool {
        self.observations == 0
    }
}

impl Default for UserState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_is_cold_with_prior_model() {
        let s = UserState::new();
        assert!(s.is_cold());
        assert_eq!(s.model.dim(), FEATURE_DIM);
        assert!(s.model.weights[0] > 0.0);
        assert!(s.pairs.is_empty());
    }

    #[test]
    fn prior_prefers_higher_base_score() {
        let s = UserState::new();
        let better = vec![1.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0];
        let worse = vec![0.5, 0.0, 0.0, 0.5, 0.0, 0.0, 0.0];
        assert!(s.model.score(&better) > s.model.score(&worse));
    }
}
