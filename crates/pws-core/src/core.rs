//! The shared, immutable read side of the engine.
//!
//! [`EngineCore`] owns everything a search needs that is *not* per-user:
//! the baseline index, the location ontology and its matcher, the engine
//! configuration, the (stateless) RankSVM trainer, and the resolved
//! metrics handles. Every method takes `&self`; per-user mutable state
//! ([`UserState`]) and per-query statistics ([`QueryStats`]) are passed in
//! by the caller. That split is what lets two frontends drive one core:
//!
//! * [`crate::PersonalizedSearchEngine`] — the serial engine: one
//!   `&mut self` map of users, as the paper's middleware ran;
//! * `pws-serve`'s `ServingEngine` — user-sharded concurrent serving:
//!   `&self + Send + Sync`, shards of mutex-guarded user maps.
//!
//! Because both frontends call the same `search_user`/`observe_user`, a
//! request replayed through either produces the same [`SearchTurn`].

use crate::cache::RetrievalCache;
use crate::config::{BlendStrategy, EngineConfig, PersonalizationMode};
use crate::state::UserState;
use pws_click::{Impression, UserId};
use pws_concepts::{ConceptMemo, QueryConceptOntology};
use pws_entropy::{Effectiveness, QueryStats};
use pws_geo::{LocationMatcher, LocationOntology};
use pws_index::{RetrievalBackend, SearchHit};
use pws_obs::trace::{BetaProvenance, BetaTrace, ConceptTrace, QueryTrace, ResultTrace};
use pws_profile::{mine_pairs, FeatureExtractor, GeoContext, ResultFeatureInput};
use pws_ranksvm::PairwiseTrainer;
use pws_text::Analyzer;

/// Budget checkpoints inside [`EngineCore::search_user_gated`], in
/// execution order. At each one the caller's gate may abort
/// *personalization* — never the query: the turn falls back to the
/// pool-normalized base ranking and still completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageCheckpoint {
    /// After candidate retrieval (including query augmentation).
    Retrieval,
    /// After concept extraction over the candidate pool.
    Concepts,
    /// After feature-vector construction over the pool.
    Features,
}

impl StageCheckpoint {
    /// Stable lower-case label (used in metric names and traces).
    pub fn as_str(self) -> &'static str {
        match self {
            StageCheckpoint::Retrieval => "retrieval",
            StageCheckpoint::Concepts => "concepts",
            StageCheckpoint::Features => "features",
        }
    }
}

/// The caller-supplied budget/fault gate consulted at each
/// [`StageCheckpoint`]. Returning `true` aborts personalization for the
/// turn (degrading to the base ranking); the gate may also inject
/// side effects (deadline checks, chaos-testing faults) before deciding.
pub type CheckpointGate<'g> = &'g mut dyn FnMut(StageCheckpoint) -> bool;

/// Everything one `search` call produced: the page shown to the user plus
/// the intermediate state `observe` needs to learn from the clicks.
#[derive(Debug, Clone)]
pub struct SearchTurn {
    /// The issuing user.
    pub user: UserId,
    /// The query text as received.
    pub query_text: String,
    /// The final, (possibly) personalized page, ranks re-assigned 1-based.
    pub hits: Vec<SearchHit>,
    /// Concept ontology extracted over the *page* snippets (aligned with
    /// `hits`; feeds profile updates and query statistics).
    pub ontology: QueryConceptOntology,
    /// Feature vectors aligned with `hits` (feeds pair mining). The base
    /// score is normalized exactly as the ranking features were — see
    /// [`EngineCore::search_user`].
    pub features: Vec<Vec<f64>>,
    /// The content/location blend weight used (location share).
    pub beta: f64,
    /// Whether personalization actually re-ranked (false for baseline mode
    /// and for cold queries the effectiveness gate skipped).
    pub personalized: bool,
}

/// Cached handles into the global [`pws_obs`] registry, resolved once at
/// engine construction so the hot path never touches the registry lock.
struct EngineMetrics {
    retrieval: std::sync::Arc<pws_obs::StageMetrics>,
    concepts: std::sync::Arc<pws_obs::StageMetrics>,
    concept_memo_hit: std::sync::Arc<pws_obs::StageMetrics>,
    concept_memo_miss: std::sync::Arc<pws_obs::StageMetrics>,
    features: std::sync::Arc<pws_obs::StageMetrics>,
    beta: std::sync::Arc<pws_obs::StageMetrics>,
    rerank: std::sync::Arc<pws_obs::StageMetrics>,
    observe: std::sync::Arc<pws_obs::StageMetrics>,
}

impl EngineMetrics {
    fn resolve() -> Self {
        EngineMetrics {
            retrieval: pws_obs::stage("engine.retrieval"),
            concepts: pws_obs::stage("engine.concepts"),
            concept_memo_hit: pws_obs::stage("engine.concepts.memo_hit"),
            concept_memo_miss: pws_obs::stage("engine.concepts.memo_miss"),
            features: pws_obs::stage("engine.features"),
            beta: pws_obs::stage("engine.beta"),
            rerank: pws_obs::stage("engine.rerank"),
            observe: pws_obs::stage("engine.observe"),
        }
    }
}

/// Default bound on memoized concept extractions held by one core.
const CONCEPT_MEMO_CAPACITY: usize = 512;

/// The immutable shared read side of the personalized search engine.
///
/// Holds only state that is identical for every user and never mutated by
/// a query: the index, the ontology + matcher, the configuration, the
/// stateless trainer, and optional geo smoothing. All methods take
/// `&self`, so one `EngineCore` can serve any number of concurrent
/// requests as long as each request brings its own [`UserState`].
pub struct EngineCore<'a> {
    base: &'a dyn RetrievalBackend,
    world: &'a LocationOntology,
    matcher: LocationMatcher,
    cfg: EngineConfig,
    trainer: PairwiseTrainer,
    geo: Option<(&'a pws_geo::WorldCoords, f64)>,
    analyzer: Analyzer,
    metrics: EngineMetrics,
    /// Memoized concept extraction (pool and page ontologies). Extraction
    /// is deterministic, so memoization never changes a turn's bytes.
    concept_memo: ConceptMemo,
    /// Optional shared base-retrieval cache (see [`RetrievalCache`]).
    retrieval_cache: Option<std::sync::Arc<dyn RetrievalCache>>,
}

impl<'a> EngineCore<'a> {
    /// Build the shared core over an already-built baseline index.
    pub fn new(
        base: &'a dyn RetrievalBackend,
        world: &'a LocationOntology,
        cfg: EngineConfig,
    ) -> Self {
        let matcher = LocationMatcher::build(world);
        let trainer = PairwiseTrainer::new(cfg.train_cfg);
        EngineCore {
            base,
            world,
            matcher,
            cfg,
            trainer,
            geo: None,
            // Surface forms matter when checking whether the query already
            // names a city, so no stopword removal / stemming here.
            analyzer: Analyzer::verbatim(),
            metrics: EngineMetrics::resolve(),
            concept_memo: ConceptMemo::new(CONCEPT_MEMO_CAPACITY),
            retrieval_cache: None,
        }
    }

    /// Enable proximity-smoothed location scoring (the GPS extension):
    /// preference for a city also endorses geographically nearby places,
    /// with the exponential kernel scale `scale_km`.
    pub fn with_geo(mut self, coords: &'a pws_geo::WorldCoords, scale_km: f64) -> Self {
        self.geo = Some((coords, scale_km));
        self
    }

    /// Attach a shared base-retrieval cache. Base retrieval is
    /// user-independent, so cached pools are byte-identical to fresh ones;
    /// budget checkpoints and degradation still apply to cached turns.
    pub fn with_retrieval_cache(
        mut self,
        cache: std::sync::Arc<dyn RetrievalCache>,
    ) -> Self {
        self.retrieval_cache = Some(cache);
        self
    }

    /// Base retrieval for `query_text` with the configured pool size,
    /// consulting the retrieval cache when one is attached. Returns the
    /// hits plus `Some(hit?)` when a cache was consulted (`None` without
    /// a cache) for the trace stamp.
    fn retrieve_base(&self, query_text: &str) -> (Vec<SearchHit>, Option<bool>) {
        let k = self.cfg.rerank_pool;
        match &self.retrieval_cache {
            None => (self.base.search(query_text, k), None),
            Some(cache) => {
                let tokens = self.base.analyze_text(query_text);
                if let Some(hits) = cache.get(&tokens, k) {
                    (hits, Some(true))
                } else {
                    let hits = self.base.search_tokens(&tokens, k);
                    cache.put(&tokens, k, &hits);
                    (hits, Some(false))
                }
            }
        }
    }

    /// Memoized concept extraction over `snippets` (the engine's matcher,
    /// world, and configs are fixed, so `(query_text, snippets)` determines
    /// the result). Counts hits/misses under `engine.concepts.memo_*`.
    fn extract_concepts(&self, query_text: &str, snippets: &[String]) -> QueryConceptOntology {
        let (onto, hit) = self.concept_memo.get_or_extract(
            query_text,
            snippets,
            &self.matcher,
            self.world,
            &self.cfg.concept_cfg,
            &self.cfg.location_cfg,
        );
        if hit {
            self.metrics.concept_memo_hit.incr(1);
        } else {
            self.metrics.concept_memo_miss.incr(1);
        }
        onto
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The location ontology this core was built over.
    pub fn world(&self) -> &'a LocationOntology {
        self.world
    }

    /// Canonical map key for a query string.
    pub fn query_key(query_text: &str) -> String {
        query_text.trim().to_lowercase()
    }

    /// Does the (analyzed) query already mention `city_name`?
    ///
    /// Compared on token sequences, not substrings: a query mentioning
    /// "yorkshire" does **not** mention the city "york", and a multi-word
    /// city name must appear as a contiguous token run. Used to decide
    /// whether the location-aware query augmentation would be redundant.
    pub fn query_mentions_city(&self, query_text: &str, city_name: &str) -> bool {
        let q_toks = self.analyzer.analyze(query_text);
        let c_toks = self.analyzer.analyze(city_name);
        contains_token_seq(&q_toks, &c_toks)
    }

    /// β for a query under the configured strategy and mode, given the
    /// query's accumulated click statistics (if any).
    pub fn choose_beta(&self, stats: Option<&QueryStats>) -> f64 {
        let _span = self.metrics.beta.span();
        self.beta_decision(stats).value
    }

    /// The full β decision: the value [`choose_beta`] would return plus
    /// its provenance (mode-pinned / fixed / adaptive) and, on the
    /// adaptive path, the entropy-derived effectiveness inputs. This is
    /// the *single* implementation of the blend policy — `choose_beta`
    /// delegates here, so a traced turn can never report a β different
    /// from the one the engine ranked with.
    ///
    /// [`choose_beta`]: Self::choose_beta
    pub fn beta_decision(&self, stats: Option<&QueryStats>) -> BetaTrace {
        match self.cfg.mode {
            PersonalizationMode::ContentOnly => BetaTrace::pinned(0.0, BetaProvenance::Mode),
            PersonalizationMode::LocationOnly => BetaTrace::pinned(1.0, BetaProvenance::Mode),
            PersonalizationMode::Baseline => BetaTrace::pinned(0.5, BetaProvenance::Mode),
            PersonalizationMode::Combined => match self.cfg.blend {
                BlendStrategy::Fixed(b) => {
                    BetaTrace::pinned(b.clamp(0.0, 1.0), BetaProvenance::Fixed)
                }
                BlendStrategy::Adaptive => match stats {
                    None => BetaTrace::pinned(
                        Effectiveness::neutral().beta(),
                        BetaProvenance::AdaptiveNeutral,
                    ),
                    Some(s) => {
                        let eff = Effectiveness::from_stats(s, &self.cfg.effectiveness_cfg);
                        BetaTrace {
                            value: eff.beta(),
                            provenance: BetaProvenance::Adaptive,
                            content_effectiveness: Some(eff.content),
                            location_effectiveness: Some(eff.location),
                            clicks: Some(s.clicks()),
                            impressions: Some(s.impressions()),
                        }
                    }
                },
            },
        }
    }

    /// Execute one personalized search for `user` against the caller's
    /// per-user `state`. `stats` is the accumulated clickthrough for this
    /// query (drives the adaptive β); pass whatever view of it the calling
    /// frontend maintains — a live map entry or an epoch snapshot.
    ///
    /// Feature normalization: every base score — for ranking *and* for the
    /// page features returned in [`SearchTurn::features`] — is normalized
    /// to `[0, 1]` by the candidate pool's maximum, through one shared
    /// helper. Training therefore consumes exactly the scale serving
    /// ranked with.
    pub fn search_user(
        &self,
        user: UserId,
        query_text: &str,
        state: &mut UserState,
        stats: Option<&QueryStats>,
    ) -> SearchTurn {
        self.search_user_traced(user, query_text, state, stats, None)
    }

    /// [`search_user`] with an optional per-query decision trace.
    ///
    /// When `trace` is `Some`, the turn's stage timings, concepts, β
    /// decision, and per-candidate feature vectors / rank movements are
    /// copied into it. Tracing only *reads* values the search computed
    /// anyway — the ranking computation is identical with and without a
    /// trace (the replay-equivalence tests in `pws-serve` assert this
    /// byte-for-byte) — and a `None` trace costs nothing beyond the
    /// untraced path.
    ///
    /// [`search_user`]: Self::search_user
    pub fn search_user_traced(
        &self,
        user: UserId,
        query_text: &str,
        state: &mut UserState,
        stats: Option<&QueryStats>,
        trace: Option<&mut QueryTrace>,
    ) -> SearchTurn {
        self.search_user_gated(user, query_text, state, stats, trace, None).0
    }

    /// [`search_user_traced`] with a per-query budget/fault gate.
    ///
    /// The gate is consulted at each [`StageCheckpoint`] (after
    /// retrieval, after pool concept extraction, after feature build).
    /// When it returns `true` the turn **degrades**: personalization is
    /// abandoned and the page is the pool-normalized base ranking — the
    /// query itself always completes with a ranked result. The second
    /// return value names the checkpoint that aborted (`None` for a
    /// healthy turn). The third reports whether base retrieval was served
    /// from the retrieval cache (`None` when no cache is configured) — the
    /// serving layer feeds *uncached* turn latencies into its overload
    /// `retry_after` estimate, so it needs the flag even untraced.
    ///
    /// With `gate: None` (or a gate that never fires) this is
    /// byte-identical to [`search_user_traced`] — the serving layer's
    /// replay-equivalence tests run with the gate wired in and inert to
    /// pin exactly that.
    ///
    /// [`search_user_traced`]: Self::search_user_traced
    pub fn search_user_gated(
        &self,
        user: UserId,
        query_text: &str,
        state: &mut UserState,
        stats: Option<&QueryStats>,
        mut trace: Option<&mut QueryTrace>,
        mut gate: Option<CheckpointGate<'_>>,
    ) -> (SearchTurn, Option<StageCheckpoint>, Option<bool>) {
        // ── Candidate pool ────────────────────────────────────────────────
        let retrieval_span = self.metrics.retrieval.span();
        let (base_hits, cache_hit) = self.retrieve_base(query_text);
        if let Some(t) = trace.as_deref_mut() {
            t.cache_hit = cache_hit;
        }
        let mut candidates = normalize_pool(&base_hits);

        // Location-aware query augmentation: also retrieve for
        // "query + preferred city" so home-city documents enter the pool
        // even when the baseline ranking buried them. Augmented candidates
        // are re-scored against the *original* query (a doc matching only
        // the city name is topically irrelevant and must not inherit the
        // augmented query's inflated score).
        if self.cfg.query_augmentation && self.cfg.mode.uses_location() {
            if let Some(city) = state.location.preferred_city(self.world) {
                let city_name = self.world.name(city);
                if !self.query_mentions_city(query_text, city_name) {
                    let aug = format!("{query_text} {city_name}");
                    let (aug_hits, _) = self.retrieve_base(&aug);
                    let new_hits: Vec<SearchHit> = aug_hits
                        .into_iter()
                        .filter(|h| !candidates.iter().any(|(c, _)| c.doc == h.doc))
                        .collect();
                    let new_docs: Vec<u32> = new_hits.iter().map(|h| h.doc).collect();
                    let base_scores = self.base.score_docs(query_text, &new_docs);
                    let base_max = base_hits
                        .iter()
                        .map(|h| h.score)
                        .fold(0.0_f64, f64::max)
                        .max(f64::MIN_POSITIVE);
                    let rescored: Vec<(SearchHit, f64)> = new_hits
                        .into_iter()
                        .zip(base_scores)
                        .filter(|(_, s)| *s > 0.0)
                        .map(|(h, s)| (h, s / base_max))
                        .collect();
                    merge_pools(&mut candidates, rescored);
                }
            }
        }
        finish_span(retrieval_span, &mut trace, "engine.retrieval");

        if self.cfg.mode == PersonalizationMode::Baseline || candidates.is_empty() {
            // Nothing to degrade here — this branch *is* the base order.
            return (
                self.base_order_turn(state, user, query_text, candidates, stats, trace),
                None,
                cache_hit,
            );
        }

        if gate_fires(&mut gate, StageCheckpoint::Retrieval) {
            return (
                self.base_order_turn(state, user, query_text, candidates, stats, trace),
                Some(StageCheckpoint::Retrieval),
                cache_hit,
            );
        }

        // ── Features over the pool ────────────────────────────────────────
        let concepts_span = self.metrics.concepts.span();
        let pool_snippets: Vec<String> =
            candidates.iter().map(|(h, _)| h.snippet.clone()).collect();
        let pool_onto = self.extract_concepts(query_text, &pool_snippets);
        finish_span(concepts_span, &mut trace, "engine.concepts");
        if gate_fires(&mut gate, StageCheckpoint::Concepts) {
            return (
                self.base_order_turn(state, user, query_text, candidates, stats, trace),
                Some(StageCheckpoint::Concepts),
                cache_hit,
            );
        }
        let features_span = self.metrics.features.span();
        let inputs: Vec<ResultFeatureInput> = candidates
            .iter()
            .enumerate()
            .map(|(i, (h, norm))| feature_input(h, *norm, i + 1))
            .collect();
        let extractor = FeatureExtractor::with_masks(
            self.cfg.mode.uses_content(),
            self.cfg.mode.uses_location(),
        );
        let geo_ctx = self.geo.map(|(coords, scale_km)| GeoContext { coords, scale_km });
        let mut features = extractor.extract_page_geo(
            query_text,
            &inputs,
            &pool_onto,
            &state.content,
            &state.location,
            &state.history,
            geo_ctx.as_ref(),
        );
        finish_span(features_span, &mut trace, "engine.features");
        if gate_fires(&mut gate, StageCheckpoint::Features) {
            return (
                self.base_order_turn(state, user, query_text, candidates, stats, trace),
                Some(StageCheckpoint::Features),
                cache_hit,
            );
        }

        // ── Blend ────────────────────────────────────────────────────────
        let beta_span = self.metrics.beta.span();
        let decision = self.beta_decision(stats);
        finish_span(beta_span, &mut trace, "engine.beta");
        let beta = decision.value;
        for f in &mut features {
            f[1] *= 2.0 * (1.0 - beta);
            f[2] *= 2.0 * beta;
        }

        // ── Score & select the page ──────────────────────────────────────
        let rerank_span = self.metrics.rerank.span();
        let order = state.model.rank(&features);
        let page: Vec<(SearchHit, f64)> = order
            .iter()
            .take(self.cfg.top_k)
            .enumerate()
            .map(|(i, &idx)| {
                let (h, norm) = &candidates[idx];
                let mut h = h.clone();
                h.rank = i + 1;
                (h, *norm)
            })
            .collect();
        finish_span(rerank_span, &mut trace, "engine.rerank");

        // Copy the decision record into the trace: the concepts the
        // ranker actually matched against (pool-level ontology), the β,
        // and every pool candidate's post-blend feature vector with its
        // base-rank → final-rank movement. Reads only; nothing the
        // untraced path computes differs.
        if let Some(t) = trace.as_deref_mut() {
            t.beta = decision;
            t.personalized = true;
            t.feature_names = pws_profile::FEATURE_NAMES.to_vec();
            t.content_concepts = pool_onto
                .content
                .iter()
                .map(|c| ConceptTrace { name: c.term.clone(), support: c.support })
                .collect();
            t.location_concepts = pool_onto
                .locations
                .iter()
                .map(|l| ConceptTrace {
                    name: self.world.name(l.loc).to_string(),
                    support: l.support,
                })
                .collect();
            t.results = order
                .iter()
                .enumerate()
                .map(|(final_pos, &idx)| {
                    let (h, norm) = &candidates[idx];
                    ResultTrace {
                        doc: h.doc,
                        title: h.title.to_string(),
                        base_rank: idx + 1,
                        final_rank: final_pos + 1,
                        on_page: final_pos < self.cfg.top_k,
                        base_score: *norm,
                        features: features[idx].clone(),
                    }
                })
                .collect();
        }

        (self.finish_turn(state, user, query_text, page, beta, true, trace), None, cache_hit)
    }

    /// Complete a turn in base (pool) order: β decision, top-K page with
    /// ranks reassigned, `personalized: false`. Shared by the baseline /
    /// empty-pool branch and every degraded checkpoint — a degraded turn
    /// is byte-identical to what baseline mode would have served.
    fn base_order_turn(
        &self,
        state: &UserState,
        user: UserId,
        query_text: &str,
        candidates: Vec<(SearchHit, f64)>,
        stats: Option<&QueryStats>,
        mut trace: Option<&mut QueryTrace>,
    ) -> SearchTurn {
        // β must report what the mode would actually blend with (the
        // F6/F7-style analyses read it from the turn), not a
        // hard-coded neutral value.
        let beta_span = self.metrics.beta.span();
        let decision = self.beta_decision(stats);
        finish_span(beta_span, &mut trace, "engine.beta");
        let beta = decision.value;
        if let Some(t) = trace.as_deref_mut() {
            t.beta = decision;
        }
        let page: Vec<(SearchHit, f64)> = candidates
            .into_iter()
            .take(self.cfg.top_k)
            .enumerate()
            .map(|(i, (mut h, norm))| {
                h.rank = i + 1;
                (h, norm)
            })
            .collect();
        self.finish_turn(state, user, query_text, page, beta, false, trace)
    }

    /// The stateless escape hatch: serve `query_text` from baseline
    /// retrieval alone, in pool-normalized base order, against a fresh
    /// default [`UserState`]. Touches no caller state at all, so the
    /// serving layer can answer a query even when the user's state is
    /// unavailable (poisoned shard lock, panic mid-personalization).
    /// No query augmentation — that needs a location profile.
    pub fn degraded_search(
        &self,
        user: UserId,
        query_text: &str,
        stats: Option<&QueryStats>,
    ) -> SearchTurn {
        let retrieval_span = self.metrics.retrieval.span();
        let (base_hits, _) = self.retrieve_base(query_text);
        let candidates = normalize_pool(&base_hits);
        drop(retrieval_span);
        let state = UserState::default();
        self.base_order_turn(&state, user, query_text, candidates, stats, None)
    }

    /// Extract the page-level ontology + page-aligned features and assemble
    /// the turn. `page` carries each hit's pool-normalized base score so
    /// the training features see the same scale the ranker scored with.
    #[allow(clippy::too_many_arguments)]
    fn finish_turn(
        &self,
        state: &UserState,
        user: UserId,
        query_text: &str,
        page: Vec<(SearchHit, f64)>,
        beta: f64,
        personalized: bool,
        mut trace: Option<&mut QueryTrace>,
    ) -> SearchTurn {
        let concepts_span = self.metrics.concepts.span();
        let page_snippets: Vec<String> = page.iter().map(|(h, _)| h.snippet.clone()).collect();
        let ontology = self.extract_concepts(query_text, &page_snippets);
        finish_span(concepts_span, &mut trace, "engine.concepts");
        let inputs: Vec<ResultFeatureInput> =
            page.iter().map(|(h, norm)| feature_input(h, *norm, h.rank)).collect();
        let extractor = FeatureExtractor::with_masks(
            self.cfg.mode.uses_content(),
            self.cfg.mode.uses_location(),
        );
        let geo_ctx = self.geo.map(|(coords, scale_km)| GeoContext { coords, scale_km });
        let features_span = self.metrics.features.span();
        let features = extractor.extract_page_geo(
            query_text,
            &inputs,
            &ontology,
            &state.content,
            &state.location,
            &state.history,
            geo_ctx.as_ref(),
        );
        finish_span(features_span, &mut trace, "engine.features");
        // The personalized path filled the trace from the pool before
        // calling here; for baseline / cold / empty turns the page *is*
        // the pool prefix in base order, so record it with base == final.
        if let Some(t) = trace {
            if !personalized {
                t.personalized = false;
                t.feature_names = pws_profile::FEATURE_NAMES.to_vec();
                t.content_concepts = ontology
                    .content
                    .iter()
                    .map(|c| ConceptTrace { name: c.term.clone(), support: c.support })
                    .collect();
                t.location_concepts = ontology
                    .locations
                    .iter()
                    .map(|l| ConceptTrace {
                        name: self.world.name(l.loc).to_string(),
                        support: l.support,
                    })
                    .collect();
                t.results = page
                    .iter()
                    .zip(&features)
                    .map(|((h, norm), f)| ResultTrace {
                        doc: h.doc,
                        title: h.title.to_string(),
                        base_rank: h.rank,
                        final_rank: h.rank,
                        on_page: true,
                        base_score: *norm,
                        features: f.clone(),
                    })
                    .collect();
            }
        }
        SearchTurn {
            user,
            query_text: query_text.to_string(),
            hits: page.into_iter().map(|(h, _)| h).collect(),
            ontology,
            features,
            beta,
            personalized,
        }
    }

    /// Fold the user's clicks on a turn back into `state` and the query's
    /// statistics.
    ///
    /// `impression.results` must correspond to `turn.hits` (same order) —
    /// the simulator guarantees this by construction.
    pub fn observe_user(
        &self,
        turn: &SearchTurn,
        impression: &Impression,
        state: &mut UserState,
        stats: &mut QueryStats,
    ) {
        let _span = self.metrics.observe.span();
        // Query statistics always update (they also drive the adaptive β
        // for baseline-mode logging). Record the key on the user so the
        // export/store path knows which stats entries travel with them.
        stats.observe(&turn.ontology, impression);
        state.note_query(&Self::query_key(&turn.query_text));

        state.history.observe(impression);

        if self.cfg.mode == PersonalizationMode::Baseline {
            state.observations += 1;
            return;
        }

        if self.cfg.mode.uses_content() {
            state
                .content
                .observe(&turn.ontology, impression, &self.cfg.content_profile_cfg);
        }
        if self.cfg.mode.uses_location() {
            state.location.observe(
                &turn.ontology,
                impression,
                self.world,
                &self.cfg.location_profile_cfg,
            );
        }

        // Pair mining + periodic re-training.
        if self.cfg.retrain_every > 0 {
            let mut pairs = match &self.cfg.pair_source {
                crate::config::PairSource::Joachims(cfg) => {
                    mine_pairs(impression, &turn.features, cfg)
                }
                crate::config::PairSource::SpyNb(cfg) => {
                    pws_profile::mine_spynb_pairs(impression, &turn.features, cfg)
                }
            };
            state.pairs.append(&mut pairs);
            if state.pairs.len() > self.cfg.max_pairs_per_user {
                let excess = state.pairs.len() - self.cfg.max_pairs_per_user;
                state.pairs.drain(..excess);
            }
            state.observations += 1;
            if state.observations.is_multiple_of(self.cfg.retrain_every) && !state.pairs.is_empty()
            {
                // Re-train from the prior each round (anchored): the pair
                // window is the full training set, so warm-starting from
                // the drifted model would double-count old pairs.
                let anchor = UserState::prior_weights();
                state.model = pws_ranksvm::LinearRankModel::from_weights(anchor.clone());
                self.trainer.train_anchored(&mut state.model, &anchor, &state.pairs);
            }
        } else {
            state.observations += 1;
        }
    }
}

/// Consult the optional checkpoint gate; `None` never fires.
fn gate_fires(gate: &mut Option<CheckpointGate<'_>>, cp: StageCheckpoint) -> bool {
    match gate {
        Some(g) => g(cp),
        None => false,
    }
}

/// Close a stage span, recording into the aggregate histogram exactly as
/// dropping would, and additionally copy the measured nanoseconds into
/// the trace (if one is being filled). One measurement feeds both sinks,
/// so aggregate metrics and traces can never disagree about a stage.
fn finish_span(
    span: pws_obs::Span<'_>,
    trace: &mut Option<&mut QueryTrace>,
    stage: &'static str,
) {
    let nanos = span.finish();
    if let Some(t) = trace.as_deref_mut() {
        t.stage(stage, nanos);
    }
}

/// The one place a hit becomes a feature input: the base-score feature is
/// always the **pool-normalized** score, in `search_user` (ranking over
/// the pool) and `finish_turn` (page features for training) alike. The
/// 2010-era bug this guards against: rebuilding page features from raw
/// BM25 scores trained every model on a different scale than it ranked
/// with.
fn feature_input(hit: &SearchHit, norm: f64, rank: usize) -> ResultFeatureInput {
    ResultFeatureInput {
        doc: hit.doc,
        rank,
        base_score: norm,
        url: hit.url.to_string(),
        title: hit.title.to_string(),
    }
}

/// Normalize a hit list's scores to [0, 1] by its own max.
pub(crate) fn normalize_pool(hits: &[SearchHit]) -> Vec<(SearchHit, f64)> {
    let max = hits.iter().map(|h| h.score).fold(0.0_f64, f64::max).max(f64::MIN_POSITIVE);
    hits.iter().map(|h| (h.clone(), h.score / max)).collect()
}

/// Merge `extra` into `pool`, deduplicating by doc id (keeping the higher
/// normalized score) and re-sorting by normalized score desc, doc asc.
pub(crate) fn merge_pools(pool: &mut Vec<(SearchHit, f64)>, extra: Vec<(SearchHit, f64)>) {
    for (hit, norm) in extra {
        match pool.iter_mut().find(|(h, _)| h.doc == hit.doc) {
            Some((_, existing)) => {
                if norm > *existing {
                    *existing = norm;
                }
            }
            None => pool.push((hit, norm)),
        }
    }
    pool.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.doc.cmp(&b.0.doc))
    });
}

/// Does `haystack` contain `needle` as a contiguous run of whole tokens?
/// An empty needle is trivially contained.
fn contains_token_seq(haystack: &[String], needle: &[String]) -> bool {
    if needle.is_empty() {
        return true;
    }
    if needle.len() > haystack.len() {
        return false;
    }
    haystack.windows(needle.len()).any(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_seq_containment() {
        let toks = |s: &str| -> Vec<String> { s.split(' ').map(|t| t.to_string()).collect() };
        assert!(contains_token_seq(&toks("restaurants in york"), &toks("york")));
        assert!(contains_token_seq(&toks("best new york pizza"), &toks("new york")));
        // Substring of a longer token is NOT a mention.
        assert!(!contains_token_seq(&toks("restaurants in yorkshire"), &toks("york")));
        // Token runs must be contiguous and in order.
        assert!(!contains_token_seq(&toks("new deals in york"), &toks("new york")));
        assert!(!contains_token_seq(&toks("york new bridge"), &toks("new york")));
        // Empty needle is trivially contained; oversized needle never is.
        assert!(contains_token_seq(&toks("a b"), &[]));
        assert!(!contains_token_seq(&toks("york"), &toks("new york")));
    }
}
