//! # pws-core — the personalized search engine
//!
//! The paper's primary contribution, assembled from the substrate crates:
//! a search engine whose results are re-ranked per user by **content** and
//! **location** preferences mined from that user's clickthrough history.
//!
//! ## The online loop
//!
//! ```text
//!            ┌────────────────────────────────────────────────┐
//!  query ───►│ baseline retrieval (BM25, pool > page size)    │
//!            │   + location-aware query augmentation          │
//!            ├────────────────────────────────────────────────┤
//!            │ concept extraction from snippets               │
//!            │   content concepts · location concepts · graph │
//!            ├────────────────────────────────────────────────┤
//!            │ feature vectors (base score, content pref,     │
//!            │   location pref, rank prior, title, revisit)   │
//!            ├────────────────────────────────────────────────┤
//!            │ effectiveness-adaptive blend β  → RankSVM      │
//!            │   score → re-ranked top-K                      │
//!            └────────────────────────────────────────────────┘
//!  clicks ──► profiles (content + location) · click history ·
//!             query statistics (entropies) · preference pairs →
//!             periodic RankSVM re-training
//! ```
//!
//! [`engine::PersonalizedSearchEngine`] owns all per-user state; one
//! instance serves the whole user population (as the paper's middleware
//! did). [`config::PersonalizationMode`] selects the evaluation variants:
//! baseline / content-only / location-only / combined.

pub mod cache;
pub mod config;
pub mod core;
pub mod engine;
pub mod state;

pub use crate::core::{CheckpointGate, EngineCore, SearchTurn, StageCheckpoint};
pub use cache::RetrievalCache;
pub use config::{BlendStrategy, EngineConfig, PairSource, PersonalizationMode};
pub use engine::{parse_user_export, ImportError, PersonalizedSearchEngine};
pub use state::{validate_query_stats, StateError, UserExport, UserState};
